/**
 * @file
 * Ablation: Monte-Carlo versus low-discrepancy (Halton) sampling in
 * the Sobol sensitivity machinery, measured on the paper's own
 * workload — the A11 TTM sensitivity at 5nm (Fig. 8's rightmost
 * column). The quasi-random estimates converge to the N = 8192
 * reference with far fewer samples, which matters because each Sobol
 * run costs N * (k + 2) model evaluations.
 */

#include <cmath>

#include "core/uncertainty.hh"
#include "stats/sobol.hh"

#include "bench_common.hh"

namespace {

using namespace ttmcas;
using namespace ttmcas::bench;

/** Sum of |S_T - reference| over the six inputs. */
double
totalEffectError(const SobolResult& run, const SobolResult& reference)
{
    double error = 0.0;
    for (std::size_t i = 0; i < run.total_effect.size(); ++i)
        error += std::fabs(run.total_effect[i] -
                           reference.total_effect[i]);
    return error;
}

} // namespace

int
main()
{
    banner("Ablation: pseudo-random vs Halton sampling for Fig. 8's "
           "sensitivity");

    const UncertaintyAnalysis analysis(defaultTechnologyDb(),
                                       a11ModelOptions());
    const ChipDesign a11 = designs::a11("5nm");

    // Shared plumbing: expose the six-factor TTM as a plain function.
    std::vector<std::unique_ptr<Distribution>> owned;
    std::vector<SensitivityInput> inputs;
    for (std::size_t i = 0; i < kUncertainInputCount; ++i) {
        owned.push_back(relativeUniform(1.0, 0.10));
        inputs.push_back(SensitivityInput{
            uncertainInputName(static_cast<UncertainInput>(i)),
            owned.back().get()});
    }
    const auto model = [&](const std::vector<double>& point) {
        InputFactors factors;
        for (std::size_t i = 0; i < kUncertainInputCount; ++i)
            factors[i] = point[i];
        return analysis.ttmWithFactors(a11, 10e6, {}, factors).value();
    };

    // High-N quasi-random reference.
    SobolOptions reference_options;
    reference_options.base_samples = 8192;
    reference_options.use_low_discrepancy = true;
    const SobolResult reference =
        sobolAnalyze(inputs, model, reference_options);

    Table table({"N", "random err", "halton err", "evaluations"});
    for (std::size_t n : {64u, 128u, 256u, 512u, 1024u}) {
        SobolOptions random_options;
        random_options.base_samples = n;
        SobolOptions halton_options = random_options;
        halton_options.use_low_discrepancy = true;

        const SobolResult random_run =
            sobolAnalyze(inputs, model, random_options);
        const SobolResult halton_run =
            sobolAnalyze(inputs, model, halton_options);
        table.addRow({formatFixed(static_cast<double>(n), 0),
                      formatFixed(totalEffectError(random_run, reference),
                                  4),
                      formatFixed(totalEffectError(halton_run, reference),
                                  4),
                      formatGrouped(static_cast<long long>(
                          random_run.evaluations))});
    }
    std::cout << table.render() << "\n";
    std::cout << "Dominant input at every N and either sampler: "
              << reference.input_names[reference.dominantInput()]
              << " (paper Fig. 8 at 5nm: NUT).\n\n";

    emitCsv("ablation_sampling.csv", table.renderCsv());
    return 0;
}
