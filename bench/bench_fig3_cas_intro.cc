/**
 * @file
 * Reproduces paper Figure 3: time-to-market and CAS versus percentage
 * of production capacity for the two synthetic chips A and B that
 * introduce the Chip Agility Score. Chip A's TTM climbs faster as
 * capacity falls (lower CAS); Chip B is the more agile design despite
 * a higher full-capacity TTM contribution from its own pipeline.
 */

#include "core/cas.hh"
#include "report/ascii_plot.hh"

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 3: TTM and CAS of Chip A and Chip B vs production "
           "capacity");

    const double n_chips = 30e6;
    const CasModel cas(TtmModel(defaultTechnologyDb(), a11ModelOptions()));
    const ChipDesign chip_a = designs::syntheticChipA();
    const ChipDesign chip_b = designs::syntheticChipB();

    std::vector<double> fractions;
    for (int percent = 10; percent <= 100; percent += 5)
        fractions.push_back(percent / 100.0);

    FigureData figure("Fig. 3: TTM and CAS vs % production capacity",
                      "capacity_pct", "value");
    Table table({"% Capacity", "Chip A TTM", "Chip B TTM", "Chip A CAS",
                 "Chip B CAS"});

    const auto sweep_a = cas.capacitySweep(chip_a, n_chips, fractions);
    const auto sweep_b = cas.capacitySweep(chip_b, n_chips, fractions);
    for (std::size_t i = 0; i < fractions.size(); ++i) {
        const double pct = fractions[i] * 100.0;
        figure.series("Chip A TTM").points.push_back(
            {pct, sweep_a[i].ttm.value(), {}, {}, {}, {}});
        figure.series("Chip B TTM").points.push_back(
            {pct, sweep_b[i].ttm.value(), {}, {}, {}, {}});
        figure.series("Chip A CAS").points.push_back(
            {pct, sweep_a[i].cas, {}, {}, {}, {}});
        figure.series("Chip B CAS").points.push_back(
            {pct, sweep_b[i].cas, {}, {}, {}, {}});
        table.addRow({formatFixed(pct, 0),
                      formatFixed(sweep_a[i].ttm.value(), 1),
                      formatFixed(sweep_b[i].ttm.value(), 1),
                      formatFixed(sweep_a[i].cas, 1),
                      formatFixed(sweep_b[i].cas, 1)});
    }

    std::cout << table.render() << "\n";

    // Shape check, directly in the terminal (paper Fig. 3 left axis).
    FigureData ttm_only("TTM vs % capacity (cyan curves of Fig. 3)",
                        "capacity_pct", "ttm_weeks");
    ttm_only.series("Chip A TTM") = figure.series("Chip A TTM");
    ttm_only.series("Chip B TTM") = figure.series("Chip B TTM");
    std::cout << AsciiPlot().render(ttm_only) << "\n";

    // The figure's takeaway, stated explicitly.
    const double slope_a =
        (sweep_a.front().ttm.value() - sweep_a.back().ttm.value());
    const double slope_b =
        (sweep_b.front().ttm.value() - sweep_b.back().ttm.value());
    std::cout << "TTM rise from 100% -> 10% capacity: Chip A "
              << formatFixed(slope_a, 1) << " weeks, Chip B "
              << formatFixed(slope_b, 1) << " weeks\n"
              << "=> Chip " << (slope_a > slope_b ? "B" : "A")
              << " is the more agile architecture (paper: Chip B).\n\n";

    emitCsv("fig3_cas_intro.csv", figure.renderCsv());
    return 0;
}
