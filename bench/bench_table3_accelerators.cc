/**
 * @file
 * Reproduces paper Table 3: accelerator speed-up over the Ariane
 * software baseline, transistor counts, area relative to the Ariane
 * core, and the tapeout time/cost of adding each block at 5nm.
 * Speed-ups are measured from this library's functional cycle models;
 * transistor counts use the paper's synthesis results as inputs (our
 * analytic estimates are printed alongside).
 */

#include "accel/accel_study.hh"

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Table 3: accelerator speed-up, tapeout time, and tapeout "
           "cost at 5nm");

    const auto results =
        runAccelStudy(defaultTechnologyDb(), AccelStudyOptions{});

    Table table({"Hardware Block", "Speed-Up", "paper", "NTT",
                 "est. NTT", "Area vs Ariane", "T_tapeout (wk)",
                 "C_tapeout"});
    table.setAlign(0, Align::Left);
    for (const auto& row : results) {
        table.addRow({row.name,
                      formatFixed(row.speedup, 2) + "x",
                      formatFixed(row.paper_speedup, 2) + "x",
                      formatSi(row.transistors, 2),
                      formatSi(row.analytic_transistors, 2),
                      formatFixed(row.area_relative_to_core, 2) + "x",
                      formatFixed(row.tapeout_time.value(), 1),
                      formatDollars(row.tapeout_cost.value(), 1)});
    }
    std::cout << table.render() << "\n";
    std::cout
        << "Paper Table 3 reference: 16.71x/3.07x/56.36x/20.81x, "
           "T_tapeout 3.5/1.6/2.9/1.5 weeks, C_tapeout "
           "$6.8M/$4.6M/$6.1M/$4.6M.\n"
        << "Streaming blocks buy speed-up with extra tapeout time and "
           "cost — the Section 6.4 trade-off.\n\n";

    // Machine-readable CSV.
    Table csv({"name", "speedup", "paper_speedup", "ntt",
               "analytic_ntt", "area_rel", "tapeout_weeks",
               "tapeout_cost_usd"});
    for (const auto& row : results) {
        csv.addRow({row.name, formatFixed(row.speedup, 4),
                    formatFixed(row.paper_speedup, 4),
                    formatFixed(row.transistors, 0),
                    formatFixed(row.analytic_transistors, 0),
                    formatFixed(row.area_relative_to_core, 4),
                    formatFixed(row.tapeout_time.value(), 4),
                    formatFixed(row.tapeout_cost.value(), 0)});
    }
    emitCsv("table3_accelerators.csv", csv.renderCsv());
    return 0;
}
