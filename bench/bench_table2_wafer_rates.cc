/**
 * @file
 * Reproduces paper Table 2: estimated wafer production rates across
 * process nodes (kWafers/month), plus the derived weekly rates the
 * model actually consumes.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Table 2: Estimated Wafer Production Rates Across Process "
           "Nodes");

    const TechnologyDb db = defaultTechnologyDb();
    Table table({"Process Node", "kWafer/Month (paper)", "Wafers/Week",
                 "In Production"});
    table.setAlign(0, Align::Left);

    std::vector<std::string> nodes = paperNodes();
    nodes.insert(nodes.begin() + 7, "20nm"); // paper lists 20nm and 10nm
    nodes.insert(nodes.begin() + 9, "10nm");
    for (const std::string& name : nodes) {
        const ProcessNode& node = db.node(name);
        table.addRow({name, formatFixed(node.wafer_rate_kwpm, 0),
                      formatFixed(node.waferRate().value(), 0),
                      node.available() ? "yes" : "no"});
    }

    std::cout << table.render() << "\n";
    emitCsv("table2_wafer_rates.csv", table.renderCsv());
    return 0;
}
