/**
 * @file
 * Ablation: numerical and structural model choices.
 *
 *  1. CAS finite-difference step: Eq. 8's derivative should be
 *     step-size-insensitive over orders of magnitude.
 *  2. Wafer diameter: the paper uses 300mm-equivalent wafers but notes
 *     some legacy nodes still run 200mm — how much does that move
 *     legacy-node TTM?
 *  3. Tapeout scheduling: naive whole-team conversion (the paper's
 *     Eq. 2 / team-size division) versus the block-parallel critical
 *     path of TapeoutPlan.
 *  4. Dynamic capacity: a Renesas-style 8-week fab outage and a
 *     two-year fab ramp through the timeline model.
 */

#include "core/cas.hh"
#include "core/tapeout_plan.hh"
#include "core/timeline.hh"

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    const TechnologyDb db = defaultTechnologyDb();

    // --- 1. CAS derivative step sweep --------------------------------
    banner("Ablation 1: CAS finite-difference step size");
    {
        Table table({"rel. step", "CAS(A11@7nm, 10M)"});
        for (double step : {1e-1, 1e-2, 1e-3, 1e-4, 1e-5}) {
            CasModel::Options options;
            options.derivative_rel_step = step;
            const CasModel cas(TtmModel(db, a11ModelOptions()), options);
            table.addRow({formatFixed(step, 5),
                          formatFixed(cas.cas(designs::a11("7nm"), 10e6),
                                      2)});
        }
        std::cout << table.render()
                  << "(identical to ~4 digits: TTM is smooth in muW "
                     "away from max() kinks)\n\n";
    }

    // --- 2. Wafer diameter ------------------------------------------
    banner("Ablation 2: 200mm vs 300mm wafers at legacy nodes");
    {
        Table table({"Node", "TTM 300mm", "TTM 200mm", "delta"});
        table.setAlign(0, Align::Left);
        for (const char* node : {"250nm", "180nm", "130nm", "90nm"}) {
            TtmModel::Options small_wafer = a11ModelOptions();
            small_wafer.wafer = WaferGeometry(200.0);
            const double ttm300 = TtmModel(db, a11ModelOptions())
                                      .evaluate(designs::a11(node), 10e6)
                                      .total()
                                      .value();
            const double ttm200 = TtmModel(db, small_wafer)
                                      .evaluate(designs::a11(node), 10e6)
                                      .total()
                                      .value();
            table.addRow({node, formatFixed(ttm300, 1),
                          formatFixed(ttm200, 1),
                          "+" + formatFixed(ttm200 - ttm300, 1)});
        }
        std::cout << table.render()
                  << "(the paper's '200mm shortages may persist' "
                     "citation in numbers: same rate in wafers/week "
                     "on smaller wafers stretches legacy TTM hard)\n\n";
    }

    // --- 3. Tapeout scheduling --------------------------------------
    banner("Ablation 3: naive vs block-parallel tapeout conversion "
           "(A11 blocks)");
    {
        const TapeoutPlan plan = a11TapeoutPlan();
        Table table({"Node", "naive (wk)", "block-parallel (wk)",
                     "penalty"});
        table.setAlign(0, Align::Left);
        for (const char* node : {"28nm", "14nm", "7nm", "5nm"}) {
            const ProcessNode& process = db.node(node);
            table.addRow(
                {node,
                 formatFixed(plan.naiveCalendarWeeks(process, 100.0)
                                 .value(), 1),
                 formatFixed(plan.calendarWeeks(process, 100.0).value(),
                             1),
                 formatFixed(plan.parallelismPenalty(process, 100.0),
                             2) + "x"});
        }
        std::cout << table.render()
                  << "(the GPU block and the serialized top-level "
                     "integration set the critical path; the naive "
                     "conversion is the paper's optimistic bound)\n\n";
    }

    // --- 4. Dynamic capacity ----------------------------------------
    banner("Ablation 4: time-varying capacity (timeline model)");
    {
        const TimelineTtmModel model(TtmModel(db, a11ModelOptions()));
        const ChipDesign a11 = designs::a11("28nm");
        const double n = 50e6;

        const TimelineTtmResult calm =
            model.evaluate(a11, n, MarketTimeline{});
        const double start =
            calm.design_time.value() + calm.tapeout_time.value();

        MarketTimeline fire;
        fire.set("28nm", CapacityTimeline::outage(Weeks(start + 1.0),
                                                  Weeks(8.0)));
        const TimelineTtmResult after_fire = model.evaluate(a11, n, fire);

        MarketTimeline ramp;
        // A second line ramps from 30% to 100% over a year, starting
        // now; production begins degraded.
        ramp.set("28nm", CapacityTimeline::ramp(Weeks(0.0), Weeks(52.0),
                                                0.3, 6));
        const TimelineTtmResult during_ramp = model.evaluate(a11, n, ramp);

        Table table({"Scenario", "TTM (wk)"});
        table.setAlign(0, Align::Left);
        table.addRow({"calm market",
                      formatFixed(calm.total().value(), 1)});
        table.addRow({"8-week fab outage during production",
                      formatFixed(after_fire.total().value(), 1)});
        table.addRow({"production on a line ramping 30%->100% over 52wk",
                      formatFixed(during_ramp.total().value(), 1)});
        std::cout << table.render()
                  << "(a static capacity factor cannot express either "
                     "scenario: the outage costs its full duration, the "
                     "ramp costs the capacity deficit integrated over "
                     "the production window)\n\n";
    }
    return 0;
}
