/**
 * @file
 * Reproduces paper Table 1 (the model's parameter glossary) with the
 * library's live values: every Eq. 1-8 symbol, what it means, where it
 * lives in the API, and — for the per-node parameters — the full
 * default dataset, so one binary shows the exact numbers every other
 * bench runs on.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Table 1: chip creation process model parameters");

    Table glossary({"Parameter", "Meaning", "API"});
    glossary.setAlign(0, Align::Left)
        .setAlign(1, Align::Left)
        .setAlign(2, Align::Left);
    glossary.addRow({"N_TT", "total transistors per die",
                     "Die::total_transistors"});
    glossary.addRow({"N_UT", "unique/unverified transistors",
                     "Die::unique_transistors"});
    glossary.addRow({"E_tapeout", "tapeout engineering effort",
                     "ProcessNode::tapeout_effort_hours_per_transistor"});
    glossary.addRow({"N_W", "wafers for the order",
                     "TtmModel::waferDemand"});
    glossary.addRow({"muW", "foundry wafer production rate",
                     "ProcessNode::wafer_rate_kwpm"});
    glossary.addRow({"L_fab", "foundry fabrication latency",
                     "ProcessNode::foundry_latency"});
    glossary.addRow({"n", "number of final chips",
                     "TtmModel::evaluate(design, n, market)"});
    glossary.addRow({"Y", "die yield (Eq. 6)",
                     "YieldModel::dieYield"});
    glossary.addRow({"A_die", "die area", "Die::areaAt"});
    glossary.addRow({"N_die,package", "dies per final chip",
                     "Die::count_per_package"});
    glossary.addRow({"L_TAP", "test/assembly/packaging latency",
                     "ProcessNode::osat_latency"});
    glossary.addRow({"E_testing", "testing engineering effort",
                     "ProcessNode::testing_effort_weeks_per_e15"});
    glossary.addRow({"E_packaging", "packaging engineering effort",
                     "ProcessNode::packaging_effort_weeks_per_e9_mm2"});
    std::cout << glossary.render() << "\n";

    // The live per-node dataset behind every experiment.
    const TechnologyDb db = defaultTechnologyDb();
    Table dataset({"Node", "MTr/mm2", "D0 /mm2", "kW/mo", "Lfab",
                   "E_tape h/Tr", "E_test", "E_pkg", "wafer $",
                   "mask $", "fixed $"});
    dataset.setAlign(0, Align::Left);
    for (const ProcessNode& node : db.nodes()) {
        dataset.addRow({node.name,
                        formatFixed(node.density_mtr_per_mm2, 2),
                        formatFixed(node.defect_density_per_mm2, 5),
                        formatFixed(node.wafer_rate_kwpm, 0),
                        formatFixed(node.foundry_latency.value(), 0),
                        formatFixed(
                            node.tapeout_effort_hours_per_transistor *
                                1e6, 2) + "e-6",
                        formatFixed(node.testing_effort_weeks_per_e15, 4),
                        formatFixed(
                            node.packaging_effort_weeks_per_e9_mm2, 3),
                        formatDollars(node.wafer_cost.value(), 0),
                        formatDollars(node.mask_set_cost.value(), 1),
                        formatDollars(node.tapeout_fixed_cost.value(),
                                      2)});
    }
    std::cout << dataset.render() << "\n";
    std::cout << "Derivations per column: src/tech/default_dataset.cc; "
                 "swap the whole table via tech/dataset_io CSV.\n\n";

    emitCsv("table1_dataset.csv", dataset.renderCsv());
    return 0;
}
