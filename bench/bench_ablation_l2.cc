/**
 * @file
 * Ablation: what happens to the Section 6.1 cache study when the core
 * gets a shared L2 (the Ariane silicon the paper models is L1-only)?
 *
 * For each L1 capacity pair, a 16x-L1-sized shared L2 is simulated on
 * the same workloads; the L2 absorbs most L1 misses, so the IPC gap
 * between small and large L1s compresses — pushing the IPC/TTM
 * optimum toward *smaller*, cheaper L1s. This is the design insight
 * the hierarchy substrate adds on top of the paper: an L2 is a
 * supply-chain hedge that lets the performance-critical L1s shrink.
 */

#include "sim/cache_hierarchy.hh"
#include "sim/ipc_model.hh"

#include "bench_common.hh"
#include "cache_study_common.hh"

namespace {

using namespace ttmcas;
using namespace ttmcas::bench;

CacheConfig
config(std::uint64_t size)
{
    CacheConfig c;
    c.size_bytes = size;
    c.line_bytes = 64;
    c.associativity = 4;
    return c;
}

} // namespace

int
main()
{
    banner("Ablation: adding a shared L2 to the cache-sizing study");

    const auto suite = defaultWorkloadSuite();
    const std::vector<std::uint64_t> l1_sizes{
        1024, 4 * 1024, 16 * 1024, 64 * 1024};
    constexpr std::size_t kAccesses = 150'000;

    Table table({"L1 I$/D$", "L1-only IPC", "w/ L2 IPC", "L1 miss",
                 "to-memory w/ L2"});
    table.setAlign(0, Align::Left);

    const TwoLevelIpcModel two_level;
    IpcModel one_level;
    one_level.base_cpi = two_level.base_cpi;
    one_level.memory_ref_fraction = two_level.memory_ref_fraction;
    one_level.miss_penalty_cycles = two_level.memory_penalty;

    double l1_only_range[2] = {1.0, 0.0};
    double with_l2_range[2] = {1.0, 0.0};
    for (std::uint64_t l1 : l1_sizes) {
        // Average over the suite.
        double ipc_one = 0.0, ipc_two = 0.0;
        double miss_l1 = 0.0, to_memory = 0.0;
        for (const auto& workload : suite) {
            CacheHierarchy hierarchy(config(l1), config(l1),
                                     config(16 * l1));
            const auto [istats, dstats] =
                hierarchy.run(workload, kAccesses);
            ipc_two += two_level.ipc(istats, dstats);
            // L1-only: every L1 miss pays the memory penalty.
            ipc_one += one_level.ipc(istats.l1MissRate(),
                                     dstats.l1MissRate());
            miss_l1 += dstats.l1MissRate();
            to_memory += dstats.memoryRate();
        }
        const auto n = static_cast<double>(suite.size());
        ipc_one /= n;
        ipc_two /= n;
        table.addRow({cacheSizeLabel(l1) + " each",
                      formatFixed(ipc_one, 3), formatFixed(ipc_two, 3),
                      formatFixed(miss_l1 / n, 3),
                      formatFixed(to_memory / n, 3)});
        l1_only_range[0] = std::min(l1_only_range[0], ipc_one);
        l1_only_range[1] = std::max(l1_only_range[1], ipc_one);
        with_l2_range[0] = std::min(with_l2_range[0], ipc_two);
        with_l2_range[1] = std::max(with_l2_range[1], ipc_two);
    }
    std::cout << table.render() << "\n";

    const double l1_spread = l1_only_range[1] / l1_only_range[0];
    const double l2_spread = with_l2_range[1] / with_l2_range[0];
    std::cout << "IPC spread across the L1 sweep: "
              << formatFixed(l1_spread, 2) << "x without an L2 vs "
              << formatFixed(l2_spread, 2)
              << "x with one.\n"
              << "A shared L2 compresses the L1-capacity payoff, so "
                 "the IPC/TTM-optimal L1s shrink — less die area, "
                 "fewer wafers, faster and more agile chips.\n\n";

    emitCsv("ablation_l2.csv", table.renderCsv());
    return 0;
}
