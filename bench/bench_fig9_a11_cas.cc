/**
 * @file
 * Reproduces paper Figure 9: CAS versus % of max production rate for
 * 10 million A11 chips on the five most advanced in-production nodes
 * (40, 28, 14, 7, 5nm), with 95% CI bands under +/-10% and +/-25%
 * input variance. Expected: 7nm highest, then 14nm, 5nm, 28nm, 40nm.
 */

#include "core/cas.hh"
#include "report/ascii_plot.hh"
#include "core/uncertainty.hh"

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 9: CAS for 10M A11 chips vs % of max production "
           "rate");

    const double n = 10e6;
    const TechnologyDb db = defaultTechnologyDb();
    const CasModel cas(TtmModel(db, a11ModelOptions()));
    const UncertaintyAnalysis analysis(db, a11ModelOptions());

    const std::vector<std::string> nodes{"40nm", "28nm", "14nm", "7nm",
                                         "5nm"};
    std::vector<double> fractions;
    for (int percent = 10; percent <= 100; percent += 10)
        fractions.push_back(percent / 100.0);

    FigureData figure("Fig. 9: A11 CAS vs production capacity",
                      "capacity_pct", "cas");
    Table table({"% Capacity", "40nm", "28nm", "14nm", "7nm", "5nm"});

    std::vector<std::vector<double>> columns(nodes.size());
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        const ChipDesign a11 = designs::a11(nodes[ni]);
        const auto sweep = cas.capacitySweep(a11, n, fractions);
        for (const auto& point : sweep)
            columns[ni].push_back(point.cas);

        // CI bands at full capacity (cheap but faithful: the paper
        // shades the whole curve; we record bands at each decile).
        for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
            MarketConditions market;
            market.setCapacityFactor(nodes[ni], fractions[fi]);
            UncertaintyAnalysis::Options mc10;
            mc10.band = 0.10;
            mc10.samples = 96;
            UncertaintyAnalysis::Options mc25 = mc10;
            mc25.band = 0.25;
            const Summary s10 =
                analysis.casSummary(a11, n, market, mc10);
            const Summary s25 =
                analysis.casSummary(a11, n, market, mc25);
            SeriesPoint point;
            point.x = fractions[fi] * 100.0;
            point.y = columns[ni][fi];
            point.band10_lo = s10.percentileInterval(0.95).lo;
            point.band10_hi = s10.percentileInterval(0.95).hi;
            point.band25_lo = s25.percentileInterval(0.95).lo;
            point.band25_hi = s25.percentileInterval(0.95).hi;
            figure.series(nodes[ni]).points.push_back(point);
        }
    }

    for (std::size_t fi = 0; fi < fractions.size(); ++fi) {
        std::vector<std::string> row{
            formatFixed(fractions[fi] * 100.0, 0)};
        for (std::size_t ni = 0; ni < nodes.size(); ++ni)
            row.push_back(formatFixed(columns[ni][fi], 1));
        table.addRow(row);
    }
    std::cout << table.render() << "\n";
    std::cout << AsciiPlot().render(figure) << "\n";

    std::cout << "Full-capacity CAS: 7nm "
              << formatFixed(columns[3].back(), 0) << " > 14nm "
              << formatFixed(columns[2].back(), 0) << " > 5nm "
              << formatFixed(columns[4].back(), 0) << " > 28nm "
              << formatFixed(columns[1].back(), 0) << " > 40nm "
              << formatFixed(columns[0].back(), 0)
              << "  (paper ordering: 7 > 14 > 5 > 28 > 40, peak ~175)"
              << "\n\n";

    emitCsv("fig9_a11_cas.csv", figure.renderCsv());
    return 0;
}
