/**
 * @file
 * Ensemble microbench: wall-clock per scenario path of the disruption
 * ensemble (core/ensemble.hh) at N = 16 / 64 / 256 paths, serial vs
 * 8 threads, split into the sampling-only cost (Markov chain + Hawkes
 * cascade + phase composition) and the full evaluate cost (timeline
 * TTM + CAS per path + per-regime reduction). Verifies the serial and
 * 8-thread EnsembleResults agree bitwise at every size while timing
 * them — the bench doubles as a determinism check and exits non-zero
 * on any mismatch. Writes bench_out/BENCH_ensemble.json for the CI
 * artifact trail.
 */

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hh"
#include "core/ensemble.hh"
#include "core/reference_designs.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

/** Best-of-3 wall-clock milliseconds of @p kernel. */
template <typename Kernel>
double
timeMs(Kernel&& kernel)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        kernel();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        if (rep == 0 || ms < best)
            best = ms;
    }
    return best;
}

EnsembleOptions
ensembleOptions(std::size_t paths, std::size_t threads)
{
    EnsembleOptions options;
    options.paths = paths;
    options.seed = 20230806;
    options.parallel =
        threads <= 1 ? ParallelConfig::serial() : ParallelConfig{threads, 4};
    return options;
}

struct SizeRow
{
    std::size_t paths = 0;
    double sample_us_per_path = 0.0;
    double serial_us_per_path = 0.0;
    double threads8_us_per_path = 0.0;
    bool bitwise_identical = false;

    double speedup() const
    {
        return serial_us_per_path / threads8_us_per_path;
    }
};

} // namespace

int
main()
{
    bench::banner("Disruption ensemble: sampling and evaluation cost");

    const TechnologyDb db = defaultTechnologyDb();
    const EnsembleRunner runner(db, bench::a11ModelOptions());
    const ChipDesign a11 = designs::a11("7nm");
    const double n_chips = 10e6;
    const EnsembleSpec spec = EnsembleSpec::defaultsFor({"7nm"});
    const std::vector<std::size_t> sizes{16, 64, 256};

    std::vector<SizeRow> rows;
    std::cout << "  paths    sample us/path    serial us/path"
                 "    8-thread us/path    speedup\n";
    for (const std::size_t n : sizes) {
        SizeRow row;
        row.paths = n;

        // Warm-up runs also provide the identity check.
        const EnsembleResult serial = runner.run(
            a11, n_chips, {}, spec, ensembleOptions(n, 1));
        const EnsembleResult parallel = runner.run(
            a11, n_chips, {}, spec, ensembleOptions(n, 8));
        row.bitwise_identical = serial == parallel;

        const double sample_ms = timeMs([&] {
            for (std::size_t k = 0; k < n; ++k)
                sampleScenarioPath(spec, 20230806, k);
        });
        const double serial_ms = timeMs([&] {
            runner.run(a11, n_chips, {}, spec, ensembleOptions(n, 1));
        });
        const double threads8_ms = timeMs([&] {
            runner.run(a11, n_chips, {}, spec, ensembleOptions(n, 8));
        });
        row.sample_us_per_path =
            sample_ms * 1e3 / static_cast<double>(n);
        row.serial_us_per_path =
            serial_ms * 1e3 / static_cast<double>(n);
        row.threads8_us_per_path =
            threads8_ms * 1e3 / static_cast<double>(n);
        rows.push_back(row);

        std::printf("%7zu %17.1f %17.1f %19.1f %9.2fx%s\n", n,
                    row.sample_us_per_path, row.serial_us_per_path,
                    row.threads8_us_per_path, row.speedup(),
                    row.bitwise_identical ? "" : "  [MISMATCH]");
    }

    std::ostringstream json;
    json << "{\n  \"design\": \"a11-7nm\",\n"
         << "  \"kernel\": \"EnsembleRunner::run\",\n  \"sizes\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SizeRow& row = rows[i];
        json << "    {\"paths\": " << row.paths
             << ", \"sample_us_per_path\": " << row.sample_us_per_path
             << ", \"serial_us_per_path\": " << row.serial_us_per_path
             << ", \"threads8_us_per_path\": " << row.threads8_us_per_path
             << ", \"speedup\": " << row.speedup()
             << ", \"bitwise_identical\": "
             << (row.bitwise_identical ? "true" : "false") << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}";
    bench::emitBenchJson("BENCH_ensemble.json", json.str());

    // Fail loudly (a CI-visible exit code) if determinism broke.
    for (const SizeRow& row : rows) {
        if (!row.bitwise_identical) {
            std::cerr << "serial/8-thread mismatch at paths=" << row.paths
                      << "\n";
            return 1;
        }
    }
    return 0;
}
