/**
 * @file
 * Reproduces paper Figure 13: (a) time-to-market and (b) chip creation
 * cost versus final-chip volume, and (c) CAS versus % of max
 * production capacity, for the eight Zen 2 chiplet/monolithic/
 * interposer configurations. Also reproduces the Section 6.5 what-if:
 * moving the interposer from 65nm to 40nm.
 */

#include "core/cas.hh"
#include "econ/cost_model.hh"

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 13: Zen 2 chiplet / mixed-process study");

    const TechnologyDb db = defaultTechnologyDb();
    const TtmModel model(db, zen2ModelOptions());
    const CasModel cas(model);
    const CostModel costs(db);

    const auto configs = designs::allZen2Configs();

    // (a) TTM and (b) cost vs number of final chips.
    const std::vector<double> volumes{10e6, 25e6, 50e6, 75e6, 100e6};
    FigureData ttm_figure("Fig. 13a: TTM vs final chips",
                          "chips_millions", "ttm_weeks");
    FigureData cost_figure("Fig. 13b: cost vs final chips",
                           "chips_millions", "cost_billions");
    Table summary({"Configuration", "TTM@50M", "Cost@50M ($B)",
                   "CAS@full", "CAS@50% cap"});
    summary.setAlign(0, Align::Left);

    // (c) CAS vs capacity fraction.
    FigureData cas_figure("Fig. 13c: CAS vs production capacity",
                          "capacity_pct", "cas");
    std::vector<double> fractions;
    for (int percent = 20; percent <= 100; percent += 10)
        fractions.push_back(percent / 100.0);

    for (const auto config : configs) {
        const ChipDesign design = designs::zen2(config);
        const std::string name = designs::zen2ConfigName(config);

        for (double n : volumes) {
            ttm_figure.series(name).points.push_back(
                {n / 1e6, model.evaluate(design, n).total().value(),
                 {}, {}, {}, {}});
            cost_figure.series(name).points.push_back(
                {n / 1e6, costs.evaluate(design, n).total().value() / 1e9,
                 {}, {}, {}, {}});
        }

        const auto cas_sweep = cas.capacitySweep(design, 50e6, fractions);
        for (const auto& point : cas_sweep) {
            cas_figure.series(name).points.push_back(
                {point.capacity_fraction * 100.0, point.cas,
                 {}, {}, {}, {}});
        }

        MarketConditions half;
        for (const std::string& node : design.processNodes())
            half.setCapacityFactor(node, 0.5);
        summary.addRow(
            {name,
             formatFixed(model.evaluate(design, 50e6).total().value(), 1),
             formatFixed(costs.evaluate(design, 50e6).total().value() /
                             1e9, 2),
             formatFixed(cas.cas(design, 50e6), 1),
             formatFixed(cas.cas(design, 50e6, half), 1)});
    }

    std::cout << summary.render() << "\n";
    std::cout << ttm_figure.renderText(1) << "\n";

    // Section 6.5 what-if: interposer on 40nm instead of 65nm.
    const ChipDesign on_65 = designs::zen2(
        designs::Zen2Config::OriginalWithInterposer, "65nm");
    const ChipDesign on_40 = designs::zen2(
        designs::Zen2Config::OriginalWithInterposer, "40nm");
    const double n_what_if = 100e6;
    const double ttm_65 =
        model.evaluate(on_65, n_what_if).total().value();
    const double ttm_40 =
        model.evaluate(on_40, n_what_if).total().value();
    const double cas_65 = cas.cas(on_65, n_what_if);
    const double cas_40 = cas.cas(on_40, n_what_if);
    const double cost_65 =
        costs.evaluate(on_65, n_what_if).total().value();
    const double cost_40 =
        costs.evaluate(on_40, n_what_if).total().value();
    std::cout << "Interposer node what-if at 100M chips: 65nm -> 40nm "
                 "cuts TTM "
              << formatFixed(ttm_65, 1) << " -> " << formatFixed(ttm_40, 1)
              << " weeks (paper: 51 -> 45), raises max CAS by "
              << formatFixed(100.0 * (cas_40 / cas_65 - 1.0), 0)
              << "% (paper: +126%), costs "
              << formatDollars(cost_40 - cost_65, 0)
              << " more (paper: +$77M).\n\n";

    emitCsv("fig13a_ttm.csv", ttm_figure.renderCsv());
    emitCsv("fig13b_cost.csv", cost_figure.renderCsv());
    emitCsv("fig13c_cas.csv", cas_figure.renderCsv());
    return 0;
}
