/**
 * @file
 * Kernel microbench: ns/sample of the Monte-Carlo TTM kernel through
 * the legacy scalar path (EvalPath::kScalar — per-sample design copy,
 * technology rescale, and TtmModel rebuild) versus the compiled SoA
 * batch path (EvalPath::kBatch — precomputed node constants, Eq. 1-7
 * over contiguous lanes, zero per-sample allocation), at batch sizes
 * 1 / 64 / 4096 / 65536. Verifies the two paths agree bitwise at every
 * size while timing them, and writes bench_out/BENCH_ttm_kernel.json
 * (with the ttm.batch.* metrics block) for the CI artifact trail.
 * docs/PERFORMANCE.md explains how to read the output.
 */

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hh"
#include "core/reference_designs.hh"
#include "core/uncertainty.hh"
#include "support/metrics.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

/** Best-of-3 wall-clock milliseconds of @p kernel. */
template <typename Kernel>
double
timeMs(Kernel&& kernel)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        kernel();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        if (rep == 0 || ms < best)
            best = ms;
    }
    return best;
}

UncertaintyAnalysis::Options
mcOptions(std::size_t samples, EvalPath path)
{
    UncertaintyAnalysis::Options options;
    options.samples = samples;
    options.seed = 20230806;
    options.parallel.threads = 1; // single-core ns/sample, no pool noise
    options.eval_path = path;
    return options;
}

struct SizeRow
{
    std::size_t samples = 0;
    double scalar_ns_per_sample = 0.0;
    double batch_ns_per_sample = 0.0;
    bool bitwise_identical = false;

    double speedup() const
    {
        return scalar_ns_per_sample / batch_ns_per_sample;
    }
    static double perSecond(double ns_per_sample)
    {
        return 1e9 / ns_per_sample;
    }
};

} // namespace

int
main()
{
    bench::banner("TTM kernel: scalar vs compiled SoA batch path");

    // Metrics on, so the emitted JSON carries the ttm.batch.size /
    // ttm.batch.ns_per_sample histograms next to the timings.
    obs::setMetricsEnabled(true);

    const UncertaintyAnalysis analysis(defaultTechnologyDb(),
                                       bench::a11ModelOptions());
    const ChipDesign a11 = designs::a11("7nm");
    const double n_chips = 10e6;
    const std::vector<std::size_t> sizes{1, 64, 4096, 65536};

    std::vector<SizeRow> rows;
    std::cout << "      N    scalar ns/sample    batch ns/sample"
                 "    speedup    batch samples/s\n";
    for (const std::size_t n : sizes) {
        SizeRow row;
        row.samples = n;
        const auto scalar_options = mcOptions(n, EvalPath::kScalar);
        const auto batch_options = mcOptions(n, EvalPath::kBatch);
        // Warm-up draw also provides the identity check.
        const auto scalar =
            analysis.sampleTtm(a11, n_chips, {}, scalar_options);
        const auto batch =
            analysis.sampleTtm(a11, n_chips, {}, batch_options);
        row.bitwise_identical = scalar == batch;

        const double scalar_ms = timeMs([&] {
            analysis.sampleTtm(a11, n_chips, {}, scalar_options);
        });
        const double batch_ms = timeMs([&] {
            analysis.sampleTtm(a11, n_chips, {}, batch_options);
        });
        row.scalar_ns_per_sample =
            scalar_ms * 1e6 / static_cast<double>(n);
        row.batch_ns_per_sample =
            batch_ms * 1e6 / static_cast<double>(n);
        rows.push_back(row);

        std::printf("%7zu %19.1f %18.1f %9.2fx %18.0f%s\n", n,
                    row.scalar_ns_per_sample, row.batch_ns_per_sample,
                    row.speedup(),
                    SizeRow::perSecond(row.batch_ns_per_sample),
                    row.bitwise_identical ? "" : "  [MISMATCH]");
    }

    std::ostringstream json;
    json << "{\n  \"design\": \"a11-7nm\",\n  \"kernel\": \"sampleTtm\""
         << ",\n  \"threads\": 1,\n  \"sizes\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SizeRow& row = rows[i];
        json << "    {\"samples\": " << row.samples
             << ", \"scalar_ns_per_sample\": " << row.scalar_ns_per_sample
             << ", \"batch_ns_per_sample\": " << row.batch_ns_per_sample
             << ", \"speedup\": " << row.speedup()
             << ", \"batch_samples_per_sec\": "
             << SizeRow::perSecond(row.batch_ns_per_sample)
             << ", \"bitwise_identical\": "
             << (row.bitwise_identical ? "true" : "false") << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}";
    bench::emitBenchJson("BENCH_ttm_kernel.json", json.str());
    obs::setMetricsEnabled(false);

    // Fail loudly (a CI-visible exit code) if identity broke.
    for (const SizeRow& row : rows) {
        if (!row.bitwise_identical) {
            std::cerr << "batch/scalar mismatch at N=" << row.samples
                      << "\n";
            return 1;
        }
    }
    return 0;
}
