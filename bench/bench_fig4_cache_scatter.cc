/**
 * @file
 * Reproduces paper Figure 4: IPC versus time-to-market for every
 * (I$, D$) capacity pair from 1KB to 1MB, manufacturing 100M 16-core
 * Ariane chips at 14nm. Miss rates come from the synthetic workload
 * suite run through the cache simulator (the SPEC2000 substitution;
 * see DESIGN.md).
 */

#include "bench_common.hh"
#include "cache_study_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 4: IPC vs TTM for (I$, D$) capacity, 100M 16-core "
           "Ariane chips at 14nm");

    const CacheSweep sweep = makeCacheSweep();
    CacheSweepOptions options;
    options.process = "14nm";
    options.n_chips = 100e6;
    const auto points = sweep.sweep(options);

    Table table({"I$", "D$", "IPC", "TTM (weeks)"});
    table.setAlign(0, Align::Left).setAlign(1, Align::Left);
    FigureData figure("Fig. 4: IPC vs TTM scatter", "ipc", "ttm_weeks");

    double min_ipc = 1.0, max_ipc = 0.0;
    double min_ttm = 1e9, max_ttm = 0.0;
    for (const auto& point : points) {
        table.addRow({cacheSizeLabel(point.icache_bytes),
                      cacheSizeLabel(point.dcache_bytes),
                      formatFixed(point.ipc, 3),
                      formatFixed(point.ttm.value(), 2)});
        figure
            .series("i" + cacheSizeLabel(point.icache_bytes))
            .points.push_back(
                {point.ipc, point.ttm.value(), {}, {}, {}, {}});
        min_ipc = std::min(min_ipc, point.ipc);
        max_ipc = std::max(max_ipc, point.ipc);
        min_ttm = std::min(min_ttm, point.ttm.value());
        max_ttm = std::max(max_ttm, point.ttm.value());
    }

    std::cout << table.render() << "\n";
    std::cout << "IPC range: " << formatFixed(min_ipc, 3) << " - "
              << formatFixed(max_ipc, 3)
              << "  (paper: ~0.12 - 0.26)\n";
    std::cout << "TTM range: " << formatFixed(min_ttm, 1) << " - "
              << formatFixed(max_ttm, 1)
              << " weeks  (paper: ~24 - 32)\n\n";

    emitCsv("fig4_cache_scatter.csv", figure.renderCsv());
    return 0;
}
