/**
 * @file
 * Ablation: how sensitive are the paper's conclusions to the yield
 * model? Eq. 6 uses negative binomial with alpha = 3; this bench swaps
 * in Poisson (no clustering), Seeds (heavy clustering), Murphy, and
 * other alpha values, and checks whether the A11 node ranking and the
 * chiplet-vs-monolithic conclusions survive.
 */

#include <memory>

#include "core/cas.hh"

#include "bench_common.hh"

namespace {

using namespace ttmcas;
using namespace ttmcas::bench;

TtmModel
modelWith(std::shared_ptr<const YieldModel> yield)
{
    TtmModel::Options options = a11ModelOptions();
    options.yield = std::move(yield);
    return TtmModel(defaultTechnologyDb(), options);
}

} // namespace

int
main()
{
    banner("Ablation: yield model choice (paper: negative binomial, "
           "alpha = 3)");

    const std::vector<
        std::pair<std::string, std::shared_ptr<const YieldModel>>>
        models{
            {"neg-binomial a=1", std::make_shared<NegativeBinomialYield>(1.0)},
            {"neg-binomial a=3", std::make_shared<NegativeBinomialYield>(3.0)},
            {"neg-binomial a=10", std::make_shared<NegativeBinomialYield>(10.0)},
            {"poisson", std::make_shared<PoissonYield>()},
            {"murphy", std::make_shared<MurphyYield>()},
            {"seeds", std::make_shared<SeedsYield>()},
        };

    // A11 at 10M chips: TTM per node under each yield model.
    Table table({"Yield model", "250nm", "90nm", "28nm", "14nm", "7nm",
                 "fastest"});
    table.setAlign(0, Align::Left).setAlign(6, Align::Left);
    for (const auto& [name, yield] : models) {
        const TtmModel model = modelWith(yield);
        std::vector<std::string> row{name};
        std::string fastest;
        double fastest_ttm = 0.0;
        for (const std::string& node : paperNodes()) {
            const double ttm =
                model.evaluate(designs::a11(node), 10e6).total().value();
            if (fastest.empty() || ttm < fastest_ttm) {
                fastest = node;
                fastest_ttm = ttm;
            }
        }
        for (const char* node : {"250nm", "90nm", "28nm", "14nm", "7nm"}) {
            row.push_back(formatFixed(
                modelWith(yield)
                    .evaluate(designs::a11(node), 10e6)
                    .total()
                    .value(),
                1));
        }
        row.push_back(fastest);
        table.addRow(row);
    }
    std::cout << table.render() << "\n";

    // Chiplet-vs-monolithic conclusion under each model.
    Table zen({"Yield model", "chiplet TTM", "mono TTM",
               "chiplet CAS", "mono CAS", "chiplets win?"});
    zen.setAlign(0, Align::Left).setAlign(5, Align::Left);
    for (const auto& [name, yield] : models) {
        TtmModel::Options options = zen2ModelOptions();
        options.yield = yield;
        const TtmModel model(defaultTechnologyDb(), options);
        const CasModel cas(model);
        const ChipDesign chiplet =
            designs::zen2(designs::Zen2Config::Chiplet7nm);
        const ChipDesign mono =
            designs::zen2(designs::Zen2Config::Monolithic7nm);
        const double chiplet_ttm =
            model.evaluate(chiplet, 50e6).total().value();
        const double mono_ttm =
            model.evaluate(mono, 50e6).total().value();
        const double chiplet_cas = cas.cas(chiplet, 50e6);
        const double mono_cas = cas.cas(mono, 50e6);
        zen.addRow({name, formatFixed(chiplet_ttm, 1),
                    formatFixed(mono_ttm, 1),
                    formatFixed(chiplet_cas, 1),
                    formatFixed(mono_cas, 1),
                    (chiplet_ttm < mono_ttm && chiplet_cas > mono_cas)
                        ? "yes"
                        : "NO"});
    }
    std::cout << zen.render() << "\n";
    std::cout << "Expected: the fastest node and the chiplets-beat-"
                 "monolithic conclusion are invariant across yield "
                 "models; only legacy-node absolute TTM moves (big "
                 "dies are where clustering assumptions matter).\n\n";

    emitCsv("ablation_yield.csv", table.renderCsv());
    return 0;
}
