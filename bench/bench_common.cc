#include "bench_common.hh"

namespace ttmcas::bench {

void
banner(const std::string& title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

void
emitCsv(const std::string& name, const std::string& content)
{
    const std::string path = std::string(kOutputDir) + "/" + name;
    writeFile(path, content);
    std::cout << "[csv] " << path << "\n";
}

const std::vector<std::string>&
paperNodes()
{
    static const std::vector<std::string> nodes{
        "250nm", "180nm", "130nm", "90nm", "65nm",
        "40nm",  "28nm",  "14nm",  "7nm",  "5nm"};
    return nodes;
}

TtmModel::Options
a11ModelOptions()
{
    TtmModel::Options options;
    options.tapeout_engineers = kA11TapeoutEngineers;
    return options;
}

TtmModel::Options
zen2ModelOptions()
{
    TtmModel::Options options;
    options.tapeout_engineers = kZen2TapeoutEngineers;
    return options;
}

} // namespace ttmcas::bench
