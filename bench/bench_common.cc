#include "bench_common.hh"

#include "support/error.hh"
#include "support/json.hh"
#include "support/metrics.hh"

namespace ttmcas::bench {

void
banner(const std::string& title)
{
    std::cout << "\n=== " << title << " ===\n\n";
}

void
emitCsv(const std::string& name, const std::string& content)
{
    const std::string path = std::string(kOutputDir) + "/" + name;
    writeFile(path, content);
    std::cout << "[csv] " << path << "\n";
}

void
emitBenchJson(const std::string& name, const std::string& json_object)
{
    TTMCAS_REQUIRE(!json_object.empty() && json_object.front() == '{' &&
                       json_object.back() == '}',
                   "emitBenchJson needs a JSON object");
    std::string content = json_object;
    const obs::MetricsSnapshot snapshot = obs::snapshotMetrics();
    if (!snapshot.counters.empty() || !snapshot.gauges.empty() ||
        !snapshot.histograms.empty()) {
        // Splice "metrics": {...} in front of the closing brace.
        const bool empty_object =
            content.find_first_not_of(" \t\r\n", 1) == content.size() - 1;
        std::string tail = empty_object ? "" : ",";
        tail += "\"metrics\":" + snapshot.toJson() + "}";
        content.replace(content.size() - 1, 1, tail);
    }
    parseJson(content); // fail loudly on malformed output
    const std::string path = std::string(kOutputDir) + "/" + name;
    writeFile(path, content);
    std::cout << "[json] " << path << "\n";
}

const std::vector<std::string>&
paperNodes()
{
    static const std::vector<std::string> nodes{
        "250nm", "180nm", "130nm", "90nm", "65nm",
        "40nm",  "28nm",  "14nm",  "7nm",  "5nm"};
    return nodes;
}

TtmModel::Options
a11ModelOptions()
{
    TtmModel::Options options;
    options.tapeout_engineers = kA11TapeoutEngineers;
    return options;
}

TtmModel::Options
zen2ModelOptions()
{
    TtmModel::Options options;
    options.tapeout_engineers = kZen2TapeoutEngineers;
    return options;
}

} // namespace ttmcas::bench
