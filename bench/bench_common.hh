#ifndef TTMCAS_BENCH_BENCH_COMMON_HH
#define TTMCAS_BENCH_BENCH_COMMON_HH

/**
 * @file
 * Shared plumbing for the table/figure reproduction binaries.
 *
 * Every bench prints its reproduction to stdout (formatted like the
 * paper's table/figure) and mirrors the data into bench_out/<name>.csv
 * so external plotting tools can regenerate the figures.
 */

#include <iostream>
#include <string>

#include "core/reference_designs.hh"
#include "core/ttm_model.hh"
#include "report/matrix.hh"
#include "report/series.hh"
#include "report/table.hh"
#include "support/strutil.hh"
#include "tech/default_dataset.hh"

namespace ttmcas::bench {

/** Directory all bench CSV outputs land in. */
inline constexpr const char* kOutputDir = "bench_out";

/** Print a bench banner. */
void banner(const std::string& title);

/** Write CSV content under bench_out/ and announce the path. */
void emitCsv(const std::string& name, const std::string& content);

/**
 * Write a JSON object under bench_out/ and announce the path. When the
 * metrics registry holds any data (see support/metrics.hh), a
 * "metrics" block with the merged snapshot is spliced into the
 * top-level object so BENCH_*.json files carry the run's counters and
 * latency histograms alongside the benchmark figures. The result is
 * re-parsed before writing, so malformed JSON fails loudly instead of
 * landing in bench_out/.
 *
 * @param name file name under bench_out/ (e.g. "BENCH_parallel.json")
 * @param json_object a complete JSON object ("{...}")
 */
void emitBenchJson(const std::string& name,
                   const std::string& json_object);

/** The ten process nodes of the paper's figures, coarsest first. */
const std::vector<std::string>& paperNodes();

/** TtmModel options for the A11-style studies (100 engineers). */
TtmModel::Options a11ModelOptions();

/** TtmModel options for the Zen 2 study (150 engineers, Table 4). */
TtmModel::Options zen2ModelOptions();

} // namespace ttmcas::bench

#endif // TTMCAS_BENCH_BENCH_COMMON_HH
