#include "cache_study_common.hh"

#include "sim/ipc_model.hh"
#include "sim/workloads.hh"
#include "support/strutil.hh"
#include "tech/default_dataset.hh"

namespace ttmcas::bench {

MissCurveOptions
cacheStudyCurveOptions()
{
    MissCurveOptions options;
    options.warmup_accesses = 100'000;
    options.measured_accesses = 300'000;
    return options;
}

CacheSweep
makeCacheSweep()
{
    const auto suite = defaultWorkloadSuite();
    const auto [instruction_curve, data_curve] =
        averageMissCurves(suite, cacheStudyCurveOptions());
    return CacheSweep(defaultTechnologyDb(), instruction_curve,
                      data_curve, IpcModel{});
}

std::string
cacheSizeLabel(std::uint64_t bytes)
{
    if (bytes >= 1024 * 1024)
        return formatFixed(static_cast<double>(bytes) / (1024 * 1024), 0) +
               "MB";
    return formatFixed(static_cast<double>(bytes) / 1024, 0) + "KB";
}

} // namespace ttmcas::bench
