/**
 * @file
 * Reproduces paper Figure 6: the IPC/TTM-optimal (I$, D$) configuration
 * for each (process node, number of final chips) cell, with the cache
 * area share of the die as the color axis. Expected shapes: finer
 * nodes afford bigger caches; higher volumes push toward smaller
 * caches; D$ generally >= I$ except for mass production on legacy
 * nodes.
 */

#include "bench_common.hh"
#include "cache_study_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 6: IPC/TTM-optimal (I$/D$) per node and volume");

    const CacheSweep sweep = makeCacheSweep();
    const std::vector<double> volumes{1e3, 1e4, 1e5, 1e6, 1e7, 1e8};
    const std::vector<std::string> volume_labels{"1K",  "10K", "100K",
                                                 "1M",  "10M", "100M"};

    // One matrix per displayed quantity: the optimal I$ and D$ in KB,
    // plus the cache-area fraction (the paper's color bar).
    std::vector<std::string> row_labels(volume_labels.rbegin(),
                                        volume_labels.rend());
    LabeledMatrix icache("Optimal I$ (KB)", row_labels, paperNodes());
    LabeledMatrix dcache("Optimal D$ (KB)", row_labels, paperNodes());
    LabeledMatrix area_frac("Cache area fraction of die", row_labels,
                            paperNodes());

    for (std::size_t col = 0; col < paperNodes().size(); ++col) {
        const std::string& node = paperNodes()[col];
        for (std::size_t vi = 0; vi < volumes.size(); ++vi) {
            CacheSweepOptions options;
            options.process = node;
            options.n_chips = volumes[vi];
            const auto points = sweep.sweep(options);
            const auto& best = CacheSweep::bestByIpcPerTtm(points);
            const std::size_t row = volumes.size() - 1 - vi;
            icache.set(row, col,
                       static_cast<double>(best.icache_bytes) / 1024.0);
            dcache.set(row, col,
                       static_cast<double>(best.dcache_bytes) / 1024.0);
            area_frac.set(row, col, best.cache_area_fraction);
        }
    }

    const auto kb_format = [](double kb) {
        return kb >= 1024.0 ? "1M" : formatFixed(kb, 0) + "K";
    };
    std::cout << icache.render(kb_format) << "\n";
    std::cout << dcache.render(kb_format) << "\n";
    std::cout << area_frac.render(
                     [](double f) { return formatFixed(f, 2); })
              << "\n";

    // The paper's qualitative claims, checked on the spot.
    const double icache_legacy_mass = icache.at(0, 0).value();  // 250nm
    const double icache_5nm_mass = icache.at(0, 9).value();     // 5nm
    std::cout << "100M-chip optimum grows from "
              << kb_format(icache_legacy_mass) << " I$ at 250nm to "
              << kb_format(icache_5nm_mass)
              << " at 5nm (paper: 16K -> 32K)\n\n";

    emitCsv("fig6_icache_matrix.csv", icache.renderCsv());
    emitCsv("fig6_dcache_matrix.csv", dcache.renderCsv());
    emitCsv("fig6_cache_area_fraction.csv", area_frac.renderCsv());
    return 0;
}
