/**
 * @file
 * Reproduces paper Figure 14: the two-process chip design study for
 * the Raven/PicoRV32-class multicore at 1 billion final chips. For
 * every (primary, secondary) node pair the CAS-optimal production
 * split is found; matrices report (a) TTM, (b) cost, and (c) the
 * split percentage. The diagonal holds single-process plans.
 */

#include "econ/cost_model.hh"
#include "opt/split_optimizer.hh"

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 14: two-process production study, Raven-class "
           "multicore, 1B chips");

    const double n = 1e9;
    const TechnologyDb db = defaultTechnologyDb();
    TtmModel::Options options;
    options.tapeout_engineers = kRavenTapeoutEngineers;

    SplitPlanner::Options plan_options;
    for (int percent = 2; percent <= 100; percent += 2)
        plan_options.fractions.push_back(percent / 100.0);
    const SplitPlanner planner(TtmModel(db, options), CostModel(db),
                               plan_options);
    const DesignFactory raven = [](const std::string& process) {
        return designs::ravenMulticore(process);
    };

    const auto& nodes = paperNodes();
    LabeledMatrix ttm("(a) TTM (weeks), CAS-optimal split", nodes,
                      nodes);
    LabeledMatrix cost("(b) Chip creation cost ($B)", nodes, nodes);
    LabeledMatrix split("(c) % of chips from primary process", nodes,
                        nodes);

    ProductionPlan fastest;
    bool have_fastest = false;
    std::string fastest_primary, fastest_secondary;

    // Upper triangle: primary = column, secondary = row (the paper's
    // layout); diagonal = single process.
    for (std::size_t row = 0; row < nodes.size(); ++row) {
        for (std::size_t col = row; col < nodes.size(); ++col) {
            ProductionPlan plan;
            if (row == col) {
                plan = planner.singleProcessPlan(raven, n, nodes[col]);
            } else {
                plan = planner.optimizeCas(raven, n, nodes[col],
                                           nodes[row]);
            }
            ttm.set(row, col, plan.ttm.value());
            cost.set(row, col, plan.cost.value() / 1e9);
            split.set(row, col, plan.primary_fraction * 100.0);
            if (!have_fastest || plan.ttm.value() < fastest.ttm.value()) {
                fastest = plan;
                fastest_primary = nodes[col];
                fastest_secondary = row == col ? "(single)" : nodes[row];
                have_fastest = true;
            }
        }
    }

    std::cout << ttm.render() << "\n";
    std::cout << cost.render(
                     [](double b) { return formatFixed(b, 2); })
              << "\n";
    std::cout << split.render(
                     [](double pct) { return formatFixed(pct, 0); })
              << "\n";

    std::cout << "Overall fastest CAS-optimal combination: primary "
              << fastest_primary << ", secondary " << fastest_secondary
              << ", split "
              << formatFixed(fastest.primary_fraction * 100.0, 0)
              << "%, TTM " << formatFixed(fastest.ttm.value(), 1)
              << " weeks (paper: the 28nm+40nm pair).\n";

    // Section 7's multi-process savings for slow legacy primaries.
    for (const char* primary : {"250nm", "130nm", "90nm"}) {
        const ProductionPlan single =
            planner.singleProcessPlan(raven, n, primary);
        // "adding parallel manufacturing on the next smaller process"
        const std::string secondary =
            std::string(primary) == "250nm"
                ? "180nm"
                : (std::string(primary) == "130nm" ? "90nm" : "65nm");
        const ProductionPlan pair =
            planner.optimizeCas(raven, n, primary, secondary);
        std::cout << "  " << primary << "+" << secondary << " saves "
                  << formatFixed(single.ttm.value() - pair.ttm.value(), 1)
                  << " weeks over single-" << primary
                  << " (paper: 40/6/13 weeks at 250/130/90nm).\n";
    }
    std::cout << "\n";

    emitCsv("fig14a_ttm.csv", ttm.renderCsv());
    emitCsv("fig14b_cost.csv", cost.renderCsv());
    emitCsv("fig14c_split.csv", split.renderCsv());
    return 0;
}
