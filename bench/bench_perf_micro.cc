/**
 * @file
 * google-benchmark microbenchmarks of the model-evaluation kernels:
 * how fast can a user sweep designs? These are throughput numbers for
 * the library itself, not paper reproductions.
 */

#include <benchmark/benchmark.h>

#include "core/cas.hh"
#include "core/reference_designs.hh"
#include "core/uncertainty.hh"
#include "sim/cache.hh"
#include "sim/pipeline.hh"
#include "sim/trace.hh"
#include "stats/rng.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

TtmModel::Options
a11Options()
{
    TtmModel::Options options;
    options.tapeout_engineers = kA11TapeoutEngineers;
    return options;
}

void
BM_TtmEvaluate(benchmark::State& state)
{
    const TtmModel model(defaultTechnologyDb(), a11Options());
    const ChipDesign a11 = designs::a11("7nm");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(a11, 10e6).total().value());
    }
}
BENCHMARK(BM_TtmEvaluate);

void
BM_TtmEvaluateChiplet(benchmark::State& state)
{
    const TtmModel model(defaultTechnologyDb(), a11Options());
    const ChipDesign zen =
        designs::zen2(designs::Zen2Config::OriginalWithInterposer);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(zen, 10e6).total().value());
    }
}
BENCHMARK(BM_TtmEvaluateChiplet);

void
BM_CasSingleNode(benchmark::State& state)
{
    const CasModel cas(TtmModel(defaultTechnologyDb(), a11Options()));
    const ChipDesign a11 = designs::a11("7nm");
    for (auto _ : state)
        benchmark::DoNotOptimize(cas.cas(a11, 10e6));
}
BENCHMARK(BM_CasSingleNode);

void
BM_MonteCarloTtm128(benchmark::State& state)
{
    const UncertaintyAnalysis analysis(defaultTechnologyDb(),
                                       a11Options());
    const ChipDesign a11 = designs::a11("7nm");
    UncertaintyAnalysis::Options options;
    options.samples = 128;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis.sampleTtm(a11, 10e6, {}, options).size());
    }
}
BENCHMARK(BM_MonteCarloTtm128);

void
BM_CacheSimZipf(benchmark::State& state)
{
    CacheConfig config;
    config.size_bytes = static_cast<std::uint64_t>(state.range(0));
    Cache cache(config);
    ZipfTrace trace(4096, 1.1, 64);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(trace.next(rng)));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_CacheSimZipf)->Arg(16 * 1024)->Arg(256 * 1024);

void
BM_PipelineSimulator10k(benchmark::State& state)
{
    const PipelineConfig config;
    for (auto _ : state) {
        PipelineSimulator simulator(config);
        benchmark::DoNotOptimize(simulator.run(10'000, 1).cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_PipelineSimulator10k);

void
BM_SobolSixInputs256(benchmark::State& state)
{
    const UncertaintyAnalysis analysis(defaultTechnologyDb(),
                                       a11Options());
    const ChipDesign a11 = designs::a11("7nm");
    UncertaintyAnalysis::Options options;
    options.samples = 256;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis.ttmSensitivity(a11, 10e6, {}, options)
                .total_effect.size());
    }
}
BENCHMARK(BM_SobolSixInputs256);

} // namespace

BENCHMARK_MAIN();
