/**
 * @file
 * google-benchmark microbenchmarks of the model-evaluation kernels:
 * how fast can a user sweep designs? These are throughput numbers for
 * the library itself, not paper reproductions.
 *
 * The MonteCarloTtm4096/SobolSixInputs256 families take the thread
 * count as their benchmark argument (1 = the serial path) so the
 * parallel engine's scaling is measured directly; after the benchmark
 * pass the driver re-times both kernels at 1/2/4/8 threads, checks
 * the parallel results are bitwise-identical to serial, and writes
 * the bench_out/BENCH_parallel.json snapshot.
 */

#include <chrono>
#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "core/cas.hh"
#include "core/reference_designs.hh"
#include "core/uncertainty.hh"
#include "report/series.hh"
#include "sim/cache.hh"
#include "sim/pipeline.hh"
#include "sim/trace.hh"
#include "stats/rng.hh"
#include "support/metrics.hh"
#include "support/trace.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

TtmModel::Options
a11Options()
{
    TtmModel::Options options;
    options.tapeout_engineers = kA11TapeoutEngineers;
    return options;
}

void
BM_TtmEvaluate(benchmark::State& state)
{
    const TtmModel model(defaultTechnologyDb(), a11Options());
    const ChipDesign a11 = designs::a11("7nm");
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(a11, 10e6).total().value());
    }
}
BENCHMARK(BM_TtmEvaluate);

void
BM_TtmEvaluateChiplet(benchmark::State& state)
{
    const TtmModel model(defaultTechnologyDb(), a11Options());
    const ChipDesign zen =
        designs::zen2(designs::Zen2Config::OriginalWithInterposer);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            model.evaluate(zen, 10e6).total().value());
    }
}
BENCHMARK(BM_TtmEvaluateChiplet);

void
BM_CasSingleNode(benchmark::State& state)
{
    const CasModel cas(TtmModel(defaultTechnologyDb(), a11Options()));
    const ChipDesign a11 = designs::a11("7nm");
    for (auto _ : state)
        benchmark::DoNotOptimize(cas.cas(a11, 10e6));
}
BENCHMARK(BM_CasSingleNode);

void
BM_MonteCarloTtm128(benchmark::State& state)
{
    const UncertaintyAnalysis analysis(defaultTechnologyDb(),
                                       a11Options());
    const ChipDesign a11 = designs::a11("7nm");
    UncertaintyAnalysis::Options options;
    options.samples = 128;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis.sampleTtm(a11, 10e6, {}, options).size());
    }
}
BENCHMARK(BM_MonteCarloTtm128);

void
BM_CacheSimZipf(benchmark::State& state)
{
    CacheConfig config;
    config.size_bytes = static_cast<std::uint64_t>(state.range(0));
    Cache cache(config);
    ZipfTrace trace(4096, 1.1, 64);
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.access(trace.next(rng)));
    state.SetItemsProcessed(static_cast<std::int64_t>(
        state.iterations()));
}
BENCHMARK(BM_CacheSimZipf)->Arg(16 * 1024)->Arg(256 * 1024);

void
BM_PipelineSimulator10k(benchmark::State& state)
{
    const PipelineConfig config;
    for (auto _ : state) {
        PipelineSimulator simulator(config);
        benchmark::DoNotOptimize(simulator.run(10'000, 1).cycles);
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 10'000);
}
BENCHMARK(BM_PipelineSimulator10k);

void
BM_SobolSixInputs256(benchmark::State& state)
{
    const UncertaintyAnalysis analysis(defaultTechnologyDb(),
                                       a11Options());
    const ChipDesign a11 = designs::a11("7nm");
    UncertaintyAnalysis::Options options;
    options.samples = 256;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis.ttmSensitivity(a11, 10e6, {}, options)
                .total_effect.size());
    }
}
BENCHMARK(BM_SobolSixInputs256);

// --- Observability disabled-path overhead ---------------------------
//
// The zero-overhead-when-disabled contract (support/trace.hh,
// support/metrics.hh): with recording off, a span or counter op is one
// relaxed atomic load plus a branch — no clock read, no lock, no
// allocation. These benchmarks pin that down in nanoseconds.

void
BM_DisabledSpanOverhead(benchmark::State& state)
{
    obs::setTracingEnabled(false);
    for (auto _ : state) {
        const obs::ScopedSpan span("bench", "disabled");
        benchmark::DoNotOptimize(&span);
    }
}
BENCHMARK(BM_DisabledSpanOverhead);

void
BM_DisabledCounterOverhead(benchmark::State& state)
{
    obs::setMetricsEnabled(false);
    static const obs::Counter counter("bench.disabled_counter");
    for (auto _ : state)
        counter.increment();
}
BENCHMARK(BM_DisabledCounterOverhead);

void
BM_DisabledTimerOverhead(benchmark::State& state)
{
    obs::setMetricsEnabled(false);
    static const obs::Histogram histogram("bench.disabled_timer_us",
                                          {1.0, 10.0, 100.0});
    for (auto _ : state) {
        const obs::ScopedTimer timer(histogram);
        benchmark::DoNotOptimize(&timer);
    }
}
BENCHMARK(BM_DisabledTimerOverhead);

// --- Parallel engine scaling: threads is the benchmark argument. ---

UncertaintyAnalysis::Options
parallelOptions(std::size_t samples, std::int64_t threads)
{
    UncertaintyAnalysis::Options options;
    options.samples = samples;
    options.parallel.threads = static_cast<std::size_t>(threads);
    return options;
}

void
BM_MonteCarloTtm4096Threads(benchmark::State& state)
{
    const UncertaintyAnalysis analysis(defaultTechnologyDb(),
                                       a11Options());
    const ChipDesign a11 = designs::a11("7nm");
    const auto options = parallelOptions(4096, state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis.sampleTtm(a11, 10e6, {}, options).size());
    }
    state.SetItemsProcessed(
        static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_MonteCarloTtm4096Threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void
BM_SobolSixInputs256Threads(benchmark::State& state)
{
    const UncertaintyAnalysis analysis(defaultTechnologyDb(),
                                       a11Options());
    const ChipDesign a11 = designs::a11("7nm");
    const auto options = parallelOptions(256, state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            analysis.ttmSensitivity(a11, 10e6, {}, options)
                .total_effect.size());
    }
}
BENCHMARK(BM_SobolSixInputs256Threads)
    ->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// --- BENCH_parallel.json snapshot -----------------------------------

/** Median-of-3 wall-clock milliseconds of @p kernel. */
template <typename Kernel>
double
timeMs(Kernel&& kernel)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        kernel();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        if (rep == 0 || ms < best)
            best = ms;
    }
    return best;
}

/**
 * Time the two headline kernels at 1/2/4/8 threads, verify the
 * parallel results are bitwise-identical to serial, and write the
 * JSON snapshot the verify loop and CHANGES trail reference.
 */
void
writeParallelSnapshot()
{
    // The BM_ loops above run with observability off (measuring the
    // disabled path); the snapshot pass records metrics so the JSON
    // gains a "metrics" block (mc.samples, sobol.evaluations, pool.*).
    obs::setMetricsEnabled(true);
    const UncertaintyAnalysis analysis(defaultTechnologyDb(),
                                       a11Options());
    const ChipDesign a11 = designs::a11("7nm");
    const std::vector<std::int64_t> thread_counts{1, 2, 4, 8};

    std::vector<double> mc_ms, sobol_ms;
    bool deterministic = true;
    const auto mc_serial =
        analysis.sampleTtm(a11, 10e6, {}, parallelOptions(4096, 1));
    const auto sobol_serial = analysis.ttmSensitivity(
        a11, 10e6, {}, parallelOptions(256, 1));
    for (std::int64_t threads : thread_counts) {
        const auto mc_options = parallelOptions(4096, threads);
        const auto sobol_options = parallelOptions(256, threads);
        mc_ms.push_back(timeMs([&] {
            benchmark::DoNotOptimize(
                analysis.sampleTtm(a11, 10e6, {}, mc_options).size());
        }));
        sobol_ms.push_back(timeMs([&] {
            benchmark::DoNotOptimize(
                analysis.ttmSensitivity(a11, 10e6, {}, sobol_options)
                    .total_effect.size());
        }));
        if (analysis.sampleTtm(a11, 10e6, {}, mc_options) != mc_serial)
            deterministic = false;
        if (analysis.ttmSensitivity(a11, 10e6, {}, sobol_options)
                .total_effect != sobol_serial.total_effect)
            deterministic = false;
    }

    std::ostringstream json;
    json << "{\n"
         << "  \"hardware_concurrency\": "
         << std::thread::hardware_concurrency() << ",\n"
         << "  \"deterministic_across_thread_counts\": "
         << (deterministic ? "true" : "false") << ",\n";
    const auto emitKernel = [&](const char* name, std::size_t samples,
                                const std::vector<double>& ms,
                                bool last) {
        json << "  \"" << name << "\": {\n"
             << "    \"samples\": " << samples << ",\n"
             << "    \"runs\": [\n";
        for (std::size_t i = 0; i < ms.size(); ++i) {
            json << "      {\"threads\": " << thread_counts[i]
                 << ", \"ms\": " << ms[i]
                 << ", \"speedup\": " << (ms[0] / ms[i]) << "}"
                 << (i + 1 < ms.size() ? "," : "") << "\n";
        }
        json << "    ]\n  }" << (last ? "\n" : ",\n");
    };
    emitKernel("monte_carlo_ttm", 4096, mc_ms, false);
    emitKernel("sobol_six_inputs", 256, sobol_ms, true);
    json << "}";

    bench::emitBenchJson("BENCH_parallel.json", json.str());
    obs::setMetricsEnabled(false);
}

} // namespace

int
main(int argc, char** argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    writeParallelSnapshot();
    return 0;
}
