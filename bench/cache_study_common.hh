#ifndef TTMCAS_BENCH_CACHE_STUDY_COMMON_HH
#define TTMCAS_BENCH_CACHE_STUDY_COMMON_HH

/**
 * @file
 * Shared setup for the Section 6.1 cache-sizing benches (Figs. 4-6):
 * measure the suite-average miss curves once and build the sweep.
 */

#include "opt/cache_optimizer.hh"
#include "sim/miss_curves.hh"

namespace ttmcas::bench {

/** Miss-curve measurement settings used by all three cache benches. */
MissCurveOptions cacheStudyCurveOptions();

/** Build the CacheSweep over the default technology and workloads. */
CacheSweep makeCacheSweep();

/** Human label for a capacity: 1024 -> "1KB", 1048576 -> "1MB". */
std::string cacheSizeLabel(std::uint64_t bytes);

} // namespace ttmcas::bench

#endif // TTMCAS_BENCH_CACHE_STUDY_COMMON_HH
