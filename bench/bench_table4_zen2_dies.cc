/**
 * @file
 * Reproduces paper Table 4: the Zen 2-like architecture's per-die
 * transistor counts, areas, and tapeout times at the 14/12nm class and
 * 7nm (150-engineer pace, as the paper's numbers imply).
 */

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Table 4: Zen 2-like die transistor counts, areas, and "
           "tapeout times");

    const TtmModel model(defaultTechnologyDb(), zen2ModelOptions());

    struct DieRow
    {
        const char* name;
        double ntt;
        double nut;
        double area_12;
        double area_7;
        const char* coarse_node;
        double paper_tapeout_12;
        double paper_tapeout_7;
    };
    const DieRow rows[] = {
        {"Compute", 3.8e9, 475e6, 206.0, 74.0, "14nm", 3.6, 10.4},
        {"I/O", 2.1e9, 523e6, 125.0, 38.0, "12nm", 4.0, 11.5},
    };

    Table table({"Die", "NTT", "NUT", "A (14|12/7nm, mm2)",
                 "T_tapeout 14|12nm (wk)", "paper", "T_tapeout 7nm (wk)",
                 "paper"});
    table.setAlign(0, Align::Left);

    for (const DieRow& row : rows) {
        const auto tapeout_weeks = [&](const std::string& node) {
            const ChipDesign block = makeMonolithicDesign(
                row.name, node, row.ntt, row.nut);
            return model.evaluate(block, 1.0).tapeout_time.value();
        };
        table.addRow({row.name, formatSi(row.ntt, 1),
                      formatSi(row.nut, 0),
                      formatFixed(row.area_12, 0) + " / " +
                          formatFixed(row.area_7, 0),
                      formatFixed(tapeout_weeks(row.coarse_node), 1),
                      formatFixed(row.paper_tapeout_12, 1),
                      formatFixed(tapeout_weeks("7nm"), 1),
                      formatFixed(row.paper_tapeout_7, 1)});
    }

    std::cout << table.render() << "\n";
    std::cout << "Asterisked paper values (NTT, compute area at 14nm, "
                 "I/O area at 7nm) are inputs from Naffziger et al. / "
                 "Singh et al., as in the paper.\n\n";

    emitCsv("table4_zen2_dies.csv", table.renderCsv());
    return 0;
}
