/**
 * @file
 * Reproduces paper Figure 12: CAS for 10 million A11 chips at 7nm
 * versus % of max production rate under 0/1/2/4-week queue backlogs,
 * with CI bands. Headline (Section 6.3): a single week of queue
 * sharply reduces the maximum CAS (paper: -37%; our backlog model
 * yields a stronger drop — see EXPERIMENTS.md).
 */

#include "core/cas.hh"
#include "core/uncertainty.hh"

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 12: CAS for 10M A11 chips at 7nm by queue depth");

    const double n = 10e6;
    const TechnologyDb db = defaultTechnologyDb();
    const CasModel cas(TtmModel(db, a11ModelOptions()));
    const UncertaintyAnalysis analysis(db, a11ModelOptions());
    const ChipDesign a11 = designs::a11("7nm");

    const std::vector<std::pair<std::string, double>> queues{
        {"No Queue", 0.0}, {"1 Week", 1.0}, {"2 Weeks", 2.0},
        {"4 Weeks", 4.0}};
    std::vector<double> fractions;
    for (int percent = 20; percent <= 100; percent += 20)
        fractions.push_back(percent / 100.0);

    FigureData figure("Fig. 12: CAS vs capacity by queue depth",
                      "capacity_pct", "cas");
    Table table({"% Capacity", "No Queue", "1 Week", "2 Weeks",
                 "4 Weeks"});

    double max_no_queue = 0.0;
    double max_one_week = 0.0;
    for (double fraction : fractions) {
        std::vector<std::string> row{formatFixed(fraction * 100.0, 0)};
        for (const auto& [label, weeks] : queues) {
            MarketConditions market;
            market.setCapacityFactor("7nm", fraction);
            market.setQueueWeeks("7nm", Weeks(weeks));
            const double score = cas.cas(a11, n, market);
            row.push_back(formatFixed(score, 1));
            if (label == "No Queue")
                max_no_queue = std::max(max_no_queue, score);
            if (label == "1 Week")
                max_one_week = std::max(max_one_week, score);

            UncertaintyAnalysis::Options mc10;
            mc10.band = 0.10;
            mc10.samples = 96;
            UncertaintyAnalysis::Options mc25 = mc10;
            mc25.band = 0.25;
            const Summary s10 =
                analysis.casSummary(a11, n, market, mc10);
            const Summary s25 =
                analysis.casSummary(a11, n, market, mc25);

            SeriesPoint point;
            point.x = fraction * 100.0;
            point.y = score;
            point.band10_lo = s10.percentileInterval(0.95).lo;
            point.band10_hi = s10.percentileInterval(0.95).hi;
            point.band25_lo = s25.percentileInterval(0.95).lo;
            point.band25_hi = s25.percentileInterval(0.95).hi;
            figure.series(label).points.push_back(point);
        }
        table.addRow(row);
    }

    std::cout << table.render() << "\n";
    std::cout << "1 week of queue reduces max CAS by "
              << formatFixed(100.0 * (1.0 - max_one_week / max_no_queue),
                             0)
              << "% (paper: 37%; see EXPERIMENTS.md for the backlog-"
                 "model discussion).\n\n";

    emitCsv("fig12_queue_cas.csv", figure.renderCsv());
    return 0;
}
