/**
 * @file
 * Reproduces paper Figure 10: the A11 time-to-market matrix over
 * process nodes x final-chip volumes, with the fastest node per volume
 * highlighted. This is the library's primary calibration target — the
 * bench prints measured-vs-paper side by side.
 */

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 10: A11 TTM matrix (nodes x final chips)");

    const TtmModel model(defaultTechnologyDb(), a11ModelOptions());
    const std::vector<double> volumes{1e3, 1e4, 1e5, 1e6, 1e7, 1e8};
    const std::vector<std::string> volume_labels{"1K",  "10K", "100K",
                                                 "1M",  "10M", "100M"};

    // Paper Fig. 10 (rows: 1K..100M, columns: 250nm..5nm).
    const double paper[6][10] = {
        {20.3, 20.4, 20.7, 21.0, 21.5, 22.2, 23.3, 29.5, 42.9, 53.5},
        {20.4, 20.5, 20.7, 21.0, 21.5, 22.2, 23.3, 29.5, 42.9, 53.5},
        {21.4, 20.6, 20.9, 21.3, 21.6, 22.2, 23.3, 29.5, 42.9, 53.5},
        {31.8, 22.1, 23.4, 24.0, 22.3, 22.5, 23.5, 29.5, 42.9, 53.5},
        {135.0, 37.2, 47.9, 51.3, 29.6, 25.4, 24.8, 30.1, 43.1, 53.7},
        {1166.0, 188.0, 293.0, 324.0, 103.0, 54.5, 38.0, 35.3, 44.8,
         56.1},
    };

    LabeledMatrix measured("Measured TTM (weeks)", volume_labels,
                           paperNodes());
    LabeledMatrix reference("Paper TTM (weeks)", volume_labels,
                            paperNodes());
    LabeledMatrix error("Relative error vs paper", volume_labels,
                        paperNodes());

    for (std::size_t row = 0; row < volumes.size(); ++row) {
        for (std::size_t col = 0; col < paperNodes().size(); ++col) {
            const double ttm =
                model.evaluate(designs::a11(paperNodes()[col]),
                               volumes[row])
                    .total()
                    .value();
            measured.set(row, col, ttm);
            reference.set(row, col, paper[row][col]);
            error.set(row, col,
                      (ttm - paper[row][col]) / paper[row][col]);
        }
    }

    std::cout << measured.render() << "\n";
    std::cout << reference.render() << "\n";
    std::cout << error.render([](double e) {
        return formatFixed(100.0 * e, 1) + "%";
    }) << "\n";

    // Fastest node per volume (the paper's blue boxes).
    std::cout << "Fastest node per volume:\n";
    for (std::size_t row = 0; row < volumes.size(); ++row) {
        std::size_t best_col = 0;
        for (std::size_t col = 1; col < paperNodes().size(); ++col) {
            if (measured.at(row, col).value() <
                measured.at(row, best_col).value())
                best_col = col;
        }
        std::cout << "  " << padRight(volume_labels[row], 5) << " -> "
                  << paperNodes()[best_col] << "\n";
    }
    std::cout << "\n";

    emitCsv("fig10_ttm_matrix_measured.csv", measured.renderCsv());
    emitCsv("fig10_ttm_matrix_paper.csv", reference.renderCsv());
    return 0;
}
