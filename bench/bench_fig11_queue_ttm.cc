/**
 * @file
 * Reproduces paper Figure 11: time-to-market for 10 million A11 chips
 * at 7nm versus % of max production rate under foundry queue backlogs
 * of 0, 1, 2, and 4 weeks, with CI error bars. A fixed backlog (quoted
 * at full capacity) drains slower when capacity drops, which is what
 * steepens the curves.
 */

#include "core/uncertainty.hh"

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 11: TTM for 10M A11 chips at 7nm by queue depth");

    const double n = 10e6;
    const TechnologyDb db = defaultTechnologyDb();
    const TtmModel model(db, a11ModelOptions());
    const UncertaintyAnalysis analysis(db, a11ModelOptions());
    const ChipDesign a11 = designs::a11("7nm");

    const std::vector<std::pair<std::string, double>> queues{
        {"No Queue", 0.0}, {"1 Week", 1.0}, {"2 Weeks", 2.0},
        {"4 Weeks", 4.0}};
    std::vector<double> fractions;
    for (int percent = 25; percent <= 100; percent += 15)
        fractions.push_back(percent / 100.0);

    FigureData figure("Fig. 11: TTM vs capacity by queue depth",
                      "capacity_pct", "ttm_weeks");
    Table table({"% Capacity", "No Queue", "1 Week", "2 Weeks",
                 "4 Weeks"});

    for (double fraction : fractions) {
        std::vector<std::string> row{formatFixed(fraction * 100.0, 0)};
        for (const auto& [label, weeks] : queues) {
            MarketConditions market;
            market.setCapacityFactor("7nm", fraction);
            market.setQueueWeeks("7nm", Weeks(weeks));
            const double ttm =
                model.evaluate(a11, n, market).total().value();
            row.push_back(formatFixed(ttm, 1));

            UncertaintyAnalysis::Options mc10;
            mc10.band = 0.10;
            mc10.samples = 128;
            UncertaintyAnalysis::Options mc25 = mc10;
            mc25.band = 0.25;
            const Summary s10 =
                analysis.ttmSummary(a11, n, market, mc10);
            const Summary s25 =
                analysis.ttmSummary(a11, n, market, mc25);

            SeriesPoint point;
            point.x = fraction * 100.0;
            point.y = ttm;
            point.band10_lo = s10.percentileInterval(0.95).lo;
            point.band10_hi = s10.percentileInterval(0.95).hi;
            point.band25_lo = s25.percentileInterval(0.95).lo;
            point.band25_hi = s25.percentileInterval(0.95).hi;
            figure.series(label).points.push_back(point);
        }
        table.addRow(row);
    }

    std::cout << table.render() << "\n";
    std::cout << "At 100% capacity each queue week adds exactly its "
                 "quoted lead time; at 25% capacity the same backlog "
                 "costs 4x as many weeks (Eq. 4).\n\n";

    emitCsv("fig11_queue_ttm.csv", figure.renderCsv());
    return 0;
}
