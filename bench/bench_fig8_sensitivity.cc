/**
 * @file
 * Reproduces paper Figure 8: Sobol total-effect index S_T of the six
 * uncertain inputs (NTT, NUT, D0, muW, Lfab, LOSAT) on the TTM of 10
 * million A11 chips, per process node. Expected structure: NTT
 * dominates legacy nodes, foundry/OSAT latency dominates the middle,
 * NUT dominates 5nm.
 */

#include "core/uncertainty.hh"
#include "stats/sobol.hh"

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 8: TTM sensitivity (Sobol total-effect) for 10M A11 "
           "chips");

    const double n = 10e6;
    const UncertaintyAnalysis analysis(defaultTechnologyDb(),
                                       a11ModelOptions());

    std::vector<std::string> input_rows;
    for (std::size_t i = 0; i < kUncertainInputCount; ++i)
        input_rows.push_back(
            uncertainInputName(static_cast<UncertainInput>(i)));
    LabeledMatrix matrix("Total-effect index S_T by node", input_rows,
                         paperNodes());

    for (std::size_t col = 0; col < paperNodes().size(); ++col) {
        UncertaintyAnalysis::Options options;
        options.band = 0.10;
        options.samples = 1024; // paper's sample count
        const SobolResult result = analysis.ttmSensitivity(
            designs::a11(paperNodes()[col]), n, {}, options);
        for (std::size_t row = 0; row < kUncertainInputCount; ++row)
            matrix.set(row, col, result.total_effect[row]);
    }

    std::cout << matrix.render(
                     [](double v) { return formatFixed(v, 2); })
              << "\n";

    // Dominance summary (the paper's reading of the figure).
    std::cout << "Dominant input per node:\n";
    for (std::size_t col = 0; col < paperNodes().size(); ++col) {
        std::size_t best_row = 0;
        for (std::size_t row = 1; row < kUncertainInputCount; ++row) {
            if (matrix.at(row, col).value() >
                matrix.at(best_row, col).value())
                best_row = row;
        }
        std::cout << "  " << padRight(paperNodes()[col], 6) << " -> "
                  << input_rows[best_row] << "\n";
    }
    std::cout << "(paper: NTT for 250-90nm, Lfab for 65-7nm, NUT for "
                 "5nm)\n\n";

    // Bootstrap CIs for the most interesting column (5nm), computed
    // from the retained row data — no extra model evaluations.
    {
        std::vector<std::unique_ptr<Distribution>> owned;
        std::vector<SensitivityInput> inputs;
        for (std::size_t i = 0; i < kUncertainInputCount; ++i) {
            owned.push_back(relativeUniform(1.0, 0.10));
            inputs.push_back(SensitivityInput{
                uncertainInputName(static_cast<UncertainInput>(i)),
                owned.back().get()});
        }
        const ChipDesign a11_5nm = designs::a11("5nm");
        const auto ttm_model = [&](const std::vector<double>& point) {
            InputFactors factors;
            for (std::size_t i = 0; i < kUncertainInputCount; ++i)
                factors[i] = point[i];
            return analysis.ttmWithFactors(a11_5nm, n, {}, factors)
                .value();
        };
        SobolOptions sobol_options;
        sobol_options.base_samples = 1024;
        SobolRowData row_data;
        const SobolResult at_5nm =
            sobolAnalyze(inputs, ttm_model, sobol_options, &row_data);
        const SobolConfidence ci = sobolBootstrapCi(row_data, 400);

        Table ci_table({"Input", "S_T @ 5nm", "95% bootstrap CI"});
        ci_table.setAlign(0, Align::Left);
        for (std::size_t i = 0; i < kUncertainInputCount; ++i) {
            ci_table.addRow(
                {at_5nm.input_names[i],
                 formatFixed(at_5nm.total_effect[i], 3),
                 "[" + formatFixed(ci.total_effect[i].first, 3) + ", " +
                     formatFixed(ci.total_effect[i].second, 3) + "]"});
        }
        std::cout << ci_table.render() << "\n";
    }

    emitCsv("fig8_sensitivity.csv", matrix.renderCsv());
    return 0;
}
