/**
 * @file
 * Reproduces paper Figure 5: normalized IPC/TTM versus normalized
 * IPC/cost over the (I$, D$) sweep, and locates the two optima — the
 * paper's purple (IPC/TTM) and red (IPC/cost) markers. Also reproduces
 * the quantified claim that the IPC/TTM-optimal design sacrifices only
 * a little IPC/cost while the IPC/cost-optimal design gives up much
 * more IPC/TTM.
 */

#include "bench_common.hh"
#include "cache_study_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 5: normalized IPC/TTM vs IPC/cost for (I$, D$) "
           "capacity");

    const CacheSweep sweep = makeCacheSweep();
    CacheSweepOptions options;
    options.process = "14nm";
    options.n_chips = 100e6;
    const auto points = sweep.sweep(options);

    const auto& best_ttm = CacheSweep::bestByIpcPerTtm(points);
    const auto& best_cost = CacheSweep::bestByIpcPerCost(points);

    FigureData figure("Fig. 5: normalized IPC/TTM vs IPC/cost",
                      "ipc_per_ttm_norm", "ipc_per_cost_norm");
    Table table({"I$", "D$", "IPC/TTM (norm)", "IPC/cost (norm)",
                 "marker"});
    table.setAlign(0, Align::Left).setAlign(1, Align::Left);
    table.setAlign(4, Align::Left);

    for (const auto& point : points) {
        const double x = point.ipcPerTtm() / best_ttm.ipcPerTtm();
        const double y = point.ipcPerCost() / best_cost.ipcPerCost();
        std::string marker;
        if (&point == &best_ttm)
            marker = "<- max IPC/TTM (purple)";
        if (&point == &best_cost)
            marker += "<- max IPC/cost (red)";
        figure.series("sweep").points.push_back({x, y, {}, {}, {}, {}});
        table.addRow({cacheSizeLabel(point.icache_bytes),
                      cacheSizeLabel(point.dcache_bytes),
                      formatFixed(x, 3), formatFixed(y, 3), marker});
    }
    std::cout << table.render() << "\n";

    std::cout << "IPC/TTM optimum:  I$=" <<
        cacheSizeLabel(best_ttm.icache_bytes)
              << " D$=" << cacheSizeLabel(best_ttm.dcache_bytes)
              << "  (paper: 32KB / 32KB)\n";
    std::cout << "IPC/cost optimum: I$=" <<
        cacheSizeLabel(best_cost.icache_bytes)
              << " D$=" << cacheSizeLabel(best_cost.dcache_bytes)
              << "  (paper: 64KB / 128KB)\n";

    const double ttm_opt_cost_loss =
        1.0 - best_ttm.ipcPerCost() / best_cost.ipcPerCost();
    const double cost_opt_ttm_loss =
        1.0 - best_cost.ipcPerTtm() / best_ttm.ipcPerTtm();
    std::cout << "IPC/TTM-optimal design loses "
              << formatFixed(100.0 * ttm_opt_cost_loss, 1)
              << "% IPC/cost (paper: 4%)\n";
    std::cout << "IPC/cost-optimal design loses "
              << formatFixed(100.0 * cost_opt_ttm_loss, 1)
              << "% IPC/TTM (paper: 18%)\n\n";

    emitCsv("fig5_cache_normalized.csv", figure.renderCsv());
    return 0;
}
