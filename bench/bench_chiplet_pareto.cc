/**
 * @file
 * Chiplet-economics explorer microbench: wall-clock per candidate of
 * the joint TTM/CAS/cost Pareto sweep (opt/chiplet_explorer.hh) at
 * 24 / 96 / 384 candidates, serial vs 8 threads, on the compiled
 * batch path vs the scalar oracle. Verifies that the serial and
 * 8-thread ChipletParetoResults — and the batch and scalar paths —
 * agree bitwise at every size while timing them, so the bench doubles
 * as a determinism check and exits non-zero on any mismatch. Writes
 * bench_out/BENCH_chiplet_pareto.json for the CI artifact trail.
 */

#include <chrono>
#include <cstddef>
#include <cstdio>
#include <iostream>
#include <sstream>
#include <vector>

#include "bench_common.hh"
#include "core/reference_designs.hh"
#include "opt/chiplet_explorer.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

/** Best-of-3 wall-clock milliseconds of @p kernel. */
template <typename Kernel>
double
timeMs(Kernel&& kernel)
{
    double best = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        kernel();
        const auto stop = std::chrono::steady_clock::now();
        const double ms =
            std::chrono::duration<double, std::milli>(stop - start)
                .count();
        if (rep == 0 || ms < best)
            best = ms;
    }
    return best;
}

/**
 * A spec with @p candidates grid points: the partition axis stretches
 * while nodes (2) x redundancy (3) x splits (2) = 12 stays fixed.
 */
ChipletSweepSpec
specOfSize(std::size_t candidates)
{
    ChipletSweepSpec spec;
    spec.nodes = {"7nm", "12nm"};
    spec.redundancy = {0, 1, 2};
    spec.split_fractions = {0.6, 1.0};
    spec.secondary_node = "12nm";
    spec.partitions.clear();
    for (std::size_t p = 1; p <= candidates / 12; ++p)
        spec.partitions.push_back(static_cast<int>(p));
    return spec;
}

ChipletExplorerOptions
explorerOptions(std::size_t threads, EvalPath path)
{
    ChipletExplorerOptions options;
    options.seed = 20230806;
    options.parallel = threads <= 1 ? ParallelConfig::serial()
                                    : ParallelConfig{threads, 2};
    options.eval_path = path;
    return options;
}

struct SizeRow
{
    std::size_t candidates = 0;
    double serial_us_per_candidate = 0.0;
    double threads8_us_per_candidate = 0.0;
    double scalar_us_per_candidate = 0.0;
    bool bitwise_identical = false;

    double speedup() const
    {
        return serial_us_per_candidate / threads8_us_per_candidate;
    }
};

} // namespace

int
main()
{
    bench::banner("Chiplet Pareto explorer: cost per candidate");

    const TechnologyDb db = defaultTechnologyDb();
    const ChipletExplorer explorer(db, bench::a11ModelOptions());
    const ChipDesign a11 = designs::a11("7nm");
    const double n_chips = 10e6;
    const MarketConditions market;
    const std::vector<std::size_t> sizes{24, 96, 384};

    std::vector<SizeRow> rows;
    std::cout << "  cands    serial us/cand    8-thread us/cand"
                 "    scalar us/cand    speedup\n";
    for (const std::size_t n : sizes) {
        const ChipletSweepSpec spec = specOfSize(n);
        SizeRow row;
        row.candidates = spec.candidateCount();

        // Warm-up runs also provide the identity checks: serial vs
        // 8 threads, and compiled batch vs the scalar oracle.
        const ChipletParetoResult serial = explorer.run(
            a11, n_chips, market, spec,
            explorerOptions(1, EvalPath::kBatch));
        const ChipletParetoResult parallel = explorer.run(
            a11, n_chips, market, spec,
            explorerOptions(8, EvalPath::kBatch));
        const ChipletParetoResult scalar = explorer.run(
            a11, n_chips, market, spec,
            explorerOptions(1, EvalPath::kScalar));
        row.bitwise_identical = serial == parallel && serial == scalar;

        const double count = static_cast<double>(row.candidates);
        row.serial_us_per_candidate = timeMs([&] {
            explorer.run(a11, n_chips, market, spec,
                         explorerOptions(1, EvalPath::kBatch));
        }) * 1e3 / count;
        row.threads8_us_per_candidate = timeMs([&] {
            explorer.run(a11, n_chips, market, spec,
                         explorerOptions(8, EvalPath::kBatch));
        }) * 1e3 / count;
        row.scalar_us_per_candidate = timeMs([&] {
            explorer.run(a11, n_chips, market, spec,
                         explorerOptions(1, EvalPath::kScalar));
        }) * 1e3 / count;
        rows.push_back(row);

        std::printf("%7zu %17.1f %19.1f %17.1f %9.2fx%s\n",
                    row.candidates, row.serial_us_per_candidate,
                    row.threads8_us_per_candidate,
                    row.scalar_us_per_candidate, row.speedup(),
                    row.bitwise_identical ? "" : "  [MISMATCH]");
    }

    std::ostringstream json;
    json << "{\n  \"design\": \"a11-7nm\",\n"
         << "  \"kernel\": \"ChipletExplorer::run\",\n  \"sizes\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const SizeRow& row = rows[i];
        json << "    {\"candidates\": " << row.candidates
             << ", \"serial_us_per_candidate\": "
             << row.serial_us_per_candidate
             << ", \"threads8_us_per_candidate\": "
             << row.threads8_us_per_candidate
             << ", \"scalar_us_per_candidate\": "
             << row.scalar_us_per_candidate
             << ", \"speedup\": " << row.speedup()
             << ", \"bitwise_identical\": "
             << (row.bitwise_identical ? "true" : "false") << "}"
             << (i + 1 < rows.size() ? "," : "") << "\n";
    }
    json << "  ]\n}";
    bench::emitBenchJson("BENCH_chiplet_pareto.json", json.str());

    // Fail loudly (a CI-visible exit code) if determinism broke.
    for (const SizeRow& row : rows) {
        if (!row.bitwise_identical) {
            std::cerr << "determinism mismatch at candidates="
                      << row.candidates << "\n";
            return 1;
        }
    }
    return 0;
}
