/**
 * @file
 * Ablation: what does the Section 6.1 cache study recommend when the
 * objective is *profit* instead of IPC/TTM or IPC/cost?
 *
 * The market-window revenue model (Section 2.2's motivation) couples
 * the two paper metrics: a later TTM shrinks every unit's price while
 * a costlier chip eats margin. The profit-optimal cache configuration
 * therefore sits between the IPC/TTM and IPC/cost optima — and moves
 * toward the IPC/TTM pick as the market window tightens.
 */

#include "econ/revenue_model.hh"
#include "sim/ipc_model.hh"
#include "sim/workloads.hh"

#include "bench_common.hh"
#include "cache_study_common.hh"

namespace {

using namespace ttmcas;
using namespace ttmcas::bench;

/** Unit price scales with IPC: faster parts sell for more. */
double
profitOf(const CacheDesignPoint& point, double n_chips,
         const MarketWindow& window, double dollars_per_ipc)
{
    MarketWindow priced = window;
    priced.peak_unit_price = Dollars(dollars_per_ipc * point.ipc);
    const double revenue =
        priced.revenue(n_chips, point.ttm).value();
    return revenue - point.cost.value();
}

} // namespace

int
main()
{
    banner("Ablation: profit-optimal cache configuration vs the "
           "paper's two metrics");

    const CacheSweep sweep = makeCacheSweep();
    CacheSweepOptions options;
    options.process = "14nm";
    options.n_chips = 100e6;
    const auto points = sweep.sweep(options);

    const auto& best_ttm = CacheSweep::bestByIpcPerTtm(points);
    const auto& best_cost = CacheSweep::bestByIpcPerCost(points);
    std::cout << "IPC/TTM optimum:  "
              << cacheSizeLabel(best_ttm.icache_bytes) << "/"
              << cacheSizeLabel(best_ttm.dcache_bytes) << "\n";
    std::cout << "IPC/cost optimum: "
              << cacheSizeLabel(best_cost.icache_bytes) << "/"
              << cacheSizeLabel(best_cost.dcache_bytes) << "\n\n";

    constexpr double kDollarsPerIpc = 400.0; // $100 part at IPC 0.25

    Table table({"Market window", "Profit-optimal I$/D$",
                 "Profit ($B)", "vs IPC/TTM pick", "vs IPC/cost pick"});
    table.setAlign(0, Align::Left).setAlign(1, Align::Left);
    for (double window_weeks : {32.0, 40.0, 60.0, 104.0, 520.0}) {
        MarketWindow window;
        window.peak_unit_price = Dollars(1.0); // replaced per point
        window.window = Weeks(window_weeks);
        window.elasticity = 1.0;

        const CacheDesignPoint* best = nullptr;
        double best_profit = 0.0;
        for (const auto& point : points) {
            const double profit =
                profitOf(point, options.n_chips, window, kDollarsPerIpc);
            if (best == nullptr || profit > best_profit) {
                best = &point;
                best_profit = profit;
            }
        }
        table.addRow(
            {formatFixed(window_weeks, 0) + " wk",
             cacheSizeLabel(best->icache_bytes) + "/" +
                 cacheSizeLabel(best->dcache_bytes),
             formatFixed(best_profit / 1e9, 2),
             formatDollars(best_profit -
                               profitOf(best_ttm, options.n_chips,
                                        window, kDollarsPerIpc),
                           1),
             formatDollars(best_profit -
                               profitOf(best_cost, options.n_chips,
                                        window, kDollarsPerIpc),
                           1)});
    }
    std::cout << table.render() << "\n";
    std::cout << "Tight windows make TTM a first-order revenue term "
                 "(the paper's thesis restated in dollars); very long "
                 "windows reduce the objective to IPC-for-cost.\n\n";

    emitCsv("ablation_profit.csv", table.renderCsv());
    return 0;
}
