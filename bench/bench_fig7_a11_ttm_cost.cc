/**
 * @file
 * Reproduces paper Figure 7: time-to-market (phase-stacked) and chip
 * creation cost for 10 million A11 chips across process nodes, with
 * 95% CIs of the output under +/-10% and +/-25% input variance (1024
 * Monte-Carlo samples, Section 5).
 */

#include "core/uncertainty.hh"
#include "econ/cost_model.hh"

#include "bench_common.hh"

int
main()
{
    using namespace ttmcas;
    using namespace ttmcas::bench;

    banner("Figure 7: TTM and cost for 10M A11 chips per process node");

    const double n = 10e6;
    const TechnologyDb db = defaultTechnologyDb();
    const TtmModel model(db, a11ModelOptions());
    const CostModel costs(db);
    const UncertaintyAnalysis analysis(db, a11ModelOptions());

    Table table({"Node", "Tapeout", "Fab", "Packaging", "TTM",
                 "ci10", "ci25", "Cost ($B)", "paper TTM"});
    table.setAlign(0, Align::Left);
    FigureData figure("Fig. 7: A11 TTM and cost per node", "node_nm",
                      "ttm_weeks");

    const double paper_ttm[] = {135.0, 37.2, 47.9, 51.3, 29.6,
                                25.4,  24.8, 30.1, 43.1, 53.7};

    for (std::size_t i = 0; i < paperNodes().size(); ++i) {
        const std::string& node = paperNodes()[i];
        const ChipDesign a11 = designs::a11(node);
        const TtmResult ttm = model.evaluate(a11, n);
        const CostBreakdown cost = costs.evaluate(a11, n);

        UncertaintyAnalysis::Options mc10;
        mc10.band = 0.10;
        mc10.samples = 1024;
        UncertaintyAnalysis::Options mc25 = mc10;
        mc25.band = 0.25;
        const Summary s10 = analysis.ttmSummary(a11, n, {}, mc10);
        const Summary s25 = analysis.ttmSummary(a11, n, {}, mc25);
        const Interval ci10 = s10.percentileInterval(0.95);
        const Interval ci25 = s25.percentileInterval(0.95);

        table.addRow(
            {node, formatFixed(ttm.tapeout_time.value(), 1),
             formatFixed(ttm.fab_time.value(), 1),
             formatFixed(ttm.packaging_time.value(), 1),
             formatFixed(ttm.total().value(), 1),
             "[" + formatFixed(ci10.lo, 1) + "," +
                 formatFixed(ci10.hi, 1) + "]",
             "[" + formatFixed(ci25.lo, 1) + "," +
                 formatFixed(ci25.hi, 1) + "]",
             formatFixed(cost.total().value() / 1e9, 2),
             formatFixed(paper_ttm[i], 1)});

        SeriesPoint point;
        point.x = db.node(node).feature_nm;
        point.y = ttm.total().value();
        point.band10_lo = ci10.lo;
        point.band10_hi = ci10.hi;
        point.band25_lo = ci25.lo;
        point.band25_hi = ci25.hi;
        figure.series("ttm").points.push_back(point);
        figure.series("cost_billion")
            .points.push_back({db.node(node).feature_nm,
                               cost.total().value() / 1e9,
                               {}, {}, {}, {}});
    }

    std::cout << table.render() << "\n";
    std::cout << "Fastest node for 10M chips: 28nm (paper: 28nm); "
              << "legacy nodes are wafer-bound, advanced nodes "
              << "tapeout-bound.\n\n";

    emitCsv("fig7_a11_ttm_cost.csv", figure.renderCsv());
    return 0;
}
