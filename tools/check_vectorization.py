#!/usr/bin/env python3
"""Assert the compiled batch-kernel TU actually vectorized.

Reads the GCC vectorization report produced by configuring with
-DTTMCAS_VEC_REPORT=ON (src/core/CMakeLists.txt captures
`-fopt-info-vec-optimized` for ttm_batch.cc into
<build>/vec_report_ttm_batch.txt) and fails (exit 1) unless at least
--min-loops lines report a vectorized loop inside the kernel source
file. This guards the SoA hot loops of docs/PERFORMANCE.md against
silently de-vectorizing — e.g. by introducing a lane-crossing
dependence, an opaque call, or a branch the vectorizer cannot if-convert
into the inner loops.

Standard library only; run from anywhere:

    python3 tools/check_vectorization.py --report build/vec_report_ttm_batch.txt

Run by the kernel-bench CI job after the Release build.
"""

from __future__ import annotations

import argparse
import sys

# GCC emits "<file>:<line>:<col>: optimized: loop vectorized using ...".
# "basic block part vectorized" lines are SLP, not loop vectorization,
# and do not count toward the threshold.
_LOOP_MARK = "loop vectorized"


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--report",
        required=True,
        help="path to the captured -fopt-info-vec-optimized output")
    parser.add_argument(
        "--source",
        default="ttm_batch.cc",
        help="source file the vectorized loops must belong to "
             "(default: %(default)s)")
    parser.add_argument(
        "--min-loops",
        type=int,
        default=1,
        help="minimum vectorized-loop count to pass (default: "
             "%(default)s)")
    args = parser.parse_args()

    try:
        with open(args.report, encoding="utf-8", errors="replace") as f:
            lines = f.readlines()
    except OSError as error:
        print(f"error: cannot read report: {error}", file=sys.stderr)
        return 1

    vectorized = [
        line.strip()
        for line in lines
        if args.source in line and _LOOP_MARK in line
    ]
    for line in vectorized:
        print(line)
    print(f"{len(vectorized)} vectorized loop(s) in {args.source} "
          f"(minimum required: {args.min_loops})")
    if len(vectorized) < args.min_loops:
        print(
            f"error: expected at least {args.min_loops} vectorized "
            f"loop(s) in {args.source}; the batch kernel hot loops "
            "appear to have de-vectorized (see docs/PERFORMANCE.md)",
            file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
