#!/usr/bin/env python3
"""Chaos soak harness for ttm_serve (see docs/SERVING.md).

Drives a sequence of real server processes over TCP through the
failure modes an overload-proof service must absorb, asserting the
documented contracts from the outside:

  phase coalesce   N identical concurrent requests perform exactly one
                   evaluation: stats prove coalesce.followers == N-1,
                   coalesce.leaders == 1, cache.insertions == 1, and
                   all N replies carry byte-identical result payloads.
  phase hostile    concurrent valid, duplicate, and hostile clients
                   (binary garbage, oversized lines without newline,
                   byte-at-a-time framing, pipelined requests,
                   mid-request disconnects, slow-loris trickles) while
                   the server is SIGSTOP/SIGCONT'd mid-burst; every
                   well-formed request line gets exactly one
                   structured reply and the server stays healthy.
  phase overload   a flood past the admission bound sheds with
                   structured "overloaded" replies, never hangs.
  phase bounds     an insert burst against a small LRU cache never
                   exceeds the entry bound (polled live), then kill -9
                   mid-burst leaves no torn entry and no staging file;
                   planted .tmp/.evict.tmp orphans simulate a crash
                   mid-insert and mid-eviction.
  phase restart    the restarted server recovers a consistent bounded
                   cache, deletes the orphans, and serves the
                   pre-crash reference request byte-identically from
                   cache; SIGTERM drains with exit code 0.
  phase faults     --fault-rate keeps every reply well-formed while a
                   fraction of evaluation points fail.

Usage: serve_chaos.py /path/to/ttm_serve /path/to/workdir
Exit code: 0 when every check passed, 1 otherwise.
"""

import json
import os
import pathlib
import signal
import socket
import subprocess
import sys
import threading
import time

FAILURES = []
SERVERS = []  # every Popen ever started, reaped in main()'s finally


def check(condition, message):
    """Record (and report) one named check."""
    if not condition:
        FAILURES.append(message)
        print(f"FAIL: {message}", file=sys.stderr)


def die(message):
    print(f"FATAL: {message}", file=sys.stderr)
    sys.exit(1)


# ------------------------------------------------------------------ #
# Request builders (same shapes the C++ unit tests use).
# ------------------------------------------------------------------ #

DIE = '{"process":"7nm","total_transistors":2.4e9,"unique_transistors":2e8}'


def mc_request(req_id, seed, samples=32, extra=""):
    return (
        f'{{"id":"{req_id}","kind":"mc_ttm","design":{{"dies":[{DIE}]}},'
        f'"samples":{samples},"seed":{seed}{extra}}}'
    )


def filler_request(deadline_s):
    """16-die max-samples Sobol: occupies one worker for deadline_s."""
    dies = ",".join([DIE] * 16)
    return (
        f'{{"id":"filler","kind":"sobol_ttm","design":{{"dies":[{dies}]}},'
        f'"samples":1048576,"no_cache":true,"deadline_s":{deadline_s}}}'
    )


def result_portion(reply):
    """The byte-identity comparison key: everything after "result":."""
    at = reply.find('"result":')
    return reply[at:] if at >= 0 else None


# ------------------------------------------------------------------ #
# Server process wrapper.
# ------------------------------------------------------------------ #


class Server:
    def __init__(self, binary, workdir, name, extra_args):
        self.name = name
        self.out_path = workdir / f"{name}.out"
        self.err_path = workdir / f"{name}.err"
        self.out = open(self.out_path, "w")
        self.err = open(self.err_path, "w")
        self.proc = subprocess.Popen(
            [binary, "--tcp", "127.0.0.1:0"] + extra_args,
            stdout=self.out,
            stderr=self.err,
        )
        SERVERS.append(self.proc)
        self.port = self._wait_ready()

    def _wait_ready(self, budget_s=30.0):
        give_up = time.monotonic() + budget_s
        while time.monotonic() < give_up:
            text = self.out_path.read_text()
            if "ttm_serve ready" in text:
                for token in text.split():
                    if token.startswith("tcp="):
                        return int(token.rsplit(":", 1)[1])
                die(f"{self.name}: ready line has no tcp= endpoint")
            if self.proc.poll() is not None:
                die(
                    f"{self.name}: exited {self.proc.returncode} before "
                    f"ready: {self.err_path.read_text()}"
                )
            time.sleep(0.05)
        die(f"{self.name}: never became ready")

    def ready_field(self, key):
        for token in self.out_path.read_text().split():
            if token.startswith(key + "="):
                return token.split("=", 1)[1]
        return None

    def kill9(self):
        self.proc.kill()
        self.proc.wait()
        self._close_logs()

    def sigterm_and_check_drain(self):
        self.proc.send_signal(signal.SIGTERM)
        try:
            code = self.proc.wait(timeout=60)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            check(False, f"{self.name}: SIGTERM drain hung")
            self._close_logs()
            return
        check(code == 0, f"{self.name}: SIGTERM drain exited {code}")
        self._close_logs()
        check(
            "drained after" in self.err_path.read_text(),
            f"{self.name}: drain summary missing from stderr",
        )

    def _close_logs(self):
        self.out.close()
        self.err.close()


# ------------------------------------------------------------------ #
# NDJSON TCP clients.
# ------------------------------------------------------------------ #


def connect(port, timeout=60.0):
    sock = socket.create_connection(("127.0.0.1", port), timeout=timeout)
    return sock


def read_line(sock, budget_s=60.0):
    """One newline-terminated reply; None on EOF/timeout."""
    sock.settimeout(budget_s)
    buffer = b""
    try:
        while not buffer.endswith(b"\n"):
            chunk = sock.recv(4096)
            if not chunk:
                return None
            buffer += chunk
    except OSError:
        return None
    return buffer.decode()


def read_lines(sock, n, budget_s=60.0):
    """Up to @p n newline-terminated replies (the kernel may batch
    several pipelined replies into one recv)."""
    sock.settimeout(budget_s)
    buffer = b""
    try:
        while buffer.count(b"\n") < n:
            chunk = sock.recv(4096)
            if not chunk:
                break
            buffer += chunk
    except OSError:
        pass
    return [line.decode() for line in buffer.split(b"\n")[:n] if line]


def ask(port, line, budget_s=60.0):
    """One-shot request/reply on a fresh connection."""
    with connect(port, budget_s) as sock:
        sock.sendall(line.encode() + b"\n")
        return read_line(sock, budget_s)


def server_stats(port):
    reply = ask(port, '{"id":"s","kind":"stats"}', budget_s=10.0)
    return json.loads(reply) if reply else None


def eventually(predicate, budget_s=30.0, what="condition"):
    give_up = time.monotonic() + budget_s
    while time.monotonic() < give_up:
        if predicate():
            return True
        time.sleep(0.05)
    check(False, f"timed out waiting for {what}")
    return False


def parse_reply(reply, context):
    """Structured-reply contract: parseable JSON with a known status."""
    if reply is None:
        check(False, f"{context}: no reply")
        return None
    try:
        doc = json.loads(reply)
    except json.JSONDecodeError:
        check(False, f"{context}: unparseable reply {reply[:120]!r}")
        return None
    known = {
        "ok",
        "error",
        "overloaded",
        "draining",
        "deadline_exceeded",
        "cancelled",
    }
    check(
        doc.get("status") in known,
        f"{context}: unknown status in {reply[:120]!r}",
    )
    return doc


def validate_cache_dir(cache_dir, max_entries, context):
    """No staging files; every entry has a self-consistent envelope."""
    tmp = [p.name for p in cache_dir.glob("*.tmp")]
    check(not tmp, f"{context}: staging files survived: {tmp}")
    entries = sorted(cache_dir.glob("*.json"))
    check(
        len(entries) <= max_entries,
        f"{context}: {len(entries)} entries on disk exceeds "
        f"bound {max_entries}",
    )
    for path in entries:
        try:
            doc = json.loads(path.read_text())
            assert doc["format"] == "ttmcas-serve-cache-v1"
            assert doc["key"] == path.stem
            assert doc["payload_bytes"] == len(doc["payload"])
            json.loads(doc["payload"])
        except Exception as error:  # noqa: BLE001 - report and count
            check(False, f"{context}: torn entry {path.name}: {error}")


# ------------------------------------------------------------------ #
# Phase: coalesce — N identical concurrent requests, one evaluation.
# ------------------------------------------------------------------ #


def phase_coalesce(binary, workdir):
    print("phase coalesce: identical concurrent requests", flush=True)
    server = Server(
        binary,
        workdir,
        "coalesce",
        ["--workers", "1", "--queue", "16", "--deadline", "30"],
    )
    port = server.port
    followers = 5

    # Occupy the lone worker so the leader's evaluation queues and the
    # followers deterministically join its flight.
    filler_sock = connect(port)
    filler_sock.sendall(filler_request(3.0).encode() + b"\n")
    eventually(
        lambda: (server_stats(port) or {}).get("in_flight", 0) >= 1,
        what="filler to occupy the worker",
    )

    burst_line = mc_request("burst", seed=42, samples=64)
    socks = []
    for i in range(1 + followers):
        sock = connect(port)
        sock.sendall(burst_line.encode() + b"\n")
        socks.append(sock)

    # The flight must form while the filler still runs — proven by the
    # server's own counters, not by timing assumptions.
    eventually(
        lambda: (server_stats(port) or {"coalesce": {}})["coalesce"].get(
            "followers", 0
        )
        == followers,
        what=f"{followers} followers to join the flight",
    )

    replies = [read_line(sock) for sock in socks]
    docs = [parse_reply(r, "coalesce burst") for r in replies]
    statuses = [d.get("status") for d in docs if d]
    check(
        statuses == ["ok"] * (1 + followers),
        f"coalesce burst statuses: {statuses}",
    )
    cache_states = sorted(d.get("cache", "?") for d in docs if d)
    check(
        cache_states == ["coalesced"] * followers + ["miss"],
        f"coalesce burst cache states: {cache_states}",
    )
    portions = {result_portion(r) for r in replies if r}
    check(
        len(portions) == 1 and None not in portions,
        "coalesced replies are not byte-identical",
    )

    stats = server_stats(port)
    coalesce = stats["coalesce"]
    check(
        coalesce["leaders"] == 1,
        f"coalesce.leaders == {coalesce['leaders']}, want 1",
    )
    check(
        coalesce["followers"] == followers,
        f"coalesce.followers == {coalesce['followers']}, want {followers}",
    )
    check(
        stats["cache"]["insertions"] == 1,
        f"cache.insertions == {stats['cache']['insertions']}, want 1 "
        "(exactly one evaluation ran)",
    )
    check(
        coalesce["in_flight"] == 0,
        f"coalesce.in_flight == {coalesce['in_flight']} after the burst",
    )

    for sock in socks:
        sock.close()
    read_line(filler_sock)  # drain the filler's own reply
    filler_sock.close()
    server.sigterm_and_check_drain()


# ------------------------------------------------------------------ #
# Phase: hostile — mixed clients + SIGSTOP/SIGCONT, then overload.
# ------------------------------------------------------------------ #


def hostile_clients(port):
    """Each returns after asserting its own reply contract."""

    def valid_client(tag, seeds):
        with connect(port) as sock:
            for seed in seeds:
                sock.sendall(
                    mc_request(f"{tag}{seed}", seed, samples=16).encode()
                    + b"\n"
                )
                doc = parse_reply(read_line(sock), f"valid {tag}{seed}")
                if doc:
                    check(
                        doc.get("id") == f"{tag}{seed}",
                        f"valid {tag}{seed}: wrong id {doc.get('id')}",
                    )

    def duplicate_client():
        line = mc_request("dup", seed=7, samples=16)
        for i in range(6):
            doc = parse_reply(ask(port, line), f"duplicate {i}")
            if doc and doc.get("status") == "ok":
                check(
                    doc.get("cache") in {"miss", "hit", "coalesced"},
                    f"duplicate {i}: cache {doc.get('cache')}",
                )

    def garbage_client():
        reply = ask(port, '\x01\x02{"not json')
        doc = parse_reply(reply, "binary garbage")
        if doc:
            check(
                doc.get("status") == "error",
                f"garbage got status {doc.get('status')}",
            )

    def oversized_client():
        # 6000 bytes, no newline, over --max-request-bytes 4096: the
        # transport cuts the line and answers it structurally.
        with connect(port) as sock:
            sock.sendall(b"x" * 6000)
            doc = parse_reply(read_line(sock), "oversized line")
            if doc:
                check(
                    doc.get("status") == "error",
                    f"oversized line got status {doc.get('status')}",
                )

    def byte_at_a_time_client():
        # One request dribbled byte-by-byte, then a pipelined pair in
        # a single write: three replies, in order.
        with connect(port) as sock:
            for byte in mc_request("drip", seed=11, samples=8).encode():
                sock.sendall(bytes([byte]))
            sock.sendall(b"\n")
            sock.sendall(
                (
                    mc_request("pipe1", seed=12, samples=8)
                    + "\n"
                    + mc_request("pipe2", seed=13, samples=8)
                    + "\n"
                ).encode()
            )
            replies = read_lines(sock, 3)
            ids = []
            for i, reply in enumerate(replies):
                doc = parse_reply(reply, f"pipelined {i}")
                if doc:
                    ids.append(doc.get("id"))
            check(
                ids == ["drip", "pipe1", "pipe2"],
                f"pipelined reply ids: {ids}",
            )

    def disconnect_client():
        # Mid-request hangup: no reply owed; the server must not wedge.
        for _ in range(3):
            sock = connect(port)
            sock.sendall(b'{"id":"gone","kind":"mc_ttm"')
            sock.close()

    def slow_loris_client():
        # A started line that never completes trips --read-deadline
        # with a structured reply, then the connection closes.
        with connect(port) as sock:
            sock.sendall(b'{"id":"loris"')
            doc = parse_reply(read_line(sock, 30.0), "slow loris")
            if doc:
                check(
                    doc.get("status") == "error"
                    and doc.get("error", {}).get("code") == "read-deadline",
                    f"slow loris reply: {doc}",
                )
            check(
                read_line(sock, 10.0) is None,
                "slow-loris connection stayed open after the deadline",
            )

    return [
        threading.Thread(target=valid_client, args=("va", range(100, 106))),
        threading.Thread(target=valid_client, args=("vb", range(200, 206))),
        threading.Thread(target=duplicate_client),
        threading.Thread(target=garbage_client),
        threading.Thread(target=oversized_client),
        threading.Thread(target=byte_at_a_time_client),
        threading.Thread(target=disconnect_client),
        threading.Thread(target=slow_loris_client),
    ]


def phase_hostile_and_overload(binary, workdir):
    print("phase hostile: mixed clients + SIGSTOP/SIGCONT", flush=True)
    server = Server(
        binary,
        workdir,
        "hostile",
        [
            "--workers", "2", "--queue", "8",
            "--max-request-bytes", "4096",
            "--read-deadline", "1.5",
            "--cache-dir", str(workdir / "hostile_cache"),
        ],
    )
    port = server.port

    threads = hostile_clients(port)
    for thread in threads:
        thread.start()
    # Freeze the server mid-burst; clients carry generous timeouts, so
    # the only acceptable outcome is delayed-but-correct replies.
    time.sleep(0.3)
    server.proc.send_signal(signal.SIGSTOP)
    time.sleep(0.3)
    server.proc.send_signal(signal.SIGCONT)
    for thread in threads:
        thread.join()

    doc = parse_reply(
        ask(port, '{"id":"h","kind":"health"}'), "post-burst health"
    )
    if doc:
        check(doc.get("status") == "ok", f"post-burst health: {doc}")

    print("phase overload: flood past the admission bound", flush=True)
    results = []
    lock = threading.Lock()

    def flooder(i):
        # Distinct seeds so the flood cannot coalesce and must hit the
        # admission gate; 2s deadline keeps admitted work bounded.
        line = mc_request(
            f"flood{i}", seed=1000 + i, samples=4096, extra=',"deadline_s":2'
        )
        doc = parse_reply(ask(port, line), f"flood {i}")
        if doc:
            with lock:
                results.append(doc.get("status"))

    flood = [
        threading.Thread(target=flooder, args=(i,)) for i in range(24)
    ]
    for thread in flood:
        thread.start()
    for thread in flood:
        thread.join()
    check(len(results) == 24, f"flood: {len(results)}/24 replies")
    bad = [s for s in results if s not in {"ok", "overloaded", "deadline_exceeded"}]
    check(not bad, f"flood produced unexpected statuses: {bad}")
    check(
        "overloaded" in results,
        f"flood past the bound shed nothing: {results}",
    )

    stats = server_stats(port)
    check(stats is not None, "stats unavailable after the flood")
    if stats:
        check(stats["shed"] >= 1, f"stats.shed == {stats['shed']} after flood")
    server.sigterm_and_check_drain()


# ------------------------------------------------------------------ #
# Phase: bounds + kill -9 + restart.
# ------------------------------------------------------------------ #

BOUND_ARGS = [
    "--workers", "2", "--queue", "8", "--cache-entries", "8",
]


def phase_bounds_crash_restart(binary, workdir):
    print("phase bounds: LRU bound under insert burst, then kill -9",
          flush=True)
    cache_dir = workdir / "bounded_cache"
    server = Server(
        binary,
        workdir,
        "bounded",
        BOUND_ARGS + ["--cache-dir", str(cache_dir)],
    )
    port = server.port

    # Reference request: cached before the burst, kept hot throughout,
    # so it must survive eviction pressure and the crash.
    ref = mc_request("ref", seed=999, samples=32)
    miss = parse_reply(ask(port, ref), "reference miss")
    if miss:
        check(miss.get("cache") == "miss", f"reference first ask: {miss}")
    ref_portion = result_portion(ask(port, ref) or "")
    check(ref_portion is not None, "reference hit has no result payload")

    stop_burst = threading.Event()

    def burst():
        seed = 0
        while not stop_burst.is_set():
            seed += 1
            try:
                ask(port, mc_request(f"b{seed}", 2000 + seed, samples=8),
                    budget_s=10.0)
                ask(port, ref, budget_s=10.0)  # keep the reference hot
            except OSError:
                return  # the kill -9 below severs us mid-conversation

    burster = threading.Thread(target=burst)
    burster.start()

    # Live bound check while evictions churn underneath.
    give_up = time.monotonic() + 3.0
    saw_eviction = False
    while time.monotonic() < give_up:
        stats = server_stats(port)
        if stats:
            entries = stats["cache"]["entries"]
            check(entries <= 8, f"live cache.entries {entries} exceeds 8")
            saw_eviction = saw_eviction or stats["cache"]["evictions"] > 0
        time.sleep(0.1)
    check(saw_eviction, "burst never drove the cache into eviction")

    server.kill9()  # mid-burst, mid-eviction-churn
    stop_burst.set()
    burster.join()

    validate_cache_dir(cache_dir, max_entries=8, context="post-kill")

    # Plant the two orphan species a crash can leave: a writer killed
    # between write and rename, an evictor killed between rename and
    # remove. recover() must delete both, load neither.
    (cache_dir / "orphan.json.tmp").write_text(
        '{"format":"ttmcas-serve-cache-v1"'
    )
    (cache_dir / "victim.json.evict.tmp").write_text(
        '{"format":"ttmcas-serve-cache-v1","key":"victim",'
        '"kernel":"k","payload_bytes":2,"payload":"{}"}'
    )

    print("phase restart: recover bounded cache byte-for-byte", flush=True)
    restarted = Server(
        binary,
        workdir,
        "restarted",
        BOUND_ARGS + ["--cache-dir", str(cache_dir)],
    )
    port = restarted.port
    recovered = int(restarted.ready_field("recovered") or "0")
    check(1 <= recovered <= 8, f"recovered={recovered}, want 1..8")

    stats = server_stats(port)
    check(
        stats["cache"]["entries"] <= 8,
        f"restarted cache.entries {stats['cache']['entries']} exceeds 8",
    )
    check(
        stats["cache"]["orphans_deleted"] >= 2,
        f"orphans_deleted == {stats['cache']['orphans_deleted']}, want >= 2",
    )
    check(
        not (cache_dir / "orphan.json.tmp").exists()
        and not (cache_dir / "victim.json.evict.tmp").exists(),
        "planted orphan files survived recover()",
    )
    doc = parse_reply(ask(port, ref), "post-restart reference")
    if doc:
        check(
            doc.get("cache") == "hit",
            f"post-restart reference not served from cache: {doc}",
        )
    check(
        result_portion(ask(port, ref) or "") == ref_portion,
        "recovered reference reply is not byte-identical",
    )

    # The bound holds across the restart boundary under fresh churn.
    for seed in range(50, 62):
        ask(port, mc_request(f"r{seed}", seed, samples=8))
    validate_cache_dir(cache_dir, max_entries=8, context="post-restart")
    restarted.sigterm_and_check_drain()


# ------------------------------------------------------------------ #
# Phase: faults — armed injector, replies stay well-formed.
# ------------------------------------------------------------------ #


def phase_faults(binary, workdir):
    print("phase faults: --fault-rate keeps replies well-formed",
          flush=True)
    server = Server(
        binary,
        workdir,
        "faulty",
        ["--workers", "2", "--queue", "8",
         "--fault-rate", "0.4", "--fault-seed", "7"],
    )
    port = server.port
    for seed in range(8):
        doc = parse_reply(
            ask(port, mc_request(f"f{seed}", 3000 + seed, samples=64)),
            f"faulty {seed}",
        )
        if doc:
            check(
                doc.get("status") in {"ok", "error"},
                f"faulty {seed}: status {doc.get('status')}",
            )
    doc = parse_reply(ask(port, '{"id":"h","kind":"health"}'),
                      "faulty health")
    if doc:
        check(doc.get("status") == "ok", f"faulty health: {doc}")
    server.sigterm_and_check_drain()


# ------------------------------------------------------------------ #


def main():
    if len(sys.argv) != 3:
        die("usage: serve_chaos.py /path/to/ttm_serve /path/to/workdir")
    binary = sys.argv[1]
    workdir = pathlib.Path(sys.argv[2])
    workdir.mkdir(parents=True, exist_ok=True)
    if not os.access(binary, os.X_OK):
        die(f"not executable: {binary}")

    try:
        phase_coalesce(binary, workdir)
        phase_hostile_and_overload(binary, workdir)
        phase_bounds_crash_restart(binary, workdir)
        phase_faults(binary, workdir)
    finally:
        for proc in SERVERS:  # reap anything a failed phase stranded
            if proc.poll() is None:
                proc.kill()
                proc.wait()

    if FAILURES:
        print(f"{len(FAILURES)} chaos check(s) failed", file=sys.stderr)
        return 1
    print("all serve chaos checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
