#!/usr/bin/env python3
"""Check relative links and anchors in the repository's Markdown files.

Walks every tracked *.md file, extracts inline links/images, and fails
(exit 1) when a relative link points at a file that does not exist or
at a heading anchor that no target document defines. External links
(http/https/mailto) are *not* fetched -- CI must stay deterministic and
offline -- so only repository-local references are validated.

Standard library only; run from anywhere:

    python3 tools/check_markdown_links.py [--root REPO_ROOT] [-v]

Registered as the `docs`-labeled ctest (`ctest -L docs`) and run by the
docs CI job on every push.
"""

from __future__ import annotations

import argparse
import os
import re
import sys

# Inline links and images: [text](target) / ![alt](target "title").
# The target stops at whitespace or the closing parenthesis, which is
# enough for every link this repository writes (no nested parens).
_LINK_RE = re.compile(r"!?\[[^\]]*\]\(\s*([^)\s]+)(?:\s+\"[^\"]*\")?\s*\)")
_FENCE_RE = re.compile(r"^\s*(```|~~~)")
_CODE_SPAN_RE = re.compile(r"`[^`]*`")
_HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:", "ftp://")

# Directories never containing authored docs (build trees, artifacts).
_SKIP_DIRS = {".git", ".github", "bench_out", "obs_out", "third_party"}


def findMarkdownFiles(root: str) -> list[str]:
    found = []
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = sorted(
            d for d in dirnames
            if d not in _SKIP_DIRS and not d.startswith("build")
        )
        for name in sorted(filenames):
            if name.lower().endswith(".md"):
                found.append(os.path.join(dirpath, name))
    return found


def stripCode(lines: list[str]) -> list[str]:
    """Blank out fenced code blocks and inline code spans."""
    out = []
    in_fence = False
    for line in lines:
        if _FENCE_RE.match(line):
            in_fence = not in_fence
            out.append("")
            continue
        out.append("" if in_fence else _CODE_SPAN_RE.sub("", line))
    return out


def headingAnchors(path: str) -> set[str]:
    """GitHub-style slugs of every heading in the file.

    GitHub slugs: lowercase, drop everything but word characters,
    spaces, and hyphens, then turn spaces into hyphens. Duplicate
    headings get -1, -2, ... suffixes.
    """
    with open(path, encoding="utf-8") as handle:
        lines = stripCode(handle.read().splitlines())
    anchors: set[str] = set()
    seen: dict[str, int] = {}
    for line in lines:
        match = _HEADING_RE.match(line)
        if not match:
            continue
        text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", match.group(2))
        slug = re.sub(r"[^\w\- ]", "", text.lower(), flags=re.UNICODE)
        slug = slug.replace(" ", "-")
        count = seen.get(slug, 0)
        seen[slug] = count + 1
        anchors.add(slug if count == 0 else f"{slug}-{count}")
    return anchors


def checkFile(path: str, root: str, anchor_cache: dict[str, set[str]],
              verbose: bool) -> list[str]:
    errors = []
    with open(path, encoding="utf-8") as handle:
        lines = stripCode(handle.read().splitlines())
    rel = os.path.relpath(path, root)
    for lineno, line in enumerate(lines, start=1):
        for match in _LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(_EXTERNAL_SCHEMES):
                continue
            if verbose:
                print(f"  {rel}:{lineno}: {target}")
            path_part, _, anchor = target.partition("#")
            if path_part:
                resolved = os.path.normpath(
                    os.path.join(os.path.dirname(path), path_part))
            else:
                resolved = path  # same-file anchor
            if not os.path.exists(resolved):
                errors.append(f"{rel}:{lineno}: broken link `{target}` "
                              f"(no such file: {path_part})")
                continue
            if not anchor or not resolved.lower().endswith(".md"):
                continue
            if resolved not in anchor_cache:
                anchor_cache[resolved] = headingAnchors(resolved)
            if anchor.lower() not in anchor_cache[resolved]:
                errors.append(f"{rel}:{lineno}: broken anchor `{target}` "
                              f"(no heading slug `{anchor}` in "
                              f"{os.path.relpath(resolved, root)})")
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    default_root = os.path.normpath(
        os.path.join(os.path.dirname(os.path.abspath(__file__)), ".."))
    parser.add_argument("--root", default=default_root,
                        help="repository root to scan (default: repo)")
    parser.add_argument("-v", "--verbose", action="store_true",
                        help="print every link as it is checked")
    args = parser.parse_args()

    files = findMarkdownFiles(args.root)
    if not files:
        print(f"error: no markdown files under {args.root}",
              file=sys.stderr)
        return 1

    anchor_cache: dict[str, set[str]] = {}
    errors: list[str] = []
    for path in files:
        errors.extend(checkFile(path, args.root, anchor_cache,
                                args.verbose))

    for error in errors:
        print(error, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
