# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[smoke_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[smoke_quickstart]=] PROPERTIES  LABELS "example" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_cache_design_explorer]=] "/root/repo/build/examples/cache_design_explorer" "14nm" "10")
set_tests_properties([=[smoke_cache_design_explorer]=] PROPERTIES  LABELS "example" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_shortage_wargame]=] "/root/repo/build/examples/shortage_wargame")
set_tests_properties([=[smoke_shortage_wargame]=] PROPERTIES  LABELS "example" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_multi_process_planner]=] "/root/repo/build/examples/multi_process_planner" "0.5")
set_tests_properties([=[smoke_multi_process_planner]=] PROPERTIES  LABELS "example" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_profit_planner]=] "/root/repo/build/examples/profit_planner")
set_tests_properties([=[smoke_profit_planner]=] PROPERTIES  LABELS "example" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[smoke_ttm_cli]=] "/root/repo/build/examples/ttm_cli" "--node" "7nm" "--ntt" "2.4e9" "--nut" "2e8" "--chips" "5e7" "--risk" "45")
set_tests_properties([=[smoke_ttm_cli]=] PROPERTIES  LABELS "example" TIMEOUT "600" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
