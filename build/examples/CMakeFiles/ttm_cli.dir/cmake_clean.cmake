file(REMOVE_RECURSE
  "CMakeFiles/ttm_cli.dir/ttm_cli.cpp.o"
  "CMakeFiles/ttm_cli.dir/ttm_cli.cpp.o.d"
  "ttm_cli"
  "ttm_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttm_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
