# Empty dependencies file for ttm_cli.
# This may be replaced when dependencies are built.
