file(REMOVE_RECURSE
  "CMakeFiles/multi_process_planner.dir/multi_process_planner.cpp.o"
  "CMakeFiles/multi_process_planner.dir/multi_process_planner.cpp.o.d"
  "multi_process_planner"
  "multi_process_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_process_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
