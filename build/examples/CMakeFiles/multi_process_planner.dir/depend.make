# Empty dependencies file for multi_process_planner.
# This may be replaced when dependencies are built.
