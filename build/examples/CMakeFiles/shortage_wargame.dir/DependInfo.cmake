
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/shortage_wargame.cpp" "examples/CMakeFiles/shortage_wargame.dir/shortage_wargame.cpp.o" "gcc" "examples/CMakeFiles/shortage_wargame.dir/shortage_wargame.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/ttmcas_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ttmcas_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/ttmcas_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ttmcas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ttmcas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ttmcas_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmcas_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/ttmcas_report.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ttmcas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
