# Empty dependencies file for shortage_wargame.
# This may be replaced when dependencies are built.
