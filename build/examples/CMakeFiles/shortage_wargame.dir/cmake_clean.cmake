file(REMOVE_RECURSE
  "CMakeFiles/shortage_wargame.dir/shortage_wargame.cpp.o"
  "CMakeFiles/shortage_wargame.dir/shortage_wargame.cpp.o.d"
  "shortage_wargame"
  "shortage_wargame.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shortage_wargame.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
