# Empty compiler generated dependencies file for profit_planner.
# This may be replaced when dependencies are built.
