file(REMOVE_RECURSE
  "CMakeFiles/profit_planner.dir/profit_planner.cpp.o"
  "CMakeFiles/profit_planner.dir/profit_planner.cpp.o.d"
  "profit_planner"
  "profit_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/profit_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
