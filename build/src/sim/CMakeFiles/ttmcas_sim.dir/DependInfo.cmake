
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/ariane.cc" "src/sim/CMakeFiles/ttmcas_sim.dir/ariane.cc.o" "gcc" "src/sim/CMakeFiles/ttmcas_sim.dir/ariane.cc.o.d"
  "/root/repo/src/sim/branch_predictor.cc" "src/sim/CMakeFiles/ttmcas_sim.dir/branch_predictor.cc.o" "gcc" "src/sim/CMakeFiles/ttmcas_sim.dir/branch_predictor.cc.o.d"
  "/root/repo/src/sim/cache.cc" "src/sim/CMakeFiles/ttmcas_sim.dir/cache.cc.o" "gcc" "src/sim/CMakeFiles/ttmcas_sim.dir/cache.cc.o.d"
  "/root/repo/src/sim/cache_hierarchy.cc" "src/sim/CMakeFiles/ttmcas_sim.dir/cache_hierarchy.cc.o" "gcc" "src/sim/CMakeFiles/ttmcas_sim.dir/cache_hierarchy.cc.o.d"
  "/root/repo/src/sim/ipc_model.cc" "src/sim/CMakeFiles/ttmcas_sim.dir/ipc_model.cc.o" "gcc" "src/sim/CMakeFiles/ttmcas_sim.dir/ipc_model.cc.o.d"
  "/root/repo/src/sim/miss_curves.cc" "src/sim/CMakeFiles/ttmcas_sim.dir/miss_curves.cc.o" "gcc" "src/sim/CMakeFiles/ttmcas_sim.dir/miss_curves.cc.o.d"
  "/root/repo/src/sim/pipeline.cc" "src/sim/CMakeFiles/ttmcas_sim.dir/pipeline.cc.o" "gcc" "src/sim/CMakeFiles/ttmcas_sim.dir/pipeline.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/ttmcas_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/ttmcas_sim.dir/trace.cc.o.d"
  "/root/repo/src/sim/workloads.cc" "src/sim/CMakeFiles/ttmcas_sim.dir/workloads.cc.o" "gcc" "src/sim/CMakeFiles/ttmcas_sim.dir/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ttmcas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmcas_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ttmcas_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ttmcas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
