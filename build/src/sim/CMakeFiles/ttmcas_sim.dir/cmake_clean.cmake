file(REMOVE_RECURSE
  "CMakeFiles/ttmcas_sim.dir/ariane.cc.o"
  "CMakeFiles/ttmcas_sim.dir/ariane.cc.o.d"
  "CMakeFiles/ttmcas_sim.dir/branch_predictor.cc.o"
  "CMakeFiles/ttmcas_sim.dir/branch_predictor.cc.o.d"
  "CMakeFiles/ttmcas_sim.dir/cache.cc.o"
  "CMakeFiles/ttmcas_sim.dir/cache.cc.o.d"
  "CMakeFiles/ttmcas_sim.dir/cache_hierarchy.cc.o"
  "CMakeFiles/ttmcas_sim.dir/cache_hierarchy.cc.o.d"
  "CMakeFiles/ttmcas_sim.dir/ipc_model.cc.o"
  "CMakeFiles/ttmcas_sim.dir/ipc_model.cc.o.d"
  "CMakeFiles/ttmcas_sim.dir/miss_curves.cc.o"
  "CMakeFiles/ttmcas_sim.dir/miss_curves.cc.o.d"
  "CMakeFiles/ttmcas_sim.dir/pipeline.cc.o"
  "CMakeFiles/ttmcas_sim.dir/pipeline.cc.o.d"
  "CMakeFiles/ttmcas_sim.dir/trace.cc.o"
  "CMakeFiles/ttmcas_sim.dir/trace.cc.o.d"
  "CMakeFiles/ttmcas_sim.dir/workloads.cc.o"
  "CMakeFiles/ttmcas_sim.dir/workloads.cc.o.d"
  "libttmcas_sim.a"
  "libttmcas_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmcas_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
