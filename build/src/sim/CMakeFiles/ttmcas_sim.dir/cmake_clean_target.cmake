file(REMOVE_RECURSE
  "libttmcas_sim.a"
)
