# Empty compiler generated dependencies file for ttmcas_sim.
# This may be replaced when dependencies are built.
