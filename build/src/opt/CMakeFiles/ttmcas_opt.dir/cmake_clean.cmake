file(REMOVE_RECURSE
  "CMakeFiles/ttmcas_opt.dir/cache_optimizer.cc.o"
  "CMakeFiles/ttmcas_opt.dir/cache_optimizer.cc.o.d"
  "CMakeFiles/ttmcas_opt.dir/node_selector.cc.o"
  "CMakeFiles/ttmcas_opt.dir/node_selector.cc.o.d"
  "CMakeFiles/ttmcas_opt.dir/pareto.cc.o"
  "CMakeFiles/ttmcas_opt.dir/pareto.cc.o.d"
  "CMakeFiles/ttmcas_opt.dir/portfolio.cc.o"
  "CMakeFiles/ttmcas_opt.dir/portfolio.cc.o.d"
  "CMakeFiles/ttmcas_opt.dir/split_optimizer.cc.o"
  "CMakeFiles/ttmcas_opt.dir/split_optimizer.cc.o.d"
  "libttmcas_opt.a"
  "libttmcas_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmcas_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
