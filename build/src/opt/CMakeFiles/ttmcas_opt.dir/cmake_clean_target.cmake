file(REMOVE_RECURSE
  "libttmcas_opt.a"
)
