# Empty dependencies file for ttmcas_opt.
# This may be replaced when dependencies are built.
