# Empty compiler generated dependencies file for ttmcas_support.
# This may be replaced when dependencies are built.
