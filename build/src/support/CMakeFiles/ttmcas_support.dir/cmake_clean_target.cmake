file(REMOVE_RECURSE
  "libttmcas_support.a"
)
