file(REMOVE_RECURSE
  "CMakeFiles/ttmcas_support.dir/error.cc.o"
  "CMakeFiles/ttmcas_support.dir/error.cc.o.d"
  "CMakeFiles/ttmcas_support.dir/mathutil.cc.o"
  "CMakeFiles/ttmcas_support.dir/mathutil.cc.o.d"
  "CMakeFiles/ttmcas_support.dir/strutil.cc.o"
  "CMakeFiles/ttmcas_support.dir/strutil.cc.o.d"
  "libttmcas_support.a"
  "libttmcas_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmcas_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
