
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/error.cc" "src/support/CMakeFiles/ttmcas_support.dir/error.cc.o" "gcc" "src/support/CMakeFiles/ttmcas_support.dir/error.cc.o.d"
  "/root/repo/src/support/mathutil.cc" "src/support/CMakeFiles/ttmcas_support.dir/mathutil.cc.o" "gcc" "src/support/CMakeFiles/ttmcas_support.dir/mathutil.cc.o.d"
  "/root/repo/src/support/strutil.cc" "src/support/CMakeFiles/ttmcas_support.dir/strutil.cc.o" "gcc" "src/support/CMakeFiles/ttmcas_support.dir/strutil.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
