file(REMOVE_RECURSE
  "CMakeFiles/ttmcas_tech.dir/dataset_io.cc.o"
  "CMakeFiles/ttmcas_tech.dir/dataset_io.cc.o.d"
  "CMakeFiles/ttmcas_tech.dir/default_dataset.cc.o"
  "CMakeFiles/ttmcas_tech.dir/default_dataset.cc.o.d"
  "CMakeFiles/ttmcas_tech.dir/effort_model.cc.o"
  "CMakeFiles/ttmcas_tech.dir/effort_model.cc.o.d"
  "CMakeFiles/ttmcas_tech.dir/process_node.cc.o"
  "CMakeFiles/ttmcas_tech.dir/process_node.cc.o.d"
  "CMakeFiles/ttmcas_tech.dir/technology_db.cc.o"
  "CMakeFiles/ttmcas_tech.dir/technology_db.cc.o.d"
  "libttmcas_tech.a"
  "libttmcas_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmcas_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
