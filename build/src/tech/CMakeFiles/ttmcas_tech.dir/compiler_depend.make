# Empty compiler generated dependencies file for ttmcas_tech.
# This may be replaced when dependencies are built.
