
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/dataset_io.cc" "src/tech/CMakeFiles/ttmcas_tech.dir/dataset_io.cc.o" "gcc" "src/tech/CMakeFiles/ttmcas_tech.dir/dataset_io.cc.o.d"
  "/root/repo/src/tech/default_dataset.cc" "src/tech/CMakeFiles/ttmcas_tech.dir/default_dataset.cc.o" "gcc" "src/tech/CMakeFiles/ttmcas_tech.dir/default_dataset.cc.o.d"
  "/root/repo/src/tech/effort_model.cc" "src/tech/CMakeFiles/ttmcas_tech.dir/effort_model.cc.o" "gcc" "src/tech/CMakeFiles/ttmcas_tech.dir/effort_model.cc.o.d"
  "/root/repo/src/tech/process_node.cc" "src/tech/CMakeFiles/ttmcas_tech.dir/process_node.cc.o" "gcc" "src/tech/CMakeFiles/ttmcas_tech.dir/process_node.cc.o.d"
  "/root/repo/src/tech/technology_db.cc" "src/tech/CMakeFiles/ttmcas_tech.dir/technology_db.cc.o" "gcc" "src/tech/CMakeFiles/ttmcas_tech.dir/technology_db.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ttmcas_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmcas_stats.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
