file(REMOVE_RECURSE
  "libttmcas_tech.a"
)
