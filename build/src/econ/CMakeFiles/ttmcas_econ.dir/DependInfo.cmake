
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/econ/cost_model.cc" "src/econ/CMakeFiles/ttmcas_econ.dir/cost_model.cc.o" "gcc" "src/econ/CMakeFiles/ttmcas_econ.dir/cost_model.cc.o.d"
  "/root/repo/src/econ/reservation.cc" "src/econ/CMakeFiles/ttmcas_econ.dir/reservation.cc.o" "gcc" "src/econ/CMakeFiles/ttmcas_econ.dir/reservation.cc.o.d"
  "/root/repo/src/econ/revenue_model.cc" "src/econ/CMakeFiles/ttmcas_econ.dir/revenue_model.cc.o" "gcc" "src/econ/CMakeFiles/ttmcas_econ.dir/revenue_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ttmcas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ttmcas_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmcas_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ttmcas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
