# Empty dependencies file for ttmcas_econ.
# This may be replaced when dependencies are built.
