file(REMOVE_RECURSE
  "CMakeFiles/ttmcas_econ.dir/cost_model.cc.o"
  "CMakeFiles/ttmcas_econ.dir/cost_model.cc.o.d"
  "CMakeFiles/ttmcas_econ.dir/reservation.cc.o"
  "CMakeFiles/ttmcas_econ.dir/reservation.cc.o.d"
  "CMakeFiles/ttmcas_econ.dir/revenue_model.cc.o"
  "CMakeFiles/ttmcas_econ.dir/revenue_model.cc.o.d"
  "libttmcas_econ.a"
  "libttmcas_econ.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmcas_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
