file(REMOVE_RECURSE
  "libttmcas_econ.a"
)
