file(REMOVE_RECURSE
  "libttmcas_accel.a"
)
