file(REMOVE_RECURSE
  "CMakeFiles/ttmcas_accel.dir/accel_study.cc.o"
  "CMakeFiles/ttmcas_accel.dir/accel_study.cc.o.d"
  "CMakeFiles/ttmcas_accel.dir/baseline.cc.o"
  "CMakeFiles/ttmcas_accel.dir/baseline.cc.o.d"
  "CMakeFiles/ttmcas_accel.dir/fft.cc.o"
  "CMakeFiles/ttmcas_accel.dir/fft.cc.o.d"
  "CMakeFiles/ttmcas_accel.dir/sorting_network.cc.o"
  "CMakeFiles/ttmcas_accel.dir/sorting_network.cc.o.d"
  "libttmcas_accel.a"
  "libttmcas_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmcas_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
