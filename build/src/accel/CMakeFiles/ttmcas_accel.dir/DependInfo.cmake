
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/accel/accel_study.cc" "src/accel/CMakeFiles/ttmcas_accel.dir/accel_study.cc.o" "gcc" "src/accel/CMakeFiles/ttmcas_accel.dir/accel_study.cc.o.d"
  "/root/repo/src/accel/baseline.cc" "src/accel/CMakeFiles/ttmcas_accel.dir/baseline.cc.o" "gcc" "src/accel/CMakeFiles/ttmcas_accel.dir/baseline.cc.o.d"
  "/root/repo/src/accel/fft.cc" "src/accel/CMakeFiles/ttmcas_accel.dir/fft.cc.o" "gcc" "src/accel/CMakeFiles/ttmcas_accel.dir/fft.cc.o.d"
  "/root/repo/src/accel/sorting_network.cc" "src/accel/CMakeFiles/ttmcas_accel.dir/sorting_network.cc.o" "gcc" "src/accel/CMakeFiles/ttmcas_accel.dir/sorting_network.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ttmcas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/ttmcas_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmcas_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ttmcas_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ttmcas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
