# Empty dependencies file for ttmcas_accel.
# This may be replaced when dependencies are built.
