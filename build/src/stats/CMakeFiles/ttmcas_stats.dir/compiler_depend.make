# Empty compiler generated dependencies file for ttmcas_stats.
# This may be replaced when dependencies are built.
