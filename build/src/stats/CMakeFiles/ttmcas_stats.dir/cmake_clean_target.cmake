file(REMOVE_RECURSE
  "libttmcas_stats.a"
)
