file(REMOVE_RECURSE
  "CMakeFiles/ttmcas_stats.dir/distributions.cc.o"
  "CMakeFiles/ttmcas_stats.dir/distributions.cc.o.d"
  "CMakeFiles/ttmcas_stats.dir/histogram.cc.o"
  "CMakeFiles/ttmcas_stats.dir/histogram.cc.o.d"
  "CMakeFiles/ttmcas_stats.dir/lowdiscrepancy.cc.o"
  "CMakeFiles/ttmcas_stats.dir/lowdiscrepancy.cc.o.d"
  "CMakeFiles/ttmcas_stats.dir/regression.cc.o"
  "CMakeFiles/ttmcas_stats.dir/regression.cc.o.d"
  "CMakeFiles/ttmcas_stats.dir/rng.cc.o"
  "CMakeFiles/ttmcas_stats.dir/rng.cc.o.d"
  "CMakeFiles/ttmcas_stats.dir/sobol.cc.o"
  "CMakeFiles/ttmcas_stats.dir/sobol.cc.o.d"
  "CMakeFiles/ttmcas_stats.dir/summary.cc.o"
  "CMakeFiles/ttmcas_stats.dir/summary.cc.o.d"
  "libttmcas_stats.a"
  "libttmcas_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmcas_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
