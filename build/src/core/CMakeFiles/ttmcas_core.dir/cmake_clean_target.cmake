file(REMOVE_RECURSE
  "libttmcas_core.a"
)
