
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocation.cc" "src/core/CMakeFiles/ttmcas_core.dir/allocation.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/allocation.cc.o.d"
  "/root/repo/src/core/binning.cc" "src/core/CMakeFiles/ttmcas_core.dir/binning.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/binning.cc.o.d"
  "/root/repo/src/core/cas.cc" "src/core/CMakeFiles/ttmcas_core.dir/cas.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/cas.cc.o.d"
  "/root/repo/src/core/design.cc" "src/core/CMakeFiles/ttmcas_core.dir/design.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/design.cc.o.d"
  "/root/repo/src/core/design_io.cc" "src/core/CMakeFiles/ttmcas_core.dir/design_io.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/design_io.cc.o.d"
  "/root/repo/src/core/hoarding.cc" "src/core/CMakeFiles/ttmcas_core.dir/hoarding.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/hoarding.cc.o.d"
  "/root/repo/src/core/market.cc" "src/core/CMakeFiles/ttmcas_core.dir/market.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/market.cc.o.d"
  "/root/repo/src/core/reference_designs.cc" "src/core/CMakeFiles/ttmcas_core.dir/reference_designs.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/reference_designs.cc.o.d"
  "/root/repo/src/core/risk.cc" "src/core/CMakeFiles/ttmcas_core.dir/risk.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/risk.cc.o.d"
  "/root/repo/src/core/scenario.cc" "src/core/CMakeFiles/ttmcas_core.dir/scenario.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/scenario.cc.o.d"
  "/root/repo/src/core/tapeout_plan.cc" "src/core/CMakeFiles/ttmcas_core.dir/tapeout_plan.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/tapeout_plan.cc.o.d"
  "/root/repo/src/core/timeline.cc" "src/core/CMakeFiles/ttmcas_core.dir/timeline.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/timeline.cc.o.d"
  "/root/repo/src/core/ttm_model.cc" "src/core/CMakeFiles/ttmcas_core.dir/ttm_model.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/ttm_model.cc.o.d"
  "/root/repo/src/core/uncertainty.cc" "src/core/CMakeFiles/ttmcas_core.dir/uncertainty.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/uncertainty.cc.o.d"
  "/root/repo/src/core/wafer.cc" "src/core/CMakeFiles/ttmcas_core.dir/wafer.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/wafer.cc.o.d"
  "/root/repo/src/core/yield.cc" "src/core/CMakeFiles/ttmcas_core.dir/yield.cc.o" "gcc" "src/core/CMakeFiles/ttmcas_core.dir/yield.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ttmcas_support.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmcas_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ttmcas_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
