# Empty compiler generated dependencies file for ttmcas_core.
# This may be replaced when dependencies are built.
