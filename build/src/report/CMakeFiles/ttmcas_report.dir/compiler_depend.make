# Empty compiler generated dependencies file for ttmcas_report.
# This may be replaced when dependencies are built.
