file(REMOVE_RECURSE
  "CMakeFiles/ttmcas_report.dir/ascii_plot.cc.o"
  "CMakeFiles/ttmcas_report.dir/ascii_plot.cc.o.d"
  "CMakeFiles/ttmcas_report.dir/matrix.cc.o"
  "CMakeFiles/ttmcas_report.dir/matrix.cc.o.d"
  "CMakeFiles/ttmcas_report.dir/series.cc.o"
  "CMakeFiles/ttmcas_report.dir/series.cc.o.d"
  "CMakeFiles/ttmcas_report.dir/table.cc.o"
  "CMakeFiles/ttmcas_report.dir/table.cc.o.d"
  "libttmcas_report.a"
  "libttmcas_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttmcas_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
