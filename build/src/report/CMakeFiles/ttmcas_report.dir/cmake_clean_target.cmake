file(REMOVE_RECURSE
  "libttmcas_report.a"
)
