
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/report/ascii_plot.cc" "src/report/CMakeFiles/ttmcas_report.dir/ascii_plot.cc.o" "gcc" "src/report/CMakeFiles/ttmcas_report.dir/ascii_plot.cc.o.d"
  "/root/repo/src/report/matrix.cc" "src/report/CMakeFiles/ttmcas_report.dir/matrix.cc.o" "gcc" "src/report/CMakeFiles/ttmcas_report.dir/matrix.cc.o.d"
  "/root/repo/src/report/series.cc" "src/report/CMakeFiles/ttmcas_report.dir/series.cc.o" "gcc" "src/report/CMakeFiles/ttmcas_report.dir/series.cc.o.d"
  "/root/repo/src/report/table.cc" "src/report/CMakeFiles/ttmcas_report.dir/table.cc.o" "gcc" "src/report/CMakeFiles/ttmcas_report.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/ttmcas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
