
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_ariane.cc" "tests/CMakeFiles/test_sim.dir/sim/test_ariane.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_ariane.cc.o.d"
  "/root/repo/tests/sim/test_branch_predictor.cc" "tests/CMakeFiles/test_sim.dir/sim/test_branch_predictor.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_branch_predictor.cc.o.d"
  "/root/repo/tests/sim/test_cache.cc" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_cache.cc.o.d"
  "/root/repo/tests/sim/test_cache_hierarchy.cc" "tests/CMakeFiles/test_sim.dir/sim/test_cache_hierarchy.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_cache_hierarchy.cc.o.d"
  "/root/repo/tests/sim/test_ipc_model.cc" "tests/CMakeFiles/test_sim.dir/sim/test_ipc_model.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_ipc_model.cc.o.d"
  "/root/repo/tests/sim/test_miss_curves.cc" "tests/CMakeFiles/test_sim.dir/sim/test_miss_curves.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_miss_curves.cc.o.d"
  "/root/repo/tests/sim/test_pipeline.cc" "tests/CMakeFiles/test_sim.dir/sim/test_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_pipeline.cc.o.d"
  "/root/repo/tests/sim/test_trace.cc" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_trace.cc.o.d"
  "/root/repo/tests/sim/test_workloads.cc" "tests/CMakeFiles/test_sim.dir/sim/test_workloads.cc.o" "gcc" "tests/CMakeFiles/test_sim.dir/sim/test_workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/ttmcas_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ttmcas_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/ttmcas_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ttmcas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ttmcas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ttmcas_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmcas_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/ttmcas_report.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ttmcas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
