file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_ariane.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_ariane.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_branch_predictor.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_branch_predictor.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_cache.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_cache.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_cache_hierarchy.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_cache_hierarchy.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_ipc_model.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_ipc_model.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_miss_curves.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_miss_curves.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_pipeline.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_pipeline.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trace.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_trace.cc.o.d"
  "CMakeFiles/test_sim.dir/sim/test_workloads.cc.o"
  "CMakeFiles/test_sim.dir/sim/test_workloads.cc.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
