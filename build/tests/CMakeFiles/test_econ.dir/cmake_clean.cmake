file(REMOVE_RECURSE
  "CMakeFiles/test_econ.dir/econ/test_cost_model.cc.o"
  "CMakeFiles/test_econ.dir/econ/test_cost_model.cc.o.d"
  "CMakeFiles/test_econ.dir/econ/test_reservation.cc.o"
  "CMakeFiles/test_econ.dir/econ/test_reservation.cc.o.d"
  "CMakeFiles/test_econ.dir/econ/test_revenue_model.cc.o"
  "CMakeFiles/test_econ.dir/econ/test_revenue_model.cc.o.d"
  "test_econ"
  "test_econ.pdb"
  "test_econ[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_econ.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
