file(REMOVE_RECURSE
  "CMakeFiles/test_opt.dir/opt/test_cache_optimizer.cc.o"
  "CMakeFiles/test_opt.dir/opt/test_cache_optimizer.cc.o.d"
  "CMakeFiles/test_opt.dir/opt/test_node_selector.cc.o"
  "CMakeFiles/test_opt.dir/opt/test_node_selector.cc.o.d"
  "CMakeFiles/test_opt.dir/opt/test_pareto.cc.o"
  "CMakeFiles/test_opt.dir/opt/test_pareto.cc.o.d"
  "CMakeFiles/test_opt.dir/opt/test_portfolio.cc.o"
  "CMakeFiles/test_opt.dir/opt/test_portfolio.cc.o.d"
  "CMakeFiles/test_opt.dir/opt/test_split_optimizer.cc.o"
  "CMakeFiles/test_opt.dir/opt/test_split_optimizer.cc.o.d"
  "test_opt"
  "test_opt.pdb"
  "test_opt[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
