file(REMOVE_RECURSE
  "CMakeFiles/test_stats.dir/stats/test_distributions.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_distributions.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_histogram.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_lowdiscrepancy.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_lowdiscrepancy.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_regression.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_regression.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_rng.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_rng.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_sobol.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_sobol.cc.o.d"
  "CMakeFiles/test_stats.dir/stats/test_summary.cc.o"
  "CMakeFiles/test_stats.dir/stats/test_summary.cc.o.d"
  "test_stats"
  "test_stats.pdb"
  "test_stats[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
