file(REMOVE_RECURSE
  "CMakeFiles/test_report.dir/report/test_ascii_plot.cc.o"
  "CMakeFiles/test_report.dir/report/test_ascii_plot.cc.o.d"
  "CMakeFiles/test_report.dir/report/test_matrix.cc.o"
  "CMakeFiles/test_report.dir/report/test_matrix.cc.o.d"
  "CMakeFiles/test_report.dir/report/test_series.cc.o"
  "CMakeFiles/test_report.dir/report/test_series.cc.o.d"
  "CMakeFiles/test_report.dir/report/test_table.cc.o"
  "CMakeFiles/test_report.dir/report/test_table.cc.o.d"
  "test_report"
  "test_report.pdb"
  "test_report[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
