
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_allocation.cc" "tests/CMakeFiles/test_core.dir/core/test_allocation.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_allocation.cc.o.d"
  "/root/repo/tests/core/test_binning.cc" "tests/CMakeFiles/test_core.dir/core/test_binning.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_binning.cc.o.d"
  "/root/repo/tests/core/test_cas.cc" "tests/CMakeFiles/test_core.dir/core/test_cas.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_cas.cc.o.d"
  "/root/repo/tests/core/test_design.cc" "tests/CMakeFiles/test_core.dir/core/test_design.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_design.cc.o.d"
  "/root/repo/tests/core/test_design_io.cc" "tests/CMakeFiles/test_core.dir/core/test_design_io.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_design_io.cc.o.d"
  "/root/repo/tests/core/test_hoarding.cc" "tests/CMakeFiles/test_core.dir/core/test_hoarding.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_hoarding.cc.o.d"
  "/root/repo/tests/core/test_market.cc" "tests/CMakeFiles/test_core.dir/core/test_market.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_market.cc.o.d"
  "/root/repo/tests/core/test_reference_designs.cc" "tests/CMakeFiles/test_core.dir/core/test_reference_designs.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_reference_designs.cc.o.d"
  "/root/repo/tests/core/test_risk.cc" "tests/CMakeFiles/test_core.dir/core/test_risk.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_risk.cc.o.d"
  "/root/repo/tests/core/test_scenario.cc" "tests/CMakeFiles/test_core.dir/core/test_scenario.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_scenario.cc.o.d"
  "/root/repo/tests/core/test_tapeout_plan.cc" "tests/CMakeFiles/test_core.dir/core/test_tapeout_plan.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_tapeout_plan.cc.o.d"
  "/root/repo/tests/core/test_timeline.cc" "tests/CMakeFiles/test_core.dir/core/test_timeline.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_timeline.cc.o.d"
  "/root/repo/tests/core/test_ttm_model.cc" "tests/CMakeFiles/test_core.dir/core/test_ttm_model.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_ttm_model.cc.o.d"
  "/root/repo/tests/core/test_uncertainty.cc" "tests/CMakeFiles/test_core.dir/core/test_uncertainty.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_uncertainty.cc.o.d"
  "/root/repo/tests/core/test_wafer.cc" "tests/CMakeFiles/test_core.dir/core/test_wafer.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_wafer.cc.o.d"
  "/root/repo/tests/core/test_yield.cc" "tests/CMakeFiles/test_core.dir/core/test_yield.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_yield.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/ttmcas_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ttmcas_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/ttmcas_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ttmcas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ttmcas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ttmcas_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmcas_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/ttmcas_report.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ttmcas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
