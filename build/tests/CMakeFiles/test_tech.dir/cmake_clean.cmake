file(REMOVE_RECURSE
  "CMakeFiles/test_tech.dir/tech/test_dataset_io.cc.o"
  "CMakeFiles/test_tech.dir/tech/test_dataset_io.cc.o.d"
  "CMakeFiles/test_tech.dir/tech/test_default_dataset.cc.o"
  "CMakeFiles/test_tech.dir/tech/test_default_dataset.cc.o.d"
  "CMakeFiles/test_tech.dir/tech/test_effort_model.cc.o"
  "CMakeFiles/test_tech.dir/tech/test_effort_model.cc.o.d"
  "CMakeFiles/test_tech.dir/tech/test_process_node.cc.o"
  "CMakeFiles/test_tech.dir/tech/test_process_node.cc.o.d"
  "CMakeFiles/test_tech.dir/tech/test_technology_db.cc.o"
  "CMakeFiles/test_tech.dir/tech/test_technology_db.cc.o.d"
  "test_tech"
  "test_tech.pdb"
  "test_tech[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
