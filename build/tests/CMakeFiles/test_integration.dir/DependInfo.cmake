
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/test_end_to_end.cc" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_end_to_end.cc.o.d"
  "/root/repo/tests/integration/test_fuzz.cc" "tests/CMakeFiles/test_integration.dir/integration/test_fuzz.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_fuzz.cc.o.d"
  "/root/repo/tests/integration/test_model_properties.cc" "tests/CMakeFiles/test_integration.dir/integration/test_model_properties.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_model_properties.cc.o.d"
  "/root/repo/tests/integration/test_paper_calibration.cc" "tests/CMakeFiles/test_integration.dir/integration/test_paper_calibration.cc.o" "gcc" "tests/CMakeFiles/test_integration.dir/integration/test_paper_calibration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/accel/CMakeFiles/ttmcas_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/ttmcas_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/econ/CMakeFiles/ttmcas_econ.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ttmcas_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ttmcas_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/ttmcas_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/ttmcas_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/report/CMakeFiles/ttmcas_report.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/ttmcas_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
