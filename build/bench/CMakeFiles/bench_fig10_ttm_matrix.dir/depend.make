# Empty dependencies file for bench_fig10_ttm_matrix.
# This may be replaced when dependencies are built.
