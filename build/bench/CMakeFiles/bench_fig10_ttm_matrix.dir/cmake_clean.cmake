file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_ttm_matrix.dir/bench_fig10_ttm_matrix.cc.o"
  "CMakeFiles/bench_fig10_ttm_matrix.dir/bench_fig10_ttm_matrix.cc.o.d"
  "bench_fig10_ttm_matrix"
  "bench_fig10_ttm_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_ttm_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
