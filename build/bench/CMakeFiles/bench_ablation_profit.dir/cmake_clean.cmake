file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_profit.dir/bench_ablation_profit.cc.o"
  "CMakeFiles/bench_ablation_profit.dir/bench_ablation_profit.cc.o.d"
  "bench_ablation_profit"
  "bench_ablation_profit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_profit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
