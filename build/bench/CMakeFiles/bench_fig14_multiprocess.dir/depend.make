# Empty dependencies file for bench_fig14_multiprocess.
# This may be replaced when dependencies are built.
