file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_multiprocess.dir/bench_fig14_multiprocess.cc.o"
  "CMakeFiles/bench_fig14_multiprocess.dir/bench_fig14_multiprocess.cc.o.d"
  "bench_fig14_multiprocess"
  "bench_fig14_multiprocess.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_multiprocess.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
