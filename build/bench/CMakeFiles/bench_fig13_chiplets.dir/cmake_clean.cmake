file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_chiplets.dir/bench_fig13_chiplets.cc.o"
  "CMakeFiles/bench_fig13_chiplets.dir/bench_fig13_chiplets.cc.o.d"
  "bench_fig13_chiplets"
  "bench_fig13_chiplets.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_chiplets.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
