# Empty dependencies file for bench_table2_wafer_rates.
# This may be replaced when dependencies are built.
