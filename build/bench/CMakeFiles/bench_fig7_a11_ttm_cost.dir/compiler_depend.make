# Empty compiler generated dependencies file for bench_fig7_a11_ttm_cost.
# This may be replaced when dependencies are built.
