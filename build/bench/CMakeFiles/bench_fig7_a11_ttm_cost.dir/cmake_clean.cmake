file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_a11_ttm_cost.dir/bench_fig7_a11_ttm_cost.cc.o"
  "CMakeFiles/bench_fig7_a11_ttm_cost.dir/bench_fig7_a11_ttm_cost.cc.o.d"
  "bench_fig7_a11_ttm_cost"
  "bench_fig7_a11_ttm_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_a11_ttm_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
