file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_queue_ttm.dir/bench_fig11_queue_ttm.cc.o"
  "CMakeFiles/bench_fig11_queue_ttm.dir/bench_fig11_queue_ttm.cc.o.d"
  "bench_fig11_queue_ttm"
  "bench_fig11_queue_ttm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_queue_ttm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
