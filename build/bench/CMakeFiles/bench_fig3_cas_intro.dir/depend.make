# Empty dependencies file for bench_fig3_cas_intro.
# This may be replaced when dependencies are built.
