file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_cas_intro.dir/bench_fig3_cas_intro.cc.o"
  "CMakeFiles/bench_fig3_cas_intro.dir/bench_fig3_cas_intro.cc.o.d"
  "bench_fig3_cas_intro"
  "bench_fig3_cas_intro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_cas_intro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
