file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_cache_matrix.dir/bench_fig6_cache_matrix.cc.o"
  "CMakeFiles/bench_fig6_cache_matrix.dir/bench_fig6_cache_matrix.cc.o.d"
  "bench_fig6_cache_matrix"
  "bench_fig6_cache_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_cache_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
