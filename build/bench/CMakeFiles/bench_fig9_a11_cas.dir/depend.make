# Empty dependencies file for bench_fig9_a11_cas.
# This may be replaced when dependencies are built.
