file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_queue_cas.dir/bench_fig12_queue_cas.cc.o"
  "CMakeFiles/bench_fig12_queue_cas.dir/bench_fig12_queue_cas.cc.o.d"
  "bench_fig12_queue_cas"
  "bench_fig12_queue_cas.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_queue_cas.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
