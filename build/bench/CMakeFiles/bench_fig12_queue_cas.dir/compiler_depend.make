# Empty compiler generated dependencies file for bench_fig12_queue_cas.
# This may be replaced when dependencies are built.
