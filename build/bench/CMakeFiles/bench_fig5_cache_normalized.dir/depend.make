# Empty dependencies file for bench_fig5_cache_normalized.
# This may be replaced when dependencies are built.
