file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cache_normalized.dir/bench_fig5_cache_normalized.cc.o"
  "CMakeFiles/bench_fig5_cache_normalized.dir/bench_fig5_cache_normalized.cc.o.d"
  "bench_fig5_cache_normalized"
  "bench_fig5_cache_normalized.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cache_normalized.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
