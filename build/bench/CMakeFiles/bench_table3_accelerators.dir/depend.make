# Empty dependencies file for bench_table3_accelerators.
# This may be replaced when dependencies are built.
