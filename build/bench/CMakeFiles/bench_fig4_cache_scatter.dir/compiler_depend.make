# Empty compiler generated dependencies file for bench_fig4_cache_scatter.
# This may be replaced when dependencies are built.
