file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_zen2_dies.dir/bench_table4_zen2_dies.cc.o"
  "CMakeFiles/bench_table4_zen2_dies.dir/bench_table4_zen2_dies.cc.o.d"
  "bench_table4_zen2_dies"
  "bench_table4_zen2_dies.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_zen2_dies.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
