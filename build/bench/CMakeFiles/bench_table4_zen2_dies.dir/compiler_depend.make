# Empty compiler generated dependencies file for bench_table4_zen2_dies.
# This may be replaced when dependencies are built.
