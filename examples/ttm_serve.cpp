/**
 * @file
 * ttm_serve: a long-lived evaluation daemon for the TTM/CAS models
 * (docs/SERVING.md documents the wire format and operations story).
 *
 * Clients send newline-delimited JSON requests (Monte-Carlo TTM/CAS,
 * Sobol sensitivity, capacity sweeps, health, stats) and receive one
 * JSON reply line per request. Two transports share the same engine
 * (serve/server.hh):
 *
 *   --socket PATH   Unix-domain stream socket, one thread per
 *                   connection (bounded by --max-connections).
 *   --pipe          stdin -> stdout, for deterministic testing and
 *                   shell pipelines.
 *
 * Robustness contract:
 *  - malformed input never kills the process: every line produces a
 *    structured reply (serve/request.hh is the trust boundary);
 *  - admission is bounded (--queue): overload sheds with a structured
 *    "overloaded" reply instead of queueing unboundedly;
 *  - every request runs under a wall-clock deadline (--deadline or
 *    the request's own, capped), returning partial-but-well-formed
 *    results with status "deadline_exceeded";
 *  - SIGTERM/SIGINT drain gracefully: stop admitting, give in-flight
 *    work --drain-grace seconds to finish, then cancel it
 *    cooperatively, flush observability state, and exit 0;
 *  - complete results enter a content-addressed cache (--cache-dir)
 *    persisted with atomic temp-then-rename writes, so kill -9 can
 *    never tear an entry and a restart recovers the cache intact.
 *
 * Exit codes: 0 = clean drain (EOF, SIGTERM, or SIGINT); 1 = hard
 * startup/transport error; 2 = usage error.
 */

#include <atomic>
#include <condition_variable>
#include <csignal>
#include <cstring>
#include <iostream>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "serve/server.hh"
#include "support/cancel.hh"
#include "support/metrics.hh"
#include "support/run_manifest.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

struct ServeArgs
{
    std::string socket_path;
    bool pipe = false;
    std::size_t workers = 4;
    std::size_t queue = 16;
    double deadline_s = 30.0;
    std::string cache_dir;
    std::size_t cache_entries = 1024;
    std::size_t max_request_bytes = 1 << 20;
    std::size_t max_connections = 64;
    double drain_grace_s = 5.0;
    std::string metrics_file;
    std::string manifest_file;
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: ttm_serve (--socket PATH | --pipe)\n"
           "                 [--workers n] [--queue n] [--deadline s]\n"
           "                 [--cache-dir dir] [--cache-entries n]\n"
           "                 [--max-request-bytes n]\n"
           "                 [--max-connections n] [--drain-grace s]\n"
           "                 [--metrics file.json] [--manifest file.json]\n";
    std::exit(2);
}

ServeArgs
parseArgs(int argc, char** argv)
{
    ServeArgs args;
    const std::map<std::string, int> flags{
        {"--socket", 1},        {"--pipe", 0},
        {"--workers", 1},       {"--queue", 1},
        {"--deadline", 1},      {"--cache-dir", 1},
        {"--cache-entries", 1}, {"--max-request-bytes", 1},
        {"--max-connections", 1}, {"--drain-grace", 1},
        {"--metrics", 1},       {"--manifest", 1},
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        std::string inline_value;
        bool has_inline_value = false;
        const std::size_t equals = flag.find('=');
        if (equals != std::string::npos) {
            inline_value = flag.substr(equals + 1);
            flag = flag.substr(0, equals);
            has_inline_value = true;
        }
        const auto it = flags.find(flag);
        if (it == flags.end())
            usage();
        std::string value;
        if (it->second == 1) {
            if (has_inline_value) {
                value = inline_value;
            } else {
                if (i + 1 >= argc)
                    usage();
                value = argv[++i];
            }
        } else if (has_inline_value) {
            usage();
        }
        try {
            if (flag == "--socket")
                args.socket_path = value;
            else if (flag == "--pipe")
                args.pipe = true;
            else if (flag == "--workers")
                args.workers = std::stoull(value);
            else if (flag == "--queue")
                args.queue = std::stoull(value);
            else if (flag == "--deadline")
                args.deadline_s = std::stod(value);
            else if (flag == "--cache-dir")
                args.cache_dir = value;
            else if (flag == "--cache-entries")
                args.cache_entries = std::stoull(value);
            else if (flag == "--max-request-bytes")
                args.max_request_bytes = std::stoull(value);
            else if (flag == "--max-connections")
                args.max_connections = std::stoull(value);
            else if (flag == "--drain-grace")
                args.drain_grace_s = std::stod(value);
            else if (flag == "--metrics")
                args.metrics_file = value;
            else if (flag == "--manifest")
                args.manifest_file = value;
        } catch (const std::exception&) {
            usage();
        }
    }
    // Exactly one transport: --pipe, or --socket PATH.
    if (args.pipe != args.socket_path.empty() ||
        args.workers < 1 || args.queue < 1)
        usage();
    return args;
}

/**
 * Incremental NDJSON line splitter with an oversized-line guard: a
 * line that exceeds the limit *without a newline in sight* is cut off
 * and handed over as-is (handleLine then produces the structured
 * "limit-exceeded" reply), and the remainder of the physical line is
 * discarded — one hostile client cannot make the server buffer
 * unboundedly.
 */
class LineSplitter
{
  public:
    explicit LineSplitter(std::size_t max_line_bytes)
        : _max_line_bytes(max_line_bytes)
    {}

    /** Feed received bytes; call nextLine() until it returns false. */
    void feed(const char* data, std::size_t size)
    {
        for (std::size_t i = 0; i < size; ++i) {
            const char c = data[i];
            if (c == '\n') {
                if (_discarding)
                    _discarding = false;
                else
                    _complete.push_back(std::move(_partial));
                _partial.clear();
                continue;
            }
            if (_discarding)
                continue;
            _partial.push_back(c);
            if (_partial.size() > _max_line_bytes) {
                // Cut the runaway line: emit what we have (already
                // over the limit, so the reply is a structured
                // error) and skip until the next newline.
                _complete.push_back(std::move(_partial));
                _partial.clear();
                _discarding = true;
            }
        }
    }

    /** Pop the next complete line into @p line. */
    bool nextLine(std::string& line)
    {
        if (_complete.empty())
            return false;
        line = std::move(_complete.front());
        _complete.erase(_complete.begin());
        return true;
    }

    /** A trailing unterminated line at EOF ("" when none). */
    std::string flushPartial()
    {
        _discarding = false;
        std::string rest = std::move(_partial);
        _partial.clear();
        return rest;
    }

  private:
    std::size_t _max_line_bytes;
    std::string _partial;
    std::vector<std::string> _complete;
    bool _discarding = false;
};

/** Write all of @p data to @p fd, retrying short writes. */
bool
writeAll(int fd, const std::string& data)
{
    std::size_t written = 0;
    while (written < data.size()) {
        const ssize_t n =
            ::write(fd, data.data() + written, data.size() - written);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        written += static_cast<std::size_t>(n);
    }
    return true;
}

/**
 * stdin -> stdout transport. The read side polls at 100ms so a
 * SIGTERM arriving while the server idles on a quiet pipe still
 * drains promptly instead of blocking in read(2) forever.
 */
void
runPipe(serve::EvalServer& server, const CancellationToken& token,
        const ServeArgs& args)
{
    LineSplitter splitter(args.max_request_bytes + 1);
    char chunk[4096];
    std::string line;
    bool eof = false;
    while (!eof && !token.stopRequested()) {
        pollfd pfd{STDIN_FILENO, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
        if (n == 0) {
            eof = true;
            break;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        splitter.feed(chunk, static_cast<std::size_t>(n));
        while (splitter.nextLine(line)) {
            if (line.empty())
                continue;
            writeAll(STDOUT_FILENO, server.handleLine(line) + "\n");
        }
    }
    const std::string rest = splitter.flushPartial();
    if (eof && !rest.empty())
        writeAll(STDOUT_FILENO, server.handleLine(rest) + "\n");
}

/** Per-connection loop of the socket transport. */
void
serveConnection(int fd, serve::EvalServer& server,
                const CancellationToken& token,
                const ServeArgs& args)
{
    LineSplitter splitter(args.max_request_bytes + 1);
    char chunk[4096];
    std::string line;
    while (!token.stopRequested()) {
        pollfd pfd{fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        if (ready == 0)
            continue;
        const ssize_t n = ::read(fd, chunk, sizeof chunk);
        if (n <= 0) {
            if (n < 0 && errno == EINTR)
                continue;
            break; // client closed (or hard error): end of session
        }
        splitter.feed(chunk, static_cast<std::size_t>(n));
        bool write_failed = false;
        while (splitter.nextLine(line)) {
            if (line.empty())
                continue;
            if (!writeAll(fd, server.handleLine(line) + "\n")) {
                write_failed = true;
                break;
            }
        }
        if (write_failed)
            break;
    }
    ::close(fd);
}

/** Detached-connection-thread accounting for shutdown. */
struct ConnectionTracker
{
    std::atomic<std::size_t> active{0};
    std::mutex mutex;
    std::condition_variable done_cv;

    void threadDone()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            --active;
        }
        done_cv.notify_all();
    }

    /** Wait for every connection thread to exit; true when none left. */
    bool awaitZero(std::chrono::milliseconds timeout)
    {
        std::unique_lock<std::mutex> lock(mutex);
        return done_cv.wait_for(lock, timeout,
                                [this] { return active.load() == 0; });
    }
};

/** Accept loop of the socket transport. Returns false on hard error. */
bool
runSocket(serve::EvalServer& server, const CancellationToken& token,
          const ServeArgs& args, ConnectionTracker& tracker)
{
    const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd < 0) {
        std::cerr << "ttm_serve: socket(): " << std::strerror(errno)
                  << "\n";
        return false;
    }
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (args.socket_path.size() >= sizeof(addr.sun_path)) {
        std::cerr << "ttm_serve: socket path too long: "
                  << args.socket_path << "\n";
        ::close(listen_fd);
        return false;
    }
    std::strncpy(addr.sun_path, args.socket_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    ::unlink(args.socket_path.c_str()); // stale socket from a crash
    if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listen_fd, 64) != 0) {
        std::cerr << "ttm_serve: cannot listen on " << args.socket_path
                  << ": " << std::strerror(errno) << "\n";
        ::close(listen_fd);
        return false;
    }

    // Readiness line: shell tests and supervisors wait for this.
    std::cout << "ttm_serve ready socket=" << args.socket_path
              << " workers=" << args.workers << " queue=" << args.queue
              << " recovered=" << server.recoveredEntries() << std::endl;

    while (!token.stopRequested()) {
        pollfd pfd{listen_fd, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0)
            continue;
        if (tracker.active.load() >= args.max_connections) {
            // Connection-level shedding mirrors request-level shedding.
            writeAll(fd, serve::overloadedReply("", args.max_connections,
                                                args.max_connections) +
                             "\n");
            ::close(fd);
            continue;
        }
        ++tracker.active;
        std::thread([fd, &server, &token, &args, &tracker] {
            serveConnection(fd, server, token, args);
            tracker.threadDone();
        }).detach();
    }
    ::close(listen_fd);
    ::unlink(args.socket_path.c_str());
    return true;
}

} // namespace

int
main(int argc, char** argv)
{
    const ServeArgs args = parseArgs(argc, argv);

    if (!args.metrics_file.empty() || !args.manifest_file.empty())
        obs::setMetricsEnabled(true);

    CancellationToken stop;
    const ScopedSigintCancel signals(stop); // SIGINT + SIGTERM -> drain

    try {
        serve::ServeOptions options;
        options.workers = args.workers;
        options.queue_bound = args.queue;
        options.default_deadline_s = args.deadline_s;
        options.limits.max_request_bytes = args.max_request_bytes;
        options.cache.dir = args.cache_dir;
        options.cache.max_entries = args.cache_entries;

        serve::EvalServer server(defaultTechnologyDb(), options);

        ConnectionTracker tracker;
        bool transport_ok = true;
        if (args.pipe) {
            std::cout << "ttm_serve ready pipe workers=" << args.workers
                      << " queue=" << args.queue
                      << " recovered=" << server.recoveredEntries()
                      << std::endl;
            runPipe(server, stop, args);
        } else {
            transport_ok = runSocket(server, stop, args, tracker);
        }

        // Graceful drain: stop admitting, give in-flight work its
        // grace period, then cancel cooperatively and wait again.
        // Connection threads unblock as their requests finish, so the
        // tracker is awaited last.
        server.beginDrain(/*cancel_in_flight=*/false);
        const auto grace = std::chrono::milliseconds(
            static_cast<long>(args.drain_grace_s * 1000.0));
        if (!server.awaitIdle(grace)) {
            server.beginDrain(/*cancel_in_flight=*/true);
            server.awaitIdle(std::chrono::milliseconds(30000));
        }
        tracker.awaitZero(std::chrono::milliseconds(15000));

        const serve::ServerStats stats = server.stats();
        std::cerr << "ttm_serve: drained after " << stats.requests
                  << " requests (ok " << stats.ok << ", errors "
                  << stats.errors << ", shed " << stats.shed
                  << ", deadline " << stats.deadline_exceeded
                  << ", cache hits " << stats.cache.hits << ")\n";

        if (!args.metrics_file.empty())
            obs::writeMetrics(args.metrics_file);
        if (!args.manifest_file.empty()) {
            obs::RunManifest manifest;
            manifest.tool = "ttm_serve";
            manifest.git_hash = obs::buildGitHash();
            manifest.threads = args.workers;
            manifest.failure_policy = "skip_and_record";
            manifest.disposition =
                stop.cancelRequested() ? "drained" : "completed";
            obs::KernelTiming timing;
            timing.kernel = "serve.session";
            timing.points = stats.requests;
            timing.failures = stats.errors;
            manifest.addKernel(timing);
            manifest.write(args.manifest_file);
        }
        if (!transport_ok)
            return 1;
    } catch (const std::exception& error) {
        std::cerr << "ttm_serve: fatal: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
