/**
 * @file
 * ttm_serve: a long-lived evaluation daemon for the TTM/CAS models
 * (docs/SERVING.md documents the wire format and operations story).
 *
 * Clients send newline-delimited JSON requests (Monte-Carlo TTM/CAS,
 * Sobol sensitivity, capacity sweeps, health, stats) and receive one
 * JSON reply line per request. Three transports share the same engine
 * (serve/server.hh) and the same byte-level transport layer
 * (serve/transport.hh):
 *
 *   --socket PATH   Unix-domain stream socket, one thread per
 *                   connection (bounded by --max-connections).
 *   --tcp HOST:PORT TCP stream socket (port 0 binds an ephemeral port
 *                   and the ready line reports the bound one). May be
 *                   combined with --socket; both serve concurrently.
 *   --pipe          stdin -> stdout, for deterministic testing and
 *                   shell pipelines.
 *
 * Robustness contract:
 *  - malformed input never kills the process: every line produces a
 *    structured reply (serve/request.hh is the trust boundary);
 *  - SIGPIPE is ignored process-wide, and every socket write loops on
 *    partial writes and EINTR — a client hanging up mid-reply is a
 *    per-connection event, never a process kill;
 *  - a started request line must complete within --read-deadline
 *    (slow-loris protection) and --idle-timeout bounds half-open
 *    connections; oversized lines are cut and answered structurally;
 *  - admission is bounded (--queue): overload sheds with a structured
 *    "overloaded" reply instead of queueing unboundedly;
 *  - identical concurrent requests coalesce onto one evaluation
 *    (single-flight, observable via serve.coalesce.* in stats);
 *  - every request runs under a wall-clock deadline (--deadline or
 *    the request's own, capped), returning partial-but-well-formed
 *    results with status "deadline_exceeded";
 *  - SIGTERM/SIGINT drain gracefully: stop admitting, give in-flight
 *    work --drain-grace seconds to finish, then cancel it
 *    cooperatively, flush observability state, and exit 0;
 *  - complete results enter a bounded content-addressed cache
 *    (--cache-dir, --cache-entries, --cache-bytes) persisted with
 *    atomic temp-then-rename writes and evicted LRU with the same
 *    discipline, so kill -9 can never tear an entry and a restart
 *    recovers a consistent bounded cache;
 *  - --fault-rate arms the deterministic fault injector for chaos
 *    testing: a fraction of evaluation points fail through the
 *    skip-and-record path, keeping replies well-formed with honest
 *    failure counts.
 *
 * Exit codes: 0 = clean drain (EOF, SIGTERM, or SIGINT); 1 = hard
 * startup/transport error; 2 = usage error.
 */

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstring>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include <poll.h>
#include <unistd.h>

#include "serve/server.hh"
#include "serve/transport.hh"
#include "support/cancel.hh"
#include "support/metrics.hh"
#include "support/run_manifest.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

struct ServeArgs
{
    std::string socket_path;
    std::string tcp_spec;
    bool pipe = false;
    std::size_t workers = 4;
    std::size_t queue = 16;
    double deadline_s = 30.0;
    std::string cache_dir;
    std::size_t cache_entries = 1024;
    std::size_t cache_bytes = 0;
    std::size_t max_request_bytes = 1 << 20;
    std::size_t max_connections = 64;
    double read_deadline_s = 30.0;
    double idle_timeout_s = 0.0;
    double drain_grace_s = 5.0;
    double fault_rate = 0.0;
    std::uint64_t fault_seed = 1;
    std::string metrics_file;
    std::string manifest_file;
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: ttm_serve (--socket PATH | --tcp HOST:PORT | --pipe)\n"
           "                 [--socket PATH] [--tcp HOST:PORT]\n"
           "                 [--workers n] [--queue n] [--deadline s]\n"
           "                 [--cache-dir dir] [--cache-entries n]\n"
           "                 [--cache-bytes n]\n"
           "                 [--max-request-bytes n]\n"
           "                 [--max-connections n]\n"
           "                 [--read-deadline s] [--idle-timeout s]\n"
           "                 [--drain-grace s]\n"
           "                 [--fault-rate p] [--fault-seed n]\n"
           "                 [--metrics file.json] [--manifest file.json]\n";
    std::exit(2);
}

ServeArgs
parseArgs(int argc, char** argv)
{
    ServeArgs args;
    const std::map<std::string, int> flags{
        {"--socket", 1},        {"--tcp", 1},
        {"--pipe", 0},          {"--workers", 1},
        {"--queue", 1},         {"--deadline", 1},
        {"--cache-dir", 1},     {"--cache-entries", 1},
        {"--cache-bytes", 1},   {"--max-request-bytes", 1},
        {"--max-connections", 1}, {"--read-deadline", 1},
        {"--idle-timeout", 1},  {"--drain-grace", 1},
        {"--fault-rate", 1},    {"--fault-seed", 1},
        {"--metrics", 1},       {"--manifest", 1},
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        std::string inline_value;
        bool has_inline_value = false;
        const std::size_t equals = flag.find('=');
        if (equals != std::string::npos) {
            inline_value = flag.substr(equals + 1);
            flag = flag.substr(0, equals);
            has_inline_value = true;
        }
        const auto it = flags.find(flag);
        if (it == flags.end())
            usage();
        std::string value;
        if (it->second == 1) {
            if (has_inline_value) {
                value = inline_value;
            } else {
                if (i + 1 >= argc)
                    usage();
                value = argv[++i];
            }
        } else if (has_inline_value) {
            usage();
        }
        try {
            if (flag == "--socket")
                args.socket_path = value;
            else if (flag == "--tcp")
                args.tcp_spec = value;
            else if (flag == "--pipe")
                args.pipe = true;
            else if (flag == "--workers")
                args.workers = std::stoull(value);
            else if (flag == "--queue")
                args.queue = std::stoull(value);
            else if (flag == "--deadline")
                args.deadline_s = std::stod(value);
            else if (flag == "--cache-dir")
                args.cache_dir = value;
            else if (flag == "--cache-entries")
                args.cache_entries = std::stoull(value);
            else if (flag == "--cache-bytes")
                args.cache_bytes = std::stoull(value);
            else if (flag == "--max-request-bytes")
                args.max_request_bytes = std::stoull(value);
            else if (flag == "--max-connections")
                args.max_connections = std::stoull(value);
            else if (flag == "--read-deadline")
                args.read_deadline_s = std::stod(value);
            else if (flag == "--idle-timeout")
                args.idle_timeout_s = std::stod(value);
            else if (flag == "--drain-grace")
                args.drain_grace_s = std::stod(value);
            else if (flag == "--fault-rate")
                args.fault_rate = std::stod(value);
            else if (flag == "--fault-seed")
                args.fault_seed = std::stoull(value);
            else if (flag == "--metrics")
                args.metrics_file = value;
            else if (flag == "--manifest")
                args.manifest_file = value;
        } catch (const std::exception&) {
            usage();
        }
    }
    // Exactly one transport family: --pipe, or sockets (--socket
    // and/or --tcp, which may serve concurrently).
    const bool sockets = !args.socket_path.empty() || !args.tcp_spec.empty();
    if (args.pipe == sockets || args.workers < 1 || args.queue < 1 ||
        args.fault_rate < 0.0 || args.fault_rate > 1.0)
        usage();
    return args;
}

/**
 * stdin -> stdout transport. The read side polls at 100ms so a
 * SIGTERM arriving while the server idles on a quiet pipe still
 * drains promptly instead of blocking in read(2) forever.
 */
void
runPipe(serve::EvalServer& server, const CancellationToken& token,
        const ServeArgs& args)
{
    serve::LineSplitter splitter(args.max_request_bytes + 1);
    char chunk[4096];
    std::string line;
    bool eof = false;
    while (!eof && !token.stopRequested()) {
        pollfd pfd{STDIN_FILENO, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, 100);
        if (ready <= 0)
            continue;
        const ssize_t n = ::read(STDIN_FILENO, chunk, sizeof chunk);
        if (n == 0) {
            eof = true;
            break;
        }
        if (n < 0) {
            if (errno == EINTR)
                continue;
            break;
        }
        splitter.feed(chunk, static_cast<std::size_t>(n));
        while (splitter.nextLine(line)) {
            if (line.empty())
                continue;
            serve::writeAll(STDOUT_FILENO, server.handleLine(line) + "\n");
        }
    }
    const std::string rest = splitter.flushPartial();
    if (eof && !rest.empty())
        serve::writeAll(STDOUT_FILENO, server.handleLine(rest) + "\n");
}

/** The per-connection limits the command line asks for. */
serve::ConnectionLimits
connectionLimits(const ServeArgs& args)
{
    serve::ConnectionLimits limits;
    // +1 so the cut-off prefix of an oversized line is over the
    // engine's limit and maps to a structured "limit-exceeded" reply.
    limits.max_line_bytes = args.max_request_bytes + 1;
    limits.read_deadline_s = args.read_deadline_s;
    limits.idle_timeout_s = args.idle_timeout_s;
    serve::RequestError deadline_error;
    deadline_error.code = "read-deadline";
    deadline_error.message =
        "request line not completed within the read deadline";
    limits.read_deadline_reply = serve::errorReply(deadline_error);
    return limits;
}

} // namespace

int
main(int argc, char** argv)
{
    const ServeArgs args = parseArgs(argc, argv);

    // Before any socket exists: a peer hangup mid-reply must surface
    // as EPIPE from write(2), never a process-killing SIGPIPE.
    serve::ignoreSigpipe();

    if (!args.metrics_file.empty() || !args.manifest_file.empty())
        obs::setMetricsEnabled(true);

    CancellationToken stop;
    const ScopedSigintCancel signals(stop); // SIGINT + SIGTERM -> drain

    try {
        serve::ServeOptions options;
        options.workers = args.workers;
        options.queue_bound = args.queue;
        options.default_deadline_s = args.deadline_s;
        options.limits.max_request_bytes = args.max_request_bytes;
        options.cache.dir = args.cache_dir;
        options.cache.max_entries = args.cache_entries;
        options.cache.max_bytes = args.cache_bytes;
        options.fault_probability = args.fault_rate;
        options.fault_seed = args.fault_seed;

        serve::EvalServer server(defaultTechnologyDb(), options);

        // Everything a detached connection thread references must
        // outlive the accept loops: connection threads are awaited via
        // tracker.awaitZero *after* the drain below, so the tracker,
        // the loop options (deadline lambdas read its limits), and the
        // handler all live in this scope, not inside the socket branch.
        serve::ConnectionTracker tracker;
        serve::AcceptLoopOptions loop;
        loop.max_connections = args.max_connections;
        loop.limits = connectionLimits(args);
        loop.overloaded_reply = serve::overloadedReply(
            "", args.max_connections, args.max_connections);
        const serve::LineHandler handler =
            [&server](const std::string& line) {
                return server.handleLine(line);
            };

        if (args.pipe) {
            std::cout << "ttm_serve ready pipe workers=" << args.workers
                      << " queue=" << args.queue
                      << " recovered=" << server.recoveredEntries()
                      << std::endl;
            runPipe(server, stop, args);
        } else {
            serve::Listener unix_listener;
            serve::Listener tcp_listener;
            std::string error;
            if (!args.socket_path.empty()) {
                unix_listener =
                    serve::Listener::listenUnix(args.socket_path, error);
                if (!unix_listener.valid()) {
                    std::cerr << "ttm_serve: " << error << "\n";
                    return 1;
                }
            }
            if (!args.tcp_spec.empty()) {
                tcp_listener =
                    serve::Listener::listenTcp(args.tcp_spec, error);
                if (!tcp_listener.valid()) {
                    std::cerr << "ttm_serve: " << error << "\n";
                    return 1;
                }
            }

            // Readiness line: shell tests and supervisors wait for
            // this (and parse the bound TCP endpoint from it).
            std::cout << "ttm_serve ready";
            if (unix_listener.valid())
                std::cout << " socket=" << unix_listener.endpoint();
            if (tcp_listener.valid())
                std::cout << " tcp=" << tcp_listener.endpoint();
            std::cout << " workers=" << args.workers
                      << " queue=" << args.queue
                      << " recovered=" << server.recoveredEntries()
                      << std::endl;

            std::vector<std::thread> accepters;
            if (unix_listener.valid())
                accepters.emplace_back([&] {
                    serve::runAcceptLoop(unix_listener, handler, stop,
                                         loop, tracker);
                });
            if (tcp_listener.valid())
                accepters.emplace_back([&] {
                    serve::runAcceptLoop(tcp_listener, handler, stop,
                                         loop, tracker);
                });
            for (std::thread& thread : accepters)
                thread.join(); // each returns when the token stops
        }

        // Graceful drain: stop admitting, give in-flight work its
        // grace period, then cancel cooperatively and wait again.
        // Connection threads unblock as their requests finish, so the
        // tracker is awaited last.
        server.beginDrain(/*cancel_in_flight=*/false);
        const auto grace = std::chrono::milliseconds(
            static_cast<long>(args.drain_grace_s * 1000.0));
        if (!server.awaitIdle(grace)) {
            server.beginDrain(/*cancel_in_flight=*/true);
            server.awaitIdle(std::chrono::milliseconds(30000));
        }
        tracker.awaitZero(std::chrono::milliseconds(15000));

        const serve::ServerStats stats = server.stats();
        std::cerr << "ttm_serve: drained after " << stats.requests
                  << " requests (ok " << stats.ok << ", errors "
                  << stats.errors << ", shed " << stats.shed
                  << ", deadline " << stats.deadline_exceeded
                  << ", cache hits " << stats.cache.hits
                  << ", coalesced " << stats.coalesce_followers << ")\n";

        if (!args.metrics_file.empty())
            obs::writeMetrics(args.metrics_file);
        if (!args.manifest_file.empty()) {
            obs::RunManifest manifest;
            manifest.tool = "ttm_serve";
            manifest.git_hash = obs::buildGitHash();
            manifest.threads = args.workers;
            manifest.failure_policy = "skip_and_record";
            manifest.disposition =
                stop.cancelRequested() ? "drained" : "completed";
            obs::KernelTiming timing;
            timing.kernel = "serve.session";
            timing.points = stats.requests;
            timing.failures = stats.errors;
            manifest.addKernel(timing);
            manifest.write(args.manifest_file);
        }
    } catch (const std::exception& error) {
        std::cerr << "ttm_serve: fatal: " << error.what() << "\n";
        return 1;
    }
    return 0;
}
