/**
 * @file
 * Profit-aware node planner with an editable market snapshot.
 *
 * Demonstrates the full loop a design house would run:
 *  1. export the built-in market snapshot to CSV (edit it freely),
 *  2. load it back,
 *  3. price a product with a decaying market window (Section 2.2's
 *     "products must meet time-to-market requirements to maximize
 *     revenue"),
 *  4. rank the nodes by profit, and
 *  5. stress the winner with a binning requirement (only the top
 *     speed grade sells at full price).
 *
 * Usage: profit_planner [snapshot.csv]
 *   With an argument, the snapshot is loaded from that CSV instead of
 *   the built-in dataset (a template is written on first run).
 */

#include <iostream>
#include <string>

#include "core/binning.hh"
#include "core/uncertainty.hh"
#include "core/reference_designs.hh"
#include "econ/reservation.hh"
#include "econ/revenue_model.hh"
#include "report/table.hh"
#include "support/strutil.hh"
#include "tech/dataset_io.hh"
#include "tech/default_dataset.hh"

int
main(int argc, char** argv)
{
    using namespace ttmcas;

    // 1-2. Market snapshot: built-in, or user-edited CSV.
    TechnologyDb db;
    if (argc > 1) {
        const std::string path = argv[1];
        try {
            db = loadTechnologyCsv(path);
            std::cout << "Loaded market snapshot from " << path << " ("
                      << db.size() << " nodes)\n\n";
        } catch (const ModelError&) {
            saveTechnologyCsv(defaultTechnologyDb(), path);
            std::cout << "Wrote a template snapshot to " << path
                      << "; edit it and re-run.\n";
            return 0;
        }
    } else {
        db = defaultTechnologyDb();
        std::cout << "Using the built-in market snapshot (pass a CSV "
                     "path to use your own).\n\n";
    }

    // 3. The product: an A11-class SoC, 20M units, sold into a market
    //    that stops paying two years from project start.
    const double n_chips = 20e6;
    MarketWindow window;
    window.peak_unit_price = Dollars(90.0);
    window.window = Weeks(104.0);
    window.elasticity = 1.3; // consumer market: lateness hurts early

    TtmModel::Options options;
    options.tapeout_engineers = kA11TapeoutEngineers;
    const ProfitModel profit(TtmModel(db, options), CostModel(db),
                             window);

    // 4. Rank every in-production node by profit.
    Table table({"Node", "TTM (wk)", "Unit price", "Revenue", "Cost",
                 "Profit", "ROI"});
    table.setAlign(0, Align::Left);
    for (const std::string& node : db.availableNames()) {
        const ProfitResult result =
            profit.evaluate(designs::a11(node), n_chips);
        table.addRow(
            {node, formatFixed(result.ttm.value(), 1),
             formatDollars(window.unitPrice(result.ttm).value()),
             formatDollars(result.revenue.value(), 2),
             formatDollars(result.cost.value(), 2),
             formatDollars(result.profit().value(), 2),
             formatFixed(100.0 * result.roi(), 0) + "%"});
    }
    std::cout << table.render() << "\n";

    const auto [best_node, best] =
        profit.bestNode(designs::a11("10nm"), n_chips);
    std::cout << "Most profitable node: " << best_node << " ("
              << formatDollars(best.profit().value(), 2)
              << " profit)\n\n";

    // 5. Binning stress: only top-bin parts sell at full price; the
    //    top bin is 25% of good dies, so the order effectively grows.
    const BinningModel binning =
        typicalThreeBinSplit(window.peak_unit_price);
    const double multiplier = binning.demandMultiplier("top");
    const TtmModel ttm_model(db, options);
    const double plain_ttm =
        ttm_model.evaluate(designs::a11(best_node), n_chips)
            .total()
            .value();
    const double binned_ttm =
        ttm_model
            .evaluate(designs::a11(best_node), n_chips * multiplier)
            .total()
            .value();
    std::cout << "If the customer only accepts top-bin parts ("
              << formatFixed(100.0 / multiplier, 0)
              << "% of good dies), the fab order grows "
              << formatFixed(multiplier, 1) << "x and TTM at "
              << best_node << " moves " << formatFixed(plain_ttm, 1)
              << " -> " << formatFixed(binned_ttm, 1) << " weeks.\n";
    // 6. Capacity reservation: wafer demand is uncertain (transistor
    //    count and defect density are estimates); how many wafers
    //    should be pre-booked take-or-pay at a 35% discount?
    const UncertaintyAnalysis analysis(db, options);
    UncertaintyAnalysis::Options mc;
    mc.band = 0.10;
    mc.samples = 512;
    const auto demand =
        analysis.sampleWaferDemand(designs::a11(best_node), n_chips,
                                   best_node, mc);
    ReservationTerms reservation_terms;
    reservation_terms.spot_price = db.node(best_node).wafer_cost;
    reservation_terms.reserved_price =
        db.node(best_node).wafer_cost * 0.65;
    const ReservationPlanner reservations(reservation_terms);
    const ReservationPlan booking =
        reservations.optimalReservation(demand);
    std::cout << "\nCapacity reservation at " << best_node
              << " (take-or-pay, 35% discount): book "
              << formatSi(booking.reserved_wafers, 1)
              << " wafers (demand p"
              << formatFixed(
                     100.0 * reservation_terms.criticalFractile(), 0)
              << "); expected wafer cost "
              << formatDollars(booking.expected_cost.value(), 2) << ", "
              << formatFixed(100.0 * booking.p_exceed, 0)
              << "% chance of needing spot wafers on top.\n\n";

    std::cout << "Selling all three bins instead recovers "
              << formatDollars(
                     binning.revenuePerGoodDie().value(), 2)
              << " per good die (blended) vs "
              << formatDollars(
                     (window.peak_unit_price * 0.25).value(), 2)
              << " per good die top-bin-only.\n";
    return 0;
}
