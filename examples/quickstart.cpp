/**
 * @file
 * Quickstart: evaluate one chip design's time-to-market, cost, and
 * Chip Agility Score under the default market snapshot, then stress it
 * with a capacity cut.
 *
 * Build & run:
 *   cmake -B build -G Ninja && cmake --build build
 *   ./build/examples/quickstart
 */

#include <iostream>

#include "core/cas.hh"
#include "core/ttm_model.hh"
#include "core/uncertainty.hh"
#include "econ/cost_model.hh"
#include "support/outcome.hh"
#include "support/strutil.hh"
#include "tech/default_dataset.hh"

int
main()
{
    using namespace ttmcas;

    // 1. A technology snapshot: the paper's Section 5 market estimate.
    //    Swap in your own TechnologyDb to model your market.
    const TechnologyDb db = defaultTechnologyDb();

    // 2. Describe your chip. Here: a 2.4B-transistor SoC at 7nm with
    //    200M unique (unverified) transistors and 14 weeks of
    //    design/implementation work remaining.
    ChipDesign soc = makeMonolithicDesign(
        "my-soc", "7nm", /*total_transistors=*/2.4e9,
        /*unique_transistors=*/200e6, /*design_time=*/Weeks(14.0));

    // 3. Time-to-market (paper Eq. 1-7) for 5 million units.
    const double n_chips = 50e6;
    const TtmModel ttm_model(db);
    const TtmResult ttm = ttm_model.evaluate(soc, n_chips);
    std::cout << "Time-to-market for " << formatSi(n_chips, 0)
              << " chips at 7nm\n"
              << "  design+impl : " << formatFixed(ttm.design_time.value(), 1)
              << " weeks\n"
              << "  tapeout     : "
              << formatFixed(ttm.tapeout_time.value(), 1) << " weeks ("
              << formatSi(ttm.tapeout_effort.value(), 1)
              << " engineering-hours)\n"
              << "  fabrication : " << formatFixed(ttm.fab_time.value(), 1)
              << " weeks (bottleneck: " << ttm.fab_bottleneck << ")\n"
              << "  packaging   : "
              << formatFixed(ttm.packaging_time.value(), 1) << " weeks\n"
              << "  TOTAL       : " << formatFixed(ttm.total().value(), 1)
              << " weeks\n\n";

    // 4. Chip creation cost (Moonwalk-derived model).
    const CostModel cost_model(db);
    const CostBreakdown cost = cost_model.evaluate(soc, n_chips);
    std::cout << "Chip creation cost\n"
              << "  NRE           : " << formatDollars(cost.nre().value())
              << " (tapeout " << formatDollars(cost.tapeout_labor.value())
              << " + masks " << formatDollars(cost.masks.value()) << ")\n"
              << "  manufacturing : "
              << formatDollars(cost.manufacturing().value()) << "\n"
              << "  per chip      : "
              << formatDollars(cost.total().value() / n_chips) << "\n\n";

    // 5. Agility (paper Eq. 8): how sensitive is TTM to a production-
    //    side shock at the node you chose?
    const CasModel cas_model(ttm_model);
    std::cout << "Chip Agility Score: "
              << formatFixed(cas_model.cas(soc, n_chips), 1)
              << " (normalized wafers/week^2; higher = more resilient)\n";

    // 6. What if a severe disruption leaves the 7nm line at 10%
    //    capacity?
    MarketConditions crisis;
    crisis.setCapacityFactor("7nm", 0.1);
    const TtmResult stressed = ttm_model.evaluate(soc, n_chips, crisis);
    std::cout << "Under a 90% capacity cut at 7nm, TTM grows "
              << formatFixed(ttm.total().value(), 1) << " -> "
              << formatFixed(stressed.total().value(), 1) << " weeks\n";

    // 7. Would an older node have been more resilient? Re-target the
    //    same architecture (the paper's re-release methodology).
    const ChipDesign legacy = retargetDesign(soc, "28nm");
    std::cout << "Same chip re-targeted to 28nm: TTM "
              << formatFixed(
                     ttm_model.evaluate(legacy, n_chips).total().value(), 1)
              << " weeks, CAS "
              << formatFixed(cas_model.cas(legacy, n_chips), 1) << "\n\n";

    // 8. Fault-tolerant batch evaluation: a long Monte-Carlo study
    //    should not lose an hour of work to one bad sample. Opt into
    //    skip-and-record and hand the sampler a FailureReport — failed
    //    points are dropped (deterministically, for any thread count)
    //    and accounted for instead of aborting the run.
    const UncertaintyAnalysis uncertainty(db);
    UncertaintyAnalysis::Options mc;
    mc.samples = 2000;
    mc.failure_policy = FailurePolicy::skipAndRecord();
    FailureReport report;
    mc.failure_report = &report;
    const Summary mc_ttm = uncertainty.ttmSummary(soc, n_chips, {}, mc);
    std::cout << "Monte-Carlo TTM under +/-10% input uncertainty: median "
              << formatFixed(mc_ttm.percentile(50.0), 1) << " wk, p95 "
              << formatFixed(mc_ttm.percentile(95.0), 1) << " wk ("
              << report.pointCount() - report.failureCount() << "/"
              << report.pointCount() << " samples usable)\n";
    if (!report.empty())
        std::cout << report.summary() << "\n";
    return 0;
}
