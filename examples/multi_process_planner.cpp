/**
 * @file
 * Multi-process manufacturing planner (the Section 7 methodology as a
 * tool).
 *
 * Given a mass-produced design, evaluates single-node plans for every
 * in-production node, then searches two-node production splits for the
 * most agile plan, reporting the TTM/cost/CAS trade-offs.
 *
 * Usage: multi_process_planner [billion_chips]
 */

#include <iostream>
#include <string>

#include "core/reference_designs.hh"
#include "econ/cost_model.hh"
#include "opt/split_optimizer.hh"
#include "report/table.hh"
#include "support/strutil.hh"
#include "tech/default_dataset.hh"

int
main(int argc, char** argv)
{
    using namespace ttmcas;

    const double n_chips =
        (argc > 1 ? std::stod(argv[1]) : 1.0) * 1e9;

    const TechnologyDb db = defaultTechnologyDb();
    TtmModel::Options options;
    options.tapeout_engineers = kRavenTapeoutEngineers;
    SplitPlanner::Options plan_options;
    for (int percent = 2; percent <= 100; percent += 2)
        plan_options.fractions.push_back(percent / 100.0);
    const SplitPlanner planner(TtmModel(db, options), CostModel(db),
                               plan_options);

    const DesignFactory mcu = [](const std::string& process) {
        return designs::ravenMulticore(process);
    };

    std::cout << "=== Multi-process manufacturing planner ===\n"
              << "Design: Raven-class 64-core MCU, "
              << formatSi(n_chips, 1) << " final chips\n\n";

    // Single-process baselines.
    Table singles({"Node", "TTM (wk)", "Cost ($B)", "CAS"});
    singles.setAlign(0, Align::Left);
    ProductionPlan best_single;
    bool have_single = false;
    for (const std::string& node : db.availableNames()) {
        const ProductionPlan plan =
            planner.singleProcessPlan(mcu, n_chips, node);
        singles.addRow({node, formatFixed(plan.ttm.value(), 1),
                        formatFixed(plan.cost.value() / 1e9, 2),
                        formatFixed(plan.cas, 0)});
        if (!have_single || plan.cas > best_single.cas) {
            best_single = plan;
            have_single = true;
        }
    }
    std::cout << "Single-process plans:\n" << singles.render() << "\n";

    // Fastest and cheapest single-process references (Section 7 frames
    // its headline against both).
    ProductionPlan fastest_single, cheapest_single;
    bool have_refs = false;
    for (const std::string& node : db.availableNames()) {
        const ProductionPlan plan =
            planner.singleProcessPlan(mcu, n_chips, node);
        if (!have_refs ||
            plan.ttm.value() < fastest_single.ttm.value())
            fastest_single = plan;
        if (!have_refs ||
            plan.cost.value() < cheapest_single.cost.value())
            cheapest_single = plan;
        have_refs = true;
    }

    // Two-node splits over the high-capacity candidates.
    const std::vector<std::string> candidates{"180nm", "65nm", "40nm",
                                              "28nm", "14nm"};
    Table splits({"Primary", "Secondary", "Split %", "TTM (wk)",
                  "Cost ($B)", "CAS"});
    splits.setAlign(0, Align::Left).setAlign(1, Align::Left);
    std::vector<ProductionPlan> all_plans;
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        for (std::size_t j = 0; j < candidates.size(); ++j) {
            if (i == j)
                continue;
            const ProductionPlan plan = planner.optimizeCas(
                mcu, n_chips, candidates[i], candidates[j]);
            if (plan.singleProcess())
                continue;
            splits.addRow(
                {plan.primary, plan.secondary,
                 formatFixed(plan.primary_fraction * 100.0, 0),
                 formatFixed(plan.ttm.value(), 1),
                 formatFixed(plan.cost.value() / 1e9, 2),
                 formatFixed(plan.cas, 0)});
            all_plans.push_back(plan);
        }
    }
    std::cout << "CAS-optimal two-node splits:\n"
              << splits.render() << "\n";

    // Recommendation: among the near-fastest plans (within 2% of the
    // fastest TTM anywhere, singles included), pick the most agile —
    // the paper's "maximize CAS while minimizing TTM and cost".
    double min_ttm = fastest_single.ttm.value();
    for (const auto& plan : all_plans)
        min_ttm = std::min(min_ttm, plan.ttm.value());
    ProductionPlan recommended = fastest_single;
    for (const auto& plan : all_plans) {
        if (plan.ttm.value() <= min_ttm * 1.02 &&
            plan.cas > recommended.cas)
            recommended = plan;
    }

    std::cout << "Recommended plan: " << recommended.primary;
    if (!recommended.singleProcess()) {
        std::cout << " + " << recommended.secondary << " at "
                  << formatFixed(recommended.primary_fraction * 100.0, 0)
                  << "% / "
                  << formatFixed(
                         100.0 * (1.0 - recommended.primary_fraction), 0)
                  << "%";
    }
    std::cout << "\n  TTM  " << formatFixed(recommended.ttm.value(), 1)
              << " weeks ("
              << formatFixed(100.0 * (1.0 -
                                      recommended.ttm.value() /
                                          cheapest_single.ttm.value()),
                             0)
              << "% faster than the cheapest single-node plan)\n"
              << "  CAS  " << formatFixed(recommended.cas, 0) << " ("
              << formatFixed(
                     100.0 * (recommended.cas / fastest_single.cas - 1.0),
                     0)
              << "% vs the fastest single-node plan; paper headline: "
                 "+47%)\n"
              << "  cost " << formatDollars(recommended.cost.value(), 2)
              << " ("
              << formatFixed(100.0 * (recommended.cost.value() /
                                          cheapest_single.cost.value() -
                                      1.0),
                             1)
              << "% vs the cheapest single-node plan; paper: +1.6%)\n";
    return 0;
}
