/**
 * @file
 * Command-line front end to the TTM/CAS/cost models — the "quick
 * assessment" interface the paper's abstract promises architects.
 *
 * Usage:
 *   ttm_cli --node 7nm --ntt 2.4e9 --nut 2e8 --chips 5e7
 *           [--design file.csv]   (multi-die design; see core/design_io)
 *           [--design-weeks 14] [--engineers 100]
 *           [--capacity 0.8] [--queue 2]
 *           [--snapshot market.csv] [--all-nodes] [--risk <deadline>]
 *           [--skip-failures]
 *           [--trace=trace.json] [--metrics=metrics.json]
 *           [--manifest=manifest.json]
 *           [--sobol[=N]] [--seed s] [--threads t] [--retries r]
 *           [--deadline=seconds] [--checkpoint=file] [--resume=file]
 *
 * With --all-nodes, the design is re-targeted to every in-production
 * node and the full comparison table is printed. With --risk, a
 * schedule-risk assessment against the deadline (weeks) is added,
 * assuming a moderate disruption forecast on the chosen node.
 *
 * --skip-failures turns the --all-nodes sweep fault-tolerant: a node
 * whose evaluation fails is dropped from the table, the failure report
 * goes to stderr, and the exit code is 2 (0 = clean, 1 = hard error).
 *
 * --trace / --metrics / --manifest turn on the observability layer
 * (docs/OBSERVABILITY.md): in addition to the normal evaluation, a
 * compact sweep exercises every instrumented batch kernel (Monte-
 * Carlo sampling, Sobol analysis + bootstrap, the cache sweep, the
 * split planner, and the portfolio planner) so the emitted Chrome
 * trace, metrics snapshot, and run manifest cover the full span
 * taxonomy. All three flags accept "--flag value" or "--flag=value".
 *
 * --sobol[=N] switches to resumable-batch mode: a Sobol sensitivity
 * analysis of TTM over three scale factors with N base samples
 * (default 128), printed with %.17g so runs can be diffed bitwise.
 * --deadline bounds the batch by wall-clock seconds, --checkpoint
 * persists completed points atomically as the batch runs, --resume
 * restores them bit-exactly, and Ctrl-C stops the batch cleanly after
 * flushing the checkpoint (docs/RESILIENCE.md).
 *
 * --ensemble[=N] switches to scenario-ensemble mode: N stochastic
 * disruption paths (default 64) sampled from per-node Markov regime
 * chains and Hawkes shock clusters (docs/SCENARIOS.md), evaluated
 * through the timeline TTM model, and reduced to per-regime TTM/CAS
 * distributions with bootstrap confidence intervals.
 * --ensemble-config supplies the disruption spec as JSON (default: a
 * moderate process on every node the design uses). The same
 * resilience flags (--deadline/--checkpoint/--resume/--retries/
 * --skip-failures) apply, with the same exit codes as --sobol.
 *
 * --chiplet-pareto switches to chiplet-economics mode: the design's
 * transistor budget is swept over partition count x node assignment x
 * redundancy level x production split (docs/ECONOMICS.md), each
 * candidate is scored on TTM, CAS, and redundancy-aware chiplet cost,
 * and the 3-D Pareto frontier is printed with %.17g. --chiplet-config
 * supplies the sweep spec as JSON (default: partitions {1,2,4} x the
 * design's own nodes x redundancy {0,1}, single-sourced). The same
 * resilience flags (--deadline/--checkpoint/--resume/--retries/
 * --skip-failures) apply, with the same exit codes as --sobol.
 *
 * Exit codes: 0 = clean run; 1 = hard error; 2 = completed but
 * degraded (--skip-failures dropped points) or a usage error; 3 =
 * --deadline fired and the partial batch was checkpointed; 130 =
 * SIGINT stopped the batch after the checkpoint flush.
 */

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "core/cas.hh"
#include "core/design_io.hh"
#include "core/ensemble.hh"
#include "core/ensemble_io.hh"
#include "core/risk.hh"
#include "core/uncertainty.hh"
#include "econ/cost_model.hh"
#include "opt/cache_optimizer.hh"
#include "opt/chiplet_explorer.hh"
#include "opt/chiplet_io.hh"
#include "opt/portfolio.hh"
#include "opt/split_optimizer.hh"
#include "report/table.hh"
#include "serve/content_hash.hh"
#include "stats/distributions.hh"
#include "stats/sobol.hh"
#include "support/cancel.hh"
#include "support/checkpoint.hh"
#include "support/metrics.hh"
#include "support/outcome.hh"
#include "support/retry.hh"
#include "support/run_manifest.hh"
#include "support/strutil.hh"
#include "support/trace.hh"
#include "tech/dataset_io.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

struct CliArgs
{
    std::string node = "7nm";
    double ntt = 1e9;
    double nut = 1e8;
    double chips = 1e7;
    double design_weeks = 0.0;
    double engineers = 100.0;
    double capacity = 1.0;
    double queue = 0.0;
    std::string snapshot;
    bool all_nodes = false;
    double risk_deadline = 0.0;
    std::string design_file;
    bool skip_failures = false;
    std::string trace_file;
    std::string metrics_file;
    std::string manifest_file;
    std::size_t sobol_samples = 0; ///< 0 = batch mode off
    std::size_t ensemble_paths = 0; ///< 0 = ensemble mode off
    std::string ensemble_config;
    bool chiplet_pareto = false;
    std::string chiplet_config;
    std::uint64_t seed = 2023;
    std::size_t threads = 0;
    std::uint32_t retries = 1;
    double deadline_s = 0.0;
    std::string checkpoint_file;
    std::string resume_file;

    bool wantsObservability() const
    {
        return !trace_file.empty() || !metrics_file.empty() ||
               !manifest_file.empty();
    }
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: ttm_cli --node <p> --ntt <n> --nut <n> --chips <n>\n"
           "              [--design-weeks w] [--engineers e]\n"
           "              [--capacity f] [--queue w]\n"
           "              [--snapshot file.csv] [--all-nodes]\n"
           "              [--risk deadline_weeks] [--skip-failures]\n"
           "              [--trace=file.json] [--metrics=file.json]\n"
           "              [--manifest=file.json]\n"
           "              [--sobol[=N]] [--seed s] [--threads t]\n"
           "              [--ensemble[=N]] [--ensemble-config=file.json]\n"
           "              [--chiplet-pareto] [--chiplet-config=file.json]\n"
           "              [--retries r] [--deadline=seconds]\n"
           "              [--checkpoint=file] [--resume=file]\n";
    std::exit(2);
}

CliArgs
parseArgs(int argc, char** argv)
{
    CliArgs args;
    // Arity 2 = optional value: "--flag", "--flag value", "--flag=value".
    const std::map<std::string, int> flags{
        {"--node", 1},       {"--ntt", 1},      {"--nut", 1},
        {"--chips", 1},      {"--design-weeks", 1},
        {"--engineers", 1},  {"--capacity", 1}, {"--queue", 1},
        {"--snapshot", 1},   {"--all-nodes", 0}, {"--risk", 1},
        {"--design", 1},     {"--skip-failures", 0},
        {"--trace", 1},      {"--metrics", 1},  {"--manifest", 1},
        {"--sobol", 2},      {"--seed", 1},     {"--threads", 1},
        {"--ensemble", 2},   {"--ensemble-config", 1},
        {"--chiplet-pareto", 0}, {"--chiplet-config", 1},
        {"--retries", 1},    {"--deadline", 1}, {"--checkpoint", 1},
        {"--resume", 1},
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        // Accept both "--flag value" and "--flag=value".
        std::string inline_value;
        bool has_inline_value = false;
        const std::size_t equals = flag.find('=');
        if (equals != std::string::npos) {
            inline_value = flag.substr(equals + 1);
            flag = flag.substr(0, equals);
            has_inline_value = true;
        }
        auto it = flags.find(flag);
        if (it == flags.end())
            usage();
        std::string value;
        if (it->second == 1) {
            if (has_inline_value) {
                value = inline_value;
            } else {
                if (i + 1 >= argc)
                    usage();
                value = argv[++i];
            }
        } else if (it->second == 2) {
            if (has_inline_value) {
                value = inline_value;
            } else if (i + 1 < argc && argv[i + 1][0] != '-') {
                value = argv[++i];
            }
        } else if (has_inline_value) {
            usage();
        }
        try {
            if (flag == "--node")
                args.node = value;
            else if (flag == "--ntt")
                args.ntt = std::stod(value);
            else if (flag == "--nut")
                args.nut = std::stod(value);
            else if (flag == "--chips")
                args.chips = std::stod(value);
            else if (flag == "--design-weeks")
                args.design_weeks = std::stod(value);
            else if (flag == "--engineers")
                args.engineers = std::stod(value);
            else if (flag == "--capacity")
                args.capacity = std::stod(value);
            else if (flag == "--queue")
                args.queue = std::stod(value);
            else if (flag == "--snapshot")
                args.snapshot = value;
            else if (flag == "--all-nodes")
                args.all_nodes = true;
            else if (flag == "--risk")
                args.risk_deadline = std::stod(value);
            else if (flag == "--design")
                args.design_file = value;
            else if (flag == "--skip-failures")
                args.skip_failures = true;
            else if (flag == "--trace")
                args.trace_file = value;
            else if (flag == "--metrics")
                args.metrics_file = value;
            else if (flag == "--manifest")
                args.manifest_file = value;
            else if (flag == "--sobol")
                args.sobol_samples =
                    value.empty() ? 128 : std::stoull(value);
            else if (flag == "--ensemble")
                args.ensemble_paths =
                    value.empty() ? 64 : std::stoull(value);
            else if (flag == "--ensemble-config")
                args.ensemble_config = value;
            else if (flag == "--chiplet-pareto")
                args.chiplet_pareto = true;
            else if (flag == "--chiplet-config")
                args.chiplet_config = value;
            else if (flag == "--seed")
                args.seed = std::stoull(value);
            else if (flag == "--threads")
                args.threads = std::stoull(value);
            else if (flag == "--retries")
                args.retries =
                    static_cast<std::uint32_t>(std::stoul(value));
            else if (flag == "--deadline")
                args.deadline_s = std::stod(value);
            else if (flag == "--checkpoint")
                args.checkpoint_file = value;
            else if (flag == "--resume")
                args.resume_file = value;
        } catch (const std::exception&) {
            usage();
        }
    }
    return args;
}

/** A synthetic miss curve covering exactly @p sizes (for the sweep). */
MissCurve
syntheticMissCurve(const std::string& workload, bool instruction_stream,
                   const std::vector<std::uint64_t>& sizes)
{
    MissCurve curve;
    curve.workload = workload;
    curve.instruction_stream = instruction_stream;
    curve.sizes_bytes = sizes;
    for (std::size_t i = 0; i < sizes.size(); ++i)
        curve.miss_rates.push_back(0.2 / static_cast<double>(i + 1));
    return curve;
}

/**
 * Exercise every instrumented batch kernel once with small workloads
 * so the emitted trace/metrics/manifest cover the full span taxonomy:
 * sampleTtm (Monte-Carlo), sobolAnalyze + sobolBootstrapCi,
 * CacheSweep::sweep, SplitPlanner::optimizeCas, and
 * PortfolioPlanner::plan.
 */
void
runObservabilitySweep(const TechnologyDb& db, const ChipDesign& design,
                      const CliArgs& args, obs::RunManifest& manifest)
{
    TtmModel::Options model_options;
    model_options.tapeout_engineers = args.engineers;
    const TtmModel model(db, model_options);
    const double n_chips = 1e6;
    constexpr std::uint64_t kSweepSeed = 2023;

    // 1. Monte-Carlo uncertainty propagation (drawSamples).
    const UncertaintyAnalysis analysis(db, model_options);
    UncertaintyAnalysis::Options mc;
    mc.samples = 64;
    mc.band = 0.05;
    mc.seed = kSweepSeed;
    {
        obs::ManifestKernelScope scope(manifest, "sampleTtm");
        scope.setPoints(mc.samples);
        analysis.sampleTtm(design, n_chips, {}, mc);
    }

    // 2. Sobol sensitivity + bootstrap confidence intervals over three
    // scale factors (N_TT, D0, L_fab).
    {
        const std::vector<std::unique_ptr<Distribution>> owned = [] {
            std::vector<std::unique_ptr<Distribution>> dists;
            for (int i = 0; i < 3; ++i)
                dists.push_back(relativeUniform(1.0, 0.05));
            return dists;
        }();
        const std::vector<SensitivityInput> inputs{
            {"NTT", owned[0].get()},
            {"D0", owned[1].get()},
            {"Lfab", owned[2].get()}};
        const auto sobol_model =
            [&](const std::vector<double>& point) {
                InputFactors factors = nominalFactors();
                factors[0] = point[0]; // N_TT
                factors[2] = point[1]; // D0
                factors[4] = point[2]; // L_fab
                return analysis.ttmWithFactors(design, n_chips, {}, factors)
                    .value();
            };
        SobolOptions sobol_options;
        sobol_options.base_samples = 32;
        sobol_options.seed = kSweepSeed;
        SobolRowData rows;
        {
            obs::ManifestKernelScope scope(manifest, "sobolAnalyze");
            scope.setPoints((inputs.size() + 2) *
                            sobol_options.base_samples);
            sobolAnalyze(inputs, sobol_model, sobol_options, &rows);
        }
        SobolBootstrapOptions bootstrap;
        bootstrap.resamples = 16;
        bootstrap.coverage = 0.9;
        bootstrap.seed = kSweepSeed;
        {
            obs::ManifestKernelScope scope(manifest, "sobolBootstrapCi");
            scope.setPoints(bootstrap.resamples);
            sobolBootstrapCi(rows, bootstrap);
        }
    }

    // 3. Cache design-space sweep on a synthetic 3x3 miss-curve grid.
    {
        const std::vector<std::uint64_t> sizes{4096, 16384, 65536};
        const CacheSweep cache_sweep(
            db, syntheticMissCurve("obs-sweep", true, sizes),
            syntheticMissCurve("obs-sweep", false, sizes), IpcModel{},
            ArianeChipSpec{});
        CacheSweepOptions sweep_options;
        sweep_options.sizes_bytes = sizes;
        sweep_options.process = args.node;
        sweep_options.n_chips = n_chips;
        obs::ManifestKernelScope scope(manifest, "CacheSweep::sweep");
        scope.setPoints(sizes.size() * sizes.size());
        cache_sweep.sweep(sweep_options);
    }

    // The split/portfolio kernels retarget the design across nodes, so
    // probe for two nodes the die actually fits first.
    std::vector<std::string> feasible;
    for (const std::string& node : db.availableNames()) {
        if (feasible.size() >= 2)
            break;
        try {
            model.evaluate(retargetDesign(design, node), n_chips);
            feasible.push_back(node);
        } catch (const ModelError&) {
            // die does not fit / node out of production: not a candidate
        }
    }
    if (feasible.size() < 2) {
        std::cerr << "warning: observability sweep found fewer than two "
                     "feasible nodes; skipping split/portfolio kernels\n";
        return;
    }
    const DesignFactory factory = [&](const std::string& node) {
        return retargetDesign(design, node);
    };

    // 4. Production split planner.
    {
        SplitPlanner::Options split_options;
        split_options.fractions = {0.25, 0.5, 0.75, 1.0};
        const SplitPlanner planner(model, CostModel(db), split_options);
        obs::ManifestKernelScope scope(manifest,
                                       "SplitPlanner::optimizeCas");
        scope.setPoints(2 * split_options.fractions.size());
        planner.optimizeCas(factory, n_chips, feasible[0], feasible[1],
                            {});
    }

    // 5. Portfolio planner over two products and the feasible nodes.
    {
        PortfolioPlanner::Options portfolio_options;
        portfolio_options.candidate_nodes = feasible;
        portfolio_options.max_moves = 4;
        const PortfolioPlanner planner(model, portfolio_options);
        std::vector<PortfolioProduct> products(2);
        products[0].name = "obs-a";
        products[1].name = "obs-b";
        for (auto& product : products) {
            product.design = design;
            product.n_chips = n_chips;
            product.deadline = Weeks(1000.0);
            product.weight = 1.0;
        }
        obs::ManifestKernelScope scope(manifest,
                                       "PortfolioPlanner::plan");
        scope.setPoints(products.size() * feasible.size());
        planner.plan(products);
    }
}

/** Shortest round-trippable decimal rendering of a double. */
std::string
g17(double value)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

/**
 * Resumable-batch mode (--sobol): a Sobol sensitivity analysis of TTM
 * over three scale factors (N_TT, D0, L_fab), wired into the
 * resilience layer: cooperative deadline/SIGINT stop, deterministic
 * per-point retry, and atomic checkpoint/resume. Indices print with
 * %.17g, so a straight run and a killed-and-resumed run produce
 * bitwise-identical stdout. Returns the process exit code.
 */
int
runSobolBatch(const TechnologyDb& db, const ChipDesign& design,
              const CliArgs& args, obs::RunManifest& manifest)
{
    TtmModel::Options model_options;
    model_options.tapeout_engineers = args.engineers;
    const UncertaintyAnalysis analysis(db, model_options);

    const std::vector<std::unique_ptr<Distribution>> owned = [] {
        std::vector<std::unique_ptr<Distribution>> dists;
        for (int i = 0; i < 3; ++i)
            dists.push_back(relativeUniform(1.0, 0.05));
        return dists;
    }();
    const std::vector<SensitivityInput> inputs{{"NTT", owned[0].get()},
                                               {"D0", owned[1].get()},
                                               {"Lfab", owned[2].get()}};
    const auto model = [&](const std::vector<double>& point) {
        InputFactors factors = nominalFactors();
        factors[0] = point[0]; // N_TT
        factors[2] = point[1]; // D0
        factors[4] = point[2]; // L_fab
        return analysis.ttmWithFactors(design, args.chips, {}, factors)
            .value();
    };

    CancellationToken token;
    const ScopedSigintCancel sigint(token);
    if (args.deadline_s > 0.0)
        token.setDeadlineAfter(args.deadline_s);

    SobolOptions options;
    options.base_samples = args.sobol_samples;
    options.seed = args.seed;
    options.parallel.threads = args.threads;
    options.failure_policy = args.skip_failures
                                 ? FailurePolicy::skipAndRecord()
                                 : FailurePolicy();
    options.cancel = &token;
    if (args.retries > 1) {
        options.retry = RetryPolicy::immediate(args.retries);
        options.retry.seed = args.seed;
    }
    RetryStats retry_stats;
    options.retry_stats = &retry_stats;
    FailureReport report;
    options.failure_report = &report;

    std::unique_ptr<SweepCheckpoint> resume;
    if (!args.resume_file.empty()) {
        resume = std::make_unique<SweepCheckpoint>(
            SweepCheckpoint::load(args.resume_file));
        options.resume_from = resume.get();
        manifest.disposition = "resumed";
        manifest.parent_checkpoint = args.resume_file;
    }
    SweepCheckpoint checkpoint;
    if (!args.checkpoint_file.empty()) {
        checkpoint.enableAutoFlush(args.checkpoint_file, 16);
        if (resume != nullptr)
            checkpoint.setParent(args.resume_file);
        options.checkpoint = &checkpoint;
    }

    const std::size_t total_points =
        (inputs.size() + 2) * options.base_samples;
    SobolResult result;
    bool finished = false;
    try {
        obs::ManifestKernelScope scope(manifest, "sobolAnalyze");
        scope.setPoints(total_points);
        result = sobolAnalyze(inputs, model, options);
        scope.setFailures(report.failureCount());
        finished = !token.stopRequested();
    } catch (const Error&) {
        // Under the default Abort policy a stop surfaces as the
        // structured Cancelled/DeadlineExceeded error; anything else
        // is a real failure and propagates.
        if (!token.stopRequested())
            throw;
    }

    manifest.total_retries = retry_stats.extra_attempts;
    manifest.addFailureReport(report);
    if (options.checkpoint != nullptr) {
        // Final flush: the auto-flush cadence only covers multiples of
        // its period, and a stopped run must persist its last points.
        checkpoint.writeAtomic(args.checkpoint_file);
        manifest.checkpoint_points = checkpoint.completedCount();
    }

    if (!finished) {
        const bool cancelled = token.cancelRequested();
        manifest.disposition =
            cancelled ? "cancelled" : "deadline_exceeded";
        std::cerr << "ttm_cli: sobol batch stopped ("
                  << manifest.disposition << "); "
                  << checkpoint.completedCount() << "/" << total_points
                  << " points checkpointed\n";
        return cancelled ? 130 : 3;
    }

    // Content-addressed key of this batch, from the same helper the
    // ttm_serve result cache uses (serve/content_hash.hh), so a CLI
    // run can be correlated with server cache entries. inputs=3
    // records the CLI's three-factor model: the server's six-input
    // sobol_ttm key can never alias it.
    serve::EvalKeyParams key_params;
    key_params.kernel = "sobol_ttm";
    key_params.seed = args.seed;
    key_params.n_chips = args.chips;
    key_params.samples = options.base_samples;
    key_params.band = 0.05;
    key_params.inputs = inputs.size();
    const std::string cache_key =
        serve::evalCacheKey(design, MarketConditions{}, key_params);

    std::cout << "sobol " << inputs.size() << " inputs, "
              << options.base_samples << " base samples, " << total_points
              << " evaluations, seed " << args.seed << ", key "
              << cache_key << "\n";
    for (std::size_t i = 0; i < inputs.size(); ++i) {
        std::cout << "  " << result.input_names[i]
                  << " S1=" << g17(result.first_order[i])
                  << " ST=" << g17(result.total_effect[i]) << "\n";
    }
    if (!report.empty()) {
        std::cerr << report.summary() << "\n";
        return 2;
    }
    return 0;
}

/** One "  <label> ..." stats line of the ensemble report (%.17g). */
void
printEnsembleGroup(const EnsembleGroup& group)
{
    std::cout << "  " << group.label << " count=" << group.count << "\n";
    if (group.count == 0)
        return;
    std::cout << "    ttm_weeks mean=" << g17(group.ttm.mean)
              << " p5=" << g17(group.ttm.p5) << " p50=" << g17(group.ttm.p50)
              << " p95=" << g17(group.ttm.p95) << " ci=["
              << g17(group.ttm.ci_lo) << "," << g17(group.ttm.ci_hi)
              << "]\n";
    std::cout << "    cas       mean=" << g17(group.cas.mean)
              << " p5=" << g17(group.cas.p5) << " p50=" << g17(group.cas.p50)
              << " p95=" << g17(group.cas.p95) << " ci=["
              << g17(group.cas.ci_lo) << "," << g17(group.cas.ci_hi)
              << "]\n";
}

/**
 * Scenario-ensemble mode (--ensemble): N stochastic disruption paths
 * (Markov regime chains + Hawkes shock clusters per node, see
 * docs/SCENARIOS.md) evaluated through the timeline TTM model and
 * reduced to per-regime TTM/CAS distributions with bootstrap CIs.
 * Wired into the same resilience stack as --sobol: cooperative
 * deadline/SIGINT stop, deterministic per-path retry, and atomic
 * checkpoint/resume. All numbers print with %.17g, so a straight run
 * and a killed-and-resumed run produce bitwise-identical stdout.
 * Returns the process exit code.
 */
int
runEnsembleBatch(const TechnologyDb& db, const ChipDesign& design,
                 const MarketConditions& market, const CliArgs& args,
                 obs::RunManifest& manifest)
{
    EnsembleSpec spec;
    if (args.ensemble_config.empty()) {
        spec = EnsembleSpec::defaultsFor(design.processNodes());
    } else {
        std::ifstream file(args.ensemble_config);
        if (!file) {
            std::cerr << "error: cannot read ensemble config '"
                      << args.ensemble_config << "'\n";
            return 1;
        }
        std::ostringstream text;
        text << file.rdbuf();
        // The config file is user input: parse it under the same
        // untrusted-wire limits as a ttm_serve request line, and
        // report every problem at once instead of crashing on the
        // first.
        const EnsembleSpecParse parsed = parseEnsembleSpecText(
            text.str(), JsonLimits::untrustedWire(1 << 20));
        if (!parsed.ok()) {
            std::cerr << "error: invalid ensemble config '"
                      << args.ensemble_config << "':\n";
            for (const std::string& problem : parsed.errors)
                std::cerr << "  " << problem << "\n";
            return 2;
        }
        spec = parsed.spec;
    }

    CancellationToken token;
    const ScopedSigintCancel sigint(token);
    if (args.deadline_s > 0.0)
        token.setDeadlineAfter(args.deadline_s);

    EnsembleOptions options;
    options.paths = args.ensemble_paths;
    options.seed = args.seed;
    options.parallel.threads = args.threads;
    options.failure_policy = args.skip_failures
                                 ? FailurePolicy::skipAndRecord()
                                 : FailurePolicy();
    options.cancel = &token;
    if (args.retries > 1) {
        options.retry = RetryPolicy::immediate(args.retries);
        options.retry.seed = args.seed;
    }
    RetryStats retry_stats;
    options.retry_stats = &retry_stats;
    FailureReport report;
    options.failure_report = &report;

    std::unique_ptr<SweepCheckpoint> resume;
    if (!args.resume_file.empty()) {
        resume = std::make_unique<SweepCheckpoint>(
            SweepCheckpoint::load(args.resume_file));
        options.resume_from = resume.get();
        manifest.disposition = "resumed";
        manifest.parent_checkpoint = args.resume_file;
    }
    SweepCheckpoint checkpoint;
    if (!args.checkpoint_file.empty()) {
        checkpoint.enableAutoFlush(args.checkpoint_file, 16);
        if (resume != nullptr)
            checkpoint.setParent(args.resume_file);
        options.checkpoint = &checkpoint;
    }

    TtmModel::Options model_options;
    model_options.tapeout_engineers = args.engineers;
    const EnsembleRunner runner(db, model_options);
    const std::size_t total_points = 2 * options.paths;
    EnsembleResult result;
    bool finished = false;
    try {
        obs::ManifestKernelScope scope(manifest, "EnsembleRunner::run");
        scope.setPoints(total_points);
        result = runner.run(design, args.chips, market, spec, options);
        scope.setFailures(report.failureCount());
        finished = !token.stopRequested();
    } catch (const Error&) {
        if (!token.stopRequested())
            throw;
    }

    manifest.total_retries = retry_stats.extra_attempts;
    manifest.addFailureReport(report);
    if (options.checkpoint != nullptr) {
        checkpoint.writeAtomic(args.checkpoint_file);
        manifest.checkpoint_points = checkpoint.completedCount();
    }

    if (!finished) {
        const bool cancelled = token.cancelRequested();
        manifest.disposition =
            cancelled ? "cancelled" : "deadline_exceeded";
        std::cerr << "ttm_cli: ensemble stopped (" << manifest.disposition
                  << "); " << checkpoint.completedCount() << "/"
                  << total_points << " points checkpointed\n";
        return cancelled ? 130 : 3;
    }

    // Content-addressed key of this ensemble, built from the same
    // helper the ttm_serve result cache uses, with the full disruption
    // spec folded into the digest — so a CLI run correlates with the
    // server cache entry of the equivalent ensemble_ttm request (band
    // 0.10 mirrors the server-side request default; a unit test pins
    // the two paths to identical keys).
    serve::EvalKeyParams key_params;
    key_params.kernel = "ensemble_ttm";
    key_params.seed = args.seed;
    key_params.n_chips = args.chips;
    key_params.samples = options.paths;
    key_params.band = 0.10;
    key_params.ensemble = &spec;
    const std::string cache_key =
        serve::evalCacheKey(design, market, key_params);

    std::cout << "ensemble " << result.paths_completed << "/"
              << result.paths_requested << " paths, horizon "
              << g17(spec.horizon_weeks) << " weeks, seed " << args.seed
              << ", key " << cache_key << "\n";
    for (const EnsembleGroup& group : result.regimes)
        printEnsembleGroup(group);
    printEnsembleGroup(result.overall);
    if (!report.empty()) {
        std::cerr << report.summary() << "\n";
        return 2;
    }
    return 0;
}

/**
 * Chiplet-economics mode (--chiplet-pareto): sweep partition count x
 * node assignment x redundancy level x production split, score every
 * candidate on TTM, CAS, and redundancy-aware chiplet cost, and print
 * the 3-D Pareto frontier (docs/ECONOMICS.md walks through a run).
 * Wired into the same resilience stack as --sobol/--ensemble:
 * cooperative deadline/SIGINT stop, deterministic per-candidate retry,
 * and atomic checkpoint/resume. All numbers print with %.17g, so a
 * straight run and a killed-and-resumed run produce bitwise-identical
 * stdout. Returns the process exit code.
 */
int
runChipletPareto(const TechnologyDb& db, const ChipDesign& design,
                 const MarketConditions& market, const CliArgs& args,
                 obs::RunManifest& manifest)
{
    ChipletSweepSpec spec;
    if (args.chiplet_config.empty()) {
        spec = ChipletSweepSpec::defaultsFor(design.processNodes());
    } else {
        std::ifstream file(args.chiplet_config);
        if (!file) {
            std::cerr << "error: cannot read chiplet config '"
                      << args.chiplet_config << "'\n";
            return 1;
        }
        std::ostringstream text;
        text << file.rdbuf();
        // The config file is user input: parse it under the same
        // untrusted-wire limits as a ttm_serve request line, and
        // report every problem at once instead of crashing on the
        // first.
        const ChipletSpecParse parsed = parseChipletSweepSpecText(
            text.str(), JsonLimits::untrustedWire(1 << 20));
        if (!parsed.ok()) {
            std::cerr << "error: invalid chiplet config '"
                      << args.chiplet_config << "':\n";
            for (const std::string& problem : parsed.errors)
                std::cerr << "  " << problem << "\n";
            return 2;
        }
        spec = parsed.spec;
    }

    CancellationToken token;
    const ScopedSigintCancel sigint(token);
    if (args.deadline_s > 0.0)
        token.setDeadlineAfter(args.deadline_s);

    ChipletExplorerOptions options;
    options.seed = args.seed;
    options.parallel.threads = args.threads;
    options.failure_policy = args.skip_failures
                                 ? FailurePolicy::skipAndRecord()
                                 : FailurePolicy();
    options.cancel = &token;
    if (args.retries > 1) {
        options.retry = RetryPolicy::immediate(args.retries);
        options.retry.seed = args.seed;
    }
    RetryStats retry_stats;
    options.retry_stats = &retry_stats;
    FailureReport report;
    options.failure_report = &report;

    std::unique_ptr<SweepCheckpoint> resume;
    if (!args.resume_file.empty()) {
        resume = std::make_unique<SweepCheckpoint>(
            SweepCheckpoint::load(args.resume_file));
        options.resume_from = resume.get();
        manifest.disposition = "resumed";
        manifest.parent_checkpoint = args.resume_file;
    }
    SweepCheckpoint checkpoint;
    if (!args.checkpoint_file.empty()) {
        checkpoint.enableAutoFlush(args.checkpoint_file, 16);
        if (resume != nullptr)
            checkpoint.setParent(args.resume_file);
        options.checkpoint = &checkpoint;
    }

    TtmModel::Options model_options;
    model_options.tapeout_engineers = args.engineers;
    const ChipletExplorer explorer(db, model_options);
    const std::size_t total_points = 3 * spec.candidateCount();
    ChipletParetoResult result;
    bool finished = false;
    try {
        obs::ManifestKernelScope scope(manifest, "ChipletExplorer::run");
        scope.setPoints(total_points);
        result = explorer.run(design, args.chips, market, spec, options);
        scope.setFailures(report.failureCount());
        finished = !token.stopRequested();
    } catch (const Error&) {
        if (!token.stopRequested())
            throw;
    }

    manifest.total_retries = retry_stats.extra_attempts;
    manifest.addFailureReport(report);
    if (options.checkpoint != nullptr) {
        checkpoint.writeAtomic(args.checkpoint_file);
        manifest.checkpoint_points = checkpoint.completedCount();
    }

    if (!finished) {
        const bool cancelled = token.cancelRequested();
        manifest.disposition =
            cancelled ? "cancelled" : "deadline_exceeded";
        std::cerr << "ttm_cli: chiplet sweep stopped ("
                  << manifest.disposition << "); "
                  << checkpoint.completedCount() << "/" << total_points
                  << " points checkpointed\n";
        return cancelled ? 130 : 3;
    }

    // Content-addressed key of this sweep, built from the same helper
    // the ttm_serve result cache uses, with the full sweep spec folded
    // into the digest — so a CLI run correlates with the server cache
    // entry of the equivalent chiplet_pareto request (samples 256 and
    // band 0.10 mirror the server-side request defaults; a unit test
    // pins the two paths to identical keys).
    serve::EvalKeyParams key_params;
    key_params.kernel = kChipletKernelName;
    key_params.seed = args.seed;
    key_params.n_chips = args.chips;
    key_params.samples = 256;
    key_params.band = 0.10;
    key_params.chiplet = &spec;
    const std::string cache_key =
        serve::evalCacheKey(design, market, key_params);

    std::cout << "chiplet-pareto " << result.candidates_completed << "/"
              << result.candidates_requested << " candidates, "
              << result.frontier.size() << " frontier points, seed "
              << args.seed << ", key " << cache_key << "\n";
    for (const std::size_t index : result.frontier) {
        const ChipletPoint& point = result.points[index];
        std::cout << "  frontier idx=" << point.index
                  << " partitions=" << point.candidate.partitions
                  << " node=" << point.candidate.node
                  << " spares=" << point.candidate.spares
                  << " split=" << g17(point.candidate.split_fraction)
                  << " ttm=" << g17(point.ttm_weeks)
                  << " cas=" << g17(point.cas)
                  << " cost=" << g17(point.cost) << "\n";
    }
    if (!report.empty()) {
        std::cerr << report.summary() << "\n";
        return 2;
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const CliArgs args = parseArgs(argc, argv);
    bool skipped_failures = false;

    obs::RunManifest manifest;
    if (args.wantsObservability() || args.sobol_samples > 0 ||
        args.ensemble_paths > 0 || args.chiplet_pareto) {
        obs::setTracingEnabled(!args.trace_file.empty());
        obs::setMetricsEnabled(true);
        manifest.tool = "ttm_cli";
        manifest.git_hash = obs::buildGitHash();
        manifest.seed = args.seed;
        manifest.threads =
            ParallelConfig{args.threads}.resolvedThreads();
        manifest.setPolicy(args.skip_failures
                               ? FailurePolicy::skipAndRecord()
                               : FailurePolicy());
    }

    try {
        const TechnologyDb db = args.snapshot.empty()
                                    ? defaultTechnologyDb()
                                    : loadTechnologyCsv(args.snapshot);
        TtmModel::Options options;
        options.tapeout_engineers = args.engineers;
        const TtmModel model(db, options);
        const CasModel cas(model);
        const CostModel costs(db);

        MarketConditions market;
        market.setCapacityFactor(args.node, args.capacity);
        market.setQueueWeeks(args.node, Weeks(args.queue));

        ChipDesign design;
        if (!args.design_file.empty()) {
            design = loadDesignCsv(args.design_file);
            // Market flags apply to every node the design uses.
            for (const std::string& node : design.processNodes()) {
                market.setCapacityFactor(node, args.capacity);
                market.setQueueWeeks(node, Weeks(args.queue));
            }
        } else {
            design = makeMonolithicDesign(
                "cli-design", args.node, args.ntt, args.nut,
                Weeks(args.design_weeks));
        }

        if (args.chiplet_pareto) {
            const int code =
                runChipletPareto(db, design, market, args, manifest);
            if (!args.trace_file.empty())
                obs::writeChromeTrace(args.trace_file);
            if (!args.metrics_file.empty())
                obs::writeMetrics(args.metrics_file);
            if (!args.manifest_file.empty()) {
                manifest.captureKernelMetrics(obs::snapshotMetrics());
                manifest.write(args.manifest_file);
            }
            return code;
        }

        if (args.ensemble_paths > 0) {
            const int code =
                runEnsembleBatch(db, design, market, args, manifest);
            if (!args.trace_file.empty())
                obs::writeChromeTrace(args.trace_file);
            if (!args.metrics_file.empty())
                obs::writeMetrics(args.metrics_file);
            if (!args.manifest_file.empty()) {
                manifest.captureKernelMetrics(obs::snapshotMetrics());
                manifest.write(args.manifest_file);
            }
            return code;
        }

        if (args.sobol_samples > 0) {
            const int code = runSobolBatch(db, design, args, manifest);
            if (!args.trace_file.empty())
                obs::writeChromeTrace(args.trace_file);
            if (!args.metrics_file.empty())
                obs::writeMetrics(args.metrics_file);
            if (!args.manifest_file.empty()) {
                manifest.captureKernelMetrics(obs::snapshotMetrics());
                manifest.write(args.manifest_file);
            }
            return code;
        }

        if (args.all_nodes) {
            Table table(
                {"Node", "TTM (wk)", "CAS", "Cost", "$/chip"});
            table.setAlign(0, Align::Left);
            const std::vector<std::string> nodes = db.availableNames();
            std::vector<Outcome<std::vector<std::string>>> rows(
                nodes.size());
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                const std::string& node = nodes[i];
                const auto evaluateRow =
                    [&]() -> std::vector<std::string> {
                    const ChipDesign candidate =
                        retargetDesign(design, node);
                    MarketConditions node_market;
                    node_market.setCapacityFactor(node, args.capacity);
                    node_market.setQueueWeeks(node, Weeks(args.queue));
                    const double ttm =
                        model.evaluate(candidate, args.chips, node_market)
                            .total()
                            .value();
                    const double cost = costs.evaluate(candidate, args.chips)
                                            .total()
                                            .value();
                    return {node, formatFixed(ttm, 1),
                            formatFixed(
                                cas.cas(candidate, args.chips, node_market),
                                1),
                            formatDollars(cost, 2),
                            formatDollars(cost / args.chips, 2)};
                };
                if (args.skip_failures) {
                    rows[i] = guardedPoint(i, evaluateRow);
                } else {
                    // Legacy behavior: the first failing node aborts the
                    // sweep with its original error.
                    rows[i] = Outcome<std::vector<std::string>>::success(
                        evaluateRow());
                }
            }
            FailureReport report;
            enforcePolicy(rows,
                          args.skip_failures ? FailurePolicy::skipAndRecord()
                                             : FailurePolicy(),
                          &report, "ttm_cli --all-nodes");
            for (const auto& row : rows) {
                if (row.ok())
                    table.addRow(row.value());
            }
            std::cout << table.render();
            if (!report.empty()) {
                for (std::size_t i = 0; i < nodes.size(); ++i) {
                    if (!rows[i].ok())
                        std::cerr << "warning: skipped node '" << nodes[i]
                                  << "': "
                                  << rows[i].diagnostic().message << "\n";
                }
                std::cerr << report.summary() << "\n";
                skipped_failures = true;
            }
        } else {
            const TtmResult ttm =
                model.evaluate(design, args.chips, market);
            const CostBreakdown cost =
                costs.evaluate(design, args.chips);
            std::cout << (args.design_file.empty()
                              ? "node " + args.node
                              : "design " + design.name)
                      << ", "
                      << formatSi(args.chips, 1) << " chips\n"
                      << "  TTM   " << formatFixed(ttm.total().value(), 1)
                      << " weeks (tapeout "
                      << formatFixed(ttm.tapeout_time.value(), 1)
                      << ", fab " << formatFixed(ttm.fab_time.value(), 1)
                      << ", pkg "
                      << formatFixed(ttm.packaging_time.value(), 1)
                      << ")\n"
                      << "  CAS   "
                      << formatFixed(cas.cas(design, args.chips, market),
                                     1)
                      << "\n  cost  "
                      << formatDollars(cost.total().value(), 2) << " ("
                      << formatDollars(cost.total().value() / args.chips,
                                       2)
                      << "/chip)\n";
        }

        if (args.risk_deadline > 0.0) {
            const RiskAnalysis risk_engine(model);
            MarketForecast forecast;
            for (const std::string& node : design.processNodes())
                forecast.uniformDisruption(node, 0.5, 1.0, 3.0);
            const ScheduleRisk risk = risk_engine.assess(
                design, args.chips, forecast,
                Weeks(args.risk_deadline), 512);
            std::cout << "  risk  P[TTM <= "
                      << formatFixed(args.risk_deadline, 0)
                      << " wk] = "
                      << formatFixed(100.0 * risk.p_on_time, 0)
                      << "% under a moderate " << args.node
                      << " disruption forecast; p95 TTM "
                      << formatFixed(risk.ttm.percentile(95.0), 1)
                      << " wk\n";
        }

        if (args.wantsObservability()) {
            {
                const obs::ScopedSpan span("cli", "observability_sweep");
                runObservabilitySweep(db, design, args, manifest);
            }
            if (!args.trace_file.empty())
                obs::writeChromeTrace(args.trace_file);
            if (!args.metrics_file.empty())
                obs::writeMetrics(args.metrics_file);
            if (!args.manifest_file.empty()) {
                manifest.captureKernelMetrics(obs::snapshotMetrics());
                manifest.write(args.manifest_file);
            }
        }
    } catch (const Error& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    // 0 = clean run, 2 = completed but some nodes were skipped.
    return skipped_failures ? 2 : 0;
}
