/**
 * @file
 * Command-line front end to the TTM/CAS/cost models — the "quick
 * assessment" interface the paper's abstract promises architects.
 *
 * Usage:
 *   ttm_cli --node 7nm --ntt 2.4e9 --nut 2e8 --chips 5e7
 *           [--design file.csv]   (multi-die design; see core/design_io)
 *           [--design-weeks 14] [--engineers 100]
 *           [--capacity 0.8] [--queue 2]
 *           [--snapshot market.csv] [--all-nodes] [--risk <deadline>]
 *           [--skip-failures]
 *
 * With --all-nodes, the design is re-targeted to every in-production
 * node and the full comparison table is printed. With --risk, a
 * schedule-risk assessment against the deadline (weeks) is added,
 * assuming a moderate disruption forecast on the chosen node.
 *
 * --skip-failures turns the --all-nodes sweep fault-tolerant: a node
 * whose evaluation fails is dropped from the table, the failure report
 * goes to stderr, and the exit code is 2 (0 = clean, 1 = hard error).
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/cas.hh"
#include "core/design_io.hh"
#include "core/risk.hh"
#include "econ/cost_model.hh"
#include "report/table.hh"
#include "support/outcome.hh"
#include "support/strutil.hh"
#include "tech/dataset_io.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

struct CliArgs
{
    std::string node = "7nm";
    double ntt = 1e9;
    double nut = 1e8;
    double chips = 1e7;
    double design_weeks = 0.0;
    double engineers = 100.0;
    double capacity = 1.0;
    double queue = 0.0;
    std::string snapshot;
    bool all_nodes = false;
    double risk_deadline = 0.0;
    std::string design_file;
    bool skip_failures = false;
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: ttm_cli --node <p> --ntt <n> --nut <n> --chips <n>\n"
           "              [--design-weeks w] [--engineers e]\n"
           "              [--capacity f] [--queue w]\n"
           "              [--snapshot file.csv] [--all-nodes]\n"
           "              [--risk deadline_weeks] [--skip-failures]\n";
    std::exit(2);
}

CliArgs
parseArgs(int argc, char** argv)
{
    CliArgs args;
    const std::map<std::string, int> flags{
        {"--node", 1},       {"--ntt", 1},      {"--nut", 1},
        {"--chips", 1},      {"--design-weeks", 1},
        {"--engineers", 1},  {"--capacity", 1}, {"--queue", 1},
        {"--snapshot", 1},   {"--all-nodes", 0}, {"--risk", 1},
        {"--design", 1},     {"--skip-failures", 0},
    };
    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        auto it = flags.find(flag);
        if (it == flags.end())
            usage();
        std::string value;
        if (it->second == 1) {
            if (i + 1 >= argc)
                usage();
            value = argv[++i];
        }
        try {
            if (flag == "--node")
                args.node = value;
            else if (flag == "--ntt")
                args.ntt = std::stod(value);
            else if (flag == "--nut")
                args.nut = std::stod(value);
            else if (flag == "--chips")
                args.chips = std::stod(value);
            else if (flag == "--design-weeks")
                args.design_weeks = std::stod(value);
            else if (flag == "--engineers")
                args.engineers = std::stod(value);
            else if (flag == "--capacity")
                args.capacity = std::stod(value);
            else if (flag == "--queue")
                args.queue = std::stod(value);
            else if (flag == "--snapshot")
                args.snapshot = value;
            else if (flag == "--all-nodes")
                args.all_nodes = true;
            else if (flag == "--risk")
                args.risk_deadline = std::stod(value);
            else if (flag == "--design")
                args.design_file = value;
            else if (flag == "--skip-failures")
                args.skip_failures = true;
        } catch (const std::exception&) {
            usage();
        }
    }
    return args;
}

} // namespace

int
main(int argc, char** argv)
{
    const CliArgs args = parseArgs(argc, argv);
    bool skipped_failures = false;

    try {
        const TechnologyDb db = args.snapshot.empty()
                                    ? defaultTechnologyDb()
                                    : loadTechnologyCsv(args.snapshot);
        TtmModel::Options options;
        options.tapeout_engineers = args.engineers;
        const TtmModel model(db, options);
        const CasModel cas(model);
        const CostModel costs(db);

        MarketConditions market;
        market.setCapacityFactor(args.node, args.capacity);
        market.setQueueWeeks(args.node, Weeks(args.queue));

        ChipDesign design;
        if (!args.design_file.empty()) {
            design = loadDesignCsv(args.design_file);
            // Market flags apply to every node the design uses.
            for (const std::string& node : design.processNodes()) {
                market.setCapacityFactor(node, args.capacity);
                market.setQueueWeeks(node, Weeks(args.queue));
            }
        } else {
            design = makeMonolithicDesign(
                "cli-design", args.node, args.ntt, args.nut,
                Weeks(args.design_weeks));
        }

        if (args.all_nodes) {
            Table table(
                {"Node", "TTM (wk)", "CAS", "Cost", "$/chip"});
            table.setAlign(0, Align::Left);
            const std::vector<std::string> nodes = db.availableNames();
            std::vector<Outcome<std::vector<std::string>>> rows(
                nodes.size());
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                const std::string& node = nodes[i];
                const auto evaluateRow =
                    [&]() -> std::vector<std::string> {
                    const ChipDesign candidate =
                        retargetDesign(design, node);
                    MarketConditions node_market;
                    node_market.setCapacityFactor(node, args.capacity);
                    node_market.setQueueWeeks(node, Weeks(args.queue));
                    const double ttm =
                        model.evaluate(candidate, args.chips, node_market)
                            .total()
                            .value();
                    const double cost = costs.evaluate(candidate, args.chips)
                                            .total()
                                            .value();
                    return {node, formatFixed(ttm, 1),
                            formatFixed(
                                cas.cas(candidate, args.chips, node_market),
                                1),
                            formatDollars(cost, 2),
                            formatDollars(cost / args.chips, 2)};
                };
                if (args.skip_failures) {
                    rows[i] = guardedPoint(i, evaluateRow);
                } else {
                    // Legacy behavior: the first failing node aborts the
                    // sweep with its original error.
                    rows[i] = Outcome<std::vector<std::string>>::success(
                        evaluateRow());
                }
            }
            FailureReport report;
            enforcePolicy(rows,
                          args.skip_failures ? FailurePolicy::skipAndRecord()
                                             : FailurePolicy(),
                          &report, "ttm_cli --all-nodes");
            for (const auto& row : rows) {
                if (row.ok())
                    table.addRow(row.value());
            }
            std::cout << table.render();
            if (!report.empty()) {
                for (std::size_t i = 0; i < nodes.size(); ++i) {
                    if (!rows[i].ok())
                        std::cerr << "warning: skipped node '" << nodes[i]
                                  << "': "
                                  << rows[i].diagnostic().message << "\n";
                }
                std::cerr << report.summary() << "\n";
                skipped_failures = true;
            }
        } else {
            const TtmResult ttm =
                model.evaluate(design, args.chips, market);
            const CostBreakdown cost =
                costs.evaluate(design, args.chips);
            std::cout << (args.design_file.empty()
                              ? "node " + args.node
                              : "design " + design.name)
                      << ", "
                      << formatSi(args.chips, 1) << " chips\n"
                      << "  TTM   " << formatFixed(ttm.total().value(), 1)
                      << " weeks (tapeout "
                      << formatFixed(ttm.tapeout_time.value(), 1)
                      << ", fab " << formatFixed(ttm.fab_time.value(), 1)
                      << ", pkg "
                      << formatFixed(ttm.packaging_time.value(), 1)
                      << ")\n"
                      << "  CAS   "
                      << formatFixed(cas.cas(design, args.chips, market),
                                     1)
                      << "\n  cost  "
                      << formatDollars(cost.total().value(), 2) << " ("
                      << formatDollars(cost.total().value() / args.chips,
                                       2)
                      << "/chip)\n";
        }

        if (args.risk_deadline > 0.0) {
            const RiskAnalysis risk_engine(model);
            MarketForecast forecast;
            for (const std::string& node : design.processNodes())
                forecast.uniformDisruption(node, 0.5, 1.0, 3.0);
            const ScheduleRisk risk = risk_engine.assess(
                design, args.chips, forecast,
                Weeks(args.risk_deadline), 512);
            std::cout << "  risk  P[TTM <= "
                      << formatFixed(args.risk_deadline, 0)
                      << " wk] = "
                      << formatFixed(100.0 * risk.p_on_time, 0)
                      << "% under a moderate " << args.node
                      << " disruption forecast; p95 TTM "
                      << formatFixed(risk.ttm.percentile(95.0), 1)
                      << " wk\n";
        }
    } catch (const Error& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    // 0 = clean run, 2 = completed but some nodes were skipped.
    return skipped_failures ? 2 : 0;
}
