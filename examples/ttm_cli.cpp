/**
 * @file
 * Command-line front end to the TTM/CAS/cost models — the "quick
 * assessment" interface the paper's abstract promises architects.
 *
 * Usage:
 *   ttm_cli --node 7nm --ntt 2.4e9 --nut 2e8 --chips 5e7
 *           [--design file.csv]   (multi-die design; see core/design_io)
 *           [--design-weeks 14] [--engineers 100]
 *           [--capacity 0.8] [--queue 2]
 *           [--snapshot market.csv] [--all-nodes] [--risk <deadline>]
 *           [--skip-failures]
 *           [--trace=trace.json] [--metrics=metrics.json]
 *           [--manifest=manifest.json]
 *
 * With --all-nodes, the design is re-targeted to every in-production
 * node and the full comparison table is printed. With --risk, a
 * schedule-risk assessment against the deadline (weeks) is added,
 * assuming a moderate disruption forecast on the chosen node.
 *
 * --skip-failures turns the --all-nodes sweep fault-tolerant: a node
 * whose evaluation fails is dropped from the table, the failure report
 * goes to stderr, and the exit code is 2 (0 = clean, 1 = hard error).
 *
 * --trace / --metrics / --manifest turn on the observability layer
 * (docs/OBSERVABILITY.md): in addition to the normal evaluation, a
 * compact sweep exercises every instrumented batch kernel (Monte-
 * Carlo sampling, Sobol analysis + bootstrap, the cache sweep, the
 * split planner, and the portfolio planner) so the emitted Chrome
 * trace, metrics snapshot, and run manifest cover the full span
 * taxonomy. All three flags accept "--flag value" or "--flag=value".
 */

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cas.hh"
#include "core/design_io.hh"
#include "core/risk.hh"
#include "core/uncertainty.hh"
#include "econ/cost_model.hh"
#include "opt/cache_optimizer.hh"
#include "opt/portfolio.hh"
#include "opt/split_optimizer.hh"
#include "report/table.hh"
#include "stats/distributions.hh"
#include "stats/sobol.hh"
#include "support/metrics.hh"
#include "support/outcome.hh"
#include "support/run_manifest.hh"
#include "support/strutil.hh"
#include "support/trace.hh"
#include "tech/dataset_io.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

struct CliArgs
{
    std::string node = "7nm";
    double ntt = 1e9;
    double nut = 1e8;
    double chips = 1e7;
    double design_weeks = 0.0;
    double engineers = 100.0;
    double capacity = 1.0;
    double queue = 0.0;
    std::string snapshot;
    bool all_nodes = false;
    double risk_deadline = 0.0;
    std::string design_file;
    bool skip_failures = false;
    std::string trace_file;
    std::string metrics_file;
    std::string manifest_file;

    bool wantsObservability() const
    {
        return !trace_file.empty() || !metrics_file.empty() ||
               !manifest_file.empty();
    }
};

[[noreturn]] void
usage()
{
    std::cerr
        << "usage: ttm_cli --node <p> --ntt <n> --nut <n> --chips <n>\n"
           "              [--design-weeks w] [--engineers e]\n"
           "              [--capacity f] [--queue w]\n"
           "              [--snapshot file.csv] [--all-nodes]\n"
           "              [--risk deadline_weeks] [--skip-failures]\n"
           "              [--trace=file.json] [--metrics=file.json]\n"
           "              [--manifest=file.json]\n";
    std::exit(2);
}

CliArgs
parseArgs(int argc, char** argv)
{
    CliArgs args;
    const std::map<std::string, int> flags{
        {"--node", 1},       {"--ntt", 1},      {"--nut", 1},
        {"--chips", 1},      {"--design-weeks", 1},
        {"--engineers", 1},  {"--capacity", 1}, {"--queue", 1},
        {"--snapshot", 1},   {"--all-nodes", 0}, {"--risk", 1},
        {"--design", 1},     {"--skip-failures", 0},
        {"--trace", 1},      {"--metrics", 1},  {"--manifest", 1},
    };
    for (int i = 1; i < argc; ++i) {
        std::string flag = argv[i];
        // Accept both "--flag value" and "--flag=value".
        std::string inline_value;
        bool has_inline_value = false;
        const std::size_t equals = flag.find('=');
        if (equals != std::string::npos) {
            inline_value = flag.substr(equals + 1);
            flag = flag.substr(0, equals);
            has_inline_value = true;
        }
        auto it = flags.find(flag);
        if (it == flags.end())
            usage();
        std::string value;
        if (it->second == 1) {
            if (has_inline_value) {
                value = inline_value;
            } else {
                if (i + 1 >= argc)
                    usage();
                value = argv[++i];
            }
        } else if (has_inline_value) {
            usage();
        }
        try {
            if (flag == "--node")
                args.node = value;
            else if (flag == "--ntt")
                args.ntt = std::stod(value);
            else if (flag == "--nut")
                args.nut = std::stod(value);
            else if (flag == "--chips")
                args.chips = std::stod(value);
            else if (flag == "--design-weeks")
                args.design_weeks = std::stod(value);
            else if (flag == "--engineers")
                args.engineers = std::stod(value);
            else if (flag == "--capacity")
                args.capacity = std::stod(value);
            else if (flag == "--queue")
                args.queue = std::stod(value);
            else if (flag == "--snapshot")
                args.snapshot = value;
            else if (flag == "--all-nodes")
                args.all_nodes = true;
            else if (flag == "--risk")
                args.risk_deadline = std::stod(value);
            else if (flag == "--design")
                args.design_file = value;
            else if (flag == "--skip-failures")
                args.skip_failures = true;
            else if (flag == "--trace")
                args.trace_file = value;
            else if (flag == "--metrics")
                args.metrics_file = value;
            else if (flag == "--manifest")
                args.manifest_file = value;
        } catch (const std::exception&) {
            usage();
        }
    }
    return args;
}

/** A synthetic miss curve covering exactly @p sizes (for the sweep). */
MissCurve
syntheticMissCurve(const std::string& workload, bool instruction_stream,
                   const std::vector<std::uint64_t>& sizes)
{
    MissCurve curve;
    curve.workload = workload;
    curve.instruction_stream = instruction_stream;
    curve.sizes_bytes = sizes;
    for (std::size_t i = 0; i < sizes.size(); ++i)
        curve.miss_rates.push_back(0.2 / static_cast<double>(i + 1));
    return curve;
}

/**
 * Exercise every instrumented batch kernel once with small workloads
 * so the emitted trace/metrics/manifest cover the full span taxonomy:
 * sampleTtm (Monte-Carlo), sobolAnalyze + sobolBootstrapCi,
 * CacheSweep::sweep, SplitPlanner::optimizeCas, and
 * PortfolioPlanner::plan.
 */
void
runObservabilitySweep(const TechnologyDb& db, const ChipDesign& design,
                      const CliArgs& args, obs::RunManifest& manifest)
{
    TtmModel::Options model_options;
    model_options.tapeout_engineers = args.engineers;
    const TtmModel model(db, model_options);
    const double n_chips = 1e6;
    constexpr std::uint64_t kSweepSeed = 2023;

    // 1. Monte-Carlo uncertainty propagation (drawSamples).
    const UncertaintyAnalysis analysis(db, model_options);
    UncertaintyAnalysis::Options mc;
    mc.samples = 64;
    mc.band = 0.05;
    mc.seed = kSweepSeed;
    {
        obs::ManifestKernelScope scope(manifest, "sampleTtm");
        scope.setPoints(mc.samples);
        analysis.sampleTtm(design, n_chips, {}, mc);
    }

    // 2. Sobol sensitivity + bootstrap confidence intervals over three
    // scale factors (N_TT, D0, L_fab).
    {
        const std::vector<std::unique_ptr<Distribution>> owned = [] {
            std::vector<std::unique_ptr<Distribution>> dists;
            for (int i = 0; i < 3; ++i)
                dists.push_back(relativeUniform(1.0, 0.05));
            return dists;
        }();
        const std::vector<SensitivityInput> inputs{
            {"NTT", owned[0].get()},
            {"D0", owned[1].get()},
            {"Lfab", owned[2].get()}};
        const auto sobol_model =
            [&](const std::vector<double>& point) {
                InputFactors factors = nominalFactors();
                factors[0] = point[0]; // N_TT
                factors[2] = point[1]; // D0
                factors[4] = point[2]; // L_fab
                return analysis.ttmWithFactors(design, n_chips, {}, factors)
                    .value();
            };
        SobolOptions sobol_options;
        sobol_options.base_samples = 32;
        sobol_options.seed = kSweepSeed;
        SobolRowData rows;
        {
            obs::ManifestKernelScope scope(manifest, "sobolAnalyze");
            scope.setPoints((inputs.size() + 2) *
                            sobol_options.base_samples);
            sobolAnalyze(inputs, sobol_model, sobol_options, &rows);
        }
        SobolBootstrapOptions bootstrap;
        bootstrap.resamples = 16;
        bootstrap.coverage = 0.9;
        bootstrap.seed = kSweepSeed;
        {
            obs::ManifestKernelScope scope(manifest, "sobolBootstrapCi");
            scope.setPoints(bootstrap.resamples);
            sobolBootstrapCi(rows, bootstrap);
        }
    }

    // 3. Cache design-space sweep on a synthetic 3x3 miss-curve grid.
    {
        const std::vector<std::uint64_t> sizes{4096, 16384, 65536};
        const CacheSweep cache_sweep(
            db, syntheticMissCurve("obs-sweep", true, sizes),
            syntheticMissCurve("obs-sweep", false, sizes), IpcModel{},
            ArianeChipSpec{});
        CacheSweepOptions sweep_options;
        sweep_options.sizes_bytes = sizes;
        sweep_options.process = args.node;
        sweep_options.n_chips = n_chips;
        obs::ManifestKernelScope scope(manifest, "CacheSweep::sweep");
        scope.setPoints(sizes.size() * sizes.size());
        cache_sweep.sweep(sweep_options);
    }

    // The split/portfolio kernels retarget the design across nodes, so
    // probe for two nodes the die actually fits first.
    std::vector<std::string> feasible;
    for (const std::string& node : db.availableNames()) {
        if (feasible.size() >= 2)
            break;
        try {
            model.evaluate(retargetDesign(design, node), n_chips);
            feasible.push_back(node);
        } catch (const ModelError&) {
            // die does not fit / node out of production: not a candidate
        }
    }
    if (feasible.size() < 2) {
        std::cerr << "warning: observability sweep found fewer than two "
                     "feasible nodes; skipping split/portfolio kernels\n";
        return;
    }
    const DesignFactory factory = [&](const std::string& node) {
        return retargetDesign(design, node);
    };

    // 4. Production split planner.
    {
        SplitPlanner::Options split_options;
        split_options.fractions = {0.25, 0.5, 0.75, 1.0};
        const SplitPlanner planner(model, CostModel(db), split_options);
        obs::ManifestKernelScope scope(manifest,
                                       "SplitPlanner::optimizeCas");
        scope.setPoints(2 * split_options.fractions.size());
        planner.optimizeCas(factory, n_chips, feasible[0], feasible[1],
                            {});
    }

    // 5. Portfolio planner over two products and the feasible nodes.
    {
        PortfolioPlanner::Options portfolio_options;
        portfolio_options.candidate_nodes = feasible;
        portfolio_options.max_moves = 4;
        const PortfolioPlanner planner(model, portfolio_options);
        std::vector<PortfolioProduct> products(2);
        products[0].name = "obs-a";
        products[1].name = "obs-b";
        for (auto& product : products) {
            product.design = design;
            product.n_chips = n_chips;
            product.deadline = Weeks(1000.0);
            product.weight = 1.0;
        }
        obs::ManifestKernelScope scope(manifest,
                                       "PortfolioPlanner::plan");
        scope.setPoints(products.size() * feasible.size());
        planner.plan(products);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const CliArgs args = parseArgs(argc, argv);
    bool skipped_failures = false;

    obs::RunManifest manifest;
    if (args.wantsObservability()) {
        obs::setTracingEnabled(!args.trace_file.empty());
        obs::setMetricsEnabled(true);
        manifest.tool = "ttm_cli";
        manifest.git_hash = obs::buildGitHash();
        manifest.seed = 2023;
        manifest.threads = ParallelConfig{}.resolvedThreads();
        manifest.setPolicy(args.skip_failures
                               ? FailurePolicy::skipAndRecord()
                               : FailurePolicy());
    }

    try {
        const TechnologyDb db = args.snapshot.empty()
                                    ? defaultTechnologyDb()
                                    : loadTechnologyCsv(args.snapshot);
        TtmModel::Options options;
        options.tapeout_engineers = args.engineers;
        const TtmModel model(db, options);
        const CasModel cas(model);
        const CostModel costs(db);

        MarketConditions market;
        market.setCapacityFactor(args.node, args.capacity);
        market.setQueueWeeks(args.node, Weeks(args.queue));

        ChipDesign design;
        if (!args.design_file.empty()) {
            design = loadDesignCsv(args.design_file);
            // Market flags apply to every node the design uses.
            for (const std::string& node : design.processNodes()) {
                market.setCapacityFactor(node, args.capacity);
                market.setQueueWeeks(node, Weeks(args.queue));
            }
        } else {
            design = makeMonolithicDesign(
                "cli-design", args.node, args.ntt, args.nut,
                Weeks(args.design_weeks));
        }

        if (args.all_nodes) {
            Table table(
                {"Node", "TTM (wk)", "CAS", "Cost", "$/chip"});
            table.setAlign(0, Align::Left);
            const std::vector<std::string> nodes = db.availableNames();
            std::vector<Outcome<std::vector<std::string>>> rows(
                nodes.size());
            for (std::size_t i = 0; i < nodes.size(); ++i) {
                const std::string& node = nodes[i];
                const auto evaluateRow =
                    [&]() -> std::vector<std::string> {
                    const ChipDesign candidate =
                        retargetDesign(design, node);
                    MarketConditions node_market;
                    node_market.setCapacityFactor(node, args.capacity);
                    node_market.setQueueWeeks(node, Weeks(args.queue));
                    const double ttm =
                        model.evaluate(candidate, args.chips, node_market)
                            .total()
                            .value();
                    const double cost = costs.evaluate(candidate, args.chips)
                                            .total()
                                            .value();
                    return {node, formatFixed(ttm, 1),
                            formatFixed(
                                cas.cas(candidate, args.chips, node_market),
                                1),
                            formatDollars(cost, 2),
                            formatDollars(cost / args.chips, 2)};
                };
                if (args.skip_failures) {
                    rows[i] = guardedPoint(i, evaluateRow);
                } else {
                    // Legacy behavior: the first failing node aborts the
                    // sweep with its original error.
                    rows[i] = Outcome<std::vector<std::string>>::success(
                        evaluateRow());
                }
            }
            FailureReport report;
            enforcePolicy(rows,
                          args.skip_failures ? FailurePolicy::skipAndRecord()
                                             : FailurePolicy(),
                          &report, "ttm_cli --all-nodes");
            for (const auto& row : rows) {
                if (row.ok())
                    table.addRow(row.value());
            }
            std::cout << table.render();
            if (!report.empty()) {
                for (std::size_t i = 0; i < nodes.size(); ++i) {
                    if (!rows[i].ok())
                        std::cerr << "warning: skipped node '" << nodes[i]
                                  << "': "
                                  << rows[i].diagnostic().message << "\n";
                }
                std::cerr << report.summary() << "\n";
                skipped_failures = true;
            }
        } else {
            const TtmResult ttm =
                model.evaluate(design, args.chips, market);
            const CostBreakdown cost =
                costs.evaluate(design, args.chips);
            std::cout << (args.design_file.empty()
                              ? "node " + args.node
                              : "design " + design.name)
                      << ", "
                      << formatSi(args.chips, 1) << " chips\n"
                      << "  TTM   " << formatFixed(ttm.total().value(), 1)
                      << " weeks (tapeout "
                      << formatFixed(ttm.tapeout_time.value(), 1)
                      << ", fab " << formatFixed(ttm.fab_time.value(), 1)
                      << ", pkg "
                      << formatFixed(ttm.packaging_time.value(), 1)
                      << ")\n"
                      << "  CAS   "
                      << formatFixed(cas.cas(design, args.chips, market),
                                     1)
                      << "\n  cost  "
                      << formatDollars(cost.total().value(), 2) << " ("
                      << formatDollars(cost.total().value() / args.chips,
                                       2)
                      << "/chip)\n";
        }

        if (args.risk_deadline > 0.0) {
            const RiskAnalysis risk_engine(model);
            MarketForecast forecast;
            for (const std::string& node : design.processNodes())
                forecast.uniformDisruption(node, 0.5, 1.0, 3.0);
            const ScheduleRisk risk = risk_engine.assess(
                design, args.chips, forecast,
                Weeks(args.risk_deadline), 512);
            std::cout << "  risk  P[TTM <= "
                      << formatFixed(args.risk_deadline, 0)
                      << " wk] = "
                      << formatFixed(100.0 * risk.p_on_time, 0)
                      << "% under a moderate " << args.node
                      << " disruption forecast; p95 TTM "
                      << formatFixed(risk.ttm.percentile(95.0), 1)
                      << " wk\n";
        }

        if (args.wantsObservability()) {
            {
                const obs::ScopedSpan span("cli", "observability_sweep");
                runObservabilitySweep(db, design, args, manifest);
            }
            if (!args.trace_file.empty())
                obs::writeChromeTrace(args.trace_file);
            if (!args.metrics_file.empty())
                obs::writeMetrics(args.metrics_file);
            if (!args.manifest_file.empty())
                manifest.write(args.manifest_file);
        }
    } catch (const Error& error) {
        std::cerr << "error: " << error.what() << "\n";
        return 1;
    }
    // 0 = clean run, 2 = completed but some nodes were skipped.
    return skipped_failures ? 2 : 0;
}
