/**
 * @file
 * Cache design-space explorer (the Section 6.1 workflow as a tool).
 *
 * Sweeps (I$, D$) capacities for a multicore chip, scores IPC from the
 * built-in workload suite + cache simulator, TTM and cost from the
 * supply-chain models, and prints the Pareto front plus the IPC/TTM
 * and IPC/cost optima.
 *
 * Usage: cache_design_explorer [node] [million_chips]
 *   e.g.: cache_design_explorer 14nm 100
 */

#include <iostream>
#include <string>

#include "opt/cache_optimizer.hh"
#include "opt/pareto.hh"
#include "report/table.hh"
#include "sim/ipc_model.hh"
#include "sim/workloads.hh"
#include "support/strutil.hh"
#include "tech/default_dataset.hh"

namespace {

std::string
sizeLabel(std::uint64_t bytes)
{
    if (bytes >= 1024 * 1024)
        return std::to_string(bytes / (1024 * 1024)) + "MB";
    return std::to_string(bytes / 1024) + "KB";
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace ttmcas;

    const std::string node = argc > 1 ? argv[1] : "14nm";
    const double n_chips =
        (argc > 2 ? std::stod(argv[2]) : 100.0) * 1e6;

    std::cout << "Measuring miss curves over the workload suite...\n";
    MissCurveOptions curve_options;
    curve_options.warmup_accesses = 100'000;
    curve_options.measured_accesses = 300'000;
    const auto suite = defaultWorkloadSuite();
    const auto [instruction_curve, data_curve] =
        averageMissCurves(suite, curve_options);

    const CacheSweep sweep(defaultTechnologyDb(), instruction_curve,
                           data_curve, IpcModel{});
    CacheSweepOptions options;
    options.process = node;
    options.n_chips = n_chips;

    std::cout << "Sweeping (I$, D$) in 1KB..1MB at " << node << " for "
              << formatSi(n_chips, 0) << " chips...\n\n";
    const auto points = sweep.sweep(options);

    // Pareto front over (IPC up, TTM down, cost down).
    std::vector<std::vector<double>> scores;
    for (const auto& point : points) {
        scores.push_back(
            {point.ipc, point.ttm.value(), point.cost.value()});
    }
    const auto front = paretoFront(
        scores,
        {Objective::Maximize, Objective::Minimize, Objective::Minimize});

    Table table({"I$", "D$", "IPC", "TTM (wk)", "Cost", "IPC/TTM",
                 "IPC/$ (x1e9)"});
    table.setAlign(0, Align::Left).setAlign(1, Align::Left);
    for (std::size_t index : front) {
        const auto& point = points[index];
        table.addRow({sizeLabel(point.icache_bytes),
                      sizeLabel(point.dcache_bytes),
                      formatFixed(point.ipc, 3),
                      formatFixed(point.ttm.value(), 1),
                      formatDollars(point.cost.value(), 2),
                      formatFixed(point.ipcPerTtm(), 4),
                      formatFixed(point.ipcPerCost() * 1e9, 3)});
    }
    std::cout << "Pareto-optimal configurations (" << front.size()
              << " of " << points.size() << " swept):\n"
              << table.render() << "\n";

    const auto& best_ttm = CacheSweep::bestByIpcPerTtm(points);
    const auto& best_cost = CacheSweep::bestByIpcPerCost(points);
    std::cout << "Race-to-market pick (max IPC/TTM):  I$="
              << sizeLabel(best_ttm.icache_bytes) << " D$="
              << sizeLabel(best_ttm.dcache_bytes) << "\n";
    std::cout << "Best-value pick     (max IPC/cost): I$="
              << sizeLabel(best_cost.icache_bytes) << " D$="
              << sizeLabel(best_cost.dcache_bytes) << "\n";
    return 0;
}
