/**
 * @file
 * Supply-chain shortage wargame.
 *
 * Plays the 2020-2022 shortage against a product portfolio: a phone
 * SoC (A11-class at 7nm), a desktop CPU (Zen 2-class chiplets), and an
 * automotive MCU (Raven-class on legacy nodes). Each round applies a
 * disruption scenario from Section 2.3's catalog and reports how every
 * product's time-to-market and agility respond — plus which re-release
 * node the TTM model recommends.
 */

#include <iostream>
#include <vector>

#include "core/cas.hh"
#include "core/reference_designs.hh"
#include "core/hoarding.hh"
#include "core/scenario.hh"
#include "opt/portfolio.hh"
#include "core/uncertainty.hh"
#include "report/table.hh"
#include "stats/histogram.hh"
#include "support/strutil.hh"
#include "tech/default_dataset.hh"

namespace {

using namespace ttmcas;

struct Product
{
    std::string name;
    ChipDesign design;
    double volume;
};

void
reportRound(const std::string& title, const TtmModel& model,
            const CasModel& cas, const std::vector<Product>& portfolio,
            const MarketConditions& market)
{
    std::cout << "--- " << title << "\n";
    Table table({"Product", "TTM (wk)", "dTTM vs calm", "CAS"});
    table.setAlign(0, Align::Left);
    for (const auto& product : portfolio) {
        const double calm =
            model.evaluate(product.design, product.volume).total().value();
        double ttm = 0.0;
        std::string cas_text = "-";
        try {
            ttm = model.evaluate(product.design, product.volume, market)
                      .total()
                      .value();
            cas_text = formatFixed(
                cas.cas(product.design, product.volume, market), 1);
        } catch (const ModelError&) {
            table.addRow({product.name, "BLOCKED", "-", "-"});
            continue;
        }
        table.addRow({product.name, formatFixed(ttm, 1),
                      "+" + formatFixed(ttm - calm, 1), cas_text});
    }
    std::cout << table.render() << "\n";
}

std::string
bestReReleaseNode(const TtmModel& model, const ChipDesign& archetype,
                  double volume, const MarketConditions& market)
{
    std::string best;
    double best_ttm = 0.0;
    for (const std::string& node :
         model.technology().availableNames()) {
        if (market.capacityFactor(node) <= 0.0)
            continue;
        const ChipDesign candidate = retargetDesign(archetype, node);
        const double ttm =
            model.evaluate(candidate, volume, market).total().value();
        if (best.empty() || ttm < best_ttm) {
            best = node;
            best_ttm = ttm;
        }
    }
    return best + " (" + formatFixed(best_ttm, 1) + " wk)";
}

} // namespace

int
main()
{
    const TechnologyDb db = defaultTechnologyDb();
    TtmModel::Options options;
    options.tapeout_engineers = 100.0;
    const TtmModel model(db, options);
    const CasModel cas(model);

    const std::vector<Product> portfolio{
        {"phone-soc (7nm)", designs::a11("7nm"), 10e6},
        {"desktop-cpu (7+12nm)",
         designs::zen2(designs::Zen2Config::Original), 5e6},
        {"auto-mcu (40nm)", designs::ravenMulticore("40nm"), 200e6},
    };

    std::cout << "=== Supply chain shortage wargame ===\n\n";
    reportRound("Round 0: calm market", model, cas, portfolio, {});

    // Round 1: demand surge floods every line with backlog.
    const MarketConditions surge =
        scenarios::demandSurge(db.availableNames(), Weeks(2.0)).apply();
    reportRound("Round 1: demand surge (2-week backlog everywhere)",
                model, cas, portfolio, surge);

    // Round 2: a fab fire takes the 40nm line out entirely.
    const MarketConditions fire =
        scenarios::fabOutage("40nm").apply(surge);
    reportRound("Round 2: + 40nm fab fire", model, cas, portfolio, fire);
    std::cout << "Re-release recommendation for the blocked MCU: "
              << bestReReleaseNode(model,
                                   designs::ravenMulticore("40nm"),
                                   200e6, fire)
              << "\n\n";

    // Round 3: drought rations the advanced nodes to 60%.
    MarketConditions drought = fire;
    for (const char* node : {"14nm", "12nm", "7nm", "5nm"})
        drought = scenarios::capacityCut(node, 0.6).apply(drought);
    reportRound("Round 3: + drought rationing (-40% at <=14nm)", model,
                cas, portfolio, drought);

    // Round 4: hoarding feedback. Customers see the long lead times
    // of Round 3 and start over-ordering; the quoted backlog inflates
    // beyond the physical one (Fig. 1c's "hoarding exacerbated
    // shortages").
    HoardingModel hoarding;
    hoarding.reference_lead_time = Weeks(2.0);
    hoarding.gain = 0.35;
    const Weeks physical_backlog(3.5);
    std::cout << "--- Round 4: hoarding feedback (gain 0.35)\n";
    if (hoarding.panics(physical_backlog)) {
        std::cout << "Quoted lead times DIVERGE (panic regime).\n\n";
    } else {
        const Weeks quoted =
            hoarding.equilibriumLeadTime(physical_backlog);
        std::cout << "A physical backlog of "
                  << formatFixed(physical_backlog.value(), 1)
                  << " weeks is quoted as "
                  << formatFixed(quoted.value(), 1)
                  << " weeks once over-ordering settles; panic begins "
                     "beyond "
                  << formatFixed(hoarding.criticalBacklog().value(), 1)
                  << " weeks of real backlog.\n\n";
    }

    // Round 5: re-plan the whole portfolio with shared capacity and
    // deadlines (the 40nm line is still down).
    {
        std::cout << "--- Round 5: portfolio re-plan under the "
                     "disruption\n";
        PortfolioPlanner::Options plan_options;
        plan_options.candidate_nodes = {"65nm", "28nm", "14nm", "7nm"};
        const PortfolioPlanner planner(model, plan_options);
        std::vector<PortfolioProduct> orders;
        const double deadlines[] = {50.0, 55.0, 30.0};
        for (std::size_t i = 0; i < portfolio.size(); ++i) {
            PortfolioProduct order;
            order.name = portfolio[i].name;
            order.design = portfolio[i].design;
            order.n_chips = portfolio[i].volume;
            order.deadline = Weeks(deadlines[i]);
            orders.push_back(std::move(order));
        }
        const PortfolioPlan plan = planner.plan(orders);
        Table table({"Product", "Node", "Share", "TTM (wk)",
                     "Deadline", "Status"});
        table.setAlign(0, Align::Left).setAlign(5, Align::Left);
        for (const auto& assignment : plan.assignments) {
            table.addRow(
                {assignment.product, assignment.node,
                 formatFixed(100.0 * assignment.share, 0) + "%",
                 formatFixed(assignment.ttm.value(), 1),
                 formatFixed(assignment.deadline.value(), 0),
                 assignment.onTime()
                     ? "on time"
                     : "+" + formatFixed(
                                 assignment.lateness().value(), 1) +
                           " wk late"});
        }
        std::cout << table.render() << "\n";
    }

    // How uncertain is the phone SoC's TTM in this market?
    const UncertaintyAnalysis analysis(db, options);
    UncertaintyAnalysis::Options mc;
    mc.band = 0.25;
    mc.samples = 512;
    const auto samples =
        analysis.sampleTtm(designs::a11("7nm"), 10e6, drought, mc);
    const Summary summary = Summary::of(samples);
    Histogram histogram(summary.min, summary.max + 1e-9, 12);
    histogram.addAll(samples);
    std::cout << "phone-soc TTM distribution under +/-25% input "
                 "uncertainty (weeks):\n"
              << histogram.render(40) << "\n";
    const Interval ci = summary.percentileInterval(0.95);
    std::cout << "mean " << formatFixed(summary.mean, 1) << " weeks, 95% CI ["
              << formatFixed(ci.lo, 1) << ", " << formatFixed(ci.hi, 1)
              << "]\n";
    return 0;
}
