#ifndef TTMCAS_SUPPORT_METRICS_HH
#define TTMCAS_SUPPORT_METRICS_HH

/**
 * @file
 * Counters, gauges, and fixed-bucket histograms (part of ttmcas_obs).
 *
 * The registry hands out lightweight handles (Counter, Gauge,
 * Histogram) identified by name. Recording goes to lock-free
 * per-thread shards — fixed-size arrays of relaxed `std::atomic`
 * slots, so there are no growth races and recording is TSan-clean —
 * and shards are merged deterministically at snapshot time: shards
 * are combined in registration order and metrics are reported sorted
 * by name. Counter totals are unsigned integer sums, so the merged
 * value is bitwise identical for any thread count; the same holds for
 * histogram bucket counts and for histogram sums of exactly
 * representable values (the serial-vs-parallel determinism tests rely
 * on this).
 *
 * Zero-overhead-when-disabled contract: recording first checks a
 * process-global atomic flag with a relaxed load and does nothing —
 * no clock read, no shard lookup — when metrics are off (the
 * default).
 *
 * Naming convention: `layer.metric[.unit]`, e.g. `mc.samples`,
 * `pool.queue_depth_max`, `ttm.stage.fab_us`. docs/OBSERVABILITY.md
 * lists every metric the library emits.
 */

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace ttmcas::obs {

/** Turn metric recording on or off process-wide (off by default). */
void setMetricsEnabled(bool enabled);

/** True when metrics are currently being recorded. */
bool metricsEnabled();

/**
 * Monotonic counter handle. Construction registers (or finds) the
 * name in the global registry; handles are cheap to copy and are
 * typically created once as function-local statics at the recording
 * site.
 */
class Counter
{
  public:
    /** Register (or look up) the counter named @p name. */
    explicit Counter(const char* name);

    /** Add @p n to the counter (no-op while metrics are disabled). */
    void add(std::uint64_t n) const;

    /** Shorthand for add(1). */
    void increment() const { add(1); }

  private:
    std::size_t _id;
};

/**
 * Gauge handle: a single global double cell. set() is last-writer-wins
 * (use from one thread); recordMax() is a CAS max and safe from many
 * threads — the merged value is deterministic for a fixed set of
 * recorded values regardless of thread interleaving.
 */
class Gauge
{
  public:
    /** Register (or look up) the gauge named @p name. */
    explicit Gauge(const char* name);

    /** Overwrite the gauge (no-op while metrics are disabled). */
    void set(double value) const;

    /** Raise the gauge to @p value if larger (atomic max). */
    void recordMax(double value) const;

  private:
    std::size_t _id;
};

/**
 * Fixed-bucket histogram handle. Bucket upper bounds are fixed at
 * registration (at most 16, strictly increasing); one implicit
 * overflow bucket catches values above the last bound. record() is
 * lock-free per thread.
 */
class Histogram
{
  public:
    /**
     * Register (or look up) the histogram named @p name with the
     * given strictly increasing upper @p bounds. A second
     * registration of the same name reuses the first bounds.
     */
    Histogram(const char* name, std::vector<double> bounds);

    /** Record one observation (no-op while metrics are disabled). */
    void record(double value) const;

  private:
    std::size_t _id;
    std::vector<double> _bounds; // cached copy; recording takes no lock
};

/**
 * RAII wall-clock timer: records the scope's duration in microseconds
 * into @p histogram on destruction. Reads no clock while metrics are
 * disabled.
 */
class ScopedTimer
{
  public:
    /** Start timing into @p histogram (held by reference). */
    explicit ScopedTimer(const Histogram& histogram);
    ~ScopedTimer();

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

  private:
    const Histogram& _histogram;
    bool _active = false;
    std::chrono::steady_clock::time_point _start{};
};

/** A merged counter value at snapshot time. */
struct CounterSnapshot
{
    std::string name;    ///< registered counter name
    std::uint64_t value; ///< sum over all per-thread shards
};

/** A gauge value at snapshot time. */
struct GaugeSnapshot
{
    std::string name; ///< registered gauge name
    double value;     ///< current cell value
};

/** A merged histogram at snapshot time. */
struct HistogramSnapshot
{
    std::string name;                 ///< registered histogram name
    std::vector<double> bounds;       ///< bucket upper bounds
    std::vector<std::uint64_t> counts; ///< bounds.size()+1 buckets
    std::uint64_t count = 0;          ///< total observations
    double sum = 0.0;                 ///< sum of observed values
};

/** Deterministic point-in-time view of every registered metric. */
struct MetricsSnapshot
{
    std::vector<CounterSnapshot> counters;     ///< sorted by name
    std::vector<GaugeSnapshot> gauges;         ///< sorted by name
    std::vector<HistogramSnapshot> histograms; ///< sorted by name

    /** Look up a counter value by name; throws ModelError if absent. */
    std::uint64_t counterValue(const std::string& name) const;

    /** Render as a JSON object {"counters":{},"gauges":{},...}. */
    std::string toJson() const;
};

/** Merge all shards into a snapshot (safe while recording continues). */
MetricsSnapshot snapshotMetrics();

/** Zero every counter, gauge, and histogram (registrations persist). */
void resetMetrics();

/**
 * Write snapshotMetrics().toJson() to @p path, creating parent
 * directories. Throws ModelError when the file cannot be written.
 */
void writeMetrics(const std::string& path);

} // namespace ttmcas::obs

#endif // TTMCAS_SUPPORT_METRICS_HH
