#include "support/trace.hh"

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "support/error.hh"
#include "support/json.hh"

namespace ttmcas::obs {

namespace {

std::atomic<bool> g_tracing_enabled{false};

struct TraceEvent
{
    const char* category;
    std::string name;
    std::uint64_t start_us;
    std::uint64_t dur_us;
};

struct TraceShard
{
    std::mutex mutex;
    std::vector<TraceEvent> events;
    int tid = 0;
};

struct TraceRegistry
{
    std::mutex mutex;
    std::vector<std::shared_ptr<TraceShard>> shards;
    int next_tid = 1;
    // Process-wide timebase so timestamps from all threads align.
    std::chrono::steady_clock::time_point epoch =
        std::chrono::steady_clock::now();
};

TraceRegistry&
registry()
{
    static TraceRegistry instance;
    return instance;
}

TraceShard&
localShard()
{
    thread_local std::shared_ptr<TraceShard> shard = [] {
        auto fresh = std::make_shared<TraceShard>();
        TraceRegistry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        fresh->tid = reg.next_tid++;
        reg.shards.push_back(fresh);
        return fresh;
    }();
    return *shard;
}

std::uint64_t
microsSinceEpoch(std::chrono::steady_clock::time_point when)
{
    const auto delta = when - registry().epoch;
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(delta)
            .count());
}

} // namespace

void
setTracingEnabled(bool enabled)
{
    g_tracing_enabled.store(enabled, std::memory_order_relaxed);
}

bool
tracingEnabled()
{
    return g_tracing_enabled.load(std::memory_order_relaxed);
}

ScopedSpan::ScopedSpan(const char* category, std::string name)
{
    if (!tracingEnabled())
        return;
    _active = true;
    _category = category;
    _name = std::move(name);
    _start = std::chrono::steady_clock::now();
}

ScopedSpan::~ScopedSpan()
{
    if (!_active)
        return;
    const auto end = std::chrono::steady_clock::now();
    TraceEvent event;
    event.category = _category;
    event.name = std::move(_name);
    event.start_us = microsSinceEpoch(_start);
    const std::uint64_t end_us = microsSinceEpoch(end);
    event.dur_us =
        end_us > event.start_us ? end_us - event.start_us : 0;
    TraceShard& shard = localShard();
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.events.push_back(std::move(event));
}

std::size_t
traceEventCount()
{
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> reg_lock(reg.mutex);
    std::size_t count = 0;
    for (const auto& shard : reg.shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        count += shard->events.size();
    }
    return count;
}

std::string
chromeTraceJson()
{
    struct FlatEvent
    {
        int tid;
        TraceEvent event;
    };
    std::vector<FlatEvent> flat;
    {
        TraceRegistry& reg = registry();
        std::lock_guard<std::mutex> reg_lock(reg.mutex);
        for (const auto& shard : reg.shards) {
            std::lock_guard<std::mutex> lock(shard->mutex);
            for (const TraceEvent& event : shard->events)
                flat.push_back(FlatEvent{shard->tid, event});
        }
    }
    std::sort(flat.begin(), flat.end(),
              [](const FlatEvent& a, const FlatEvent& b) {
                  if (a.tid != b.tid)
                      return a.tid < b.tid;
                  if (a.event.start_us != b.event.start_us)
                      return a.event.start_us < b.event.start_us;
                  return a.event.name < b.event.name;
              });

    JsonWriter json;
    json.beginObject();
    json.key("traceEvents");
    json.beginArray();
    for (const FlatEvent& entry : flat) {
        json.beginObject();
        json.field("name", entry.event.name);
        json.field("cat", entry.event.category);
        json.field("ph", "X");
        json.field("ts", static_cast<std::uint64_t>(entry.event.start_us));
        json.field("dur", static_cast<std::uint64_t>(entry.event.dur_us));
        json.field("pid", static_cast<std::uint64_t>(1));
        json.field("tid", static_cast<std::uint64_t>(entry.tid));
        json.endObject();
    }
    json.endArray();
    json.field("displayTimeUnit", "ms");
    json.endObject();
    return json.str();
}

void
writeChromeTrace(const std::string& path)
{
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
    }
    std::ofstream out(path, std::ios::trunc);
    TTMCAS_REQUIRE(out.good(),
                   "cannot open trace file '" + path + "' for writing");
    out << chromeTraceJson() << '\n';
    TTMCAS_REQUIRE(out.good(), "failed writing trace file '" + path + "'");
}

void
clearTrace()
{
    TraceRegistry& reg = registry();
    std::lock_guard<std::mutex> reg_lock(reg.mutex);
    for (const auto& shard : reg.shards) {
        std::lock_guard<std::mutex> lock(shard->mutex);
        shard->events.clear();
    }
}

} // namespace ttmcas::obs
