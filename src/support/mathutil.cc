#include "support/mathutil.hh"

#include <algorithm>
#include <cmath>

#include "support/error.hh"

namespace ttmcas {

bool
approxEqual(double a, double b, double tol)
{
    const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
    return std::fabs(a - b) <= tol * scale;
}

double
relativeDifference(double a, double b)
{
    const double denom = std::max(std::fabs(a), std::fabs(b));
    if (denom == 0.0)
        return 0.0;
    return std::fabs(a - b) / denom;
}

double
clamp(double value, double lo, double hi)
{
    TTMCAS_REQUIRE(lo <= hi, "clamp bounds must satisfy lo <= hi");
    return std::min(std::max(value, lo), hi);
}

double
lerp(double a, double b, double t)
{
    return a + (b - a) * t;
}

double
interpolate(const std::vector<double>& xs, const std::vector<double>& ys,
            double x)
{
    TTMCAS_REQUIRE(xs.size() == ys.size(),
                   "interpolate: xs and ys must have equal length");
    TTMCAS_REQUIRE(xs.size() >= 2, "interpolate: need at least two points");
    for (std::size_t i = 1; i < xs.size(); ++i) {
        TTMCAS_REQUIRE(xs[i] > xs[i - 1],
                       "interpolate: xs must be strictly increasing");
    }

    // Pick the segment whose right endpoint is the first x-knot >= x;
    // segments at the ends also serve extrapolation.
    std::size_t hi = 1;
    while (hi + 1 < xs.size() && xs[hi] < x)
        ++hi;
    const std::size_t lo = hi - 1;
    const double t = (x - xs[lo]) / (xs[hi] - xs[lo]);
    return lerp(ys[lo], ys[hi], t);
}

double
centralDifference(const std::function<double(double)>& f, double x,
                  double rel_step)
{
    TTMCAS_REQUIRE(rel_step > 0.0, "derivative step must be positive");
    const double h = std::max(std::fabs(x), 1.0) * rel_step;
    return (f(x + h) - f(x - h)) / (2.0 * h);
}

std::size_t
ceilDiv(std::size_t a, std::size_t b)
{
    TTMCAS_REQUIRE(b > 0, "ceilDiv divisor must be positive");
    return (a + b - 1) / b;
}

bool
isFiniteNumber(double value)
{
    return std::isfinite(value);
}

double
geometricMean(const std::vector<double>& values)
{
    TTMCAS_REQUIRE(!values.empty(), "geometricMean of empty set");
    double log_sum = 0.0;
    for (double v : values) {
        TTMCAS_REQUIRE(v > 0.0, "geometricMean requires positive values");
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace ttmcas
