#ifndef TTMCAS_SUPPORT_JSON_HH
#define TTMCAS_SUPPORT_JSON_HH

/**
 * @file
 * Minimal JSON support for the observability layer (ttmcas_obs).
 *
 * The observability artifacts — Chrome trace files, metrics snapshots,
 * run manifests, bench JSON — are written and (for round-trip tests
 * and tooling) read back without any external dependency. This header
 * provides the two halves:
 *
 *  - JsonWriter: an append-only streaming writer with correct string
 *    escaping and automatic comma/indent management. It cannot emit
 *    malformed structure as long as begin/end calls are balanced.
 *  - JsonValue / parseJson(): a small recursive-descent parser for the
 *    full JSON grammar (objects, arrays, strings with escapes, numbers,
 *    booleans, null). Errors throw ModelError with byte offsets.
 *
 * This is deliberately not a general-purpose JSON library: numbers are
 * always doubles, object key order is preserved on parse but duplicate
 * keys keep the last value, and the writer emits UTF-8 pass-through
 * (non-ASCII bytes are copied, control characters are \u-escaped).
 */

#include <cstddef>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace ttmcas {

/** Escape @p text for embedding inside a JSON string literal. */
std::string jsonEscape(const std::string& text);

/** Render a double the way JSON expects (finite; NaN/Inf become null). */
std::string jsonNumber(double value);

/**
 * Streaming JSON writer with automatic separators.
 *
 * Usage:
 * @code
 *   JsonWriter json;
 *   json.beginObject();
 *   json.field("seed", 2023.0);
 *   json.key("runs");
 *   json.beginArray();
 *   json.value("first");
 *   json.endArray();
 *   json.endObject();
 *   std::string text = json.str();
 * @endcode
 */
class JsonWriter
{
  public:
    JsonWriter() = default;

    /** Open a JSON object ("{"). */
    void beginObject();
    /** Close the innermost object ("}"). */
    void endObject();
    /** Open a JSON array ("["). */
    void beginArray();
    /** Close the innermost array ("]"). */
    void endArray();

    /** Emit an object key; must be followed by exactly one value. */
    void key(const std::string& name);

    /** Emit a string value. */
    void value(const std::string& text);
    /** Emit a string value (avoids std::string copies of literals). */
    void value(const char* text);
    /** Emit a numeric value (NaN/Inf are emitted as null). */
    void value(double number);
    /** Emit an integral value without float formatting. */
    void value(std::uint64_t number);
    /** Emit a boolean value. */
    void value(bool flag);
    /** Emit a null value. */
    void null();
    /** Emit pre-rendered raw JSON (caller guarantees validity). */
    void raw(const std::string& json);

    /** key() + value() in one call, for each overload. */
    void field(const std::string& name, const std::string& text);
    /** @copydoc field(const std::string&, const std::string&) */
    void field(const std::string& name, const char* text);
    /** @copydoc field(const std::string&, const std::string&) */
    void field(const std::string& name, double number);
    /** @copydoc field(const std::string&, const std::string&) */
    void field(const std::string& name, std::uint64_t number);
    /** @copydoc field(const std::string&, const std::string&) */
    void field(const std::string& name, bool flag);

    /** The document written so far. */
    std::string str() const { return _out.str(); }

  private:
    void separate();

    std::ostringstream _out;
    /** One entry per open container: true = a value was already written. */
    std::vector<bool> _has_item;
    bool _pending_key = false;
};

/** Parsed JSON value (tagged union). */
class JsonValue
{
  public:
    /** The JSON type of this value. */
    enum class Kind : std::uint8_t
    {
        Null,    ///< JSON null
        Boolean, ///< true / false
        Number,  ///< any JSON number (stored as double)
        String,  ///< JSON string
        Array,   ///< JSON array
        Object,  ///< JSON object
    };

    /** A null value. */
    JsonValue() = default;

    /** The value's JSON type. */
    Kind kind() const { return _kind; }

    /** True when the value is JSON null. */
    bool isNull() const { return _kind == Kind::Null; }

    /** The boolean payload; throws ModelError on kind mismatch. */
    bool asBool() const;
    /** The numeric payload; throws ModelError on kind mismatch. */
    double asNumber() const;
    /** The string payload; throws ModelError on kind mismatch. */
    const std::string& asString() const;
    /** The array elements; throws ModelError on kind mismatch. */
    const std::vector<JsonValue>& asArray() const;

    /** True for an object containing @p name. */
    bool has(const std::string& name) const;
    /**
     * Member lookup; throws ModelError when this is not an object or
     * the key is absent.
     */
    const JsonValue& at(const std::string& name) const;
    /** Object keys in document order; throws on kind mismatch. */
    const std::vector<std::string>& keys() const;

    /** @name Construction helpers (used by the parser) */
    ///@{
    static JsonValue makeNull();
    static JsonValue makeBool(bool flag);
    static JsonValue makeNumber(double number);
    static JsonValue makeString(std::string text);
    static JsonValue makeArray(std::vector<JsonValue> items);
    static JsonValue makeObject(std::vector<std::string> keys,
                                std::vector<JsonValue> values);
    ///@}

  private:
    Kind _kind = Kind::Null;
    bool _bool = false;
    double _number = 0.0;
    std::string _string;
    std::vector<JsonValue> _items;       // array elements / object values
    std::vector<std::string> _keys;      // object keys (document order)
};

/**
 * Resource limits for parsing untrusted input.
 *
 * The default-constructed limits preserve the parser's historical
 * behavior (unbounded input and strings, 256-level nesting, raw
 * control characters tolerated inside strings) for trusted artifacts
 * the library wrote itself — checkpoints, manifests, metrics. Wire
 * input from clients (the ttm_serve request envelope) must use
 * untrustedWire() instead: a hostile payload then produces a
 * structured ModelError long before it can exhaust memory or the
 * stack.
 */
struct JsonLimits
{
    /** Maximum document size in bytes; 0 = unlimited. */
    std::size_t max_input_bytes = 0;
    /** Maximum decoded string/key length in bytes; 0 = unlimited. */
    std::size_t max_string_bytes = 0;
    /** Maximum object/array nesting depth (>= 1). */
    std::size_t max_depth = 256;
    /**
     * Reject raw (unescaped) control characters inside strings, as
     * RFC 8259 requires; the default tolerates them because older
     * artifacts may carry them through pass-through escapes.
     */
    bool reject_control_chars = false;

    /** Strict limits for client-supplied wire input. */
    static JsonLimits untrustedWire(std::size_t max_input = 1 << 20)
    {
        JsonLimits limits;
        limits.max_input_bytes = max_input;
        limits.max_string_bytes = 1 << 16;
        limits.max_depth = 64;
        limits.reject_control_chars = true;
        return limits;
    }
};

/**
 * Parse a complete JSON document. Trailing non-whitespace and any
 * syntax error throw ModelError with the byte offset of the problem.
 */
JsonValue parseJson(const std::string& text);

/**
 * Parse with explicit resource @p limits (see JsonLimits); every
 * violated limit throws ModelError with the byte offset, exactly like
 * a syntax error.
 */
JsonValue parseJson(const std::string& text, const JsonLimits& limits);

} // namespace ttmcas

#endif // TTMCAS_SUPPORT_JSON_HH
