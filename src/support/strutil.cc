#include "support/strutil.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

#include "support/error.hh"

namespace ttmcas {

std::string
formatFixed(double value, int decimals)
{
    TTMCAS_REQUIRE(decimals >= 0, "decimals must be non-negative");
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(decimals);
    os << value;
    return os.str();
}

namespace {

/** Trim a fixed-format number: "3.50" -> "3.5", "3.00" -> "3". */
std::string
trimTrailingZeros(std::string text)
{
    if (text.find('.') == std::string::npos)
        return text;
    while (!text.empty() && text.back() == '0')
        text.pop_back();
    if (!text.empty() && text.back() == '.')
        text.pop_back();
    return text;
}

} // namespace

std::string
formatSi(double value, int decimals)
{
    const double magnitude = std::fabs(value);
    const char* suffix = "";
    double scaled = value;
    if (magnitude >= 1e9) {
        suffix = "B";
        scaled = value / 1e9;
    } else if (magnitude >= 1e6) {
        suffix = "M";
        scaled = value / 1e6;
    } else if (magnitude >= 1e3) {
        suffix = "K";
        scaled = value / 1e3;
    }
    return trimTrailingZeros(formatFixed(scaled, decimals)) + suffix;
}

std::string
formatDollars(double dollars, int decimals)
{
    const bool negative = dollars < 0.0;
    const double magnitude = std::fabs(dollars);
    std::string body;
    if (magnitude >= 1e9)
        body = formatFixed(magnitude / 1e9, decimals) + "B";
    else if (magnitude >= 1e6)
        body = formatFixed(magnitude / 1e6, decimals) + "M";
    else if (magnitude >= 1e3)
        body = formatFixed(magnitude / 1e3, decimals) + "K";
    else
        body = formatFixed(magnitude, decimals);
    return std::string(negative ? "-$" : "$") + body;
}

std::string
formatGrouped(long long value)
{
    const bool negative = value < 0;
    std::string digits = std::to_string(negative ? -value : value);
    std::string grouped;
    int count = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (count != 0 && count % 3 == 0)
            grouped.push_back(',');
        grouped.push_back(*it);
        ++count;
    }
    std::reverse(grouped.begin(), grouped.end());
    return (negative ? "-" : "") + grouped;
}

std::string
padLeft(const std::string& text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return std::string(width - text.size(), ' ') + text;
}

std::string
padRight(const std::string& text, std::size_t width)
{
    if (text.size() >= width)
        return text;
    return text + std::string(width - text.size(), ' ');
}

std::string
join(const std::vector<std::string>& pieces, const std::string& separator)
{
    std::string result;
    for (std::size_t i = 0; i < pieces.size(); ++i) {
        if (i != 0)
            result += separator;
        result += pieces[i];
    }
    return result;
}

std::string
toLower(std::string text)
{
    std::transform(text.begin(), text.end(), text.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    return text;
}

bool
startsWith(const std::string& text, const std::string& prefix)
{
    return text.size() >= prefix.size() &&
           text.compare(0, prefix.size(), prefix) == 0;
}

} // namespace ttmcas
