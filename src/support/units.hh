#ifndef TTMCAS_SUPPORT_UNITS_HH
#define TTMCAS_SUPPORT_UNITS_HH

/**
 * @file
 * Strong unit types used throughout the ttmcas model.
 *
 * The chip-creation model mixes many physically distinct quantities
 * (calendar weeks, engineering-hours, wafers/week, mm^2, dollars,
 * transistor counts). Mixing these silently is the classic source of
 * analytical-model bugs, so each is wrapped in a minimal strong type.
 *
 * The wrappers deliberately support only dimensionally meaningful
 * operations: same-unit addition/subtraction/comparison and scaling by
 * dimensionless doubles. Cross-unit products that the model needs
 * (e.g. wafers / (wafers/week) = weeks) are provided as explicit free
 * functions so every conversion is visible at the call site.
 */

#include <compare>
#include <ostream>

#include "support/error.hh"

namespace ttmcas {

/**
 * A double tagged with a unit. Tag types are empty structs; they exist
 * only to make different units incompatible at compile time.
 */
template <typename Tag>
class Quantity
{
  public:
    constexpr Quantity() = default;
    constexpr explicit Quantity(double value) : _value(value) {}

    /** The raw magnitude in this quantity's canonical unit. */
    constexpr double value() const { return _value; }

    constexpr Quantity operator+(Quantity other) const
    { return Quantity(_value + other._value); }
    constexpr Quantity operator-(Quantity other) const
    { return Quantity(_value - other._value); }
    constexpr Quantity operator-() const { return Quantity(-_value); }

    constexpr Quantity operator*(double scale) const
    { return Quantity(_value * scale); }
    constexpr Quantity operator/(double scale) const
    { return Quantity(_value / scale); }

    /** Ratio of two same-unit quantities is dimensionless. */
    constexpr double operator/(Quantity other) const
    { return _value / other._value; }

    Quantity& operator+=(Quantity other)
    { _value += other._value; return *this; }
    Quantity& operator-=(Quantity other)
    { _value -= other._value; return *this; }
    Quantity& operator*=(double scale) { _value *= scale; return *this; }
    Quantity& operator/=(double scale) { _value /= scale; return *this; }

    constexpr auto operator<=>(const Quantity&) const = default;

  private:
    double _value = 0.0;
};

template <typename Tag>
constexpr Quantity<Tag>
operator*(double scale, Quantity<Tag> quantity)
{
    return quantity * scale;
}

template <typename Tag>
std::ostream&
operator<<(std::ostream& os, Quantity<Tag> quantity)
{
    return os << quantity.value();
}

/** Calendar time in weeks (the paper reports all times in weeks). */
using Weeks = Quantity<struct WeeksTag>;
/** Aggregate human effort in engineering-hours (paper Eq. 2). */
using EngineeringHours = Quantity<struct EngineeringHoursTag>;
/** Silicon area in mm^2. */
using SquareMm = Quantity<struct SquareMmTag>;
/** Cost in US dollars. */
using Dollars = Quantity<struct DollarsTag>;
/** Wafer counts (fractional during intermediate math). */
using Wafers = Quantity<struct WafersTag>;
/** Foundry wafer production rate in wafers per calendar week. */
using WafersPerWeek = Quantity<struct WafersPerWeekTag>;

namespace units {

/** Average weeks per month used for kWafers/month conversion (52/12). */
inline constexpr double weeks_per_month = 52.0 / 12.0;
/** Working hours per engineer per calendar week. */
inline constexpr double hours_per_work_week = 40.0;

/** Convert a foundry rate quoted in kilo-wafers/month into wafers/week. */
constexpr WafersPerWeek
kiloWafersPerMonth(double kwpm)
{
    return WafersPerWeek(kwpm * 1000.0 / weeks_per_month);
}

/** Weeks needed to produce @p wafers at rate @p rate (Eq. 4/5 quotient). */
inline Weeks
productionTime(Wafers wafers, WafersPerWeek rate)
{
    TTMCAS_REQUIRE(rate.value() > 0.0,
                   "wafer production rate must be positive");
    return Weeks(wafers.value() / rate.value());
}

/**
 * Convert aggregate engineering-hours to calendar weeks for a team.
 *
 * @param effort total engineering-hours of work
 * @param engineers number of engineers working in parallel
 */
inline Weeks
calendarTime(EngineeringHours effort, double engineers)
{
    TTMCAS_REQUIRE(engineers > 0.0, "team size must be positive");
    return Weeks(effort.value() / (engineers * hours_per_work_week));
}

inline constexpr Dollars million(double m) { return Dollars(m * 1e6); }
inline constexpr Dollars billion(double b) { return Dollars(b * 1e9); }

} // namespace units
} // namespace ttmcas

#endif // TTMCAS_SUPPORT_UNITS_HH
