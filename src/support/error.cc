#include "support/error.hh"

#include <sstream>

namespace ttmcas {
namespace detail {

namespace {

std::string
formatFailure(const char* kind, const char* file, int line,
              const char* expr, const std::string& message)
{
    std::ostringstream os;
    os << file << ":" << line << ": " << kind << " `" << expr << "` failed";
    if (!message.empty())
        os << ": " << message;
    return os.str();
}

} // namespace

void
throwModelError(const char* file, int line, const char* expr,
                const std::string& message)
{
    throw ModelError(formatFailure("requirement", file, line, expr, message));
}

void
throwInternalError(const char* file, int line, const char* expr,
                   const std::string& message)
{
    throw InternalError(
        formatFailure("invariant", file, line, expr, message));
}

} // namespace detail
} // namespace ttmcas
