#include "support/json.hh"

#include <cmath>
#include <cstdio>
#include <utility>

#include "support/error.hh"

namespace ttmcas {

std::string
jsonEscape(const std::string& text)
{
    std::string out;
    out.reserve(text.size() + 2);
    for (const char c : text) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\b': out += "\\b"; break;
        case '\f': out += "\\f"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string
jsonNumber(double value)
{
    if (!std::isfinite(value))
        return "null";
    // Round-trippable without decorating integers with ".000000".
    if (value == static_cast<double>(static_cast<long long>(value)) &&
        std::fabs(value) < 1e15) {
        return std::to_string(static_cast<long long>(value));
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
}

void
JsonWriter::separate()
{
    if (_pending_key) {
        _pending_key = false;
        return;
    }
    if (!_has_item.empty()) {
        if (_has_item.back())
            _out << ',';
        _has_item.back() = true;
    }
}

void
JsonWriter::beginObject()
{
    separate();
    _out << '{';
    _has_item.push_back(false);
}

void
JsonWriter::endObject()
{
    TTMCAS_INVARIANT(!_has_item.empty(), "endObject without beginObject");
    _has_item.pop_back();
    _out << '}';
}

void
JsonWriter::beginArray()
{
    separate();
    _out << '[';
    _has_item.push_back(false);
}

void
JsonWriter::endArray()
{
    TTMCAS_INVARIANT(!_has_item.empty(), "endArray without beginArray");
    _has_item.pop_back();
    _out << ']';
}

void
JsonWriter::key(const std::string& name)
{
    separate();
    _out << '"' << jsonEscape(name) << "\":";
    _pending_key = true;
}

void
JsonWriter::value(const std::string& text)
{
    separate();
    _out << '"' << jsonEscape(text) << '"';
}

void
JsonWriter::value(const char* text)
{
    value(std::string(text));
}

void
JsonWriter::value(double number)
{
    separate();
    _out << jsonNumber(number);
}

void
JsonWriter::value(std::uint64_t number)
{
    separate();
    _out << number;
}

void
JsonWriter::value(bool flag)
{
    separate();
    _out << (flag ? "true" : "false");
}

void
JsonWriter::null()
{
    separate();
    _out << "null";
}

void
JsonWriter::raw(const std::string& json)
{
    separate();
    _out << json;
}

void
JsonWriter::field(const std::string& name, const std::string& text)
{
    key(name);
    value(text);
}

void
JsonWriter::field(const std::string& name, const char* text)
{
    key(name);
    value(text);
}

void
JsonWriter::field(const std::string& name, double number)
{
    key(name);
    value(number);
}

void
JsonWriter::field(const std::string& name, std::uint64_t number)
{
    key(name);
    value(number);
}

void
JsonWriter::field(const std::string& name, bool flag)
{
    key(name);
    value(flag);
}

// ---------------------------------------------------------------------
// JsonValue

bool
JsonValue::asBool() const
{
    TTMCAS_REQUIRE(_kind == Kind::Boolean, "JSON value is not a boolean");
    return _bool;
}

double
JsonValue::asNumber() const
{
    TTMCAS_REQUIRE(_kind == Kind::Number, "JSON value is not a number");
    return _number;
}

const std::string&
JsonValue::asString() const
{
    TTMCAS_REQUIRE(_kind == Kind::String, "JSON value is not a string");
    return _string;
}

const std::vector<JsonValue>&
JsonValue::asArray() const
{
    TTMCAS_REQUIRE(_kind == Kind::Array, "JSON value is not an array");
    return _items;
}

bool
JsonValue::has(const std::string& name) const
{
    if (_kind != Kind::Object)
        return false;
    for (const std::string& k : _keys) {
        if (k == name)
            return true;
    }
    return false;
}

const JsonValue&
JsonValue::at(const std::string& name) const
{
    TTMCAS_REQUIRE(_kind == Kind::Object, "JSON value is not an object");
    for (std::size_t i = 0; i < _keys.size(); ++i) {
        if (_keys[i] == name)
            return _items[i];
    }
    throw ModelError("JSON object has no member '" + name + "'");
}

const std::vector<std::string>&
JsonValue::keys() const
{
    TTMCAS_REQUIRE(_kind == Kind::Object, "JSON value is not an object");
    return _keys;
}

JsonValue
JsonValue::makeNull()
{
    return JsonValue{};
}

JsonValue
JsonValue::makeBool(bool flag)
{
    JsonValue v;
    v._kind = Kind::Boolean;
    v._bool = flag;
    return v;
}

JsonValue
JsonValue::makeNumber(double number)
{
    JsonValue v;
    v._kind = Kind::Number;
    v._number = number;
    return v;
}

JsonValue
JsonValue::makeString(std::string text)
{
    JsonValue v;
    v._kind = Kind::String;
    v._string = std::move(text);
    return v;
}

JsonValue
JsonValue::makeArray(std::vector<JsonValue> items)
{
    JsonValue v;
    v._kind = Kind::Array;
    v._items = std::move(items);
    return v;
}

JsonValue
JsonValue::makeObject(std::vector<std::string> keys,
                      std::vector<JsonValue> values)
{
    TTMCAS_INVARIANT(keys.size() == values.size(),
                     "object keys/values size mismatch");
    JsonValue v;
    v._kind = Kind::Object;
    v._keys = std::move(keys);
    v._items = std::move(values);
    return v;
}

// ---------------------------------------------------------------------
// Parser

namespace {

class JsonParser
{
  public:
    JsonParser(const std::string& text, const JsonLimits& limits)
        : _text(text), _limits(limits)
    {}

    JsonValue parse()
    {
        if (_limits.max_input_bytes != 0 &&
            _text.size() > _limits.max_input_bytes) {
            fail("document of " + std::to_string(_text.size()) +
                 " bytes exceeds the " +
                 std::to_string(_limits.max_input_bytes) +
                 "-byte input limit");
        }
        JsonValue value = parseValue();
        skipWhitespace();
        if (_pos != _text.size())
            fail("trailing content after JSON document");
        return value;
    }

  private:
    /** RAII nesting counter: entering an object/array costs one level. */
    class DepthGuard
    {
      public:
        explicit DepthGuard(JsonParser& parser) : _parser(parser)
        {
            if (++_parser._depth > _parser._limits.max_depth)
                _parser.fail(
                    "nesting deeper than " +
                    std::to_string(_parser._limits.max_depth) +
                    " levels");
        }
        ~DepthGuard() { --_parser._depth; }

        DepthGuard(const DepthGuard&) = delete;
        DepthGuard& operator=(const DepthGuard&) = delete;

      private:
        JsonParser& _parser;
    };

    [[noreturn]] void fail(const std::string& what) const
    {
        throw ModelError("JSON parse error at byte " +
                         std::to_string(_pos) + ": " + what);
    }

    void skipWhitespace()
    {
        while (_pos < _text.size()) {
            const char c = _text[_pos];
            if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
                ++_pos;
            else
                break;
        }
    }

    char peek()
    {
        if (_pos >= _text.size())
            fail("unexpected end of input");
        return _text[_pos];
    }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_pos;
    }

    bool consumeLiteral(const char* literal)
    {
        std::size_t len = 0;
        while (literal[len] != '\0')
            ++len;
        if (_text.compare(_pos, len, literal) != 0)
            return false;
        _pos += len;
        return true;
    }

    JsonValue parseValue()
    {
        skipWhitespace();
        const char c = peek();
        switch (c) {
        case '{': {
            const DepthGuard guard(*this);
            return parseObject();
        }
        case '[': {
            const DepthGuard guard(*this);
            return parseArray();
        }
        case '"': return JsonValue::makeString(parseString());
        case 't':
            if (consumeLiteral("true"))
                return JsonValue::makeBool(true);
            fail("invalid literal");
        case 'f':
            if (consumeLiteral("false"))
                return JsonValue::makeBool(false);
            fail("invalid literal");
        case 'n':
            if (consumeLiteral("null"))
                return JsonValue::makeNull();
            fail("invalid literal");
        default: return parseNumber();
        }
    }

    JsonValue parseObject()
    {
        expect('{');
        std::vector<std::string> keys;
        std::vector<JsonValue> values;
        skipWhitespace();
        if (peek() == '}') {
            ++_pos;
            return JsonValue::makeObject(std::move(keys),
                                         std::move(values));
        }
        for (;;) {
            skipWhitespace();
            std::string name = parseString();
            skipWhitespace();
            expect(':');
            JsonValue value = parseValue();
            // Last duplicate wins, mirroring common JSON libraries.
            bool replaced = false;
            for (std::size_t i = 0; i < keys.size(); ++i) {
                if (keys[i] == name) {
                    values[i] = std::move(value);
                    replaced = true;
                    break;
                }
            }
            if (!replaced) {
                keys.push_back(std::move(name));
                values.push_back(std::move(value));
            }
            skipWhitespace();
            const char next = peek();
            if (next == ',') {
                ++_pos;
                continue;
            }
            if (next == '}') {
                ++_pos;
                break;
            }
            fail("expected ',' or '}' in object");
        }
        return JsonValue::makeObject(std::move(keys), std::move(values));
    }

    JsonValue parseArray()
    {
        expect('[');
        std::vector<JsonValue> items;
        skipWhitespace();
        if (peek() == ']') {
            ++_pos;
            return JsonValue::makeArray(std::move(items));
        }
        for (;;) {
            items.push_back(parseValue());
            skipWhitespace();
            const char next = peek();
            if (next == ',') {
                ++_pos;
                continue;
            }
            if (next == ']') {
                ++_pos;
                break;
            }
            fail("expected ',' or ']' in array");
        }
        return JsonValue::makeArray(std::move(items));
    }

    void checkStringLength(const std::string& out)
    {
        if (_limits.max_string_bytes != 0 &&
            out.size() > _limits.max_string_bytes) {
            fail("string longer than " +
                 std::to_string(_limits.max_string_bytes) + " bytes");
        }
    }

    std::string parseString()
    {
        expect('"');
        std::string out;
        for (;;) {
            if (_pos >= _text.size())
                fail("unterminated string");
            const char c = _text[_pos++];
            if (c == '"') {
                checkStringLength(out);
                return out;
            }
            if (c != '\\') {
                if (_limits.reject_control_chars &&
                    static_cast<unsigned char>(c) < 0x20) {
                    --_pos;
                    fail("raw control character in string (must be "
                         "\\u-escaped)");
                }
                out += c;
                checkStringLength(out);
                continue;
            }
            if (_pos >= _text.size())
                fail("unterminated escape");
            const char escape = _text[_pos++];
            switch (escape) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (_pos + 4 > _text.size())
                    fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = _text[_pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("invalid \\u escape digit");
                }
                // UTF-8 encode the code point (BMP only; surrogate
                // pairs are passed through as two 3-byte sequences,
                // which is enough for trace/manifest round-trips).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
            }
            default: fail("invalid escape character");
            }
        }
    }

    JsonValue parseNumber()
    {
        const std::size_t start = _pos;
        if (_pos < _text.size() && _text[_pos] == '-')
            ++_pos;
        while (_pos < _text.size()) {
            const char c = _text[_pos];
            if ((c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                c == 'E' || c == '+' || c == '-') {
                ++_pos;
            } else {
                break;
            }
        }
        if (_pos == start)
            fail("invalid value");
        const std::string token = _text.substr(start, _pos - start);
        try {
            std::size_t used = 0;
            const double number = std::stod(token, &used);
            if (used != token.size())
                fail("invalid number '" + token + "'");
            return JsonValue::makeNumber(number);
        } catch (const ModelError&) {
            throw;
        } catch (const std::exception&) {
            fail("invalid number '" + token + "'");
        }
    }

    const std::string& _text;
    const JsonLimits& _limits;
    std::size_t _pos = 0;
    std::size_t _depth = 0;
};

} // namespace

JsonValue
parseJson(const std::string& text)
{
    const JsonLimits limits;
    return JsonParser(text, limits).parse();
}

JsonValue
parseJson(const std::string& text, const JsonLimits& limits)
{
    TTMCAS_REQUIRE(limits.max_depth >= 1,
                   "JsonLimits.max_depth must be >= 1");
    return JsonParser(text, limits).parse();
}

} // namespace ttmcas
