#include "support/outcome.hh"

#include <sstream>

namespace ttmcas {

const char*
diagCodeName(DiagCode code)
{
    switch (code) {
      case DiagCode::InvalidInput:
        return "invalid-input";
      case DiagCode::InternalFault:
        return "internal-fault";
      case DiagCode::NonFiniteTtm:
        return "non-finite-ttm";
      case DiagCode::NonFiniteCas:
        return "non-finite-cas";
      case DiagCode::NonFiniteCost:
        return "non-finite-cost";
      case DiagCode::NonFiniteYield:
        return "non-finite-yield";
      case DiagCode::NonFiniteOutput:
        return "non-finite-output";
      case DiagCode::InjectedFault:
        return "injected-fault";
      case DiagCode::Unknown:
        return "unknown";
      case DiagCode::Cancelled:
        return "cancelled";
      case DiagCode::DeadlineExceeded:
        return "deadline-exceeded";
    }
    TTMCAS_INVARIANT(false, "unhandled DiagCode");
}

std::string
Diagnostic::locate() const
{
    if (file.empty())
        return "?";
    return file + ":" + std::to_string(line);
}

std::string
Diagnostic::describe() const
{
    std::ostringstream os;
    os << "[" << diagCodeName(code) << "]";
    if (point_index != kNoPointIndex)
        os << " point " << point_index;
    os << ": " << message;
    if (!file.empty())
        os << " (" << locate() << ")";
    return os.str();
}

NumericError::NumericError(Diagnostic diagnostic)
    : ModelError(diagnostic.describe()), _diagnostic(std::move(diagnostic))
{}

double
finiteOr(double value, DiagCode code, const std::string& context,
         std::source_location location)
{
    if (std::isfinite(value))
        return value;
    Diagnostic diagnostic;
    diagnostic.code = code;
    diagnostic.message =
        context + " produced a non-finite value (" +
        (std::isnan(value) ? "NaN" : value > 0.0 ? "+Inf" : "-Inf") + ")";
    diagnostic.file = location.file_name();
    diagnostic.line = static_cast<int>(location.line());
    throw NumericError(std::move(diagnostic));
}

void
FailureReport::clear()
{
    _points = 0;
    _failures = 0;
    _counts.fill(0);
    _detailed.clear();
}

void
FailureReport::record(const Diagnostic& diagnostic)
{
    ++_failures;
    ++_counts[static_cast<std::size_t>(diagnostic.code)];
    if (_detailed.size() < _detail_limit)
        _detailed.push_back(diagnostic);
}

double
FailureReport::failureFraction() const
{
    if (_points == 0)
        return 0.0;
    return static_cast<double>(_failures) / static_cast<double>(_points);
}

std::string
FailureReport::summary() const
{
    std::ostringstream os;
    os << _failures << " of " << _points << " points failed";
    if (_failures == 0)
        return os.str();
    os << "\n";
    for (std::size_t i = 0; i < kDiagCodeCount; ++i) {
        if (_counts[i] == 0)
            continue;
        os << "  " << diagCodeName(static_cast<DiagCode>(i)) << ": "
           << _counts[i] << "\n";
    }
    os << "first " << _detailed.size() << " failures:\n";
    for (const Diagnostic& diagnostic : _detailed)
        os << "  " << diagnostic.describe() << "\n";
    return os.str();
}

} // namespace ttmcas
