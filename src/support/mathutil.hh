#ifndef TTMCAS_SUPPORT_MATHUTIL_HH
#define TTMCAS_SUPPORT_MATHUTIL_HH

/**
 * @file
 * Small numeric helpers shared across the modeling layers.
 */

#include <cstddef>
#include <functional>
#include <vector>

namespace ttmcas {

/** True when |a - b| <= tol * max(1, |a|, |b|). */
bool approxEqual(double a, double b, double tol = 1e-9);

/** Relative difference |a - b| / max(|a|, |b|), 0 when both are 0. */
double relativeDifference(double a, double b);

/** Clamp @p value into [lo, hi]; requires lo <= hi. */
double clamp(double value, double lo, double hi);

/** Linear interpolation between a (t = 0) and b (t = 1). */
double lerp(double a, double b, double t);

/**
 * Piecewise-linear interpolation through (xs[i], ys[i]).
 *
 * xs must be strictly increasing. Values outside [xs.front(), xs.back()]
 * are linearly extrapolated from the closest segment.
 */
double interpolate(const std::vector<double>& xs,
                   const std::vector<double>& ys, double x);

/**
 * Central-difference numerical derivative of @p f at @p x.
 *
 * Uses a relative step h = max(|x|, 1) * rel_step. This is how the CAS
 * model evaluates dTTM/dmuW (paper Eq. 8).
 */
double centralDifference(const std::function<double(double)>& f, double x,
                         double rel_step = 1e-4);

/** ceil(a / b) for positive integers, without overflow for our ranges. */
std::size_t ceilDiv(std::size_t a, std::size_t b);

/** True when value is finite (not NaN / inf). */
bool isFiniteNumber(double value);

/** Geometric mean of a non-empty vector of positive values. */
double geometricMean(const std::vector<double>& values);

} // namespace ttmcas

#endif // TTMCAS_SUPPORT_MATHUTIL_HH
