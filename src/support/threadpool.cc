#include "support/threadpool.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>

#include "support/cancel.hh"
#include "support/error.hh"
#include "support/metrics.hh"

namespace ttmcas {

namespace {

// Pool observability (see docs/OBSERVABILITY.md): queue-depth high
// water, total worker busy time, task count, and chunk sizes. All
// recording no-ops while metrics are disabled.
const obs::Gauge&
queueDepthGauge()
{
    static const obs::Gauge gauge("pool.queue_depth_max");
    return gauge;
}

const obs::Counter&
busyCounter()
{
    static const obs::Counter counter("pool.busy_us");
    return counter;
}

const obs::Counter&
taskCounter()
{
    static const obs::Counter counter("pool.tasks");
    return counter;
}

const obs::Histogram&
chunkSizeHistogram()
{
    static const obs::Histogram histogram(
        "pool.chunk_size",
        {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0, 1024.0,
         4096.0});
    return histogram;
}

} // namespace

std::size_t
ParallelConfig::resolvedThreads() const
{
    if (threads != 0)
        return threads;
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t threads)
{
    TTMCAS_REQUIRE(threads >= 1, "thread pool needs at least one worker");
    _workers.reserve(threads);
    for (std::size_t i = 0; i < threads; ++i)
        _workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(_mutex);
        _stop = true;
    }
    _task_ready.notify_all();
    for (std::thread& worker : _workers)
        worker.join();
}

void
ThreadPool::workerLoop()
{
    std::unique_lock<std::mutex> lock(_mutex);
    for (;;) {
        _task_ready.wait(lock,
                         [this] { return _stop || !_queue.empty(); });
        if (_queue.empty()) {
            if (_stop)
                return;
            continue;
        }
        std::function<void()> task = std::move(_queue.front());
        _queue.pop_front();
        lock.unlock();
        const bool timed = obs::metricsEnabled();
        const auto busy_start = timed
                                    ? std::chrono::steady_clock::now()
                                    : std::chrono::steady_clock::time_point{};
        std::exception_ptr error;
        try {
            task();
        } catch (...) {
            error = std::current_exception();
        }
        if (timed) {
            const auto busy =
                std::chrono::steady_clock::now() - busy_start;
            busyCounter().add(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    busy)
                    .count()));
            taskCounter().increment();
        }
        lock.lock();
        if (error != nullptr && _first_exception == nullptr)
            _first_exception = error;
        --_pending;
        if (_pending == 0)
            _all_done.notify_all();
    }
}

void
ThreadPool::submit(std::function<void()> task)
{
    TTMCAS_REQUIRE(task != nullptr, "cannot submit an empty task");
    std::size_t depth;
    {
        std::lock_guard<std::mutex> lock(_mutex);
        TTMCAS_REQUIRE(!_stop, "cannot submit to a stopping pool");
        _queue.push_back(std::move(task));
        ++_pending;
        depth = _queue.size();
    }
    queueDepthGauge().recordMax(static_cast<double>(depth));
    _task_ready.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(_mutex);
    _all_done.wait(lock, [this] { return _pending == 0; });
    if (_first_exception != nullptr) {
        std::exception_ptr error = _first_exception;
        _first_exception = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::parallelFor(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body,
    const CancellationToken* cancel)
{
    if (n == 0)
        return;
    if (grain == 0)
        grain = 1;
    const std::size_t chunks = (n + grain - 1) / grain;
    if (chunks == 1) {
        if (cancel != nullptr && cancel->stopRequested())
            return;
        chunkSizeHistogram().record(static_cast<double>(n));
        body(0, n);
        return;
    }

    // Deterministic failure propagation: when several chunks throw, the
    // exception from the *lowest* chunk index wins, matching what the
    // serial path would raise first. Each chunk's exception is caught
    // here (never surfaced through the pool's first-to-fail wait()
    // path, which stays thread-count-dependent for raw submit() use)
    // and kept only if its chunk index is the lowest seen.
    struct LoopFailure
    {
        std::mutex mutex;
        std::size_t chunk = static_cast<std::size_t>(-1);
        std::exception_ptr error;
    };
    const auto failure = std::make_shared<LoopFailure>();

    // Workers claim chunk indices from a shared counter: cheap, and
    // harmless to determinism because every chunk writes disjoint
    // state regardless of which worker runs it.
    const auto next = std::make_shared<std::atomic<std::size_t>>(0);
    const std::size_t tasks = std::min(chunks, threadCount());
    for (std::size_t t = 0; t < tasks; ++t) {
        submit([next, failure, chunks, grain, n, &body, cancel] {
            for (;;) {
                // Cooperative cancellation: stop claiming chunks once
                // the token fires; unclaimed chunks simply never run.
                if (cancel != nullptr && cancel->stopRequested())
                    return;
                const std::size_t chunk =
                    next->fetch_add(1, std::memory_order_relaxed);
                if (chunk >= chunks)
                    return;
                {
                    // Best-effort early exit — but only for chunks
                    // *above* the lowest failure seen so far: a lower
                    // chunk must still run, because it could fail too
                    // and would then define the propagated exception.
                    std::lock_guard<std::mutex> lock(failure->mutex);
                    if (failure->error != nullptr &&
                        chunk > failure->chunk)
                        return;
                }
                const std::size_t begin = chunk * grain;
                const std::size_t end = std::min(n, begin + grain);
                chunkSizeHistogram().record(
                    static_cast<double>(end - begin));
                try {
                    body(begin, end);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(failure->mutex);
                    if (chunk < failure->chunk) {
                        failure->chunk = chunk;
                        failure->error = std::current_exception();
                    }
                }
            }
        });
    }
    wait();
    if (failure->error != nullptr)
        std::rethrow_exception(failure->error);
}

void
parallelFor(const ParallelConfig& config, std::size_t n,
            const std::function<void(std::size_t, std::size_t)>& body,
            const CancellationToken* cancel)
{
    if (n == 0)
        return;
    const std::size_t grain = std::max<std::size_t>(config.grain, 1);
    const std::size_t chunks = (n + grain - 1) / grain;
    const std::size_t threads =
        std::min(config.resolvedThreads(), chunks);
    if (threads <= 1) {
        if (cancel == nullptr) {
            body(0, n);
            return;
        }
        // Inline path honors the token at the same chunk granularity
        // as the pooled path, so a deadline stops a serial sweep too.
        for (std::size_t chunk = 0; chunk < chunks; ++chunk) {
            if (cancel->stopRequested())
                return;
            const std::size_t begin = chunk * grain;
            body(begin, std::min(n, begin + grain));
        }
        return;
    }
    ThreadPool pool(threads);
    pool.parallelFor(n, grain, body, cancel);
}

} // namespace ttmcas
