#ifndef TTMCAS_SUPPORT_RETRY_HH
#define TTMCAS_SUPPORT_RETRY_HH

/**
 * @file
 * Deterministic exponential-backoff retry for per-point evaluations.
 *
 * Transient faults — a flaky filesystem read, a racy external probe,
 * the injector's transient class (stats/fault_injection.hh) — deserve
 * a cheap local retry before a point is written off. RetryPolicy
 * describes the schedule: up to max_attempts tries, exponential
 * backoff base_ms * multiplier^attempt, and an optional *seeded*
 * jitter so that the full delay sequence is a pure function of
 * (seed, site, attempt). Nothing here reads a clock or a global RNG:
 * tests assert exact delay schedules, and production runs stay
 * reproducible point-by-point.
 *
 * Determinism contract: whether a retried point ultimately succeeds
 * depends only on the evaluation itself (per-point RNG streams, the
 * injector's per-(point, attempt) schedule), never on wall-clock
 * time. base_ms = 0 (the test default) makes backoff() a no-op, so
 * retry-path tests are instant and sleep-free.
 */

#include <cstddef>
#include <cstdint>

namespace ttmcas {

/** Deterministic exponential-backoff retry schedule. */
struct RetryPolicy
{
    /** Total attempts per point (1 = no retry, the default). */
    std::uint32_t max_attempts = 1;
    /** Delay before the first retry, in milliseconds (0 = no sleep). */
    double base_ms = 0.0;
    /** Backoff growth factor per retry. */
    double multiplier = 2.0;
    /**
     * Jitter amplitude as a fraction of the nominal delay; the actual
     * factor in [1 - jitter_fraction, 1 + jitter_fraction] is drawn
     * from a splitmix64 hash of (seed, site, attempt), never a clock.
     */
    double jitter_fraction = 0.0;
    /** Seed feeding the jitter hash. */
    std::uint64_t seed = 0;

    /** True when more than one attempt is allowed. */
    bool enabled() const { return max_attempts > 1; }

    /**
     * Nominal-plus-jitter delay in milliseconds before retry number
     * @p attempt (0 = first retry) of point/site @p site. Pure
     * function of the policy fields and its arguments.
     */
    double delayMs(std::uint32_t attempt, std::size_t site) const;

    /**
     * Sleep for delayMs(attempt, site). A no-op when base_ms == 0, so
     * deterministic tests never touch the clock.
     */
    void backoff(std::uint32_t attempt, std::size_t site) const;

    /** A policy retrying up to @p attempts times with no sleeping. */
    static RetryPolicy immediate(std::uint32_t attempts)
    {
        RetryPolicy policy;
        policy.max_attempts = attempts;
        return policy;
    }
};

/**
 * Serial per-run retry tally, built by the kernels from per-point
 * attempt slots in index order (thread-count invariant) and surfaced
 * in metrics (recordRetryMetrics) and the run manifest.
 */
struct RetryStats
{
    /** Points that needed more than one attempt. */
    std::uint64_t retried_points = 0;
    /** Attempts beyond the first, summed over all points. */
    std::uint64_t extra_attempts = 0;
    /** Retried points that ultimately succeeded. */
    std::uint64_t recovered_points = 0;
    /** Points that failed every allowed attempt. */
    std::uint64_t exhausted_points = 0;

    /** Field-wise equality (used by determinism tests). */
    bool operator==(const RetryStats& other) const = default;
};

/**
 * Bump the retry.* metrics counters (retry.attempts, retry.recovered,
 * retry.exhausted) by @p stats. Call once per run, from the serial
 * post-pass, so totals are thread-count invariant. No-op when metrics
 * are disabled.
 */
void recordRetryMetrics(const RetryStats& stats);

} // namespace ttmcas

#endif // TTMCAS_SUPPORT_RETRY_HH
