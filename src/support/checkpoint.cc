#include "support/checkpoint.hh"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.hh"
#include "support/json.hh"

namespace ttmcas {

namespace {

/** 16-hex-digit rendering of an IEEE-754 bit pattern. */
std::string
bitsToHex(std::uint64_t bits)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(bits));
    return buf;
}

/** Parse a 16-hex-digit bit pattern; throws ModelError otherwise. */
std::uint64_t
hexToBits(const std::string& hex)
{
    TTMCAS_REQUIRE(hex.size() == 16,
                   "checkpoint bit pattern must be 16 hex digits, got '" +
                       hex + "'");
    std::uint64_t bits = 0;
    for (const char c : hex) {
        bits <<= 4;
        if (c >= '0' && c <= '9')
            bits |= static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            bits |= static_cast<std::uint64_t>(c - 'a' + 10);
        else if (c >= 'A' && c <= 'F')
            bits |= static_cast<std::uint64_t>(c - 'A' + 10);
        else
            throw ModelError(
                "checkpoint bit pattern has a non-hex digit in '" + hex +
                "'");
    }
    return bits;
}

/** Read @p value as a non-negative integral JSON number. */
std::uint64_t
asCount(const JsonValue& value, const char* what)
{
    const double number = value.asNumber();
    TTMCAS_REQUIRE(number >= 0.0 &&
                       number == static_cast<double>(
                                     static_cast<std::uint64_t>(number)),
                   std::string("checkpoint field '") + what +
                       "' is not a non-negative integer");
    return static_cast<std::uint64_t>(number);
}

} // namespace

SweepCheckpoint::SweepCheckpoint(SweepCheckpoint&& other) noexcept
    : _kernel(std::move(other._kernel)), _seed(other._seed),
      _total_points(other._total_points),
      _parent(std::move(other._parent)),
      _points(std::move(other._points)),
      _autoflush_path(std::move(other._autoflush_path)),
      _autoflush_every(other._autoflush_every),
      _records_since_flush(other._records_since_flush)
{}

void
SweepCheckpoint::bind(const std::string& kernel, std::uint64_t seed,
                      std::size_t total_points)
{
    TTMCAS_REQUIRE(!kernel.empty(), "checkpoint kernel name is empty");
    std::lock_guard<std::mutex> lock(_mutex);
    if (_kernel.empty()) {
        _kernel = kernel;
        _seed = seed;
        _total_points = total_points;
        return;
    }
    TTMCAS_REQUIRE(
        _kernel == kernel && _seed == seed &&
            _total_points == total_points,
        "checkpoint is bound to " + _kernel + "/seed " +
            std::to_string(_seed) + "/" + std::to_string(_total_points) +
            " points but this run is " + kernel + "/seed " +
            std::to_string(seed) + "/" + std::to_string(total_points) +
            " points");
}

void
SweepCheckpoint::requireMatches(const std::string& kernel,
                                std::uint64_t seed,
                                std::size_t total_points) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    TTMCAS_REQUIRE(
        _kernel == kernel && _seed == seed &&
            _total_points == total_points,
        "resume checkpoint was written by " +
            (_kernel.empty() ? std::string("<unbound>") : _kernel) +
            "/seed " + std::to_string(_seed) + "/" +
            std::to_string(_total_points) +
            " points and cannot seed " + kernel + "/seed " +
            std::to_string(seed) + "/" + std::to_string(total_points) +
            " points");
}

void
SweepCheckpoint::record(std::size_t point, double value)
{
    std::lock_guard<std::mutex> lock(_mutex);
    TTMCAS_REQUIRE(point < _total_points || _total_points == 0,
                   "checkpoint point " + std::to_string(point) +
                       " is out of range for a " +
                       std::to_string(_total_points) + "-point sweep");
    _points[point] = std::bit_cast<std::uint64_t>(value);
    if (_autoflush_every == 0)
        return;
    if (++_records_since_flush < _autoflush_every)
        return;
    _records_since_flush = 0;
    writeAtomicLocked(_autoflush_path);
}

bool
SweepCheckpoint::has(std::size_t point) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _points.count(point) != 0;
}

double
SweepCheckpoint::value(std::size_t point) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    const auto it = _points.find(point);
    TTMCAS_REQUIRE(it != _points.end(),
                   "checkpoint holds no value for point " +
                       std::to_string(point));
    return std::bit_cast<double>(it->second);
}

std::size_t
SweepCheckpoint::completedCount() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return _points.size();
}

std::string
SweepCheckpoint::toJsonLocked() const
{
    JsonWriter json;
    json.beginObject();
    json.field("kernel", _kernel);
    json.field("seed", static_cast<std::uint64_t>(_seed));
    json.field("total_points", static_cast<std::uint64_t>(_total_points));
    json.field("parent", _parent);
    json.key("points");
    json.beginArray();
    for (const auto& [index, bits] : _points) {
        json.beginObject();
        json.field("index", static_cast<std::uint64_t>(index));
        json.field("bits", bitsToHex(bits));
        json.endObject();
    }
    json.endArray();
    json.endObject();
    return json.str();
}

std::string
SweepCheckpoint::toJson() const
{
    std::lock_guard<std::mutex> lock(_mutex);
    return toJsonLocked();
}

SweepCheckpoint
SweepCheckpoint::fromJson(const std::string& text)
{
    const JsonValue doc = parseJson(text);
    SweepCheckpoint checkpoint;
    checkpoint._kernel = doc.at("kernel").asString();
    TTMCAS_REQUIRE(!checkpoint._kernel.empty(),
                   "checkpoint kernel name is empty");
    checkpoint._seed = asCount(doc.at("seed"), "seed");
    checkpoint._total_points =
        static_cast<std::size_t>(asCount(doc.at("total_points"),
                                         "total_points"));
    if (doc.has("parent"))
        checkpoint._parent = doc.at("parent").asString();
    for (const JsonValue& entry : doc.at("points").asArray()) {
        const std::size_t index = static_cast<std::size_t>(
            asCount(entry.at("index"), "index"));
        TTMCAS_REQUIRE(index < checkpoint._total_points,
                       "checkpoint point " + std::to_string(index) +
                           " is out of range for a " +
                           std::to_string(checkpoint._total_points) +
                           "-point sweep");
        checkpoint._points[index] =
            hexToBits(entry.at("bits").asString());
    }
    return checkpoint;
}

void
SweepCheckpoint::writeAtomicLocked(const std::string& path) const
{
    const std::string document = toJsonLocked();
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
    }
    // Temp file beside the target: rename() is only atomic within one
    // filesystem, so the staging file must live in the same directory.
    const std::filesystem::path staging(path + ".tmp");
    {
        std::ofstream out(staging, std::ios::trunc);
        TTMCAS_REQUIRE(out.good(), "cannot open checkpoint staging file " +
                                       staging.string());
        out << document << '\n';
        out.flush();
        TTMCAS_REQUIRE(out.good(), "cannot write checkpoint staging file " +
                                       staging.string());
    }
    std::error_code ec;
    std::filesystem::rename(staging, target, ec);
    TTMCAS_REQUIRE(!ec, "cannot rename checkpoint into place at " + path +
                            ": " + ec.message());
}

void
SweepCheckpoint::writeAtomic(const std::string& path) const
{
    std::lock_guard<std::mutex> lock(_mutex);
    writeAtomicLocked(path);
}

SweepCheckpoint
SweepCheckpoint::load(const std::string& path)
{
    std::ifstream in(path);
    TTMCAS_REQUIRE(in.good(), "cannot open checkpoint file " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    TTMCAS_REQUIRE(!in.bad(), "cannot read checkpoint file " + path);
    SweepCheckpoint checkpoint = fromJson(buffer.str());
    checkpoint._parent = path;
    return checkpoint;
}

void
SweepCheckpoint::enableAutoFlush(std::string path,
                                 std::size_t every_points)
{
    TTMCAS_REQUIRE(every_points >= 1,
                   "checkpoint auto-flush cadence must be >= 1 point");
    TTMCAS_REQUIRE(!path.empty(), "checkpoint auto-flush path is empty");
    std::lock_guard<std::mutex> lock(_mutex);
    _autoflush_path = std::move(path);
    _autoflush_every = every_points;
    _records_since_flush = 0;
}

} // namespace ttmcas
