#include "support/metrics.hh"

#include <algorithm>
#include <array>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <mutex>

#include "support/error.hh"
#include "support/json.hh"

namespace ttmcas::obs {

namespace {

constexpr std::size_t kMaxCounters = 256;
constexpr std::size_t kMaxGauges = 64;
constexpr std::size_t kMaxHistograms = 64;
constexpr std::size_t kMaxBuckets = 16;

std::atomic<bool> g_metrics_enabled{false};

// Per-thread recording shard. Fixed-size arrays of relaxed atomics:
// the owning thread is the only writer, the snapshot thread reads
// concurrently, and there is never any reallocation to race on.
struct MetricShard
{
    std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
    std::array<std::atomic<std::uint64_t>,
               kMaxHistograms*(kMaxBuckets + 1)>
        hist_counts{};
    std::array<std::atomic<std::uint64_t>, kMaxHistograms> hist_n{};
    std::array<std::atomic<double>, kMaxHistograms> hist_sum{};
};

struct MetricsRegistry
{
    std::mutex mutex;
    std::vector<std::string> counter_names;
    std::vector<std::string> gauge_names;
    std::array<std::atomic<double>, kMaxGauges> gauge_cells{};
    std::vector<std::string> histogram_names;
    std::vector<std::vector<double>> histogram_bounds;
    std::vector<std::shared_ptr<MetricShard>> shards;
};

MetricsRegistry&
registry()
{
    static MetricsRegistry instance;
    return instance;
}

MetricShard&
localShard()
{
    thread_local std::shared_ptr<MetricShard> shard = [] {
        auto fresh = std::make_shared<MetricShard>();
        MetricsRegistry& reg = registry();
        std::lock_guard<std::mutex> lock(reg.mutex);
        reg.shards.push_back(fresh);
        return fresh;
    }();
    return *shard;
}

std::size_t
registerName(std::vector<std::string>& names, const char* name,
             std::size_t cap, const char* what)
{
    MetricsRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (std::size_t i = 0; i < names.size(); ++i) {
        if (names[i] == name)
            return i;
    }
    TTMCAS_INVARIANT(names.size() < cap,
                     std::string("too many registered ") + what);
    names.emplace_back(name);
    return names.size() - 1;
}

} // namespace

void
setMetricsEnabled(bool enabled)
{
    g_metrics_enabled.store(enabled, std::memory_order_relaxed);
}

bool
metricsEnabled()
{
    return g_metrics_enabled.load(std::memory_order_relaxed);
}

Counter::Counter(const char* name)
    : _id(registerName(registry().counter_names, name, kMaxCounters,
                       "counters"))
{}

void
Counter::add(std::uint64_t n) const
{
    if (!metricsEnabled())
        return;
    localShard().counters[_id].fetch_add(n, std::memory_order_relaxed);
}

Gauge::Gauge(const char* name)
    : _id(registerName(registry().gauge_names, name, kMaxGauges,
                       "gauges"))
{}

void
Gauge::set(double value) const
{
    if (!metricsEnabled())
        return;
    registry().gauge_cells[_id].store(value, std::memory_order_relaxed);
}

void
Gauge::recordMax(double value) const
{
    if (!metricsEnabled())
        return;
    std::atomic<double>& cell = registry().gauge_cells[_id];
    double current = cell.load(std::memory_order_relaxed);
    while (value > current &&
           !cell.compare_exchange_weak(current, value,
                                       std::memory_order_relaxed)) {
        // current was refreshed by the failed CAS; loop re-checks.
    }
}

Histogram::Histogram(const char* name, std::vector<double> bounds)
    : _id(registerName(registry().histogram_names, name, kMaxHistograms,
                       "histograms"))
{
    TTMCAS_REQUIRE(!bounds.empty() && bounds.size() <= kMaxBuckets,
                   "histogram needs 1..16 bucket bounds");
    for (std::size_t i = 1; i < bounds.size(); ++i) {
        TTMCAS_REQUIRE(bounds[i] > bounds[i - 1],
                       "histogram bounds must be strictly increasing");
    }
    MetricsRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    if (_id >= reg.histogram_bounds.size())
        reg.histogram_bounds.resize(_id + 1);
    if (reg.histogram_bounds[_id].empty())
        reg.histogram_bounds[_id] = std::move(bounds);
    _bounds = reg.histogram_bounds[_id];
}

void
Histogram::record(double value) const
{
    if (!metricsEnabled())
        return;
    const std::vector<double>* bounds = &_bounds;
    std::size_t bucket = bounds->size(); // overflow bucket
    for (std::size_t i = 0; i < bounds->size(); ++i) {
        if (value <= (*bounds)[i]) {
            bucket = i;
            break;
        }
    }
    MetricShard& shard = localShard();
    shard.hist_counts[_id * (kMaxBuckets + 1) + bucket].fetch_add(
        1, std::memory_order_relaxed);
    shard.hist_n[_id].fetch_add(1, std::memory_order_relaxed);
    // Single writer per shard: plain load-add-store on the atomic is
    // lossless here and keeps the concurrent snapshot read race-free.
    std::atomic<double>& sum = shard.hist_sum[_id];
    sum.store(sum.load(std::memory_order_relaxed) + value,
              std::memory_order_relaxed);
}

ScopedTimer::ScopedTimer(const Histogram& histogram)
    : _histogram(histogram)
{
    if (!metricsEnabled())
        return;
    _active = true;
    _start = std::chrono::steady_clock::now();
}

ScopedTimer::~ScopedTimer()
{
    if (!_active)
        return;
    const auto elapsed = std::chrono::steady_clock::now() - _start;
    _histogram.record(
        std::chrono::duration<double, std::micro>(elapsed).count());
}

std::uint64_t
MetricsSnapshot::counterValue(const std::string& name) const
{
    for (const CounterSnapshot& counter : counters) {
        if (counter.name == name)
            return counter.value;
    }
    throw ModelError("no counter named '" + name + "' in snapshot");
}

std::string
MetricsSnapshot::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.key("counters");
    json.beginObject();
    for (const CounterSnapshot& counter : counters)
        json.field(counter.name, counter.value);
    json.endObject();
    json.key("gauges");
    json.beginObject();
    for (const GaugeSnapshot& gauge : gauges)
        json.field(gauge.name, gauge.value);
    json.endObject();
    json.key("histograms");
    json.beginObject();
    for (const HistogramSnapshot& hist : histograms) {
        json.key(hist.name);
        json.beginObject();
        json.field("count", hist.count);
        json.field("sum", hist.sum);
        json.key("bounds");
        json.beginArray();
        for (const double bound : hist.bounds)
            json.value(bound);
        json.endArray();
        json.key("counts");
        json.beginArray();
        for (const std::uint64_t count : hist.counts)
            json.value(count);
        json.endArray();
        json.endObject();
    }
    json.endObject();
    json.endObject();
    return json.str();
}

MetricsSnapshot
snapshotMetrics()
{
    MetricsSnapshot snapshot;
    MetricsRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);

    for (std::size_t id = 0; id < reg.counter_names.size(); ++id) {
        CounterSnapshot counter;
        counter.name = reg.counter_names[id];
        counter.value = 0;
        for (const auto& shard : reg.shards) {
            counter.value +=
                shard->counters[id].load(std::memory_order_relaxed);
        }
        snapshot.counters.push_back(std::move(counter));
    }
    for (std::size_t id = 0; id < reg.gauge_names.size(); ++id) {
        GaugeSnapshot gauge;
        gauge.name = reg.gauge_names[id];
        gauge.value =
            reg.gauge_cells[id].load(std::memory_order_relaxed);
        snapshot.gauges.push_back(std::move(gauge));
    }
    for (std::size_t id = 0; id < reg.histogram_names.size(); ++id) {
        HistogramSnapshot hist;
        hist.name = reg.histogram_names[id];
        hist.bounds = id < reg.histogram_bounds.size()
                          ? reg.histogram_bounds[id]
                          : std::vector<double>{};
        hist.counts.assign(hist.bounds.size() + 1, 0);
        for (const auto& shard : reg.shards) {
            for (std::size_t b = 0; b < hist.counts.size(); ++b) {
                hist.counts[b] +=
                    shard->hist_counts[id * (kMaxBuckets + 1) + b].load(
                        std::memory_order_relaxed);
            }
            hist.count +=
                shard->hist_n[id].load(std::memory_order_relaxed);
            hist.sum +=
                shard->hist_sum[id].load(std::memory_order_relaxed);
        }
        snapshot.histograms.push_back(std::move(hist));
    }

    const auto byName = [](const auto& a, const auto& b) {
        return a.name < b.name;
    };
    std::sort(snapshot.counters.begin(), snapshot.counters.end(), byName);
    std::sort(snapshot.gauges.begin(), snapshot.gauges.end(), byName);
    std::sort(snapshot.histograms.begin(), snapshot.histograms.end(),
              byName);
    return snapshot;
}

void
resetMetrics()
{
    MetricsRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mutex);
    for (auto& cell : reg.gauge_cells)
        cell.store(0.0, std::memory_order_relaxed);
    for (const auto& shard : reg.shards) {
        for (auto& slot : shard->counters)
            slot.store(0, std::memory_order_relaxed);
        for (auto& slot : shard->hist_counts)
            slot.store(0, std::memory_order_relaxed);
        for (auto& slot : shard->hist_n)
            slot.store(0, std::memory_order_relaxed);
        for (auto& slot : shard->hist_sum)
            slot.store(0.0, std::memory_order_relaxed);
    }
}

void
writeMetrics(const std::string& path)
{
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
    }
    std::ofstream out(path, std::ios::trunc);
    TTMCAS_REQUIRE(out.good(), "cannot open metrics file '" + path +
                                   "' for writing");
    out << snapshotMetrics().toJson() << '\n';
    TTMCAS_REQUIRE(out.good(),
                   "failed writing metrics file '" + path + "'");
}

} // namespace ttmcas::obs
