#include "support/retry.hh"

#include <chrono>
#include <cmath>
#include <thread>

#include "support/error.hh"
#include "support/metrics.hh"

namespace ttmcas {

namespace {

/**
 * splitmix64 finalizer (Vigna). support/ cannot depend on stats/Rng,
 * so the jitter hash lives here; it matches the stats-layer stream
 * splitter bit-for-bit by construction but shares no code.
 */
std::uint64_t
splitmix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Uniform double in [0, 1) from the top 53 bits of @p bits. */
double
unitDouble(std::uint64_t bits)
{
    return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

} // namespace

double
RetryPolicy::delayMs(std::uint32_t attempt, std::size_t site) const
{
    TTMCAS_REQUIRE(base_ms >= 0.0, "retry base_ms must be >= 0");
    TTMCAS_REQUIRE(multiplier >= 1.0, "retry multiplier must be >= 1");
    TTMCAS_REQUIRE(jitter_fraction >= 0.0 && jitter_fraction <= 1.0,
                   "retry jitter_fraction must be in [0, 1]");
    const double nominal =
        base_ms * std::pow(multiplier, static_cast<double>(attempt));
    if (jitter_fraction == 0.0)
        return nominal;
    // Factor in [1 - j, 1 + j], a pure function of (seed, site, attempt).
    const std::uint64_t bits = splitmix64(
        splitmix64(seed ^ static_cast<std::uint64_t>(site)) ^
        static_cast<std::uint64_t>(attempt));
    const double factor =
        1.0 + jitter_fraction * (2.0 * unitDouble(bits) - 1.0);
    return nominal * factor;
}

void
RetryPolicy::backoff(std::uint32_t attempt, std::size_t site) const
{
    const double delay = delayMs(attempt, site);
    if (delay <= 0.0)
        return;
    std::this_thread::sleep_for(std::chrono::duration<double, std::milli>(delay));
}

void
recordRetryMetrics(const RetryStats& stats)
{
    static const obs::Counter attempts("retry.attempts");
    static const obs::Counter recovered("retry.recovered");
    static const obs::Counter exhausted("retry.exhausted");
    attempts.add(stats.extra_attempts);
    recovered.add(stats.recovered_points);
    exhausted.add(stats.exhausted_points);
}

} // namespace ttmcas
