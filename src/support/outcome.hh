#ifndef TTMCAS_SUPPORT_OUTCOME_HH
#define TTMCAS_SUPPORT_OUTCOME_HH

/**
 * @file
 * Failure-isolation layer for batch evaluation.
 *
 * The paper's workflow sweeps thousands of scenario/design points
 * (Monte-Carlo uncertainty propagation, Saltelli/Sobol sensitivity,
 * design-space sweeps). One pathological point — a NaN from an extreme
 * perturbation, a die that fits no wafer, an out-of-production node —
 * must not abort the whole run. The types here let every batch kernel
 * evaluate each point into an Outcome<T> (value or structured
 * Diagnostic), continue past failures under a FailurePolicy, and hand
 * the caller a FailureReport that is bitwise-identical for any thread
 * count:
 *
 *  - Diagnostic: structured failure record (code, message, source
 *    location of the failed check, point index within the batch).
 *  - NumericError: exception carrying a Diagnostic; thrown by the
 *    finiteOr() guards at model outputs so NaN/Inf stop at a named
 *    check instead of silently poisoning downstream reductions.
 *    Derives from ModelError, so existing catch sites keep working.
 *  - Outcome<T>: value-or-Diagnostic result of one point evaluation.
 *  - FailurePolicy: abort (legacy first-throw) vs. skip_and_record,
 *    with a max_failure_fraction circuit breaker.
 *  - FailureReport: counts by code plus the first-N detailed records,
 *    built by a *serial* pass over per-point outcome slots in index
 *    order — the parallel path therefore produces exactly the serial
 *    report (same contract as PR 1's index-ordered reductions).
 */

#include <array>
#include <cmath>
#include <cstddef>
#include <source_location>
#include <string>
#include <variant>
#include <vector>

#include "support/error.hh"

namespace ttmcas {

/** point_index value of a Diagnostic raised outside any batch. */
inline constexpr std::size_t kNoPointIndex =
    static_cast<std::size_t>(-1);

/** Machine-readable failure category of a Diagnostic. */
enum class DiagCode : std::uint8_t
{
    InvalidInput = 0,   ///< ModelError: caller-supplied bad config
    InternalFault = 1,  ///< InternalError: a ttmcas invariant broke
    NonFiniteTtm = 2,   ///< TTM evaluation produced NaN/Inf
    NonFiniteCas = 3,   ///< CAS evaluation produced NaN/Inf
    NonFiniteCost = 4,  ///< cost evaluation produced NaN/Inf
    NonFiniteYield = 5, ///< yield model produced NaN/Inf
    NonFiniteOutput = 6,///< kernel-boundary non-finite result
    InjectedFault = 7,  ///< deterministic fault-injection harness
    Unknown = 8,        ///< any other std::exception
    Cancelled = 9,      ///< run stopped by explicit cancellation
    DeadlineExceeded = 10, ///< run stopped by a wall-clock deadline
};

/** Number of DiagCode values (FailureReport count-array size). */
inline constexpr std::size_t kDiagCodeCount = 11;

/** Stable display name of a code ("invalid-input", "injected-fault"). */
const char* diagCodeName(DiagCode code);

/** Structured record of one failed evaluation. */
struct Diagnostic
{
    /** Machine-readable failure category. */
    DiagCode code = DiagCode::Unknown;
    /** Human-readable failure message (deterministic per point). */
    std::string message;
    /** Source file of the failed check; empty when unknown. */
    std::string file;
    /** Source line of the failed check; 0 when unknown. */
    int line = 0;
    /** Index of the failed point within its batch. */
    std::size_t point_index = kNoPointIndex;

    /** "file:line", or "?" when the location is unknown. */
    std::string locate() const;

    /** One-line rendering: "[code] point N: message (file:line)". */
    std::string describe() const;

    /** Field-wise equality (used by determinism tests). */
    bool operator==(const Diagnostic& other) const = default;
};

/**
 * Exception carrying a structured Diagnostic.
 *
 * Derives from ModelError: a non-finite model output is ultimately an
 * input problem (an extreme perturbation drove the model out of its
 * domain), and deriving keeps every existing catch (ModelError&) site
 * — portfolio seeding, CLI error paths — working unchanged.
 */
class NumericError : public ModelError
{
  public:
    /** Wrap @p diagnostic; what() renders diagnostic.describe(). */
    explicit NumericError(Diagnostic diagnostic);

    /** The structured failure record this exception carries. */
    const Diagnostic& diagnostic() const { return _diagnostic; }

  private:
    Diagnostic _diagnostic;
};

/**
 * Guard a model output: returns @p value unchanged when finite, throws
 * NumericError tagged with @p code (and the call site) otherwise. Used
 * at the outputs of TTM, CAS, cost, and yield evaluation so NaN/Inf
 * become diagnostics instead of silent poison.
 */
double finiteOr(double value, DiagCode code, const std::string& context,
                std::source_location location =
                    std::source_location::current());

/** What a batch kernel does when a point evaluation fails. */
struct FailurePolicy
{
    /** The two failure-handling modes. */
    enum class Mode : std::uint8_t
    {
        /** Rethrow the lowest-index failure (legacy behavior). */
        Abort,
        /** Skip the point, record its Diagnostic, keep going. */
        SkipAndRecord,
    };

    /** Active failure handling mode (Abort by default). */
    Mode mode = Mode::Abort;

    /**
     * Circuit breaker for SkipAndRecord: when more than this fraction
     * of the batch fails, the kernel aborts anyway (a mostly-failing
     * sweep indicates a broken configuration, not a few bad points).
     */
    double max_failure_fraction = 1.0;

    /** True under SkipAndRecord (failed points are skipped). */
    bool skips() const { return mode == Mode::SkipAndRecord; }

    /** The legacy first-throw policy (the default). */
    static FailurePolicy abort() { return FailurePolicy{}; }

    /** Skip-and-record with an optional circuit-breaker fraction. */
    static FailurePolicy skipAndRecord(double max_fraction = 1.0)
    {
        return FailurePolicy{Mode::SkipAndRecord, max_fraction};
    }
};

/**
 * Aggregated failures of one batch run.
 *
 * Determinism contract: kernels write per-point Outcome slots (possibly
 * in parallel) and then build the report with a serial pass in point-
 * index order, so counts, detailed-record selection, and rendering are
 * independent of thread count and scheduling.
 */
class FailureReport
{
  public:
    /** Detailed records kept (first N failures in point order). */
    static constexpr std::size_t kDefaultDetailLimit = 16;

    /** An empty report keeping kDefaultDetailLimit detailed records. */
    FailureReport() = default;
    /** An empty report keeping at most @p detail_limit records. */
    explicit FailureReport(std::size_t detail_limit)
        : _detail_limit(detail_limit)
    {}

    /** Reset to the clean state (zero points, zero failures). */
    void clear();

    /** Count one evaluated point (clean or failed). */
    void addPoint() { ++_points; }

    /** Record one failure. Call in point-index order. */
    void record(const Diagnostic& diagnostic);

    /** Total points evaluated (clean + failed). */
    std::size_t pointCount() const { return _points; }

    /** Total failed points. */
    std::size_t failureCount() const { return _failures; }

    /** True when no point has failed. */
    bool empty() const { return _failures == 0; }

    /** failures / points, 0 for an empty batch. */
    double failureFraction() const;

    /** Failure count of one code. */
    std::size_t count(DiagCode code) const
    {
        return _counts[static_cast<std::size_t>(code)];
    }

    /** First-N detailed records, ascending point index. */
    const std::vector<Diagnostic>& detailed() const { return _detailed; }

    /**
     * Deterministic multi-line rendering: headline, per-code counts in
     * enum order, then the detailed records.
     */
    std::string summary() const;

    /** Field-wise equality (used by determinism tests). */
    bool operator==(const FailureReport& other) const = default;

  private:
    std::size_t _points = 0;
    std::size_t _failures = 0;
    std::array<std::size_t, kDiagCodeCount> _counts{};
    std::vector<Diagnostic> _detailed;
    std::size_t _detail_limit = kDefaultDetailLimit;
};

/** Value-or-Diagnostic result of one point evaluation. */
template <typename T>
class Outcome
{
  public:
    /** Default: an unwritten slot reads as an Unknown failure. */
    Outcome()
        : _data(Diagnostic{DiagCode::Unknown, "point was never evaluated",
                           "", 0, kNoPointIndex})
    {}

    /** A successful outcome holding @p value. */
    static Outcome success(T value)
    {
        Outcome outcome;
        outcome._data = std::move(value);
        return outcome;
    }

    /** A failed outcome holding @p diagnostic. */
    static Outcome failure(Diagnostic diagnostic)
    {
        Outcome outcome;
        outcome._data = std::move(diagnostic);
        return outcome;
    }

    /** True when the evaluation succeeded (a value is held). */
    bool ok() const { return std::holds_alternative<T>(_data); }

    /**
     * True when this slot still holds the default-constructed "point
     * was never evaluated" state — i.e. no success, failure, or resume
     * restore was ever written to it. A cancelled parallel loop leaves
     * exactly these slots behind; markUnevaluated() (support/cancel.hh)
     * converts them to structured Cancelled/DeadlineExceeded records.
     */
    bool unevaluated() const
    {
        return !ok() &&
               std::get<Diagnostic>(_data).point_index == kNoPointIndex &&
               std::get<Diagnostic>(_data).code == DiagCode::Unknown;
    }
    /** Same as ok(): `if (outcome)` tests for success. */
    explicit operator bool() const { return ok(); }

    /** The value; throws the held Diagnostic as NumericError if failed. */
    const T& value() const
    {
        if (!ok())
            throw NumericError(std::get<Diagnostic>(_data));
        return std::get<T>(_data);
    }

    /** The value, or @p fallback when the evaluation failed. */
    T valueOr(T fallback) const
    {
        return ok() ? std::get<T>(_data) : std::move(fallback);
    }

    /** The Diagnostic; throws InternalError on a successful outcome. */
    const Diagnostic& diagnostic() const
    {
        TTMCAS_INVARIANT(!ok(),
                         "diagnostic() called on a successful Outcome");
        return std::get<Diagnostic>(_data);
    }

  private:
    std::variant<T, Diagnostic> _data;
};

/**
 * Run one point evaluation through the isolation layer: exceptions
 * become Diagnostics tagged with @p point_index. NumericError keeps
 * its structured code/location; ModelError maps to InvalidInput,
 * InternalError to InternalFault, anything else to Unknown.
 */
template <typename Fn>
auto
guardedPoint(std::size_t point_index, Fn&& fn)
    -> Outcome<decltype(fn())>
{
    using T = decltype(fn());
    try {
        return Outcome<T>::success(fn());
    } catch (const NumericError& error) {
        Diagnostic diagnostic = error.diagnostic();
        diagnostic.point_index = point_index;
        return Outcome<T>::failure(std::move(diagnostic));
    } catch (const InternalError& error) {
        return Outcome<T>::failure(Diagnostic{
            DiagCode::InternalFault, error.what(), "", 0, point_index});
    } catch (const ModelError& error) {
        return Outcome<T>::failure(Diagnostic{
            DiagCode::InvalidInput, error.what(), "", 0, point_index});
    } catch (const std::exception& error) {
        return Outcome<T>::failure(Diagnostic{
            DiagCode::Unknown, error.what(), "", 0, point_index});
    }
}

/**
 * Serial post-pass shared by every batch kernel: walk the per-point
 * outcome slots in index order, build the FailureReport, and enforce
 * @p policy — rethrow the lowest-index failure under Abort, throw when
 * SkipAndRecord's max_failure_fraction is exceeded. When @p report is
 * non-null it receives the built report (even when this throws is not
 * guaranteed; on success it always does). @p kernel names the batch in
 * circuit-breaker messages.
 */
template <typename T>
void
enforcePolicy(const std::vector<Outcome<T>>& outcomes,
              const FailurePolicy& policy, FailureReport* report,
              const std::string& kernel)
{
    FailureReport built;
    const Diagnostic* first_failure = nullptr;
    for (const Outcome<T>& outcome : outcomes) {
        built.addPoint();
        if (!outcome.ok()) {
            built.record(outcome.diagnostic());
            if (first_failure == nullptr)
                first_failure = &outcome.diagnostic();
        }
    }
    if (report != nullptr)
        *report = built;
    if (first_failure != nullptr && !policy.skips())
        throw NumericError(*first_failure);
    if (policy.skips() &&
        built.failureFraction() > policy.max_failure_fraction) {
        Diagnostic diagnostic;
        diagnostic.code = DiagCode::InvalidInput;
        diagnostic.message =
            kernel + ": " + std::to_string(built.failureCount()) + " of " +
            std::to_string(built.pointCount()) +
            " points failed, exceeding max_failure_fraction";
        throw NumericError(std::move(diagnostic));
    }
}

} // namespace ttmcas

#endif // TTMCAS_SUPPORT_OUTCOME_HH
