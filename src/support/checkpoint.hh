#ifndef TTMCAS_SUPPORT_CHECKPOINT_HH
#define TTMCAS_SUPPORT_CHECKPOINT_HH

/**
 * @file
 * Atomic checkpoint/resume for batch sweeps.
 *
 * A sweep killed by a deadline or SIGINT should not recompute what it
 * already finished. SweepCheckpoint captures completed per-point
 * scalar results as they are recorded and persists them as a JSON
 * document via the support/json layer; a resumed run loads the file,
 * verifies the binding (kernel name, seed, point count), restores the
 * completed points without re-evaluating them, and recomputes only
 * the rest.
 *
 * Two properties carry the whole design:
 *
 *  - Bitwise exactness. JSON numbers are doubles in this parser, so a
 *    decimal rendering could silently round. Point values are instead
 *    stored as 16-hex-digit IEEE-754 bit patterns ("3fe5551d68c692bb")
 *    and bit-cast back on load: a resumed run's restored values are
 *    the *identical* doubles the interrupted run computed, which is
 *    what makes kill-and-resume output bitwise equal to an
 *    uninterrupted run (per-point RNG streams make the recomputed
 *    remainder equal too).
 *
 *  - Atomic persistence. writeAtomic() writes a temp file next to the
 *    target and std::filesystem::rename()s it into place — POSIX
 *    rename is atomic within a filesystem, so a reader (or a resumed
 *    run after a mid-write kill) sees either the previous complete
 *    checkpoint or the new complete checkpoint, never a torn file.
 *
 * Thread safety: record()/has()/value() take an internal mutex, so
 * parallel workers may record concurrently; the underlying map is
 * ordered by point index, so the serialized document is deterministic
 * for any recording order.
 */

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace ttmcas {

/** Completed-point store for one batch sweep, persistable as JSON. */
class SweepCheckpoint
{
  public:
    SweepCheckpoint() = default;

    /** Move-construct (the moved-from object must be otherwise idle). */
    SweepCheckpoint(SweepCheckpoint&& other) noexcept;

    SweepCheckpoint(const SweepCheckpoint&) = delete;
    SweepCheckpoint& operator=(const SweepCheckpoint&) = delete;
    SweepCheckpoint& operator=(SweepCheckpoint&&) = delete;

    /**
     * Bind this checkpoint to one specific sweep: @p kernel (e.g.
     * "drawSamples"), the run @p seed, and the sweep's @p total_points.
     * A kernel binds the checkpoint it is handed; binding twice with
     * different values throws ModelError (the checkpoint belongs to a
     * different run), binding twice identically is a no-op.
     */
    void bind(const std::string& kernel, std::uint64_t seed,
              std::size_t total_points);

    /**
     * Throw ModelError unless this checkpoint is bound to exactly
     * (@p kernel, @p seed, @p total_points) — the resume-safety check
     * that stops a Monte-Carlo checkpoint from seeding a Sobol run.
     */
    void requireMatches(const std::string& kernel, std::uint64_t seed,
                        std::size_t total_points) const;

    /** True once bind() has been called (or a file was loaded). */
    bool bound() const { return !_kernel.empty(); }

    /** The bound kernel name; empty when unbound. */
    const std::string& kernel() const { return _kernel; }
    /** The bound run seed. */
    std::uint64_t seed() const { return _seed; }
    /** The bound sweep size in points. */
    std::size_t totalPoints() const { return _total_points; }

    /** Record the completed value of @p point. Thread-safe. */
    void record(std::size_t point, double value);

    /** True when @p point has a recorded value. Thread-safe. */
    bool has(std::size_t point) const;

    /**
     * The recorded value of @p point (bit-exact); throws ModelError
     * when absent. Thread-safe.
     */
    double value(std::size_t point) const;

    /** Number of completed points recorded so far. Thread-safe. */
    std::size_t completedCount() const;

    /** Lineage: path of the checkpoint this run resumed from. */
    const std::string& parent() const { return _parent; }
    /** Set the lineage parent path (recorded in the manifest). */
    void setParent(std::string path) { _parent = std::move(path); }

    /**
     * Serialize to a JSON document: binding, lineage, and completed
     * points as {"index": N, "bits": "16-hex-digit"} records in
     * ascending index order (deterministic for any recording order).
     */
    std::string toJson() const;

    /** Parse a toJson() document; throws ModelError on any mismatch. */
    static SweepCheckpoint fromJson(const std::string& text);

    /**
     * Persist toJson() atomically: write "@p path.tmp", flush, then
     * rename over @p path. Throws ModelError when the file cannot be
     * written. Thread-safe (serialized internally).
     */
    void writeAtomic(const std::string& path) const;

    /** Load a checkpoint file; throws ModelError when unreadable. */
    static SweepCheckpoint load(const std::string& path);

    /**
     * Arm periodic persistence: every @p every_points record() calls,
     * writeAtomic(@p path). every_points must be >= 1. The final flush
     * is still the caller's job (a kernel flushes once after its loop).
     */
    void enableAutoFlush(std::string path, std::size_t every_points);

  private:
    std::string _kernel;
    std::uint64_t _seed = 0;
    std::size_t _total_points = 0;
    std::string _parent;

    mutable std::mutex _mutex;
    /** point index -> IEEE-754 bit pattern (ordered => stable JSON). */
    std::map<std::size_t, std::uint64_t> _points;

    std::string _autoflush_path;
    std::size_t _autoflush_every = 0;
    std::size_t _records_since_flush = 0;

    /** toJson() body; caller holds _mutex. */
    std::string toJsonLocked() const;

    /** writeAtomic() body; caller holds _mutex. */
    void writeAtomicLocked(const std::string& path) const;
};

} // namespace ttmcas

#endif // TTMCAS_SUPPORT_CHECKPOINT_HH
