#ifndef TTMCAS_SUPPORT_CANCEL_HH
#define TTMCAS_SUPPORT_CANCEL_HH

/**
 * @file
 * Cooperative cancellation and wall-clock deadlines for batch kernels.
 *
 * Production schedulers kill, preempt, and time-box exactly the jobs
 * this library runs (10k-sample Monte-Carlo draws, Saltelli/Sobol
 * sweeps, portfolio planning). A CancellationToken lets such a run
 * stop *cleanly*: the batch kernels and ThreadPool::parallelFor check
 * the token cooperatively at chunk granularity, stop claiming new
 * work once it fires, and mark every unevaluated point with a
 * structured Diagnostic (DiagCode::Cancelled or DeadlineExceeded) so
 * the caller receives a partial-but-well-formed result plus a
 * FailureReport instead of a crash, a hang, or silent truncation.
 *
 * The token fires for two reasons, tracked separately:
 *
 *  - requestCancel(): an explicit external stop — SIGINT via
 *    ScopedSigintCancel, a scheduler preemption notice, a caller's
 *    early exit. Reported as DiagCode::Cancelled.
 *  - a deadline set with setDeadlineAfter()/setDeadline(): a
 *    wall-clock budget. Reported as DiagCode::DeadlineExceeded.
 *
 * Determinism: *which* points complete before the token fires is
 * inherently timing-dependent, but every completed point's value is
 * not (per-point RNG streams, index-addressed slots). That is what
 * makes checkpoint/resume (support/checkpoint.hh) bitwise exact: a
 * resumed run restores the completed subset and recomputes the rest,
 * landing on the identical final result.
 */

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "support/outcome.hh"

namespace ttmcas {

/**
 * Thread-safe, signal-safe cooperative stop flag with an optional
 * wall-clock deadline.
 *
 * Readers (worker threads inside parallel loops) call stopRequested()
 * freely; requestCancel() may be called from any thread and — because
 * it is a single lock-free atomic store — from a signal handler.
 */
class CancellationToken
{
  public:
    CancellationToken() = default;

    CancellationToken(const CancellationToken&) = delete;
    CancellationToken& operator=(const CancellationToken&) = delete;

    /** Request an explicit stop. Signal-safe, idempotent. */
    void requestCancel() noexcept
    {
        _cancelled.store(true, std::memory_order_relaxed);
    }

    /** True once requestCancel() has been called. */
    bool cancelRequested() const noexcept
    {
        return _cancelled.load(std::memory_order_relaxed);
    }

    /** Arm a wall-clock deadline @p seconds from now (>= 0). */
    void setDeadlineAfter(double seconds);

    /**
     * Arm an absolute steady_clock deadline. Re-arming an already
     * expired token does not un-expire it (the stop state is monotone
     * for the lifetime of a run); use reset() to disarm fully.
     */
    void setDeadline(std::chrono::steady_clock::time_point deadline);

    /** True when a deadline has been armed. */
    bool hasDeadline() const noexcept
    {
        return _deadline_ns.load(std::memory_order_relaxed) != kNoDeadline;
    }

    /**
     * True once the armed deadline has passed. Latches: after the
     * first expired observation the clock is no longer read.
     */
    bool deadlineExpired() const noexcept;

    /** True when the run should stop (cancel or deadline). */
    bool stopRequested() const noexcept
    {
        return cancelRequested() || deadlineExpired();
    }

    /**
     * Why the run stopped: Cancelled for an explicit request,
     * DeadlineExceeded otherwise. Only meaningful once
     * stopRequested() is true; explicit cancellation wins when both
     * fired.
     */
    DiagCode stopCode() const noexcept
    {
        return cancelRequested() ? DiagCode::Cancelled
                                 : DiagCode::DeadlineExceeded;
    }

    /**
     * Structured record for a point the stop prevented from being
     * evaluated: stopCode(), a deterministic message naming
     * @p kernel, and @p point as the point index.
     */
    Diagnostic stopDiagnostic(std::size_t point,
                              const char* kernel) const;

    /** Disarm: clear the cancel flag and any deadline. */
    void reset() noexcept;

  private:
    static constexpr std::int64_t kNoDeadline = -1;

    std::atomic<bool> _cancelled{false};
    /** Latched "deadline observed expired" flag (avoid clock reads). */
    mutable std::atomic<bool> _expired{false};
    /** Deadline as steady_clock nanoseconds-since-epoch; -1 = none. */
    std::atomic<std::int64_t> _deadline_ns{kNoDeadline};
};

/**
 * RAII stop-signal-to-token bridge: while alive, SIGINT (Ctrl-C) and
 * SIGTERM (the signal daemon supervisors send first) request
 * cancellation on @p token instead of killing the process; the
 * previous handlers are restored on destruction. At most one instance
 * may be alive at a time (enforced). The handler performs only a
 * lock-free atomic store, so it is async-signal-safe for both
 * signals.
 */
class ScopedSigintCancel
{
  public:
    explicit ScopedSigintCancel(CancellationToken& token);
    ~ScopedSigintCancel();

    ScopedSigintCancel(const ScopedSigintCancel&) = delete;
    ScopedSigintCancel& operator=(const ScopedSigintCancel&) = delete;

  private:
    void (*_previous_int)(int) = nullptr;
    void (*_previous_term)(int) = nullptr;
};

/**
 * Serial post-pass shared by the batch kernels: every outcome slot the
 * stopped loop never wrote (Outcome's default "never evaluated" state)
 * becomes a failure carrying token.stopDiagnostic(i, kernel). Returns
 * the number of slots marked. Call after the parallel loop, before
 * enforcePolicy(), and only when token.stopRequested().
 */
template <typename T>
std::size_t
markUnevaluated(std::vector<Outcome<T>>& outcomes,
                const CancellationToken& token, const char* kernel)
{
    std::size_t marked = 0;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
        if (!outcomes[i].unevaluated())
            continue;
        outcomes[i] =
            Outcome<T>::failure(token.stopDiagnostic(i, kernel));
        ++marked;
    }
    return marked;
}

} // namespace ttmcas

#endif // TTMCAS_SUPPORT_CANCEL_HH
