#ifndef TTMCAS_SUPPORT_STRUTIL_HH
#define TTMCAS_SUPPORT_STRUTIL_HH

/**
 * @file
 * String formatting helpers used by the report layer and benches.
 */

#include <string>
#include <vector>

namespace ttmcas {

/** Format with fixed decimal places, e.g. formatFixed(3.14159, 2) = "3.14". */
std::string formatFixed(double value, int decimals);

/**
 * Format a count with an SI-style suffix the way the paper labels axes:
 * 1000 -> "1K", 10'000'000 -> "10M", 1'500'000'000 -> "1.5B".
 */
std::string formatSi(double value, int decimals = 1);

/** Format dollars compactly: 6.8e6 -> "$6.8M", 2.1e9 -> "$2.10B". */
std::string formatDollars(double dollars, int decimals = 2);

/** Group digits with commas: 1234567 -> "1,234,567". */
std::string formatGrouped(long long value);

/** Left/right pad @p text with spaces to @p width (no-op when longer). */
std::string padLeft(const std::string& text, std::size_t width);
std::string padRight(const std::string& text, std::size_t width);

/** Join the pieces with @p separator. */
std::string join(const std::vector<std::string>& pieces,
                 const std::string& separator);

/** Lower-case ASCII copy. */
std::string toLower(std::string text);

/** True when @p text starts with @p prefix. */
bool startsWith(const std::string& text, const std::string& prefix);

} // namespace ttmcas

#endif // TTMCAS_SUPPORT_STRUTIL_HH
