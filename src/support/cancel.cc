#include "support/cancel.hh"

#include <csignal>

#include "support/error.hh"

namespace ttmcas {

namespace {

std::int64_t
toNanos(std::chrono::steady_clock::time_point when)
{
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               when.time_since_epoch())
        .count();
}

/** The token the active ScopedSigintCancel forwards stop signals to. */
std::atomic<CancellationToken*> g_sigint_token{nullptr};

extern "C" void
sigintToToken(int)
{
    // Only lock-free atomic operations: async-signal-safe. Shared by
    // SIGINT and SIGTERM — both mean "stop cleanly".
    CancellationToken* token =
        g_sigint_token.load(std::memory_order_relaxed);
    if (token != nullptr)
        token->requestCancel();
}

} // namespace

void
CancellationToken::setDeadlineAfter(double seconds)
{
    TTMCAS_REQUIRE(seconds >= 0.0, "deadline must be >= 0 seconds");
    setDeadline(std::chrono::steady_clock::now() +
                std::chrono::duration_cast<
                    std::chrono::steady_clock::duration>(
                    std::chrono::duration<double>(seconds)));
}

void
CancellationToken::setDeadline(std::chrono::steady_clock::time_point deadline)
{
    // Deliberately leaves _expired alone: once a deadline has fired,
    // re-arming must not flip stopRequested() back to false — kernels
    // rely on the stop state being monotone for the lifetime of a run.
    // reset() is the only way to disarm an expired token.
    _deadline_ns.store(toNanos(deadline), std::memory_order_relaxed);
}

bool
CancellationToken::deadlineExpired() const noexcept
{
    const std::int64_t deadline =
        _deadline_ns.load(std::memory_order_relaxed);
    if (deadline == kNoDeadline)
        return false;
    if (_expired.load(std::memory_order_relaxed))
        return true;
    if (toNanos(std::chrono::steady_clock::now()) >= deadline) {
        _expired.store(true, std::memory_order_relaxed);
        return true;
    }
    return false;
}

Diagnostic
CancellationToken::stopDiagnostic(std::size_t point,
                                  const char* kernel) const
{
    Diagnostic diagnostic;
    diagnostic.code = stopCode();
    diagnostic.message =
        std::string(kernel) +
        (diagnostic.code == DiagCode::Cancelled
             ? ": evaluation cancelled before this point"
             : ": deadline exceeded before this point");
    diagnostic.point_index = point;
    return diagnostic;
}

void
CancellationToken::reset() noexcept
{
    _cancelled.store(false, std::memory_order_relaxed);
    _expired.store(false, std::memory_order_relaxed);
    _deadline_ns.store(kNoDeadline, std::memory_order_relaxed);
}

ScopedSigintCancel::ScopedSigintCancel(CancellationToken& token)
{
    CancellationToken* expected = nullptr;
    TTMCAS_REQUIRE(g_sigint_token.compare_exchange_strong(
                       expected, &token, std::memory_order_relaxed),
                   "only one ScopedSigintCancel may be active at a time");
    _previous_int = std::signal(SIGINT, sigintToToken);
    if (_previous_int == SIG_ERR) {
        g_sigint_token.store(nullptr, std::memory_order_relaxed);
        TTMCAS_REQUIRE(false, "cannot install SIGINT handler");
    }
    // Daemon stops are SIGTERM-first: latch it onto the same token so
    // a supervisor-initiated shutdown drains exactly like Ctrl-C.
    _previous_term = std::signal(SIGTERM, sigintToToken);
    if (_previous_term == SIG_ERR) {
        std::signal(SIGINT, _previous_int);
        g_sigint_token.store(nullptr, std::memory_order_relaxed);
        TTMCAS_REQUIRE(false, "cannot install SIGTERM handler");
    }
}

ScopedSigintCancel::~ScopedSigintCancel()
{
    std::signal(SIGINT, _previous_int);
    std::signal(SIGTERM, _previous_term);
    g_sigint_token.store(nullptr, std::memory_order_relaxed);
}

} // namespace ttmcas
