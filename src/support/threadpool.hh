#ifndef TTMCAS_SUPPORT_THREADPOOL_HH
#define TTMCAS_SUPPORT_THREADPOOL_HH

/**
 * @file
 * Concurrency layer: a fixed-size thread pool and deterministic
 * data-parallel loop helpers.
 *
 * Every hot loop in the library (Monte-Carlo uncertainty propagation,
 * Saltelli/Sobol model evaluation, bootstrap resampling, design-space
 * sweeps) is embarrassingly parallel: independent model evaluations
 * whose results land in disjoint output slots. The helpers here
 * distribute such loops over a pool of std::thread workers while
 * keeping results *bitwise identical* to the serial path:
 *
 *  - parallelFor(config, n, body) chunks [0, n) into contiguous
 *    ranges of config.grain items and runs them on config.threads
 *    workers. The body must only write state owned by the indices it
 *    is given (e.g. out[i] for i in [begin, end)), so scheduling
 *    order cannot change the result.
 *  - Any randomness must come from per-item (or per-fixed-chunk) RNG
 *    streams split off a parent deterministically *before* the loop
 *    (Rng::split()), never from one shared generator, so the drawn
 *    values do not depend on thread count or execution order.
 *  - Reductions (sums, argmax, percentiles) are performed serially on
 *    the collected per-item buffers, in index order, so floating-point
 *    association is fixed.
 *
 * Grain-size guidance: one "item" in these loops is a full model
 * evaluation (microseconds to milliseconds), so the default grain of
 * 16 amortizes queue traffic without starving workers; raise it for
 * very cheap bodies, or set it to 1 for very expensive ones.
 */

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ttmcas {

class CancellationToken;

/**
 * Parallelism knob threaded through UncertaintyAnalysis::Options,
 * SobolOptions, and the optimizers' option structs.
 */
struct ParallelConfig
{
    /** Worker count; 0 = std::thread::hardware_concurrency(). */
    std::size_t threads = 0;
    /** Items per work chunk (see grain-size guidance above). */
    std::size_t grain = 16;

    /** The actual worker count (resolves the 0 = "all cores" default). */
    std::size_t resolvedThreads() const;

    /** True when the loop should run inline on the caller. */
    bool isSerial() const { return resolvedThreads() <= 1; }

    /** Force the serial path (the old single-core behavior). */
    static ParallelConfig serial() { return ParallelConfig{1, 16}; }
};

/**
 * Fixed-size worker pool (std::thread + condition_variable queue).
 *
 * Tasks submitted with submit() run on the workers; wait() blocks the
 * caller until every submitted task (including tasks submitted *by*
 * tasks) has finished, and rethrows the first exception any task
 * threw. Destruction drains the queue and joins the workers.
 */
class ThreadPool
{
  public:
    /** Spawn exactly @p threads workers (>= 1). */
    explicit ThreadPool(std::size_t threads);
    /** Drain the queue and join all workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;            ///< non-copyable
    ThreadPool& operator=(const ThreadPool&) = delete; ///< non-copyable

    /** Worker count (fixed for the pool's lifetime). */
    std::size_t threadCount() const { return _workers.size(); }

    /**
     * Enqueue @p task. Safe to call from within a running task
     * (nested submission); never blocks on task execution.
     */
    void submit(std::function<void()> task);

    /**
     * Block until all submitted tasks have completed, then rethrow
     * the first captured task exception, if any. Must not be called
     * from inside a task (a worker waiting on its own pool would
     * deadlock the last free worker).
     */
    void wait();

    /**
     * Run @p body over [0, n) in contiguous chunks of @p grain items
     * distributed over the workers; blocks until the range is done.
     * The body must be safe to run concurrently on disjoint ranges.
     * When chunks throw, rethrows the exception from the *lowest*
     * chunk index — deterministic for any worker count, matching the
     * first exception the serial path would raise. Chunks above a
     * failed chunk are skipped (best effort), never half-run; chunks
     * below it still run so the lowest failure is always found.
     *
     * When @p cancel is non-null the token is checked once per chunk:
     * after it fires, workers stop claiming chunks and return, so the
     * loop completes with some chunks never run (their output slots
     * stay untouched — the kernels' markUnevaluated() post-pass turns
     * them into structured Cancelled/DeadlineExceeded records). A
     * chunk already executing is never interrupted mid-body, so every
     * slot is either fully written or fully untouched.
     */
    void parallelFor(std::size_t n, std::size_t grain,
                     const std::function<void(std::size_t, std::size_t)>&
                         body,
                     const CancellationToken* cancel = nullptr);

  private:
    void workerLoop();

    std::vector<std::thread> _workers;
    std::deque<std::function<void()>> _queue;
    std::mutex _mutex;
    std::condition_variable _task_ready;
    std::condition_variable _all_done;
    std::size_t _pending = 0;
    std::exception_ptr _first_exception;
    bool _stop = false;
};

/**
 * One-shot deterministic parallel loop: runs @p body over [0, n) on a
 * transient pool sized per @p config, or inline when the config is
 * serial (or the range fits a single chunk). See the file comment for
 * the determinism contract the body must obey. @p cancel, when
 * non-null, is honored at chunk granularity on both the pooled and
 * the inline path (ThreadPool::parallelFor documents the semantics).
 */
void parallelFor(const ParallelConfig& config, std::size_t n,
                 const std::function<void(std::size_t, std::size_t)>& body,
                 const CancellationToken* cancel = nullptr);

/**
 * Deterministic parallel map: out[i] = fn(i) for i in [0, n), with
 * the same scheduling, determinism, and cancellation rules as
 * parallelFor. T must be default-constructible; slots of chunks the
 * token stopped keep their default-constructed value.
 */
template <typename T, typename Fn>
std::vector<T>
parallelMap(const ParallelConfig& config, std::size_t n, Fn&& fn,
            const CancellationToken* cancel = nullptr)
{
    std::vector<T> out(n);
    parallelFor(config, n,
                [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i)
                        out[i] = fn(i);
                },
                cancel);
    return out;
}

} // namespace ttmcas

#endif // TTMCAS_SUPPORT_THREADPOOL_HH
