#ifndef TTMCAS_SUPPORT_ERROR_HH
#define TTMCAS_SUPPORT_ERROR_HH

/**
 * @file
 * Error handling for the ttmcas library.
 *
 * Following the gem5 fatal()/panic() distinction:
 *  - ModelError   : the caller supplied an invalid configuration or
 *                   parameter (user error; recoverable by fixing inputs).
 *  - InternalError: an invariant of the library itself was violated
 *                   (library bug; never the caller's fault).
 *
 * Both carry the source location of the failure so that diagnostics from
 * deep inside a sweep identify the offending check directly.
 */

#include <stdexcept>
#include <string>

namespace ttmcas {

/** Base class for all exceptions thrown by ttmcas. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& what_arg)
        : std::runtime_error(what_arg)
    {}
};

/**
 * Invalid user-provided configuration or parameter value.
 *
 * Thrown by validation code when the model cannot proceed because of the
 * caller's inputs (e.g. negative die area, unknown process node).
 */
class ModelError : public Error
{
  public:
    explicit ModelError(const std::string& what_arg) : Error(what_arg) {}
};

/** Violation of a library-internal invariant (a ttmcas bug). */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string& what_arg) : Error(what_arg) {}
};

namespace detail {

/** Build a "file:line: check failed" message and throw ModelError. */
[[noreturn]] void throwModelError(const char* file, int line,
                                  const char* expr,
                                  const std::string& message);

/** Build a "file:line: invariant failed" message and throw InternalError. */
[[noreturn]] void throwInternalError(const char* file, int line,
                                     const char* expr,
                                     const std::string& message);

} // namespace detail
} // namespace ttmcas

/**
 * Validate a user-facing precondition; throws ttmcas::ModelError with the
 * failing expression, location, and an explanatory message on failure.
 */
#define TTMCAS_REQUIRE(expr, message)                                        \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::ttmcas::detail::throwModelError(__FILE__, __LINE__, #expr,     \
                                              (message));                   \
        }                                                                    \
    } while (false)

/**
 * Check a library-internal invariant; throws ttmcas::InternalError on
 * failure. Use for conditions that indicate a ttmcas bug, never bad input.
 */
#define TTMCAS_INVARIANT(expr, message)                                      \
    do {                                                                     \
        if (!(expr)) {                                                       \
            ::ttmcas::detail::throwInternalError(__FILE__, __LINE__, #expr,  \
                                                 (message));                 \
        }                                                                    \
    } while (false)

#endif // TTMCAS_SUPPORT_ERROR_HH
