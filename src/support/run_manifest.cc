#include "support/run_manifest.hh"

#include <filesystem>
#include <fstream>

#include "support/json.hh"
#include "support/metrics.hh"

#ifndef TTMCAS_GIT_HASH
#define TTMCAS_GIT_HASH "unknown"
#endif

namespace ttmcas::obs {

std::string
buildGitHash()
{
    return TTMCAS_GIT_HASH;
}

void
RunManifest::setPolicy(const FailurePolicy& policy)
{
    failure_policy = policy.skips() ? "skip_and_record" : "abort";
    max_failure_fraction = policy.max_failure_fraction;
}

void
RunManifest::addKernel(KernelTiming timing)
{
    total_points += timing.points;
    total_failures += timing.failures;
    kernels.push_back(std::move(timing));
}

void
RunManifest::addFailureReport(const FailureReport& report)
{
    for (std::size_t i = 0; i < kDiagCodeCount; ++i) {
        const auto code = static_cast<DiagCode>(i);
        const std::size_t count = report.count(code);
        if (count == 0)
            continue;
        const std::string name = diagCodeName(code);
        bool merged = false;
        for (auto& [existing, value] : failure_counts) {
            if (existing == name) {
                value += count;
                merged = true;
                break;
            }
        }
        if (!merged)
            failure_counts.emplace_back(name, count);
    }
}

void
RunManifest::captureKernelMetrics(const MetricsSnapshot& snapshot)
{
    for (const HistogramSnapshot& histogram : snapshot.histograms) {
        if (histogram.name == "ttm.batch.size") {
            kernel_metrics.batches = histogram.count;
            kernel_metrics.samples =
                static_cast<std::uint64_t>(histogram.sum);
        } else if (histogram.name == "ttm.batch.ns_per_sample") {
            kernel_metrics.mean_ns_per_sample =
                histogram.count == 0
                    ? 0.0
                    : histogram.sum /
                          static_cast<double>(histogram.count);
        }
    }
}

std::string
RunManifest::toJson() const
{
    JsonWriter json;
    json.beginObject();
    json.field("tool", tool);
    json.field("git_hash", git_hash);
    json.field("seed", seed);
    json.field("threads", threads);
    json.field("failure_policy", failure_policy);
    json.field("max_failure_fraction", max_failure_fraction);
    json.key("kernels");
    json.beginArray();
    for (const KernelTiming& timing : kernels) {
        json.beginObject();
        json.field("kernel", timing.kernel);
        json.field("wall_ms", timing.wall_ms);
        json.field("points", timing.points);
        json.field("failures", timing.failures);
        json.endObject();
    }
    json.endArray();
    json.field("total_points", total_points);
    json.field("total_failures", total_failures);
    json.key("failure_counts");
    json.beginObject();
    for (const auto& [name, count] : failure_counts)
        json.field(name, count);
    json.endObject();
    json.field("disposition", disposition);
    json.field("total_retries", total_retries);
    json.field("parent_checkpoint", parent_checkpoint);
    json.field("checkpoint_points", checkpoint_points);
    json.key("kernel_metrics");
    json.beginObject();
    json.field("batches", kernel_metrics.batches);
    json.field("samples", kernel_metrics.samples);
    json.field("mean_ns_per_sample", kernel_metrics.mean_ns_per_sample);
    json.endObject();
    json.endObject();
    return json.str();
}

RunManifest
RunManifest::fromJson(const std::string& text)
{
    const JsonValue root = parseJson(text);
    RunManifest manifest;
    manifest.tool = root.at("tool").asString();
    manifest.git_hash = root.at("git_hash").asString();
    manifest.seed =
        static_cast<std::uint64_t>(root.at("seed").asNumber());
    manifest.threads =
        static_cast<std::uint64_t>(root.at("threads").asNumber());
    manifest.failure_policy = root.at("failure_policy").asString();
    manifest.max_failure_fraction =
        root.at("max_failure_fraction").asNumber();
    for (const JsonValue& entry : root.at("kernels").asArray()) {
        KernelTiming timing;
        timing.kernel = entry.at("kernel").asString();
        timing.wall_ms = entry.at("wall_ms").asNumber();
        timing.points = static_cast<std::uint64_t>(
            entry.at("points").asNumber());
        timing.failures = static_cast<std::uint64_t>(
            entry.at("failures").asNumber());
        manifest.kernels.push_back(std::move(timing));
    }
    manifest.total_points = static_cast<std::uint64_t>(
        root.at("total_points").asNumber());
    manifest.total_failures = static_cast<std::uint64_t>(
        root.at("total_failures").asNumber());
    const JsonValue& counts = root.at("failure_counts");
    for (const std::string& name : counts.keys()) {
        manifest.failure_counts.emplace_back(
            name,
            static_cast<std::uint64_t>(counts.at(name).asNumber()));
    }
    // Resilience fields arrived after the first manifest release, so
    // they stay optional on parse: old manifests load with defaults.
    if (root.has("disposition"))
        manifest.disposition = root.at("disposition").asString();
    if (root.has("total_retries")) {
        manifest.total_retries = static_cast<std::uint64_t>(
            root.at("total_retries").asNumber());
    }
    if (root.has("parent_checkpoint"))
        manifest.parent_checkpoint =
            root.at("parent_checkpoint").asString();
    if (root.has("checkpoint_points")) {
        manifest.checkpoint_points = static_cast<std::uint64_t>(
            root.at("checkpoint_points").asNumber());
    }
    // kernel_metrics arrived with the compiled batch path; optional on
    // parse so pre-batch manifests load with the zero defaults.
    if (root.has("kernel_metrics")) {
        const JsonValue& metrics = root.at("kernel_metrics");
        manifest.kernel_metrics.batches = static_cast<std::uint64_t>(
            metrics.at("batches").asNumber());
        manifest.kernel_metrics.samples = static_cast<std::uint64_t>(
            metrics.at("samples").asNumber());
        manifest.kernel_metrics.mean_ns_per_sample =
            metrics.at("mean_ns_per_sample").asNumber();
    }
    return manifest;
}

void
RunManifest::write(const std::string& path) const
{
    const std::filesystem::path target(path);
    if (target.has_parent_path()) {
        std::error_code ec;
        std::filesystem::create_directories(target.parent_path(), ec);
    }
    std::ofstream out(path, std::ios::trunc);
    TTMCAS_REQUIRE(out.good(), "cannot open manifest file '" + path +
                                   "' for writing");
    out << toJson() << '\n';
    TTMCAS_REQUIRE(out.good(),
                   "failed writing manifest file '" + path + "'");
}

ManifestKernelScope::ManifestKernelScope(RunManifest& manifest,
                                         std::string kernel)
    : _manifest(manifest), _kernel(std::move(kernel)),
      _start(std::chrono::steady_clock::now())
{}

ManifestKernelScope::~ManifestKernelScope()
{
    if (!_done)
        finish();
}

void
ManifestKernelScope::finish()
{
    if (_done)
        return;
    _done = true;
    const auto elapsed = std::chrono::steady_clock::now() - _start;
    KernelTiming timing;
    timing.kernel = _kernel;
    timing.wall_ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    timing.points = _points;
    timing.failures = _failures;
    _manifest.addKernel(std::move(timing));
}

} // namespace ttmcas::obs
