#ifndef TTMCAS_SUPPORT_TRACE_HH
#define TTMCAS_SUPPORT_TRACE_HH

/**
 * @file
 * Scoped-span tracing for the batch kernels (part of ttmcas_obs).
 *
 * Spans are RAII objects: constructing a ScopedSpan stamps a start
 * time, destroying it stamps the duration and appends one complete
 * event ("ph":"X") to a thread-local buffer. Buffers are flushed to a
 * Chrome `trace_event` JSON document loadable in chrome://tracing or
 * https://ui.perfetto.dev.
 *
 * Zero-overhead-when-disabled contract: tracing is off by default and
 * every ScopedSpan constructor first checks a process-global atomic
 * flag with a relaxed load. When the flag is clear the span records
 * nothing — no clock read, no allocation, no lock. Enabling tracing is
 * therefore safe to leave compiled into release binaries (this is what
 * the `bench_perf_micro` disabled-overhead benchmarks assert).
 *
 * Thread safety: each thread appends to its own shard; the shard list
 * itself is guarded by a mutex taken only on first use per thread and
 * at flush time. Shards are kept alive by shared_ptr so a flush after
 * worker threads have exited still sees their events.
 *
 * Span taxonomy (see docs/OBSERVABILITY.md for the full list): the
 * `cat` field is the layer ("mc", "sobol", "sweep", "opt", "pool",
 * "cli", "bench") and the `name` field is the kernel or phase, e.g.
 * `{"cat":"sobol","name":"sobolAnalyze"}`.
 */

#include <chrono>
#include <cstdint>
#include <string>

namespace ttmcas::obs {

/** Turn span recording on or off process-wide (off by default). */
void setTracingEnabled(bool enabled);

/** True when spans are currently being recorded. */
bool tracingEnabled();

/**
 * RAII scoped span. Records one Chrome complete event covering the
 * object's lifetime — if tracing was enabled at construction time.
 *
 * @code
 *   {
 *       obs::ScopedSpan span("sobol", "sobolAnalyze");
 *       ... work ...
 *   } // span end recorded here
 * @endcode
 */
class ScopedSpan
{
  public:
    /**
     * Open a span. @p category is a static string naming the layer;
     * @p name names the kernel or phase (copied when tracing is on).
     */
    ScopedSpan(const char* category, std::string name);
    ~ScopedSpan();

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

  private:
    bool _active = false;
    const char* _category = nullptr;
    std::string _name;
    std::chrono::steady_clock::time_point _start{};
};

/** Number of completed spans recorded so far (all threads). */
std::size_t traceEventCount();

/**
 * Render all recorded spans as a Chrome `trace_event` JSON document
 * (object form: {"traceEvents":[...], "displayTimeUnit":"ms"}).
 * Events are sorted by (tid, start, name) so output is deterministic
 * for a fixed set of recorded spans.
 */
std::string chromeTraceJson();

/**
 * Write chromeTraceJson() to @p path, creating parent directories.
 * Throws ModelError when the file cannot be written.
 */
void writeChromeTrace(const std::string& path);

/** Discard all recorded spans (e.g. between test cases). */
void clearTrace();

} // namespace ttmcas::obs

#endif // TTMCAS_SUPPORT_TRACE_HH
