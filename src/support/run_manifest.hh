#ifndef TTMCAS_SUPPORT_RUN_MANIFEST_HH
#define TTMCAS_SUPPORT_RUN_MANIFEST_HH

/**
 * @file
 * Per-run provenance manifest (part of ttmcas_obs).
 *
 * A RunManifest captures everything needed to reproduce and audit one
 * batch run: the tool that ran, the library git hash it was built
 * from, the RNG seed, the thread count, the active FailurePolicy,
 * per-kernel wall-clock timings with point/failure counts, and a
 * FailureReport summary. Manifests serialize to JSON and round-trip
 * through fromJson() (docs/OBSERVABILITY.md documents the schema).
 *
 * Timings and the failure summary are the only non-deterministic
 * fields; everything else is bitwise stable across runs with the same
 * inputs, which is what makes manifests diffable provenance records.
 */

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "support/outcome.hh"

namespace ttmcas::obs {

struct MetricsSnapshot;

/** The git hash the library was compiled from ("unknown" outside git). */
std::string buildGitHash();

/**
 * Throughput summary of the compiled SoA batch path (core/ttm_batch),
 * lifted from the ttm.batch.* histograms of a MetricsSnapshot. All
 * zeros when the run never exercised the batch path (scalar fallback,
 * metrics disabled, or no TTM kernel invoked).
 */
struct BatchKernelMetrics
{
    /** Batches evaluated through the compiled kernels. */
    std::uint64_t batches = 0;
    /** Samples across those batches (sum of batch sizes). */
    std::uint64_t samples = 0;
    /** Mean amortized ns/sample across batches (0 when none ran). */
    double mean_ns_per_sample = 0.0;

    bool operator==(const BatchKernelMetrics& other) const = default;
};

/** Wall-clock accounting for one instrumented kernel invocation. */
struct KernelTiming
{
    /** Kernel name, e.g. "sampleTtm" or "sobolAnalyze". */
    std::string kernel;
    /** Wall-clock time of the invocation in milliseconds. */
    double wall_ms = 0.0;
    /** Points evaluated (samples, grid cells, matrix entries). */
    std::uint64_t points = 0;
    /** Points that failed and were skipped or aborted on. */
    std::uint64_t failures = 0;

    bool operator==(const KernelTiming& other) const = default;
};

/** Per-run provenance record; see file comment for the field story. */
struct RunManifest
{
    /** Name of the binary or harness that produced the run. */
    std::string tool;
    /** Library git hash (buildGitHash() unless overridden). */
    std::string git_hash;
    /** Master RNG seed of the run. */
    std::uint64_t seed = 0;
    /** Thread count used (0 = hardware concurrency). */
    std::uint64_t threads = 0;
    /** Active failure-policy mode: "abort" or "skip_and_record". */
    std::string failure_policy = "abort";
    /** Circuit-breaker fraction of the FailurePolicy. */
    double max_failure_fraction = 1.0;
    /** One entry per instrumented kernel invocation, in run order. */
    std::vector<KernelTiming> kernels;
    /** Total points across all recorded kernels. */
    std::uint64_t total_points = 0;
    /** Total failed points across all recorded kernels. */
    std::uint64_t total_failures = 0;
    /** Per-DiagCode failure counts rendered as {"code-name": n}. */
    std::vector<std::pair<std::string, std::uint64_t>> failure_counts;
    /**
     * How the run ended: "completed" (default), "deadline_exceeded"
     * (the --deadline fired and a checkpoint holds partial results),
     * "cancelled" (SIGINT), or "resumed" (this run restored completed
     * points from a parent checkpoint and finished the remainder).
     */
    std::string disposition = "completed";
    /** Extra evaluation attempts spent by the retry layer (sum). */
    std::uint64_t total_retries = 0;
    /** Lineage: path of the checkpoint this run resumed from. */
    std::string parent_checkpoint;
    /** Completed points carried in the checkpoint this run wrote. */
    std::uint64_t checkpoint_points = 0;
    /** Compiled batch-path throughput (docs/PERFORMANCE.md). */
    BatchKernelMetrics kernel_metrics;

    /** Copy mode + circuit breaker from a FailurePolicy. */
    void setPolicy(const FailurePolicy& policy);

    /**
     * Fill kernel_metrics from @p snapshot's ttm.batch.size /
     * ttm.batch.ns_per_sample histograms (absent histograms leave the
     * zero defaults). Call once after the instrumented kernels ran,
     * typically with obs::snapshotMetrics().
     */
    void captureKernelMetrics(const MetricsSnapshot& snapshot);

    /**
     * Record one kernel invocation and fold its point/failure counts
     * into the totals.
     */
    void addKernel(KernelTiming timing);

    /** Fold a FailureReport's per-code counts into failure_counts. */
    void addFailureReport(const FailureReport& report);

    /** Serialize to a pretty-stable JSON object. */
    std::string toJson() const;

    /**
     * Parse a manifest previously produced by toJson(). Throws
     * ModelError on malformed input or missing fields.
     */
    static RunManifest fromJson(const std::string& text);

    /**
     * Write toJson() to @p path, creating parent directories. Throws
     * ModelError when the file cannot be written.
     */
    void write(const std::string& path) const;

    bool operator==(const RunManifest& other) const = default;
};

/**
 * Scoped helper that times one kernel invocation into a RunManifest:
 * construction stamps the start, finish() (or destruction) appends a
 * KernelTiming. Intended for CLI/bench drivers, not hot loops.
 */
class ManifestKernelScope
{
  public:
    /** Start timing @p kernel into @p manifest. */
    ManifestKernelScope(RunManifest& manifest, std::string kernel);
    /** Appends the timing if finish() was never called. */
    ~ManifestKernelScope();

    ManifestKernelScope(const ManifestKernelScope&) = delete;
    ManifestKernelScope& operator=(const ManifestKernelScope&) = delete;

    /** Set the evaluated point count reported for this kernel. */
    void setPoints(std::uint64_t points) { _points = points; }
    /** Set the failed point count reported for this kernel. */
    void setFailures(std::uint64_t failures) { _failures = failures; }

    /** Stop the clock and append the KernelTiming now. */
    void finish();

  private:
    RunManifest& _manifest;
    std::string _kernel;
    std::uint64_t _points = 0;
    std::uint64_t _failures = 0;
    bool _done = false;
    std::chrono::steady_clock::time_point _start;
};

} // namespace ttmcas::obs

#endif // TTMCAS_SUPPORT_RUN_MANIFEST_HH
