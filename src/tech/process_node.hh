#ifndef TTMCAS_TECH_PROCESS_NODE_HH
#define TTMCAS_TECH_PROCESS_NODE_HH

/**
 * @file
 * Per-process-node technology and market parameters.
 *
 * A ProcessNode bundles everything the chip-creation model (paper
 * Section 3) needs to know about one fabrication process: transistor
 * density, defect density D0, wafer production rate muW, foundry and
 * OSAT latencies, the three engineering-effort coefficients
 * (E_tapeout, E_testing, E_package), and the economic parameters used
 * by the cost model (wafer cost, mask-set cost, fixed tapeout NRE).
 */

#include <string>
#include <vector>

#include "support/units.hh"

namespace ttmcas {

/** All model parameters for a single process node. */
struct ProcessNode
{
    /** Display name, e.g. "28nm". */
    std::string name;

    /** Nominal feature size in nanometers (used as the fit abscissa). */
    double feature_nm = 0.0;

    /**
     * Achievable logic transistor density in millions of transistors
     * per mm^2. Converts a design's transistor count into die area
     * when the design does not pin the area explicitly.
     */
    double density_mtr_per_mm2 = 0.0;

    /**
     * Defect density D0 in defects per mm^2 for the negative-binomial
     * yield model (paper Eq. 6). Low and flat for mature legacy nodes,
     * rising from 20nm onward (paper Section 5).
     */
    double defect_density_per_mm2 = 0.0;

    /**
     * Foundry wafer production rate muW quoted in kilo-wafers/month
     * (paper Table 2). Zero means the node is not currently in
     * production (20nm and 10nm in the paper's snapshot).
     */
    double wafer_rate_kwpm = 0.0;

    /** Foundry pipeline latency L_fab (paper Section 5: 12-20 weeks). */
    Weeks foundry_latency{0.0};

    /** Testing/assembly/packaging latency L_TAP (paper: 6 weeks). */
    Weeks osat_latency{0.0};

    /**
     * Tapeout effort E_tapeout(p) in engineering-hours per unique
     * transistor (paper Eq. 2 coefficient).
     */
    double tapeout_effort_hours_per_transistor = 0.0;

    /**
     * Testing effort E_testing(p) in weeks per 10^15 (transistors x
     * chips) tested (paper Eq. 7, second term). The scale factor keeps
     * the stored magnitude readable; see TtmModel for the exact use.
     */
    double testing_effort_weeks_per_e15 = 0.0;

    /**
     * Packaging effort E_package(p) in weeks per 10^9 (chips x dies x
     * mm^2) assembled (paper Eq. 7, third term).
     */
    double packaging_effort_weeks_per_e9_mm2 = 0.0;

    /** Processed 300mm wafer price (cost model). */
    Dollars wafer_cost{0.0};

    /** Full photomask-set cost for this node (cost model). */
    Dollars mask_set_cost{0.0};

    /**
     * Fixed tapeout NRE independent of design size: EDA licenses,
     * signoff infrastructure, shuttle/fab interface overhead.
     */
    Dollars tapeout_fixed_cost{0.0};

    /** True when the foundry currently produces wafers at this node. */
    bool available() const { return wafer_rate_kwpm > 0.0; }

    /** Production rate muW converted to wafers per calendar week. */
    WafersPerWeek waferRate() const;

    /** Throw ModelError unless every field is physically sensible. */
    void validate() const;

    /**
     * Every validation problem with this node, in field order; empty
     * when the node is valid. Unlike validate(), which throws on the
     * first violation, this reports all of them at once so a caller
     * fixing a hand-written dataset sees the full repair list.
     */
    std::vector<std::string> violations() const;
};

/** Ordering helper: finer (smaller feature) nodes sort first. */
bool finerThan(const ProcessNode& a, const ProcessNode& b);

} // namespace ttmcas

#endif // TTMCAS_TECH_PROCESS_NODE_HH
