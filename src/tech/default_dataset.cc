#include "tech/default_dataset.hh"

#include "support/error.hh"

namespace ttmcas {

namespace {

/**
 * Compact row for the builder below. Effort/cost columns:
 *   e_tape : E_tapeout, engineering-hours per unique transistor
 *   e_test : E_testing, weeks per 1e15 transistor-chips tested
 *   e_pkg  : E_package, weeks per 1e9 chip-die-mm^2 assembled
 *   wafer$ : processed 300mm wafer price (USD)
 *   mask$  : full photomask set price (USD, millions)
 *   fixed$ : fixed tapeout NRE (USD, millions)
 *
 * Derivations (see DESIGN.md "Calibration anchors"):
 *  - kwpm        : paper Table 2, verbatim. 12nm shares the 14nm-class
 *                  line (the paper maps Zen 2's 12nm I/O die onto it).
 *  - density     : reconstructed so the A11 (4.3B transistors) matches
 *                  the paper's Fig. 10 wafer demand per node: 88 mm^2 at
 *                  10nm (stated die size), ~2250 mm^2 at 250nm (the "43
 *                  dies per wafer, 48% yield" sentence), with smooth
 *                  interpolation between the two regimes.
 *  - D0          : 0.0004/mm^2 for mature legacy (>= 28nm), rising from
 *                  20nm to 0.0012/mm^2 at 5nm (Section 5; the 250nm A11
 *                  die then yields ~48%, matching the paper's sentence).
 *  - L_fab       : 12 weeks for legacy, rising from 20nm to 20 weeks at
 *                  5nm (Section 5). L_TAP = 6 weeks everywhere.
 *  - e_tape      : anchored to the paper's small-batch TTM asymptotes
 *                  (Fig. 10, 1K-chip row) for the 514M-unique-transistor
 *                  A11 with a 100-engineer team and a 2-week
 *                  design-phase constant: 0.3 weeks at 250nm up to
 *                  25.5 weeks at 5nm.
 *  - e_test      : linear ramp (Section 5: linear regression), sized so
 *                  testing contributes ~0.1 week for 10M A11-class chips
 *                  at advanced nodes.
 *  - e_pkg       : exponential-style ramp toward advanced packaging,
 *                  sized so assembly contributes ~0.1-1 week at 10M
 *                  chips (packaging time is latency-dominated, as the
 *                  paper's Fig. 8 L_OSAT sensitivities imply).
 *  - wafer$      : CSET "AI Chips" appendix wafer prices for >= 90nm
 *                  ... 5nm; gentle extrapolation for 130-250nm.
 *  - mask$,fixed$: LithoVision-era mask-set prices and Table 3's fixed
 *                  NRE intercept at 5nm ($3.04M), scaled down for
 *                  coarser nodes.
 */
struct Row
{
    const char* name;
    double nm;
    double density;
    double d0;
    double kwpm;
    double l_fab;
    double e_tape;
    double e_test;
    double e_pkg;
    double wafer_cost;
    double mask_cost_m;
    double fixed_cost_m;
};

constexpr Row kRows[] = {
    // name    nm   density   D0      kwpm  Lfab  e_tape    e_test  e_pkg  wafer$  mask$M fixed$M
    {"250nm", 250.0, 2.08, 0.00040,  41.0, 12.0, 2.33e-6, 0.0005, 0.025,  1150.0,  0.07,  0.05},
    {"180nm", 180.0, 2.27, 0.00040, 241.0, 12.0, 3.11e-6, 0.0006, 0.028,  1300.0,  0.10,  0.07},
    {"130nm", 130.0, 2.51, 0.00040, 120.0, 12.0, 5.45e-6, 0.0007, 0.030,  1500.0,  0.20,  0.10},
    {"90nm",   90.0, 2.98, 0.00040,  79.0, 12.0, 7.78e-6, 0.0008, 0.035,  1650.0,  0.40,  0.15},
    {"65nm",   65.0, 3.98, 0.00040, 189.0, 12.0, 1.17e-5, 0.0009, 0.040,  1937.0,  0.60,  0.25},
    {"40nm",   40.0, 5.78, 0.00040, 284.0, 12.0, 1.71e-5, 0.0010, 0.050,  2274.0,  0.90,  0.40},
    {"28nm",   28.0, 9.10, 0.00040, 350.0, 12.0, 2.57e-5, 0.0011, 0.060,  2891.0,  1.50,  0.60},
    {"20nm",   20.0, 18.00, 0.00050,  0.0, 13.0, 3.80e-5, 0.0012, 0.075,  3677.0,  2.50,  0.90},
    {"14nm",   14.0, 28.90, 0.00060, 281.0, 15.0, 5.06e-5, 0.0013, 0.090,  3984.0,  3.50,  1.20},
    {"12nm",   12.0, 31.00, 0.00060, 281.0, 15.0, 5.50e-5, 0.0013, 0.095,  4100.0,  3.80,  1.30},
    {"10nm",   10.0, 48.90, 0.00080,  0.0, 16.0, 8.00e-5, 0.0014, 0.105,  5992.0,  6.00,  2.00},
    {"7nm",     7.0, 91.20, 0.00100, 252.0, 18.0, 1.32e-4, 0.0015, 0.125,  9346.0, 10.00,  2.40},
    {"5nm",     5.0, 171.30, 0.00120, 97.0, 20.0, 1.98e-4, 0.0016, 0.150, 16988.0, 20.00,  3.04},
};

constexpr double kOsatLatencyWeeks = 6.0; // L_TAP, Section 5

} // namespace

TechnologyDb
defaultTechnologyDb()
{
    TechnologyDb db;
    for (const Row& row : kRows) {
        ProcessNode node;
        node.name = row.name;
        node.feature_nm = row.nm;
        node.density_mtr_per_mm2 = row.density;
        node.defect_density_per_mm2 = row.d0;
        node.wafer_rate_kwpm = row.kwpm;
        node.foundry_latency = Weeks(row.l_fab);
        node.osat_latency = Weeks(kOsatLatencyWeeks);
        node.tapeout_effort_hours_per_transistor = row.e_tape;
        node.testing_effort_weeks_per_e15 = row.e_test;
        node.packaging_effort_weeks_per_e9_mm2 = row.e_pkg;
        node.wafer_cost = Dollars(row.wafer_cost);
        node.mask_set_cost = units::million(row.mask_cost_m);
        node.tapeout_fixed_cost = units::million(row.fixed_cost_m);
        db.add(node);
    }
    return db;
}

double
paperWaferRateKwpm(const std::string& name)
{
    for (const Row& row : kRows) {
        if (name == row.name)
            return row.kwpm;
    }
    throw ModelError("paperWaferRateKwpm: unknown node '" + name + "'");
}

} // namespace ttmcas
