#ifndef TTMCAS_TECH_TECHNOLOGY_DB_HH
#define TTMCAS_TECH_TECHNOLOGY_DB_HH

/**
 * @file
 * Registry of process nodes available to a modeling study.
 *
 * The database is an ordered collection (coarsest feature size first, the
 * order the paper's figures use: 250nm ... 5nm). Every model component
 * looks nodes up by name through the database, so a user can swap in
 * their own market snapshot without touching model code — the paper's
 * stated goal of letting users "easily plug in their values".
 */

#include <string>
#include <vector>

#include "tech/process_node.hh"

namespace ttmcas {

/** Ordered, name-indexed collection of process nodes. */
class TechnologyDb
{
  public:
    TechnologyDb() = default;

    /**
     * Add (or replace) a node. The node is validated; replacing keeps
     * the original ordering position.
     */
    void add(ProcessNode node);

    /** True when a node with this name exists. */
    bool has(const std::string& name) const;

    /** Look up a node by name; throws ModelError when missing. */
    const ProcessNode& node(const std::string& name) const;

    /** Pointer lookup that returns nullptr when missing. */
    const ProcessNode* tryNode(const std::string& name) const;

    /** All nodes, coarsest feature size first. */
    const std::vector<ProcessNode>& nodes() const { return _nodes; }

    /** Names of all nodes in display order. */
    std::vector<std::string> names() const;

    /** Names of nodes currently in production (wafer rate > 0). */
    std::vector<std::string> availableNames() const;

    std::size_t size() const { return _nodes.size(); }
    bool empty() const { return _nodes.empty(); }

    /**
     * Copy of this database with one node's wafer production rate
     * scaled by @p factor — the basic "supply chain disruption" edit
     * used when sweeping % of max production capacity.
     */
    TechnologyDb withScaledWaferRate(const std::string& name,
                                     double factor) const;

    /**
     * Every validation problem across all nodes, each prefixed so the
     * offending node is identifiable; empty when the database is
     * valid. Nodes already in the database were validated by add(), so
     * this matters for field-by-field edits made after insertion, or
     * for pre-flighting nodes assembled elsewhere via
     * ProcessNode::violations().
     */
    std::vector<std::string> violations() const;

  private:
    std::vector<ProcessNode> _nodes;
};

} // namespace ttmcas

#endif // TTMCAS_TECH_TECHNOLOGY_DB_HH
