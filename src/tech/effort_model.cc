#include "tech/effort_model.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "stats/regression.hh"
#include "support/error.hh"

namespace ttmcas {

std::string
effortFormName(EffortForm form)
{
    switch (form) {
      case EffortForm::Linear:
        return "Linear";
      case EffortForm::Exponential:
        return "Exponential";
      case EffortForm::PowerLaw:
        return "PowerLaw";
    }
    TTMCAS_INVARIANT(false, "unhandled EffortForm");
}

EffortCurve
EffortCurve::fit(EffortForm form, const std::vector<EffortAnchor>& anchors)
{
    TTMCAS_REQUIRE(anchors.size() >= 2,
                   "effort fit needs at least two anchors");
    std::vector<double> xs, ys;
    xs.reserve(anchors.size());
    ys.reserve(anchors.size());
    for (const auto& anchor : anchors) {
        TTMCAS_REQUIRE(anchor.feature_nm > 0.0,
                       "effort anchor feature size must be positive");
        xs.push_back(anchor.feature_nm);
        ys.push_back(anchor.value);
    }

    switch (form) {
      case EffortForm::Linear: {
        const LinearFit fit = fitLinear(xs, ys);
        return EffortCurve(form, fit.intercept, fit.slope, fit.r_squared);
      }
      case EffortForm::Exponential: {
        const ExponentialFit fit = fitExponential(xs, ys);
        return EffortCurve(form, fit.scale, fit.rate, fit.r_squared);
      }
      case EffortForm::PowerLaw: {
        const PowerFit fit = fitPower(xs, ys);
        return EffortCurve(form, fit.scale, fit.exponent, fit.r_squared);
      }
    }
    TTMCAS_INVARIANT(false, "unhandled EffortForm");
}

double
EffortCurve::at(double feature_nm) const
{
    TTMCAS_REQUIRE(feature_nm > 0.0, "feature size must be positive");
    double value = 0.0;
    switch (_form) {
      case EffortForm::Linear:
        value = _a + _b * feature_nm;
        break;
      case EffortForm::Exponential:
        value = _a * std::exp(_b * feature_nm);
        break;
      case EffortForm::PowerLaw:
        value = _a * std::pow(feature_nm, _b);
        break;
    }
    return std::max(value, 0.0);
}

std::string
EffortCurve::describe() const
{
    std::ostringstream os;
    os.precision(4);
    os << effortFormName(_form) << "(a=" << _a << ", b=" << _b
       << ", R2=" << _r_squared << ")";
    return os.str();
}

} // namespace ttmcas
