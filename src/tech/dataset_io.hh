#ifndef TTMCAS_TECH_DATASET_IO_HH
#define TTMCAS_TECH_DATASET_IO_HH

/**
 * @file
 * CSV serialization of technology databases.
 *
 * The paper's framework is only useful if designers can "easily plug
 * in their values" (Section 5). This module round-trips a TechnologyDb
 * through a plain CSV file so market snapshots can be versioned,
 * diffed, and edited outside C++.
 *
 * Format: a header row naming the columns, then one row per node.
 * Columns (order-insensitive, matched by name):
 *
 *   name, feature_nm, density_mtr_per_mm2, defect_density_per_mm2,
 *   wafer_rate_kwpm, foundry_latency_weeks, osat_latency_weeks,
 *   tapeout_effort_hours_per_transistor, testing_effort_weeks_per_e15,
 *   packaging_effort_weeks_per_e9_mm2, wafer_cost_usd,
 *   mask_set_cost_usd, tapeout_fixed_cost_usd
 *
 * Lines starting with '#' are comments. Every loaded node is validated.
 */

#include <string>

#include "tech/technology_db.hh"

namespace ttmcas {

/** Serialize @p db to CSV text (stable column order, full precision). */
std::string technologyToCsv(const TechnologyDb& db);

/** Parse CSV text into a database; throws ModelError on malformed input. */
TechnologyDb technologyFromCsv(const std::string& csv_text);

/** Write @p db to a CSV file (parent directories created). */
void saveTechnologyCsv(const TechnologyDb& db, const std::string& path);

/** Load a database from a CSV file. */
TechnologyDb loadTechnologyCsv(const std::string& path);

} // namespace ttmcas

#endif // TTMCAS_TECH_DATASET_IO_HH
