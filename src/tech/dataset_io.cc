#include "tech/dataset_io.hh"

#include <cstddef>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "support/error.hh"

namespace ttmcas {

namespace {

const std::vector<std::string>&
columnNames()
{
    static const std::vector<std::string> names{
        "name",
        "feature_nm",
        "density_mtr_per_mm2",
        "defect_density_per_mm2",
        "wafer_rate_kwpm",
        "foundry_latency_weeks",
        "osat_latency_weeks",
        "tapeout_effort_hours_per_transistor",
        "testing_effort_weeks_per_e15",
        "packaging_effort_weeks_per_e9_mm2",
        "wafer_cost_usd",
        "mask_set_cost_usd",
        "tapeout_fixed_cost_usd",
    };
    return names;
}

std::vector<std::string>
splitCsvLine(const std::string& line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream stream(line);
    while (std::getline(stream, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.push_back("");
    return cells;
}

std::string
trim(const std::string& text)
{
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

/** "line L, column C" prefix of every cell-level parse error. */
std::string
cellLocation(std::size_t line_number, std::size_t column_number)
{
    return "line " + std::to_string(line_number) + ", column " +
           std::to_string(column_number);
}

double
parseNumber(const std::string& cell, std::size_t line_number,
            std::size_t column_number, const std::string& column)
{
    try {
        std::size_t consumed = 0;
        const double value = std::stod(cell, &consumed);
        TTMCAS_REQUIRE(consumed == cell.size(),
                       cellLocation(line_number, column_number) +
                           ": trailing characters in numeric column '" +
                           column + "': '" + cell + "'");
        return value;
    } catch (const std::invalid_argument&) {
        throw ModelError(cellLocation(line_number, column_number) +
                         ": cannot parse '" + cell +
                         "' in numeric column '" + column + "'");
    } catch (const std::out_of_range&) {
        throw ModelError(cellLocation(line_number, column_number) +
                         ": value out of range in column '" + column +
                         "'");
    }
}

} // namespace

std::string
technologyToCsv(const TechnologyDb& db)
{
    std::ostringstream os;
    os << "# ttmcas technology snapshot\n";
    for (std::size_t i = 0; i < columnNames().size(); ++i) {
        if (i != 0)
            os << ",";
        os << columnNames()[i];
    }
    os << "\n";
    os.precision(17);
    for (const ProcessNode& node : db.nodes()) {
        os << node.name << "," << node.feature_nm << ","
           << node.density_mtr_per_mm2 << ","
           << node.defect_density_per_mm2 << "," << node.wafer_rate_kwpm
           << "," << node.foundry_latency.value() << ","
           << node.osat_latency.value() << ","
           << node.tapeout_effort_hours_per_transistor << ","
           << node.testing_effort_weeks_per_e15 << ","
           << node.packaging_effort_weeks_per_e9_mm2 << ","
           << node.wafer_cost.value() << ","
           << node.mask_set_cost.value() << ","
           << node.tapeout_fixed_cost.value() << "\n";
    }
    return os.str();
}

TechnologyDb
technologyFromCsv(const std::string& csv_text)
{
    std::istringstream stream(csv_text);
    std::string line;
    std::size_t line_number = 0;

    // Find the header row.
    std::map<std::string, std::size_t> column_index;
    std::size_t header_line = 0;
    while (std::getline(stream, line)) {
        ++line_number;
        const std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        header_line = line_number;
        const auto headers = splitCsvLine(trimmed);
        for (std::size_t i = 0; i < headers.size(); ++i) {
            const std::string header = trim(headers[i]);
            TTMCAS_REQUIRE(column_index.count(header) == 0,
                           cellLocation(line_number, i + 1) +
                               ": duplicate header '" + header + "'");
            column_index[header] = i;
        }
        break;
    }
    for (const std::string& required : columnNames()) {
        TTMCAS_REQUIRE(column_index.count(required) == 1,
                       header_line == 0
                           ? "technology CSV is missing column '" +
                                 required + "' (no header row found)"
                           : "line " + std::to_string(header_line) +
                                 ": technology CSV is missing column '" +
                                 required + "'");
    }

    TechnologyDb db;
    while (std::getline(stream, line)) {
        ++line_number;
        const std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        const auto cells = splitCsvLine(trimmed);
        TTMCAS_REQUIRE(cells.size() >= column_index.size(),
                       "line " + std::to_string(line_number) +
                           ": expected " +
                           std::to_string(column_index.size()) +
                           " cells, found " +
                           std::to_string(cells.size()));
        const auto cell = [&](const std::string& column) {
            return trim(cells[column_index.at(column)]);
        };
        const auto number = [&](const std::string& column) {
            return parseNumber(cell(column), line_number,
                               column_index.at(column) + 1, column);
        };

        ProcessNode node;
        node.name = cell("name");
        node.feature_nm = number("feature_nm");
        node.density_mtr_per_mm2 = number("density_mtr_per_mm2");
        node.defect_density_per_mm2 = number("defect_density_per_mm2");
        node.wafer_rate_kwpm = number("wafer_rate_kwpm");
        node.foundry_latency = Weeks(number("foundry_latency_weeks"));
        node.osat_latency = Weeks(number("osat_latency_weeks"));
        node.tapeout_effort_hours_per_transistor =
            number("tapeout_effort_hours_per_transistor");
        node.testing_effort_weeks_per_e15 =
            number("testing_effort_weeks_per_e15");
        node.packaging_effort_weeks_per_e9_mm2 =
            number("packaging_effort_weeks_per_e9_mm2");
        node.wafer_cost = Dollars(number("wafer_cost_usd"));
        node.mask_set_cost = Dollars(number("mask_set_cost_usd"));
        node.tapeout_fixed_cost =
            Dollars(number("tapeout_fixed_cost_usd"));
        try {
            db.add(std::move(node)); // validates
        } catch (const ModelError& error) {
            // Field validation knows nothing about the file; attach
            // the row so the user can find the offending record.
            throw ModelError("line " + std::to_string(line_number) +
                             ": " + error.what());
        }
    }
    TTMCAS_REQUIRE(!db.empty(), "technology CSV contains no nodes");
    return db;
}

void
saveTechnologyCsv(const TechnologyDb& db, const std::string& path)
{
    const std::filesystem::path fs_path(path);
    if (fs_path.has_parent_path())
        std::filesystem::create_directories(fs_path.parent_path());
    std::ofstream out(fs_path);
    TTMCAS_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
    out << technologyToCsv(db);
    TTMCAS_REQUIRE(out.good(), "failed writing '" + path + "'");
}

TechnologyDb
loadTechnologyCsv(const std::string& path)
{
    std::ifstream in(path);
    TTMCAS_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return technologyFromCsv(buffer.str());
}

} // namespace ttmcas
