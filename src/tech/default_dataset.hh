#ifndef TTMCAS_TECH_DEFAULT_DATASET_HH
#define TTMCAS_TECH_DEFAULT_DATASET_HH

/**
 * @file
 * The paper's default market snapshot (Section 5 / Table 2).
 *
 * Wafer production rates are printed verbatim in the paper's Table 2.
 * Everything else (densities, D0, latencies, effort and cost
 * coefficients) is reconstructed from the paper's own reported model
 * outputs (Fig. 7/9/10, Table 3) plus the public anchor points the
 * paper cites; see DESIGN.md section "Substitutions" and the comments
 * in default_dataset.cc for the per-parameter derivation.
 */

#include "tech/technology_db.hh"

namespace ttmcas {

/**
 * Build the default technology database: twelve paper nodes (250nm ...
 * 5nm, with 20nm and 10nm present but out of production) plus the 12nm
 * node used by the Zen 2 chiplet case study.
 */
TechnologyDb defaultTechnologyDb();

/** Paper Table 2 wafer production rate in kWafers/month for @p name. */
double paperWaferRateKwpm(const std::string& name);

} // namespace ttmcas

#endif // TTMCAS_TECH_DEFAULT_DATASET_HH
