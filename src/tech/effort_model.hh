#ifndef TTMCAS_TECH_EFFORT_MODEL_HH
#define TTMCAS_TECH_EFFORT_MODEL_HH

/**
 * @file
 * Curve-fit engineering-effort models across process nodes.
 *
 * Paper Section 5: tapeout and packaging efforts are fit with an
 * exponential regression over process nodes and testing effort with a
 * linear regression, from industry cost anchor points. We do not have
 * the IBS reports the paper used, so the default dataset stores
 * reconstructed per-node values; EffortCurve is the utility users apply
 * to build datasets of their own from sparse anchors, exactly as the
 * paper did. A power-law form is included because effort-versus-feature-
 * size data usually shows curvature that a pure exponential in
 * nanometers cannot capture.
 */

#include <string>
#include <vector>

namespace ttmcas {

/** One (feature size, effort value) calibration point. */
struct EffortAnchor
{
    double feature_nm = 0.0;
    double value = 0.0;
};

/** Functional form of an effort regression. */
enum class EffortForm
{
    Linear,      ///< value = a + b * nm          (paper: E_testing)
    Exponential, ///< value = a * exp(b * nm)     (paper: E_tapeout/E_package)
    PowerLaw     ///< value = a * nm^b            (curvature-friendly variant)
};

/** Human-readable name of an effort form. */
std::string effortFormName(EffortForm form);

/** A fitted effort curve, evaluable at any feature size. */
class EffortCurve
{
  public:
    /**
     * Least-squares fit of @p form through @p anchors.
     *
     * Requires >= 2 anchors with distinct feature sizes; Exponential and
     * PowerLaw additionally require positive effort values.
     */
    static EffortCurve fit(EffortForm form,
                           const std::vector<EffortAnchor>& anchors);

    /** Effort value at @p feature_nm (clamped to be non-negative). */
    double at(double feature_nm) const;

    EffortForm form() const { return _form; }
    double paramA() const { return _a; }
    double paramB() const { return _b; }

    /** Goodness of fit in the fitting space (R^2). */
    double rSquared() const { return _r_squared; }

    /** Description such as "PowerLaw(a=3.1e-3, b=-1.14, R2=0.98)". */
    std::string describe() const;

  private:
    EffortCurve(EffortForm form, double a, double b, double r_squared)
        : _form(form), _a(a), _b(b), _r_squared(r_squared)
    {}

    EffortForm _form;
    double _a;
    double _b;
    double _r_squared;
};

} // namespace ttmcas

#endif // TTMCAS_TECH_EFFORT_MODEL_HH
