#include "tech/process_node.hh"

#include <cmath>

#include "support/error.hh"

namespace ttmcas {

WafersPerWeek
ProcessNode::waferRate() const
{
    return units::kiloWafersPerMonth(wafer_rate_kwpm);
}

void
ProcessNode::validate() const
{
    const std::vector<std::string> problems = violations();
    TTMCAS_REQUIRE(problems.empty(), problems.front());
}

std::vector<std::string>
ProcessNode::violations() const
{
    std::vector<std::string> problems;
    const auto check = [&](bool ok, const std::string& message) {
        if (!ok)
            problems.push_back(message);
    };
    check(!name.empty(), "process node needs a name");
    check(feature_nm > 0.0,
          "node '" + name + "': feature size must be positive");
    check(density_mtr_per_mm2 > 0.0,
          "node '" + name + "': transistor density must be positive");
    check(defect_density_per_mm2 >= 0.0,
          "node '" + name + "': defect density must be >= 0");
    check(wafer_rate_kwpm >= 0.0,
          "node '" + name + "': wafer rate must be >= 0");
    check(foundry_latency.value() >= 0.0,
          "node '" + name + "': foundry latency must be >= 0");
    check(osat_latency.value() >= 0.0,
          "node '" + name + "': OSAT latency must be >= 0");
    check(tapeout_effort_hours_per_transistor > 0.0,
          "node '" + name + "': tapeout effort must be positive");
    check(testing_effort_weeks_per_e15 >= 0.0,
          "node '" + name + "': testing effort must be >= 0");
    check(packaging_effort_weeks_per_e9_mm2 >= 0.0,
          "node '" + name + "': packaging effort must be >= 0");
    check(wafer_cost.value() >= 0.0,
          "node '" + name + "': wafer cost must be >= 0");
    check(mask_set_cost.value() >= 0.0,
          "node '" + name + "': mask cost must be >= 0");
    check(tapeout_fixed_cost.value() >= 0.0,
          "node '" + name + "': fixed tapeout cost must be >= 0");
    check(std::isfinite(feature_nm) && std::isfinite(density_mtr_per_mm2) &&
              std::isfinite(defect_density_per_mm2) &&
              std::isfinite(wafer_rate_kwpm) &&
              std::isfinite(foundry_latency.value()) &&
              std::isfinite(osat_latency.value()) &&
              std::isfinite(tapeout_effort_hours_per_transistor) &&
              std::isfinite(testing_effort_weeks_per_e15) &&
              std::isfinite(packaging_effort_weeks_per_e9_mm2) &&
              std::isfinite(wafer_cost.value()) &&
              std::isfinite(mask_set_cost.value()) &&
              std::isfinite(tapeout_fixed_cost.value()),
          "node '" + name + "': parameters must be finite");
    return problems;
}

bool
finerThan(const ProcessNode& a, const ProcessNode& b)
{
    return a.feature_nm < b.feature_nm;
}

} // namespace ttmcas
