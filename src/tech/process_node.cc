#include "tech/process_node.hh"

#include <cmath>

#include "support/error.hh"

namespace ttmcas {

WafersPerWeek
ProcessNode::waferRate() const
{
    return units::kiloWafersPerMonth(wafer_rate_kwpm);
}

void
ProcessNode::validate() const
{
    TTMCAS_REQUIRE(!name.empty(), "process node needs a name");
    TTMCAS_REQUIRE(feature_nm > 0.0,
                   "node '" + name + "': feature size must be positive");
    TTMCAS_REQUIRE(density_mtr_per_mm2 > 0.0,
                   "node '" + name + "': transistor density must be positive");
    TTMCAS_REQUIRE(defect_density_per_mm2 >= 0.0,
                   "node '" + name + "': defect density must be >= 0");
    TTMCAS_REQUIRE(wafer_rate_kwpm >= 0.0,
                   "node '" + name + "': wafer rate must be >= 0");
    TTMCAS_REQUIRE(foundry_latency.value() >= 0.0,
                   "node '" + name + "': foundry latency must be >= 0");
    TTMCAS_REQUIRE(osat_latency.value() >= 0.0,
                   "node '" + name + "': OSAT latency must be >= 0");
    TTMCAS_REQUIRE(tapeout_effort_hours_per_transistor > 0.0,
                   "node '" + name + "': tapeout effort must be positive");
    TTMCAS_REQUIRE(testing_effort_weeks_per_e15 >= 0.0,
                   "node '" + name + "': testing effort must be >= 0");
    TTMCAS_REQUIRE(packaging_effort_weeks_per_e9_mm2 >= 0.0,
                   "node '" + name + "': packaging effort must be >= 0");
    TTMCAS_REQUIRE(wafer_cost.value() >= 0.0,
                   "node '" + name + "': wafer cost must be >= 0");
    TTMCAS_REQUIRE(mask_set_cost.value() >= 0.0,
                   "node '" + name + "': mask cost must be >= 0");
    TTMCAS_REQUIRE(tapeout_fixed_cost.value() >= 0.0,
                   "node '" + name + "': fixed tapeout cost must be >= 0");
    TTMCAS_REQUIRE(std::isfinite(density_mtr_per_mm2) &&
                       std::isfinite(defect_density_per_mm2) &&
                       std::isfinite(wafer_rate_kwpm),
                   "node '" + name + "': parameters must be finite");
}

bool
finerThan(const ProcessNode& a, const ProcessNode& b)
{
    return a.feature_nm < b.feature_nm;
}

} // namespace ttmcas
