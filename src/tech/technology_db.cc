#include "tech/technology_db.hh"

#include <algorithm>

#include "support/error.hh"

namespace ttmcas {

void
TechnologyDb::add(ProcessNode node)
{
    node.validate();
    auto it = std::find_if(_nodes.begin(), _nodes.end(),
                           [&](const ProcessNode& existing) {
                               return existing.name == node.name;
                           });
    if (it != _nodes.end()) {
        *it = std::move(node);
        return;
    }
    // Keep display order: coarsest feature first, ties by name.
    auto pos = std::find_if(_nodes.begin(), _nodes.end(),
                            [&](const ProcessNode& existing) {
                                return finerThan(existing, node);
                            });
    _nodes.insert(pos, std::move(node));
}

bool
TechnologyDb::has(const std::string& name) const
{
    return tryNode(name) != nullptr;
}

const ProcessNode&
TechnologyDb::node(const std::string& name) const
{
    const ProcessNode* found = tryNode(name);
    TTMCAS_REQUIRE(found != nullptr,
                   "unknown process node '" + name + "'");
    return *found;
}

const ProcessNode*
TechnologyDb::tryNode(const std::string& name) const
{
    auto it = std::find_if(_nodes.begin(), _nodes.end(),
                           [&](const ProcessNode& candidate) {
                               return candidate.name == name;
                           });
    return it == _nodes.end() ? nullptr : &*it;
}

std::vector<std::string>
TechnologyDb::names() const
{
    std::vector<std::string> result;
    result.reserve(_nodes.size());
    for (const auto& node : _nodes)
        result.push_back(node.name);
    return result;
}

std::vector<std::string>
TechnologyDb::availableNames() const
{
    std::vector<std::string> result;
    for (const auto& node : _nodes) {
        if (node.available())
            result.push_back(node.name);
    }
    return result;
}

std::vector<std::string>
TechnologyDb::violations() const
{
    std::vector<std::string> problems;
    for (const auto& node : _nodes) {
        for (const std::string& problem : node.violations())
            problems.push_back(problem);
    }
    return problems;
}

TechnologyDb
TechnologyDb::withScaledWaferRate(const std::string& name,
                                  double factor) const
{
    TTMCAS_REQUIRE(factor >= 0.0, "wafer rate scale must be >= 0");
    TechnologyDb copy = *this;
    auto it = std::find_if(copy._nodes.begin(), copy._nodes.end(),
                           [&](const ProcessNode& candidate) {
                               return candidate.name == name;
                           });
    TTMCAS_REQUIRE(it != copy._nodes.end(),
                   "unknown process node '" + name + "'");
    it->wafer_rate_kwpm *= factor;
    return copy;
}

} // namespace ttmcas
