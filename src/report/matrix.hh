#ifndef TTMCAS_REPORT_MATRIX_HH
#define TTMCAS_REPORT_MATRIX_HH

/**
 * @file
 * Labeled numeric matrices for the paper's heat-map figures
 * (Figs. 6, 8, 10, 14): rows x columns of doubles with text labels,
 * rendered as aligned text or CSV. Cells may be empty (the paper's
 * triangular Fig. 14 matrices).
 */

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace ttmcas {

/** Row/column labeled matrix of optional doubles. */
class LabeledMatrix
{
  public:
    LabeledMatrix(std::string title, std::vector<std::string> row_labels,
                  std::vector<std::string> column_labels);

    const std::string& title() const { return _title; }
    std::size_t rowCount() const { return _row_labels.size(); }
    std::size_t columnCount() const { return _column_labels.size(); }

    const std::vector<std::string>& rowLabels() const { return _row_labels; }
    const std::vector<std::string>& columnLabels() const
    {
        return _column_labels;
    }

    /** Set one cell. */
    void set(std::size_t row, std::size_t column, double value);

    /** Cell accessor; empty when never set. */
    std::optional<double> at(std::size_t row, std::size_t column) const;

    /** Smallest set value; throws when the matrix is entirely empty. */
    double minValue() const;

    /** Position (row, column) of the smallest set value. */
    std::pair<std::size_t, std::size_t> argMin() const;

    /** Largest set value; throws when the matrix is entirely empty. */
    double maxValue() const;

    /**
     * Render as aligned text. @p formatter converts a cell value to a
     * string (default: 1 decimal place); empty cells render as "-".
     */
    std::string
    render(const std::function<std::string(double)>& formatter = {}) const;

    /** CSV with the row label as the first column. */
    std::string renderCsv() const;

  private:
    std::size_t index(std::size_t row, std::size_t column) const;

    std::string _title;
    std::vector<std::string> _row_labels;
    std::vector<std::string> _column_labels;
    std::vector<std::optional<double>> _cells;
};

} // namespace ttmcas

#endif // TTMCAS_REPORT_MATRIX_HH
