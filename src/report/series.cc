#include "report/series.hh"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/error.hh"
#include "support/strutil.hh"

namespace ttmcas {

FigureData::FigureData(std::string title, std::string x_label,
                       std::string y_label)
    : _title(std::move(title)), _x_label(std::move(x_label)),
      _y_label(std::move(y_label))
{
    TTMCAS_REQUIRE(!_title.empty(), "figure needs a title");
}

Series&
FigureData::series(const std::string& name)
{
    for (auto& existing : _series) {
        if (existing.name == name)
            return existing;
    }
    _series.push_back(Series{name, {}});
    return _series.back();
}

std::string
FigureData::renderCsv() const
{
    std::ostringstream os;
    os << "# " << _title << "\n";
    os << "series," << _x_label << "," << _y_label
       << ",ci10_lo,ci10_hi,ci25_lo,ci25_hi\n";
    const auto cell = [](const std::optional<double>& value) {
        return value.has_value() ? formatFixed(*value, 6) : std::string();
    };
    for (const auto& series : _series) {
        for (const auto& point : series.points) {
            os << series.name << "," << formatFixed(point.x, 6) << ","
               << formatFixed(point.y, 6) << "," << cell(point.band10_lo)
               << "," << cell(point.band10_hi) << ","
               << cell(point.band25_lo) << "," << cell(point.band25_hi)
               << "\n";
        }
    }
    return os.str();
}

std::string
FigureData::renderText(int decimals) const
{
    std::ostringstream os;
    os << _title << "  [" << _x_label << " vs " << _y_label << "]\n";
    for (const auto& series : _series) {
        os << "  " << series.name << ":\n";
        for (const auto& point : series.points) {
            os << "    " << _x_label << "="
               << formatFixed(point.x, decimals) << "  " << _y_label << "="
               << formatFixed(point.y, decimals);
            if (point.band10_lo && point.band10_hi) {
                os << "  ci10=[" << formatFixed(*point.band10_lo, decimals)
                   << ", " << formatFixed(*point.band10_hi, decimals)
                   << "]";
            }
            if (point.band25_lo && point.band25_hi) {
                os << "  ci25=[" << formatFixed(*point.band25_lo, decimals)
                   << ", " << formatFixed(*point.band25_hi, decimals)
                   << "]";
            }
            os << "\n";
        }
    }
    return os.str();
}

void
writeFile(const std::string& path, const std::string& content)
{
    const std::filesystem::path fs_path(path);
    if (fs_path.has_parent_path())
        std::filesystem::create_directories(fs_path.parent_path());
    std::ofstream out(fs_path);
    TTMCAS_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
    out << content;
    TTMCAS_REQUIRE(out.good(), "failed writing '" + path + "'");
}

} // namespace ttmcas
