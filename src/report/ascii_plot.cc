#include "report/ascii_plot.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hh"
#include "support/strutil.hh"

namespace ttmcas {

AsciiPlot::AsciiPlot() : AsciiPlot(Options{}) {}

AsciiPlot::AsciiPlot(Options options) : _options(std::move(options))
{
    TTMCAS_REQUIRE(_options.width >= 8 && _options.height >= 4,
                   "plot grid too small");
    TTMCAS_REQUIRE(!_options.markers.empty(),
                   "need at least one marker character");
}

std::string
AsciiPlot::render(const FigureData& figure) const
{
    // Gather data bounds.
    double x_min = _options.x_min, x_max = _options.x_max;
    double y_min = _options.y_min, y_max = _options.y_max;
    const bool auto_x = x_min == x_max;
    const bool auto_y = y_min == y_max;
    bool any_point = false;
    for (const Series& series : figure.allSeries()) {
        for (const SeriesPoint& point : series.points) {
            if (!any_point) {
                if (auto_x) {
                    x_min = x_max = point.x;
                }
                if (auto_y) {
                    y_min = y_max = point.y;
                }
                any_point = true;
                continue;
            }
            if (auto_x) {
                x_min = std::min(x_min, point.x);
                x_max = std::max(x_max, point.x);
            }
            if (auto_y) {
                y_min = std::min(y_min, point.y);
                y_max = std::max(y_max, point.y);
            }
        }
    }
    TTMCAS_REQUIRE(any_point, "cannot plot an empty figure");
    if (x_max == x_min)
        x_max = x_min + 1.0;
    if (y_max == y_min)
        y_max = y_min + 1.0;

    // Paint the grid.
    std::vector<std::string> grid(
        _options.height, std::string(_options.width, ' '));
    const auto& series_list = figure.allSeries();
    for (std::size_t s = 0; s < series_list.size(); ++s) {
        const char marker =
            _options.markers[s % _options.markers.size()];
        for (const SeriesPoint& point : series_list[s].points) {
            const double fx = (point.x - x_min) / (x_max - x_min);
            const double fy = (point.y - y_min) / (y_max - y_min);
            if (fx < 0.0 || fx > 1.0 || fy < 0.0 || fy > 1.0)
                continue; // outside a forced range
            const auto col = static_cast<std::size_t>(std::llround(
                fx * static_cast<double>(_options.width - 1)));
            const auto row_from_bottom =
                static_cast<std::size_t>(std::llround(
                    fy * static_cast<double>(_options.height - 1)));
            const std::size_t row =
                _options.height - 1 - row_from_bottom;
            grid[row][col] = marker;
        }
    }

    // Assemble with axes and legend.
    std::ostringstream os;
    os << figure.title() << "\n";
    for (std::size_t row = 0; row < _options.height; ++row) {
        std::string label;
        if (row == 0)
            label = formatFixed(y_max, 1);
        else if (row == _options.height - 1)
            label = formatFixed(y_min, 1);
        os << padLeft(label, 10) << " |" << grid[row] << "\n";
    }
    os << padLeft("", 10) << " +" << std::string(_options.width, '-')
       << "\n";
    os << padLeft("", 12) << padRight(formatFixed(x_min, 1),
                                      _options.width - 8)
       << padLeft(formatFixed(x_max, 1), 8) << "\n";
    os << "  legend:";
    for (std::size_t s = 0; s < series_list.size(); ++s) {
        os << "  " << _options.markers[s % _options.markers.size()]
           << "=" << series_list[s].name;
    }
    os << "\n";
    return os.str();
}

} // namespace ttmcas
