#ifndef TTMCAS_REPORT_ASCII_PLOT_HH
#define TTMCAS_REPORT_ASCII_PLOT_HH

/**
 * @file
 * Terminal line/scatter plots for the figure benches.
 *
 * Each series gets a marker character; points map onto a fixed-size
 * character grid with linear axes and labeled ranges, so a bench's
 * stdout shows the *shape* of the paper figure it regenerates, not
 * just the numbers.
 */

#include <string>
#include <vector>

#include "report/series.hh"

namespace ttmcas {

/** Renders FigureData onto a character grid. */
class AsciiPlot
{
  public:
    struct Options
    {
        std::size_t width = 64;  ///< plot columns (without axes)
        std::size_t height = 16; ///< plot rows
        /** Marker per series, cycled when there are more series. */
        std::string markers = "*o+x#@%&";
        /** Force axis ranges (auto from data when lo == hi). */
        double x_min = 0.0, x_max = 0.0;
        double y_min = 0.0, y_max = 0.0;
    };

    AsciiPlot();
    explicit AsciiPlot(Options options);

    /**
     * Render @p figure: the grid, y-axis labels on the left, the
     * x-range underneath, and a marker legend.
     */
    std::string render(const FigureData& figure) const;

  private:
    Options _options;
};

} // namespace ttmcas

#endif // TTMCAS_REPORT_ASCII_PLOT_HH
