#include "report/matrix.hh"

#include <algorithm>
#include <sstream>

#include "support/error.hh"
#include "support/strutil.hh"

namespace ttmcas {

LabeledMatrix::LabeledMatrix(std::string title,
                             std::vector<std::string> row_labels,
                             std::vector<std::string> column_labels)
    : _title(std::move(title)), _row_labels(std::move(row_labels)),
      _column_labels(std::move(column_labels)),
      _cells(_row_labels.size() * _column_labels.size())
{
    TTMCAS_REQUIRE(!_row_labels.empty(), "matrix needs rows");
    TTMCAS_REQUIRE(!_column_labels.empty(), "matrix needs columns");
}

std::size_t
LabeledMatrix::index(std::size_t row, std::size_t column) const
{
    TTMCAS_REQUIRE(row < rowCount(), "matrix row out of range");
    TTMCAS_REQUIRE(column < columnCount(), "matrix column out of range");
    return row * columnCount() + column;
}

void
LabeledMatrix::set(std::size_t row, std::size_t column, double value)
{
    _cells[index(row, column)] = value;
}

std::optional<double>
LabeledMatrix::at(std::size_t row, std::size_t column) const
{
    return _cells[index(row, column)];
}

double
LabeledMatrix::minValue() const
{
    return at(argMin().first, argMin().second).value();
}

std::pair<std::size_t, std::size_t>
LabeledMatrix::argMin() const
{
    std::optional<std::pair<std::size_t, std::size_t>> best;
    double best_value = 0.0;
    for (std::size_t r = 0; r < rowCount(); ++r) {
        for (std::size_t c = 0; c < columnCount(); ++c) {
            const auto cell = at(r, c);
            if (!cell.has_value())
                continue;
            if (!best.has_value() || *cell < best_value) {
                best = {r, c};
                best_value = *cell;
            }
        }
    }
    TTMCAS_REQUIRE(best.has_value(), "matrix has no set cells");
    return *best;
}

double
LabeledMatrix::maxValue() const
{
    std::optional<double> best;
    for (const auto& cell : _cells) {
        if (cell.has_value() && (!best.has_value() || *cell > *best))
            best = *cell;
    }
    TTMCAS_REQUIRE(best.has_value(), "matrix has no set cells");
    return *best;
}

std::string
LabeledMatrix::render(
    const std::function<std::string(double)>& formatter) const
{
    const auto format = formatter
                            ? formatter
                            : [](double v) { return formatFixed(v, 1); };

    std::vector<std::size_t> widths(columnCount());
    for (std::size_t c = 0; c < columnCount(); ++c)
        widths[c] = _column_labels[c].size();
    std::size_t label_width = 0;
    for (const auto& label : _row_labels)
        label_width = std::max(label_width, label.size());

    std::vector<std::vector<std::string>> rendered(rowCount());
    for (std::size_t r = 0; r < rowCount(); ++r) {
        rendered[r].resize(columnCount());
        for (std::size_t c = 0; c < columnCount(); ++c) {
            const auto cell = at(r, c);
            rendered[r][c] = cell.has_value() ? format(*cell) : "-";
            widths[c] = std::max(widths[c], rendered[r][c].size());
        }
    }

    std::ostringstream os;
    os << _title << "\n";
    os << padRight("", label_width);
    for (std::size_t c = 0; c < columnCount(); ++c)
        os << "  " << padLeft(_column_labels[c], widths[c]);
    os << "\n";
    for (std::size_t r = 0; r < rowCount(); ++r) {
        os << padRight(_row_labels[r], label_width);
        for (std::size_t c = 0; c < columnCount(); ++c)
            os << "  " << padLeft(rendered[r][c], widths[c]);
        os << "\n";
    }
    return os.str();
}

std::string
LabeledMatrix::renderCsv() const
{
    std::ostringstream os;
    os << "# " << _title << "\n";
    os << "row";
    for (const auto& column : _column_labels)
        os << "," << column;
    os << "\n";
    for (std::size_t r = 0; r < rowCount(); ++r) {
        os << _row_labels[r];
        for (std::size_t c = 0; c < columnCount(); ++c) {
            os << ",";
            const auto cell = at(r, c);
            if (cell.has_value())
                os << formatFixed(*cell, 6);
        }
        os << "\n";
    }
    return os.str();
}

} // namespace ttmcas
