#ifndef TTMCAS_REPORT_TABLE_HH
#define TTMCAS_REPORT_TABLE_HH

/**
 * @file
 * ASCII table formatting for the bench harnesses.
 *
 * Every bench binary prints the rows of the paper table/figure it
 * regenerates; Table renders them with aligned columns so the output
 * is directly comparable against the paper.
 */

#include <string>
#include <vector>

namespace ttmcas {

/** Column alignment. */
enum class Align
{
    Left,
    Right
};

/** A simple text table with a header row. */
class Table
{
  public:
    /** @param headers column titles (fixes the column count) */
    explicit Table(std::vector<std::string> headers);

    /** Set one column's alignment (default: Right). */
    Table& setAlign(std::size_t column, Align align);

    /** Append a row; must match the header count. */
    Table& addRow(std::vector<std::string> cells);

    std::size_t rowCount() const { return _rows.size(); }
    std::size_t columnCount() const { return _headers.size(); }

    /** Render with column separators and a header rule. */
    std::string render() const;

    /** Render as comma-separated values (headers first). */
    std::string renderCsv() const;

  private:
    std::vector<std::string> _headers;
    std::vector<Align> _aligns;
    std::vector<std::vector<std::string>> _rows;
};

} // namespace ttmcas

#endif // TTMCAS_REPORT_TABLE_HH
