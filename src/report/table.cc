#include "report/table.hh"

#include <algorithm>
#include <sstream>

#include "support/error.hh"
#include "support/strutil.hh"

namespace ttmcas {

Table::Table(std::vector<std::string> headers)
    : _headers(std::move(headers)), _aligns(_headers.size(), Align::Right)
{
    TTMCAS_REQUIRE(!_headers.empty(), "table needs at least one column");
}

Table&
Table::setAlign(std::size_t column, Align align)
{
    TTMCAS_REQUIRE(column < _headers.size(), "column index out of range");
    _aligns[column] = align;
    return *this;
}

Table&
Table::addRow(std::vector<std::string> cells)
{
    TTMCAS_REQUIRE(cells.size() == _headers.size(),
                   "row has " + std::to_string(cells.size()) +
                       " cells; table has " +
                       std::to_string(_headers.size()) + " columns");
    _rows.push_back(std::move(cells));
    return *this;
}

std::string
Table::render() const
{
    std::vector<std::size_t> widths(_headers.size());
    for (std::size_t c = 0; c < _headers.size(); ++c)
        widths[c] = _headers[c].size();
    for (const auto& row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    const auto render_row = [&](const std::vector<std::string>& cells) {
        std::string line;
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c != 0)
                line += "  ";
            line += _aligns[c] == Align::Left
                        ? padRight(cells[c], widths[c])
                        : padLeft(cells[c], widths[c]);
        }
        return line;
    };

    std::ostringstream os;
    const std::string header = render_row(_headers);
    os << header << "\n" << std::string(header.size(), '-') << "\n";
    for (const auto& row : _rows)
        os << render_row(row) << "\n";
    return os.str();
}

std::string
Table::renderCsv() const
{
    const auto escape = [](const std::string& cell) {
        if (cell.find_first_of(",\"\n") == std::string::npos)
            return cell;
        std::string escaped = "\"";
        for (char ch : cell) {
            if (ch == '"')
                escaped += '"';
            escaped += ch;
        }
        escaped += '"';
        return escaped;
    };

    std::ostringstream os;
    for (std::size_t c = 0; c < _headers.size(); ++c) {
        if (c != 0)
            os << ",";
        os << escape(_headers[c]);
    }
    os << "\n";
    for (const auto& row : _rows) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            if (c != 0)
                os << ",";
            os << escape(row[c]);
        }
        os << "\n";
    }
    return os.str();
}

} // namespace ttmcas
