#ifndef TTMCAS_REPORT_SERIES_HH
#define TTMCAS_REPORT_SERIES_HH

/**
 * @file
 * Figure data series: (x, y [, band]) points grouped under named
 * series, written to CSV so any plotting tool can regenerate the
 * paper's figures from the bench outputs.
 */

#include <optional>
#include <string>
#include <vector>

namespace ttmcas {

/** One sample of a plotted curve, optionally with CI bands. */
struct SeriesPoint
{
    double x = 0.0;
    double y = 0.0;
    /** 95% CI under +/-10% input variance (paper pink/light band). */
    std::optional<double> band10_lo;
    std::optional<double> band10_hi;
    /** 95% CI under +/-25% input variance (paper green/dark band). */
    std::optional<double> band25_lo;
    std::optional<double> band25_hi;
};

/** A named curve. */
struct Series
{
    std::string name;
    std::vector<SeriesPoint> points;
};

/** A figure: axis labels plus one or more series. */
class FigureData
{
  public:
    FigureData(std::string title, std::string x_label, std::string y_label);

    const std::string& title() const { return _title; }

    /** Start (or retrieve) a series by name. */
    Series& series(const std::string& name);

    const std::vector<Series>& allSeries() const { return _series; }

    /** CSV: series,x,y,b10lo,b10hi,b25lo,b25hi (blank when absent). */
    std::string renderCsv() const;

    /**
     * Terminal-friendly dump: one line per point,
     * "series x=... y=... [±band]".
     */
    std::string renderText(int decimals = 2) const;

  private:
    std::string _title;
    std::string _x_label;
    std::string _y_label;
    std::vector<Series> _series;
};

/** Write @p content to @p path, creating parent directories. */
void writeFile(const std::string& path, const std::string& content);

} // namespace ttmcas

#endif // TTMCAS_REPORT_SERIES_HH
