#ifndef TTMCAS_OPT_PORTFOLIO_HH
#define TTMCAS_OPT_PORTFOLIO_HH

/**
 * @file
 * Portfolio planning: many products, shared foundry capacity.
 *
 * A design house rarely ships one chip. This planner assigns each
 * product of a portfolio to a process node and splits every node's
 * capacity among the products placed there (AllocationPlanner's
 * min-makespan rule), minimizing the portfolio's total lateness
 * against per-product deadlines:
 *
 *   lateness(P) = sum_p weight_p * max(0, TTM_p - deadline_p)
 *
 * Search: every product starts on its lowest-lateness node assuming a
 * private line; then a local search repeatedly tries moving one
 * product to another node (re-splitting both nodes' capacity) and
 * keeps the move when total lateness drops. Deterministic, and
 * guaranteed to terminate (lateness strictly decreases).
 */

#include <string>
#include <vector>

#include "core/allocation.hh"
#include "core/design.hh"
#include "core/ttm_model.hh"
#include "support/outcome.hh"
#include "support/threadpool.hh"

namespace ttmcas {

class FaultInjector;
class CancellationToken;

/** One product in the portfolio. */
struct PortfolioProduct
{
    std::string name;
    /** Retargetable architecture (its node field is a placeholder). */
    ChipDesign design;
    double n_chips = 0.0;
    Weeks deadline{0.0};
    /** Lateness weight (revenue at stake, contractual penalty, ...). */
    double weight = 1.0;
};

/** One product's placement in a plan. */
struct PortfolioAssignment
{
    std::string product;
    std::string node;
    double share = 0.0; ///< of the node's capacity
    Weeks ttm{0.0};
    Weeks deadline{0.0};

    bool onTime() const { return ttm <= deadline; }
    Weeks lateness() const
    {
        return Weeks(std::max(0.0, ttm.value() - deadline.value()));
    }
};

/** A full portfolio plan. */
struct PortfolioPlan
{
    std::vector<PortfolioAssignment> assignments;
    /** Weighted total lateness (the optimization objective). */
    double total_weighted_lateness = 0.0;

    /** Count of on-time products. */
    std::size_t onTimeCount() const;
};

/** The planner. */
class PortfolioPlanner
{
  public:
    struct Options
    {
        /** Candidate nodes (empty = every in-production node). */
        std::vector<std::string> candidate_nodes;
        /** Local-search move budget. */
        int max_moves = 200;
        /**
         * Parallelism of the product x node seeding matrix (threads
         * = 0 uses every core, 1 forces the serial path). The local
         * search itself stays serial to preserve first-improvement
         * semantics, so plans are identical for any thread count.
         */
        ParallelConfig parallel;
        /**
         * Failure handling of the seeding matrix (point = product *
         * |nodes| + node). A die that fits no node is a domain outcome,
         * not a failure: it is never recorded. Only numeric faults and
         * injected faults land in the report; under SkipAndRecord the
         * affected (product, node) pair is simply not a seed candidate.
         */
        FailurePolicy failure_policy;
        /** Optional deterministic fault injector; unowned, may be null. */
        const FaultInjector* fault_injector = nullptr;
        /** When non-null, receives the seeding FailureReport. Unowned. */
        FailureReport* failure_report = nullptr;
        /**
         * Cooperative stop (deadline / SIGINT). During the seeding
         * matrix the token is checked at chunk granularity and pairs
         * the stop prevented become Cancelled/DeadlineExceeded
         * failures: under Abort (default) plan() throws the structured
         * NumericError, under SkipAndRecord the pairs leave the seed
         * race like non-fits (a product whose whole row was stopped
         * then throws ModelError "fits no candidate node"). Once
         * seeding is done the local search checks the token between
         * moves and returns the best plan found so far. Unowned.
         */
        const CancellationToken* cancel = nullptr;
    };

    explicit PortfolioPlanner(TtmModel model);
    PortfolioPlanner(TtmModel model, Options options);

    /**
     * Plan the portfolio. Products that fit no candidate node (die
     * too big everywhere) throw ModelError.
     */
    PortfolioPlan plan(const std::vector<PortfolioProduct>& products)
        const;

    /** Evaluate a fixed product->node assignment (shares re-split). */
    PortfolioPlan
    evaluateAssignment(const std::vector<PortfolioProduct>& products,
                       const std::vector<std::string>& nodes) const;

  private:
    std::vector<std::string> candidates() const;

    TtmModel _model;
    Options _options;
};

} // namespace ttmcas

#endif // TTMCAS_OPT_PORTFOLIO_HH
