#ifndef TTMCAS_OPT_CACHE_OPTIMIZER_HH
#define TTMCAS_OPT_CACHE_OPTIMIZER_HH

/**
 * @file
 * The cache-sizing design-space exploration of Section 6.1
 * (Figs. 4-6): sweep (I$, D$) capacities for the 16-core Ariane chip,
 * score each point by IPC, time-to-market, and chip-creation cost, and
 * locate the IPC/TTM- and IPC/cost-optimal configurations.
 */

#include <cstdint>
#include <vector>

#include "econ/cost_model.hh"
#include "sim/ariane.hh"
#include "sim/ipc_model.hh"
#include "sim/miss_curves.hh"
#include "support/outcome.hh"
#include "support/retry.hh"
#include "support/threadpool.hh"
#include "support/units.hh"
#include "tech/technology_db.hh"

namespace ttmcas {

class FaultInjector;
class CancellationToken;

/** One (I$, D$) point of the sweep. */
struct CacheDesignPoint
{
    std::uint64_t icache_bytes = 0;
    std::uint64_t dcache_bytes = 0;
    double ipc = 0.0;
    Weeks ttm{0.0};
    Dollars cost{0.0};
    /** Cache share of total die area (the Fig. 6 color axis). */
    double cache_area_fraction = 0.0;

    double ipcPerTtm() const { return ipc / ttm.value(); }
    double ipcPerCost() const { return ipc / cost.value(); }
};

/** Sweep configuration. */
struct CacheSweepOptions
{
    /** Capacities to sweep for both caches (default 1KB..1MB). */
    std::vector<std::uint64_t> sizes_bytes;
    /** Process node of the chip. */
    std::string process = "14nm";
    /** Final chips manufactured. */
    double n_chips = 100e6;
    double tapeout_engineers = 100.0;
    /**
     * Point-evaluation parallelism (threads = 0 uses every core,
     * 1 forces the serial path). Point order and the best-point
     * selections are identical for any thread count.
     */
    ParallelConfig parallel;
    /**
     * Per-point failure handling: Abort (default) or SkipAndRecord,
     * which drops failed grid points from the returned sweep. Point
     * (i, j) has index i * |sizes| + j.
     */
    FailurePolicy failure_policy;
    /** Optional deterministic fault injector; unowned, may be null. */
    const FaultInjector* fault_injector = nullptr;
    /** When non-null, receives the sweep's FailureReport. Unowned. */
    FailureReport* failure_report = nullptr;
    /**
     * Cooperative stop (deadline / SIGINT), checked at chunk
     * granularity; grid points the stop prevented are recorded as
     * Cancelled/DeadlineExceeded failures. Unowned, may be null.
     */
    const CancellationToken* cancel = nullptr;
    /** Per-point retry schedule (support/retry.hh); off by default. */
    RetryPolicy retry;
    /** When non-null, receives the sweep's retry tally. Unowned. */
    RetryStats* retry_stats = nullptr;
};

/** Cache-capacity design-space explorer. */
class CacheSweep
{
  public:
    /**
     * @param db technology snapshot
     * @param instruction_curve suite-average I-stream miss curve
     * @param data_curve suite-average D-stream miss curve
     * @param ipc_model core model used to score IPC
     * @param base chip spec; cache fields are overridden per point
     */
    CacheSweep(TechnologyDb db, MissCurve instruction_curve,
               MissCurve data_curve, IpcModel ipc_model,
               ArianeChipSpec base = {});

    /** Evaluate every (I$, D$) pair. */
    std::vector<CacheDesignPoint>
    sweep(const CacheSweepOptions& options) const;

    /** Evaluate one pair. */
    CacheDesignPoint evaluate(std::uint64_t icache_bytes,
                              std::uint64_t dcache_bytes,
                              const CacheSweepOptions& options) const;

    /** Highest IPC/TTM point (Fig. 5's purple marker). */
    static const CacheDesignPoint&
    bestByIpcPerTtm(const std::vector<CacheDesignPoint>& points);

    /** Highest IPC/cost point (Fig. 5's red marker). */
    static const CacheDesignPoint&
    bestByIpcPerCost(const std::vector<CacheDesignPoint>& points);

  private:
    TechnologyDb _db;
    MissCurve _instruction_curve;
    MissCurve _data_curve;
    IpcModel _ipc_model;
    ArianeChipSpec _base;
};

} // namespace ttmcas

#endif // TTMCAS_OPT_CACHE_OPTIMIZER_HH
