#ifndef TTMCAS_OPT_PARETO_HH
#define TTMCAS_OPT_PARETO_HH

/**
 * @file
 * Pareto-front extraction for multi-objective design-space sweeps
 * (IPC vs TTM vs cost in the cache study; TTM vs cost vs CAS in the
 * chiplet study).
 */

#include <cstddef>
#include <vector>

#include "support/error.hh"

namespace ttmcas {

/** Optimization direction per objective. */
enum class Objective
{
    Minimize,
    Maximize
};

/**
 * Indices of the non-dominated rows of @p scores.
 *
 * @param scores one row per candidate, one column per objective
 * @param directions per-column direction; size must match the rows
 *
 * A row dominates another when it is at least as good in every
 * objective and strictly better in one. Duplicate rows are all kept.
 */
std::vector<std::size_t>
paretoFront(const std::vector<std::vector<double>>& scores,
            const std::vector<Objective>& directions);

/** True when row @p a dominates row @p b under @p directions. */
bool dominates(const std::vector<double>& a, const std::vector<double>& b,
               const std::vector<Objective>& directions);

} // namespace ttmcas

#endif // TTMCAS_OPT_PARETO_HH
