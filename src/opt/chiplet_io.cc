#include "opt/chiplet_io.hh"

#include <cmath>
#include <cstdint>

#include "support/error.hh"

namespace ttmcas {

namespace {

/** Error-collecting field readers: push a message, keep parsing. */

bool
isNumber(const JsonValue& value)
{
    return value.kind() == JsonValue::Kind::Number;
}

double
readNumber(const JsonValue& object, const std::string& key,
           double fallback, const std::string& context,
           std::vector<std::string>& errors)
{
    if (!object.has(key))
        return fallback;
    const JsonValue& value = object.at(key);
    if (!isNumber(value)) {
        errors.push_back(context + "." + key + " must be a number");
        return fallback;
    }
    const double number = value.asNumber();
    if (!std::isfinite(number)) {
        errors.push_back(context + "." + key + " must be finite");
        return fallback;
    }
    return number;
}

void
checkOnlyKeys(const JsonValue& object,
              std::initializer_list<const char*> allowed,
              const std::string& context,
              std::vector<std::string>& errors)
{
    for (const std::string& key : object.keys()) {
        bool known = false;
        for (const char* name : allowed) {
            if (key == name) {
                known = true;
                break;
            }
        }
        if (!known)
            errors.push_back("unknown field '" + key + "' in " +
                             context);
    }
}

/**
 * A non-empty array of integers into @p out, or leave the fallback
 * untouched. Length is capped at kMaxChipletCandidates up front so a
 * hostile million-entry axis fails with one message, not a million.
 */
void
readIntArray(const JsonValue& object, const std::string& key,
             const std::string& context,
             std::vector<std::string>& errors, std::vector<int>& out)
{
    if (!object.has(key))
        return;
    const JsonValue& value = object.at(key);
    if (value.kind() != JsonValue::Kind::Array) {
        errors.push_back(context + "." + key +
                         " must be an array of integers");
        return;
    }
    const auto& items = value.asArray();
    if (items.empty() || items.size() > kMaxChipletCandidates) {
        errors.push_back(context + "." + key + " must have 1 to " +
                         std::to_string(kMaxChipletCandidates) +
                         " entries");
        return;
    }
    std::vector<int> parsed;
    parsed.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        const std::string slot =
            context + "." + key + "[" + std::to_string(i) + "]";
        if (!isNumber(items[i])) {
            errors.push_back(slot + " must be an integer");
            return;
        }
        const double number = items[i].asNumber();
        if (!std::isfinite(number) || number != std::floor(number) ||
            number < -1.0e9 || number > 1.0e9) {
            errors.push_back(slot + " must be an integer");
            return;
        }
        parsed.push_back(static_cast<int>(number));
    }
    out = std::move(parsed);
}

/** A non-empty array of finite numbers, same contract as readIntArray. */
void
readDoubleArray(const JsonValue& object, const std::string& key,
                const std::string& context,
                std::vector<std::string>& errors,
                std::vector<double>& out)
{
    if (!object.has(key))
        return;
    const JsonValue& value = object.at(key);
    if (value.kind() != JsonValue::Kind::Array) {
        errors.push_back(context + "." + key +
                         " must be an array of numbers");
        return;
    }
    const auto& items = value.asArray();
    if (items.empty() || items.size() > kMaxChipletCandidates) {
        errors.push_back(context + "." + key + " must have 1 to " +
                         std::to_string(kMaxChipletCandidates) +
                         " entries");
        return;
    }
    std::vector<double> parsed;
    parsed.reserve(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        const std::string slot =
            context + "." + key + "[" + std::to_string(i) + "]";
        if (!isNumber(items[i]) ||
            !std::isfinite(items[i].asNumber())) {
            errors.push_back(slot + " must be a finite number");
            return;
        }
        parsed.push_back(items[i].asNumber());
    }
    out = std::move(parsed);
}

void
parseTierOverride(const JsonValue& value, const std::string& context,
                  ChipletCostParams& cost,
                  std::vector<std::string>& errors)
{
    if (value.kind() != JsonValue::Kind::Object) {
        errors.push_back(context + " must be an object");
        return;
    }
    checkOnlyKeys(value,
                  {"cost_per_mm2", "fixed_cost",
                   "bond_cost_per_chiplet", "bond_yield", "design_nre"},
                  context, errors);
    // Start the override from the tier defaults so partial overrides
    // tune one constant without zeroing the rest.
    PackagingTierParams tier = defaultTierParams(cost.tier);
    tier.cost_per_mm2 = readNumber(value, "cost_per_mm2",
                                   tier.cost_per_mm2, context, errors);
    tier.fixed_cost =
        readNumber(value, "fixed_cost", tier.fixed_cost, context, errors);
    tier.bond_cost_per_chiplet =
        readNumber(value, "bond_cost_per_chiplet",
                   tier.bond_cost_per_chiplet, context, errors);
    tier.bond_yield =
        readNumber(value, "bond_yield", tier.bond_yield, context, errors);
    tier.design_nre =
        readNumber(value, "design_nre", tier.design_nre, context, errors);
    cost.tier_override = tier;
}

void
parseCost(const JsonValue& value, ChipletCostParams& cost,
          std::vector<std::string>& errors)
{
    const std::string context = "chiplet.cost";
    if (value.kind() != JsonValue::Kind::Object) {
        errors.push_back(context + " must be an object");
        return;
    }
    // No "spare_chiplets" here on purpose: the redundancy axis owns
    // spares, so pinning them in the cost block is an unknown field.
    checkOnlyKeys(value,
                  {"tier", "tier_override", "kgd_test_cost_per_die",
                   "kgd_test_cost_per_mm2", "field_failure_prob",
                   "ip_nre_per_type", "redundancy_nre_per_spare"},
                  context, errors);
    if (value.has("tier")) {
        const JsonValue& tier = value.at("tier");
        if (tier.kind() != JsonValue::Kind::String) {
            errors.push_back(context + ".tier must be a string");
        } else if (const auto parsed =
                       parsePackagingTier(tier.asString())) {
            cost.tier = *parsed;
        } else {
            errors.push_back(context +
                             ".tier must be one of \"organic\", "
                             "\"interposer\", \"fanout\"");
        }
    }
    // Tier must be settled before the override snapshots its defaults.
    if (value.has("tier_override"))
        parseTierOverride(value.at("tier_override"),
                          context + ".tier_override", cost, errors);
    cost.kgd_test_cost_per_die =
        readNumber(value, "kgd_test_cost_per_die",
                   cost.kgd_test_cost_per_die, context, errors);
    cost.kgd_test_cost_per_mm2 =
        readNumber(value, "kgd_test_cost_per_mm2",
                   cost.kgd_test_cost_per_mm2, context, errors);
    cost.field_failure_prob =
        readNumber(value, "field_failure_prob",
                   cost.field_failure_prob, context, errors);
    cost.ip_nre_per_type = readNumber(value, "ip_nre_per_type",
                                      cost.ip_nre_per_type, context,
                                      errors);
    cost.redundancy_nre_per_spare =
        readNumber(value, "redundancy_nre_per_spare",
                   cost.redundancy_nre_per_spare, context, errors);
}

} // namespace

ChipletSpecParse
parseChipletSweepSpec(const JsonValue& value)
{
    ChipletSpecParse parse;
    std::vector<std::string>& errors = parse.errors;
    if (value.kind() != JsonValue::Kind::Object) {
        errors.push_back("chiplet spec must be a JSON object");
        return parse;
    }
    checkOnlyKeys(value,
                  {"partitions", "nodes", "redundancy",
                   "split_fractions", "secondary_node", "cost"},
                  "chiplet", errors);
    ChipletSweepSpec& spec = parse.spec;
    readIntArray(value, "partitions", "chiplet", errors,
                 spec.partitions);
    if (value.has("nodes")) {
        const JsonValue& nodes = value.at("nodes");
        if (nodes.kind() != JsonValue::Kind::Array) {
            errors.push_back(
                "chiplet.nodes must be an array of strings");
        } else if (nodes.asArray().empty() ||
                   nodes.asArray().size() > kMaxChipletCandidates) {
            errors.push_back("chiplet.nodes must have 1 to " +
                             std::to_string(kMaxChipletCandidates) +
                             " entries");
        } else {
            for (std::size_t i = 0; i < nodes.asArray().size(); ++i) {
                const JsonValue& node = nodes.asArray()[i];
                if (node.kind() != JsonValue::Kind::String) {
                    errors.push_back("chiplet.nodes[" +
                                     std::to_string(i) +
                                     "] must be a string");
                    spec.nodes.clear();
                    break;
                }
                spec.nodes.push_back(node.asString());
            }
        }
    }
    readIntArray(value, "redundancy", "chiplet", errors,
                 spec.redundancy);
    readDoubleArray(value, "split_fractions", "chiplet", errors,
                    spec.split_fractions);
    if (value.has("secondary_node")) {
        const JsonValue& node = value.at("secondary_node");
        if (node.kind() != JsonValue::Kind::String)
            errors.push_back("chiplet.secondary_node must be a string");
        else
            spec.secondary_node = node.asString();
    }
    if (value.has("cost"))
        parseCost(value.at("cost"), spec.cost, errors);
    // Semantic validation only once the document itself was sound;
    // structural errors already name the offending fields.
    if (errors.empty()) {
        for (const std::string& violation : spec.violations())
            errors.push_back("chiplet: " + violation);
    }
    return parse;
}

ChipletSpecParse
parseChipletSweepSpecText(const std::string& text,
                          const JsonLimits& limits)
{
    JsonValue document;
    try {
        document = parseJson(text, limits);
    } catch (const ModelError& error) {
        ChipletSpecParse parse;
        parse.errors.push_back(std::string("malformed-json: ") +
                               error.what());
        return parse;
    }
    return parseChipletSweepSpec(document);
}

void
writeChipletParetoResult(JsonWriter& json,
                         const ChipletParetoResult& result)
{
    json.beginObject();
    json.field("candidates_requested",
               static_cast<std::uint64_t>(result.candidates_requested));
    json.field("candidates_completed",
               static_cast<std::uint64_t>(result.candidates_completed));
    json.key("points");
    json.beginArray();
    for (const ChipletPoint& point : result.points) {
        json.beginObject();
        json.field("index", static_cast<std::uint64_t>(point.index));
        json.field("partitions",
                   static_cast<std::uint64_t>(
                       point.candidate.partitions));
        json.field("node", point.candidate.node);
        json.field("spares",
                   static_cast<std::uint64_t>(point.candidate.spares));
        json.field("split_fraction", point.candidate.split_fraction);
        json.field("ttm_weeks", point.ttm_weeks);
        json.field("cas", point.cas);
        json.field("cost", point.cost);
        json.endObject();
    }
    json.endArray();
    json.key("frontier");
    json.beginArray();
    for (std::size_t index : result.frontier)
        json.value(static_cast<std::uint64_t>(index));
    json.endArray();
    json.endObject();
}

} // namespace ttmcas
