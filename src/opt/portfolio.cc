#include "opt/portfolio.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>

#include "stats/fault_injection.hh"
#include "support/cancel.hh"
#include "support/error.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace ttmcas {

std::size_t
PortfolioPlan::onTimeCount() const
{
    std::size_t count = 0;
    for (const auto& assignment : assignments) {
        if (assignment.onTime())
            ++count;
    }
    return count;
}

PortfolioPlanner::PortfolioPlanner(TtmModel model)
    : PortfolioPlanner(std::move(model), Options{})
{}

PortfolioPlanner::PortfolioPlanner(TtmModel model, Options options)
    : _model(std::move(model)), _options(std::move(options))
{
    TTMCAS_REQUIRE(_options.max_moves >= 0,
                   "move budget must be >= 0");
}

std::vector<std::string>
PortfolioPlanner::candidates() const
{
    if (!_options.candidate_nodes.empty())
        return _options.candidate_nodes;
    return _model.technology().availableNames();
}

PortfolioPlan
PortfolioPlanner::evaluateAssignment(
    const std::vector<PortfolioProduct>& products,
    const std::vector<std::string>& nodes) const
{
    TTMCAS_REQUIRE(products.size() == nodes.size(),
                   "one node per product required");
    TTMCAS_REQUIRE(!products.empty(), "portfolio must not be empty");

    // Group products by node and split each node's capacity.
    std::map<std::string, std::vector<std::size_t>> by_node;
    for (std::size_t i = 0; i < products.size(); ++i)
        by_node[nodes[i]].push_back(i);

    const AllocationPlanner allocator(_model);
    PortfolioPlan plan;
    plan.assignments.resize(products.size());

    for (const auto& [node, indices] : by_node) {
        std::vector<FoundryCustomer> customers;
        customers.reserve(indices.size());
        for (std::size_t index : indices) {
            FoundryCustomer customer;
            customer.name = products[index].name;
            customer.design =
                retargetDesign(products[index].design, node);
            customer.n_chips = products[index].n_chips;
            customers.push_back(std::move(customer));
        }
        const auto outcomes =
            allocator.minMakespanAllocation(customers, node);
        for (std::size_t k = 0; k < indices.size(); ++k) {
            const std::size_t index = indices[k];
            PortfolioAssignment assignment;
            assignment.product = products[index].name;
            assignment.node = node;
            assignment.share = outcomes[k].share;
            assignment.ttm = outcomes[k].ttm;
            assignment.deadline = products[index].deadline;
            plan.assignments[index] = std::move(assignment);
        }
    }

    plan.total_weighted_lateness = 0.0;
    for (std::size_t i = 0; i < products.size(); ++i) {
        plan.total_weighted_lateness +=
            products[i].weight *
            plan.assignments[i].lateness().value();
    }
    return plan;
}

PortfolioPlan
PortfolioPlanner::plan(const std::vector<PortfolioProduct>& products) const
{
    TTMCAS_REQUIRE(!products.empty(), "portfolio must not be empty");
    for (const auto& product : products) {
        TTMCAS_REQUIRE(product.n_chips > 0.0,
                       "product '" + product.name +
                           "' needs a positive volume");
        TTMCAS_REQUIRE(product.weight > 0.0,
                       "product '" + product.name +
                           "' needs a positive weight");
        TTMCAS_REQUIRE(product.deadline.value() > 0.0,
                       "product '" + product.name +
                           "' needs a positive deadline");
    }
    const std::vector<std::string> nodes = candidates();
    TTMCAS_REQUIRE(!nodes.empty(), "no candidate nodes");

    const obs::ScopedSpan span("opt", "PortfolioPlanner::plan");
    static const obs::Counter seed_counter("opt.portfolio_seed_points");
    static const obs::Counter move_counter("opt.portfolio_moves");

    // Seed: each product's best node assuming a private line. The
    // product x node TTM matrix is evaluated in parallel (infinity =
    // die does not fit); the per-product argmin scans stay serial so
    // ties break identically for any thread count.
    const std::size_t node_count = nodes.size();
    const std::size_t seed_points = products.size() * node_count;
    const FaultInjector* injector = _options.fault_injector;
    const bool isolated = _options.failure_policy.skips() ||
                          _options.failure_report != nullptr ||
                          (injector != nullptr && injector->enabled()) ||
                          _options.cancel != nullptr;
    std::vector<double> seed_ttm;
    if (!isolated) {
        seed_ttm = parallelMap<double>(
            _options.parallel, seed_points, [&](std::size_t flat) {
                seed_counter.increment();
                const PortfolioProduct& product =
                    products[flat / node_count];
                const std::string& node = nodes[flat % node_count];
                try {
                    return _model
                        .evaluate(retargetDesign(product.design, node),
                                  product.n_chips)
                        .total()
                        .value();
                } catch (const ModelError&) {
                    return std::numeric_limits<double>::infinity();
                }
            });
    } else {
        // Isolated path: infeasibility (ModelError: die fit, dead
        // node) stays a clean infinity sentinel exactly like the fast
        // path; only numeric faults — NumericError from the model's
        // finiteOr guards or an injected fault — become diagnostics.
        std::vector<Outcome<double>> outcomes(seed_points);
        parallelFor(
            _options.parallel, seed_points,
            [&](std::size_t begin, std::size_t end) {
                for (std::size_t flat = begin; flat < end; ++flat) {
                    outcomes[flat] = guardedPoint(flat, [&]() -> double {
                        if (injector != nullptr &&
                            injector->armedAt(flat)) {
                            return finiteOr(injector->faultValue(flat),
                                            DiagCode::NonFiniteTtm,
                                            "PortfolioPlanner::plan");
                        }
                        const PortfolioProduct& product =
                            products[flat / node_count];
                        const std::string& node = nodes[flat % node_count];
                        try {
                            return _model
                                .evaluate(
                                    retargetDesign(product.design, node),
                                    product.n_chips)
                                .total()
                                .value();
                        } catch (const NumericError&) {
                            throw;
                        } catch (const ModelError&) {
                            return std::numeric_limits<
                                double>::infinity();
                        }
                    });
                }
                seed_counter.add(end - begin);
            },
            _options.cancel);
        if (_options.cancel != nullptr &&
            _options.cancel->stopRequested()) {
            markUnevaluated(outcomes, *_options.cancel,
                            "PortfolioPlanner::plan");
        }
        enforcePolicy(outcomes, _options.failure_policy,
                      _options.failure_report, "PortfolioPlanner::plan");
        seed_ttm.reserve(seed_points);
        for (const Outcome<double>& outcome : outcomes) {
            // A failed point is not a seed candidate, like a non-fit.
            seed_ttm.push_back(
                outcome.valueOr(std::numeric_limits<double>::infinity()));
        }
    }
    std::vector<std::string> assignment;
    for (std::size_t i = 0; i < products.size(); ++i) {
        std::string best;
        double best_ttm = 0.0;
        for (std::size_t m = 0; m < node_count; ++m) {
            const double ttm = seed_ttm[i * node_count + m];
            if (std::isinf(ttm))
                continue; // die does not fit at this node
            if (best.empty() || ttm < best_ttm) {
                best = nodes[m];
                best_ttm = ttm;
            }
        }
        TTMCAS_REQUIRE(!best.empty(),
                       "product '" + products[i].name +
                           "' fits no candidate node");
        assignment.push_back(best);
    }

    PortfolioPlan best_plan = evaluateAssignment(products, assignment);

    // Local search: single-product moves, first-improvement. A
    // cooperative stop between moves keeps the best plan found so
    // far — every intermediate plan is a complete, feasible plan, so
    // there is nothing partial to discard.
    int moves = 0;
    bool improved = true;
    while (improved && moves < _options.max_moves) {
        improved = false;
        if (_options.cancel != nullptr &&
            _options.cancel->stopRequested())
            break;
        for (std::size_t i = 0;
             i < products.size() && moves < _options.max_moves; ++i) {
            if (_options.cancel != nullptr &&
                _options.cancel->stopRequested())
                break;
            for (const std::string& node : nodes) {
                if (node == assignment[i])
                    continue;
                std::vector<std::string> trial = assignment;
                trial[i] = node;
                PortfolioPlan trial_plan;
                try {
                    trial_plan = evaluateAssignment(products, trial);
                } catch (const ModelError&) {
                    continue; // move infeasible (die fit, dead node)
                }
                ++moves;
                move_counter.increment();
                if (trial_plan.total_weighted_lateness <
                    best_plan.total_weighted_lateness - 1e-9) {
                    best_plan = std::move(trial_plan);
                    assignment = std::move(trial);
                    improved = true;
                    break;
                }
            }
        }
    }
    return best_plan;
}

} // namespace ttmcas
