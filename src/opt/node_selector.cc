#include "opt/node_selector.hh"

#include <algorithm>
#include <cmath>

#include "support/error.hh"

namespace ttmcas {

NodeSelector::NodeSelector(TtmModel ttm_model, CostModel cost_model)
    : _ttm_model(ttm_model), _cas_model(std::move(ttm_model)),
      _cost_model(std::move(cost_model))
{}

std::vector<NodeScore>
NodeSelector::rank(const ChipDesign& design, double n_chips,
                   const ObjectiveWeights& weights,
                   const MarketConditions& market) const
{
    TTMCAS_REQUIRE(weights.ttm >= 0.0 && weights.cost >= 0.0 &&
                       weights.cas >= 0.0,
                   "objective weights must be >= 0");
    const double weight_sum = weights.ttm + weights.cost + weights.cas;
    TTMCAS_REQUIRE(weight_sum > 0.0,
                   "at least one objective weight must be positive");

    std::vector<NodeScore> scores;
    for (const std::string& node :
         _ttm_model.technology().availableNames()) {
        if (market.capacityFactor(node) <= 0.0)
            continue;
        const ChipDesign candidate = retargetDesign(design, node);
        NodeScore entry;
        entry.node = node;
        entry.ttm =
            _ttm_model.evaluate(candidate, n_chips, market).total();
        entry.cost = _cost_model.evaluate(candidate, n_chips).total();
        entry.cas = _cas_model.cas(candidate, n_chips, market);
        scores.push_back(std::move(entry));
    }
    TTMCAS_REQUIRE(!scores.empty(),
                   "no node is in production under these conditions");

    double best_ttm = scores.front().ttm.value();
    double best_cost = scores.front().cost.value();
    double best_cas = scores.front().cas;
    for (const NodeScore& entry : scores) {
        best_ttm = std::min(best_ttm, entry.ttm.value());
        best_cost = std::min(best_cost, entry.cost.value());
        best_cas = std::max(best_cas, entry.cas);
    }

    for (NodeScore& entry : scores) {
        const double ttm_ratio = best_ttm / entry.ttm.value();
        const double cost_ratio = best_cost / entry.cost.value();
        const double cas_ratio = entry.cas / best_cas;
        entry.score = std::pow(ttm_ratio, weights.ttm / weight_sum) *
                      std::pow(cost_ratio, weights.cost / weight_sum) *
                      std::pow(cas_ratio, weights.cas / weight_sum);
    }
    std::stable_sort(scores.begin(), scores.end(),
                     [](const NodeScore& a, const NodeScore& b) {
                         return a.score > b.score;
                     });
    return scores;
}

std::vector<InterposerChoice>
sweepInterposerNodes(const TtmModel& ttm_model, const CostModel& costs,
                     const std::function<ChipDesign(const std::string&)>&
                         design_with_interposer,
                     double n_chips,
                     const std::vector<std::string>& candidates)
{
    TTMCAS_REQUIRE(!candidates.empty(),
                   "need at least one interposer candidate");
    const CasModel cas(ttm_model);
    std::vector<InterposerChoice> choices;
    for (const std::string& node : candidates) {
        const ChipDesign design = design_with_interposer(node);
        InterposerChoice choice;
        choice.interposer_node = node;
        choice.ttm = ttm_model.evaluate(design, n_chips).total();
        choice.cost = costs.evaluate(design, n_chips).total();
        choice.cas = cas.cas(design, n_chips);
        choices.push_back(std::move(choice));
    }
    return choices;
}

} // namespace ttmcas
