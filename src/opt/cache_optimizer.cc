#include "opt/cache_optimizer.hh"

#include <algorithm>

#include "core/ttm_model.hh"
#include "stats/fault_injection.hh"
#include "support/cancel.hh"
#include "support/error.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace ttmcas {

CacheSweep::CacheSweep(TechnologyDb db, MissCurve instruction_curve,
                       MissCurve data_curve, IpcModel ipc_model,
                       ArianeChipSpec base)
    : _db(std::move(db)), _instruction_curve(std::move(instruction_curve)),
      _data_curve(std::move(data_curve)), _ipc_model(ipc_model), _base(base)
{
    TTMCAS_REQUIRE(!_db.empty(), "CacheSweep needs a technology db");
}

CacheDesignPoint
CacheSweep::evaluate(std::uint64_t icache_bytes, std::uint64_t dcache_bytes,
                     const CacheSweepOptions& options) const
{
    ArianeChipSpec spec = _base;
    spec.icache_bytes = icache_bytes;
    spec.dcache_bytes = dcache_bytes;

    TtmModel::Options model_options;
    model_options.tapeout_engineers = options.tapeout_engineers;
    const TtmModel ttm_model(_db, model_options);
    const CostModel cost_model(_db);

    const ChipDesign design = makeArianeChip(spec, options.process);

    CacheDesignPoint point;
    point.icache_bytes = icache_bytes;
    point.dcache_bytes = dcache_bytes;
    point.ipc = _ipc_model.ipcAt(_instruction_curve, _data_curve,
                                 icache_bytes, dcache_bytes);
    point.ttm = ttm_model.evaluate(design, options.n_chips).total();
    point.cost = cost_model.evaluate(design, options.n_chips).total();
    point.cache_area_fraction = spec.cores * spec.cacheTransistorsPerCore() /
                                spec.totalTransistors();
    return point;
}

std::vector<CacheDesignPoint>
CacheSweep::sweep(const CacheSweepOptions& options) const
{
    const obs::ScopedSpan span("sweep", "CacheSweep::sweep");
    static const obs::Counter points_evaluated("sweep.points");

    const std::vector<std::uint64_t> sizes =
        options.sizes_bytes.empty() ? MissCurveOptions::paperSizes()
                                    : options.sizes_bytes;

    // Evaluate the grid in parallel; point (i, j) lands in slot
    // i * |sizes| + j, so the returned order matches the serial
    // nested-loop sweep exactly.
    const std::size_t count = sizes.size();
    const std::size_t total = count * count;
    const FaultInjector* injector = options.fault_injector;
    const bool resilient =
        options.cancel != nullptr || options.retry.enabled();
    const bool isolated = options.failure_policy.skips() ||
                          options.failure_report != nullptr ||
                          (injector != nullptr && injector->enabled()) ||
                          resilient;
    if (!isolated) {
        return parallelMap<CacheDesignPoint>(
            options.parallel, total, [&](std::size_t flat) {
                points_evaluated.increment();
                return evaluate(sizes[flat / count], sizes[flat % count],
                                options);
            });
    }

    // Isolated path: each grid point evaluates into an Outcome slot;
    // failed points are dropped, keeping the survivors' grid order.
    // Each retry attempt re-corrupts the injected input with the
    // attempt number, so transient faults recover deterministically.
    const std::uint32_t max_attempts =
        options.retry.enabled() ? options.retry.max_attempts : 1;
    std::vector<std::uint32_t> attempts(total, 0);
    std::vector<Outcome<CacheDesignPoint>> outcomes(total);
    parallelFor(
        options.parallel, total,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t flat = begin; flat < end; ++flat) {
                for (std::uint32_t attempt = 0; attempt < max_attempts;
                     ++attempt) {
                    if (attempt > 0)
                        options.retry.backoff(attempt - 1, flat);
                    outcomes[flat] = guardedPoint(flat, [&] {
                        CacheSweepOptions point_options = options;
                        if (injector != nullptr) {
                            point_options.n_chips = injector->corruptInput(
                                options.n_chips, flat, attempt);
                        }
                        const CacheDesignPoint point =
                            evaluate(sizes[flat / count],
                                     sizes[flat % count], point_options);
                        finiteOr(point.ipc, DiagCode::NonFiniteOutput,
                                 "CacheSweep::sweep IPC");
                        finiteOr(point.ttm.value(), DiagCode::NonFiniteTtm,
                                 "CacheSweep::sweep TTM");
                        finiteOr(point.cost.value(),
                                 DiagCode::NonFiniteCost,
                                 "CacheSweep::sweep cost");
                        return point;
                    });
                    attempts[flat] = attempt + 1;
                    if (outcomes[flat].ok())
                        break;
                }
            }
            points_evaluated.add(end - begin);
        },
        options.cancel);
    if (options.cancel != nullptr && options.cancel->stopRequested())
        markUnevaluated(outcomes, *options.cancel, "CacheSweep::sweep");
    if (options.retry.enabled()) {
        RetryStats stats;
        for (std::size_t flat = 0; flat < total; ++flat) {
            if (attempts[flat] > 1) {
                ++stats.retried_points;
                stats.extra_attempts += attempts[flat] - 1;
                if (outcomes[flat].ok())
                    ++stats.recovered_points;
            }
            if (!outcomes[flat].ok() && attempts[flat] == max_attempts)
                ++stats.exhausted_points;
        }
        recordRetryMetrics(stats);
        if (options.retry_stats != nullptr)
            *options.retry_stats = stats;
    } else if (options.retry_stats != nullptr) {
        *options.retry_stats = RetryStats{};
    }
    enforcePolicy(outcomes, options.failure_policy, options.failure_report,
                  "CacheSweep::sweep");
    std::vector<CacheDesignPoint> points;
    points.reserve(total);
    for (const Outcome<CacheDesignPoint>& outcome : outcomes) {
        if (outcome.ok())
            points.push_back(outcome.value());
    }
    return points;
}

const CacheDesignPoint&
CacheSweep::bestByIpcPerTtm(const std::vector<CacheDesignPoint>& points)
{
    TTMCAS_REQUIRE(!points.empty(), "empty cache sweep");
    return *std::max_element(points.begin(), points.end(),
                             [](const CacheDesignPoint& a,
                                const CacheDesignPoint& b) {
                                 return a.ipcPerTtm() < b.ipcPerTtm();
                             });
}

const CacheDesignPoint&
CacheSweep::bestByIpcPerCost(const std::vector<CacheDesignPoint>& points)
{
    TTMCAS_REQUIRE(!points.empty(), "empty cache sweep");
    return *std::max_element(points.begin(), points.end(),
                             [](const CacheDesignPoint& a,
                                const CacheDesignPoint& b) {
                                 return a.ipcPerCost() < b.ipcPerCost();
                             });
}

} // namespace ttmcas
