#ifndef TTMCAS_OPT_SPLIT_OPTIMIZER_HH
#define TTMCAS_OPT_SPLIT_OPTIMIZER_HH

/**
 * @file
 * Multi-process chip manufacturing planner (paper Section 7).
 *
 * The methodology tapes out the same architecture on a *primary* and a
 * *secondary* process node in parallel and splits the production
 * volume between them. For a split fraction f:
 *
 *   TTM(f)  = max( TTM_primary(f*n), TTM_secondary((1-f)*n) )
 *   cost(f) = cost_primary(f*n) + cost_secondary((1-f)*n)
 *             (two tapeouts, two mask sets — the methodology's price)
 *   CAS(f)  = Eq. 8 over *both* nodes of the combined TTM function
 *
 * The planner sweeps f and reports the split with the highest CAS,
 * which is how Fig. 14's production-split matrix is generated.
 */

#include <functional>
#include <string>
#include <vector>

#include "core/cas.hh"
#include "core/design.hh"
#include "core/market.hh"
#include "core/ttm_model.hh"
#include "econ/cost_model.hh"
#include "support/outcome.hh"
#include "support/retry.hh"
#include "support/threadpool.hh"

namespace ttmcas {

class FaultInjector;
class CancellationToken;

/** Builds the architecture re-targeted to a given process node. */
using DesignFactory = std::function<ChipDesign(const std::string&)>;

/** A production plan over one or two nodes. */
struct ProductionPlan
{
    std::string primary;
    std::string secondary;        ///< empty for single-process plans
    double primary_fraction = 1.0;
    Weeks ttm{0.0};
    Dollars cost{0.0};
    double cas = 0.0;             ///< normalized (paper scale)

    bool singleProcess() const { return secondary.empty(); }
};

/** Planner over a fixed technology snapshot. */
class SplitPlanner
{
  public:
    struct Options
    {
        double derivative_rel_step = 1e-3;
        double cas_normalization = kCasNormalization;
        /** Candidate split fractions (default 0.01..1.00 step 0.01). */
        std::vector<double> fractions;
        /**
         * TTM tolerance of the CAS optimization (Section 7: "maximize
         * CAS while minimizing time-to-market"). Only fractions whose
         * combined TTM is within (1 + ttm_slack) of the best TTM over
         * the sweep compete on CAS. Without it, Eq. 8 is gamed by
         * binding TTM on a tiny latency-dominated secondary batch:
         * |dTTM/dmuW| collapses to ~0 and CAS diverges even though the
         * plan is strictly slower.
         */
        double ttm_slack = 0.01;
        /**
         * Fraction-sweep parallelism (threads = 0 uses every core,
         * 1 forces the serial path). The returned plan is identical
         * for any thread count: candidates are scored into per-
         * fraction slots and the argmax scan stays serial.
         */
        ParallelConfig parallel;
        /**
         * Per-fraction failure handling in optimizeCas: Abort
         * (default) or SkipAndRecord, which drops failed fractions
         * from the sweep. Point indices [0, F) are the pass-1 TTM
         * evaluations (F = fraction count), [F, 2F) the pass-2 CAS
         * evaluations; the fault injector arms pass-1 points only.
         */
        FailurePolicy failure_policy;
        /** Optional deterministic fault injector; unowned, may be null. */
        const FaultInjector* fault_injector = nullptr;
        /** When non-null, receives the sweep's FailureReport. Unowned. */
        FailureReport* failure_report = nullptr;
        /**
         * Cooperative stop (deadline / SIGINT), checked at chunk
         * granularity. Fractions the stop prevented are recorded as
         * Cancelled/DeadlineExceeded failures and leave the race; when
         * no fraction survives, optimizeCas throws a structured
         * NumericError instead of returning a plan. Unowned.
         */
        const CancellationToken* cancel = nullptr;
        /** Per-point retry schedule (support/retry.hh); off by default. */
        RetryPolicy retry;
        /** When non-null, receives the sweep's retry tally. Unowned. */
        RetryStats* retry_stats = nullptr;
    };

    SplitPlanner(TtmModel model, CostModel costs);
    SplitPlanner(TtmModel model, CostModel costs, Options options);

    /** Combined TTM of a split (max of the two pipelines). */
    Weeks ttm(const DesignFactory& factory, double n_chips,
              const std::string& primary, const std::string& secondary,
              double primary_fraction,
              const MarketConditions& market = {}) const;

    /** Combined chip-creation cost of a split. */
    Dollars cost(const DesignFactory& factory, double n_chips,
                 const std::string& primary, const std::string& secondary,
                 double primary_fraction) const;

    /** Eq. 8 agility of the combined TTM over both nodes. */
    double cas(const DesignFactory& factory, double n_chips,
               const std::string& primary, const std::string& secondary,
               double primary_fraction,
               const MarketConditions& market = {}) const;

    /** Single-process plan (the Fig. 14 diagonal). */
    ProductionPlan singleProcessPlan(const DesignFactory& factory,
                                     double n_chips,
                                     const std::string& process,
                                     const MarketConditions& market = {})
        const;

    /**
     * Sweep split fractions for (primary, secondary) and return the
     * highest-CAS plan, with its TTM and cost filled in.
     */
    ProductionPlan optimizeCas(const DesignFactory& factory, double n_chips,
                               const std::string& primary,
                               const std::string& secondary,
                               const MarketConditions& market = {}) const;

  private:
    double combinedTtmWeeks(const DesignFactory& factory, double n_chips,
                            const std::string& primary,
                            const std::string& secondary,
                            double primary_fraction,
                            const MarketConditions& market) const;

    TtmModel _model;
    CostModel _costs;
    Options _options;
};

} // namespace ttmcas

#endif // TTMCAS_OPT_SPLIT_OPTIMIZER_HH
