#include "opt/chiplet_explorer.hh"

#include <algorithm>
#include <cmath>
#include <optional>
#include <set>
#include <utility>

#include "opt/pareto.hh"
#include "support/cancel.hh"
#include "support/checkpoint.hh"
#include "support/error.hh"

namespace ttmcas {

namespace {

/** Nominal factor vector: every Eq. 1-7 input at its base value. */
constexpr CompiledDesign::Factors kNominalFactors = {1.0, 1.0, 1.0,
                                                    1.0, 1.0, 1.0};

/** Per-candidate evaluation result (the three checkpointed values). */
struct CandidateValue
{
    double ttm = 0.0;
    double cas = 0.0;
    double cost = 0.0;
};

} // namespace

std::size_t
ChipletSweepSpec::candidateCount() const
{
    return partitions.size() * nodes.size() * redundancy.size() *
           split_fractions.size();
}

std::vector<std::string>
ChipletSweepSpec::violations() const
{
    std::vector<std::string> all;
    if (partitions.empty())
        all.push_back("partitions must not be empty");
    for (int count : partitions) {
        if (count < 1 || count > 1024) {
            all.push_back("partitions entries must be within [1, 1024]");
            break;
        }
    }
    if (nodes.empty())
        all.push_back("nodes must not be empty");
    for (const std::string& node : nodes) {
        if (node.empty()) {
            all.push_back("nodes contains an empty node name");
            break;
        }
    }
    if (redundancy.empty())
        all.push_back("redundancy must not be empty");
    for (int spares : redundancy) {
        if (spares < 0 || spares > 16) {
            all.push_back("redundancy entries must be within [0, 16]");
            break;
        }
    }
    if (split_fractions.empty())
        all.push_back("split_fractions must not be empty");
    bool any_split = false;
    for (double fraction : split_fractions) {
        if (!std::isfinite(fraction) || fraction <= 0.0 ||
            fraction > 1.0) {
            all.push_back(
                "split_fractions entries must be finite in (0, 1]");
            break;
        }
        if (fraction < 1.0)
            any_split = true;
    }
    if (any_split && secondary_node.empty())
        all.push_back("split_fractions below 1 require a secondary_node");
    // Per-axis caps first so the cross product cannot overflow
    // (kMaxChipletCandidates^4 still fits 64 bits comfortably).
    if (partitions.size() > kMaxChipletCandidates ||
        nodes.size() > kMaxChipletCandidates ||
        redundancy.size() > kMaxChipletCandidates ||
        split_fractions.size() > kMaxChipletCandidates) {
        all.push_back("each sweep axis must have at most " +
                      std::to_string(kMaxChipletCandidates) +
                      " entries");
    } else if (candidateCount() > kMaxChipletCandidates) {
        all.push_back("candidate grid has " +
                      std::to_string(candidateCount()) +
                      " points, more than the limit of " +
                      std::to_string(kMaxChipletCandidates));
    }
    for (const std::string& violation : cost.violations())
        all.push_back("cost: " + violation);
    return all;
}

ChipletSweepSpec
ChipletSweepSpec::defaultsFor(const std::vector<std::string>& processes)
{
    ChipletSweepSpec spec;
    spec.nodes = processes;
    return spec;
}

ChipletCandidate
candidateAt(const ChipletSweepSpec& spec, std::size_t index)
{
    // Mixed-radix decode, split fastest / partitions slowest: the
    // canonical enumeration every caller (checkpoints, result JSON,
    // cache keys) agrees on.
    ChipletCandidate candidate;
    std::size_t i = index;
    const std::size_t splits = spec.split_fractions.size();
    candidate.split_fraction = spec.split_fractions[i % splits];
    i /= splits;
    const std::size_t spares = spec.redundancy.size();
    candidate.spares = spec.redundancy[i % spares];
    i /= spares;
    const std::size_t nodes = spec.nodes.size();
    candidate.node = spec.nodes[i % nodes];
    i /= nodes;
    candidate.partitions = spec.partitions[i];
    return candidate;
}

ChipletExplorer::ChipletExplorer(TechnologyDb db,
                                 TtmModel::Options model_options,
                                 CostModel::Options cost_options)
    : _db(std::move(db)), _model_options(std::move(model_options)),
      _cost_options(cost_options)
{}

ChipDesign
ChipletExplorer::partitionDesign(const ChipDesign& base, int partitions,
                                 const std::string& node)
{
    TTMCAS_REQUIRE(partitions >= 1, "partitions must be >= 1");
    const double total = base.totalTransistorsPerChip();
    double unique = 0.0;
    for (const Die& die : base.dies)
        unique += die.unique_transistors;

    ChipDesign design;
    design.name = base.name + "-c" + std::to_string(partitions) + "@" +
                  node;
    design.design_time = base.design_time;
    Die chiplet;
    chiplet.name = "chiplet";
    chiplet.process = node;
    // The budget splits evenly across identical chiplets; the type is
    // taped out once, so unique transistors shrink with partitioning
    // (the paper's chiplet-reuse advantage) and clamp to the total.
    chiplet.total_transistors =
        total / static_cast<double>(partitions);
    chiplet.unique_transistors = std::min(
        unique / static_cast<double>(partitions),
        chiplet.total_transistors);
    chiplet.count_per_package = static_cast<double>(partitions);
    design.dies.push_back(std::move(chiplet));
    return design;
}

ChipletParetoResult
ChipletExplorer::run(const ChipDesign& base, double n_chips,
                     const MarketConditions& market,
                     const ChipletSweepSpec& spec,
                     const ChipletExplorerOptions& options) const
{
    {
        const std::vector<std::string> violations = spec.violations();
        if (!violations.empty()) {
            std::string message = "ChipletSweepSpec invalid:";
            for (const std::string& violation : violations)
                message += " " + violation + ";";
            throw ModelError(message);
        }
    }
    {
        // Unknown nodes fail the whole sweep up front, all at once.
        std::set<std::string> unknown;
        for (const std::string& node : spec.nodes) {
            if (!_db.has(node))
                unknown.insert(node);
        }
        if (!spec.secondary_node.empty() && !_db.has(spec.secondary_node))
            unknown.insert(spec.secondary_node);
        if (!unknown.empty()) {
            std::string message = "chiplet sweep nodes unknown to the "
                                  "technology:";
            for (const std::string& node : unknown)
                message += " " + node;
            throw ModelError(message);
        }
    }
    TTMCAS_REQUIRE(n_chips > 0.0 && std::isfinite(n_chips),
                   "number of final chips must be positive");

    const std::size_t count = spec.candidateCount();
    const std::size_t total_points = 3 * count;
    if (options.resume_from != nullptr)
        options.resume_from->requireMatches(kChipletKernelName,
                                            options.seed, total_points);
    if (options.checkpoint != nullptr)
        options.checkpoint->bind(kChipletKernelName, options.seed,
                                 total_points);

    const TtmModel model(_db, _model_options);
    CasModel::Options cas_options;
    cas_options.derivative_rel_step = options.derivative_rel_step;
    cas_options.normalization = options.cas_normalization;
    cas_options.eval_path = options.eval_path;
    const CasModel cas_model(TtmModel(_db, _model_options), cas_options);
    const CostModel costs(_db, _cost_options);

    // One source (node, volume) of a candidate: TTM and CAS on the
    // fab design (spares included — they are fabricated and bonded),
    // cost on the base partitioning with spares as a cost-model knob.
    const auto evaluateSource = [&](const ChipletCandidate& candidate,
                                    const std::string& node,
                                    double volume) {
        CandidateValue value;
        const ChipDesign partitioned =
            partitionDesign(base, candidate.partitions, node);
        ChipDesign fab = partitioned;
        fab.dies[0].count_per_package +=
            static_cast<double>(candidate.spares);

        std::optional<CompiledDesign> compiled;
        if (options.eval_path == EvalPath::kBatch)
            compiled = CompiledDesign::tryCompile(fab, _db,
                                                  _model_options, market,
                                                  volume);

        double ttm = 0.0;
        if (!compiled.has_value() ||
            !compiled->ttmOne(kNominalFactors, &ttm)) {
            ttm = model.evaluate(fab, volume, market).total().value();
        }
        value.ttm = finiteOr(ttm, DiagCode::NonFiniteTtm,
                             "chiplet TTM of '" + fab.name + "'");

        double cas = 0.0;
        if (!compiled.has_value() ||
            !compiled->casOne(kNominalFactors,
                              options.derivative_rel_step,
                              options.cas_normalization, nullptr,
                              &cas)) {
            cas = cas_model.cas(fab, volume, market);
        }
        value.cas = finiteOr(cas, DiagCode::NonFiniteCas,
                             "chiplet CAS of '" + fab.name + "'");

        ChipletCostParams cost_params = spec.cost;
        cost_params.spare_chiplets = candidate.spares;
        value.cost = costs.evaluateChiplet(partitioned, volume,
                                           cost_params)
                         .total()
                         .value();
        return value;
    };

    const auto evaluateCandidate = [&](std::size_t k) {
        const ChipletCandidate candidate = candidateAt(spec, k);
        const double fraction = candidate.split_fraction;
        CandidateValue value =
            evaluateSource(candidate, candidate.node,
                           fraction * n_chips);
        if (fraction < 1.0) {
            // SplitPlanner semantics: slowest pipeline binds TTM, the
            // methodology pays both cost stacks, and Eq. 8 slope sums
            // add across the two pipelines (harmonic CAS).
            const CandidateValue secondary =
                evaluateSource(candidate, spec.secondary_node,
                               (1.0 - fraction) * n_chips);
            value.ttm = std::max(value.ttm, secondary.ttm);
            value.cas = finiteOr(1.0 / (1.0 / value.cas +
                                        1.0 / secondary.cas),
                                 DiagCode::NonFiniteCas,
                                 "chiplet split CAS");
            value.cost += secondary.cost;
        }
        return value;
    };

    std::vector<Outcome<CandidateValue>> outcomes(count);
    std::vector<std::uint32_t> attempts(count, 0);

    parallelFor(
        options.parallel, count,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t k = begin; k < end; ++k) {
                const std::size_t ttm_point = 3 * k;
                const std::size_t cas_point = 3 * k + 1;
                const std::size_t cost_point = 3 * k + 2;
                if (options.resume_from != nullptr &&
                    options.resume_from->has(ttm_point) &&
                    options.resume_from->has(cas_point) &&
                    options.resume_from->has(cost_point)) {
                    outcomes[k] = guardedPoint(k, [&] {
                        CandidateValue value;
                        value.ttm =
                            options.resume_from->value(ttm_point);
                        value.cas =
                            options.resume_from->value(cas_point);
                        value.cost =
                            options.resume_from->value(cost_point);
                        return value;
                    });
                } else {
                    const std::uint32_t max_attempts =
                        std::max<std::uint32_t>(
                            1, options.retry.max_attempts);
                    for (std::uint32_t attempt = 0;
                         attempt < max_attempts; ++attempt) {
                        if (attempt > 0)
                            options.retry.backoff(attempt - 1, k);
                        attempts[k] = attempt + 1;
                        outcomes[k] = guardedPoint(
                            k, [&] { return evaluateCandidate(k); });
                        if (outcomes[k].ok())
                            break;
                        if (options.cancel != nullptr &&
                            options.cancel->stopRequested())
                            break;
                    }
                }
                if (outcomes[k].ok() && options.checkpoint != nullptr) {
                    options.checkpoint->record(
                        ttm_point, outcomes[k].value().ttm);
                    options.checkpoint->record(
                        cas_point, outcomes[k].value().cas);
                    options.checkpoint->record(
                        cost_point, outcomes[k].value().cost);
                }
            }
        },
        options.cancel);

    if (options.cancel != nullptr && options.cancel->stopRequested())
        markUnevaluated(outcomes, *options.cancel, kChipletKernelName);

    // Serial post-passes in index order: retry tally, policy, front.
    RetryStats tally;
    for (std::size_t k = 0; k < count; ++k) {
        if (attempts[k] <= 1)
            continue;
        ++tally.retried_points;
        tally.extra_attempts += attempts[k] - 1;
        if (outcomes[k].ok())
            ++tally.recovered_points;
        else
            ++tally.exhausted_points;
    }
    if (options.retry_stats != nullptr)
        *options.retry_stats = tally;
    recordRetryMetrics(tally);

    enforcePolicy(outcomes, options.failure_policy,
                  options.failure_report, kChipletKernelName);

    ChipletParetoResult result;
    result.candidates_requested = count;
    std::vector<std::vector<double>> scores;
    for (std::size_t k = 0; k < count; ++k) {
        if (!outcomes[k].ok())
            continue;
        const CandidateValue& value = outcomes[k].value();
        ChipletPoint point;
        point.index = k;
        point.candidate = candidateAt(spec, k);
        point.ttm_weeks = value.ttm;
        point.cas = value.cas;
        point.cost = value.cost;
        result.points.push_back(std::move(point));
        scores.push_back({value.ttm, value.cas, value.cost});
    }
    result.candidates_completed = result.points.size();
    if (!scores.empty()) {
        result.frontier = paretoFront(
            scores, {Objective::Minimize, Objective::Maximize,
                     Objective::Minimize});
    }
    return result;
}

} // namespace ttmcas
