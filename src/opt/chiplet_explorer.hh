#ifndef TTMCAS_OPT_CHIPLET_EXPLORER_HH
#define TTMCAS_OPT_CHIPLET_EXPLORER_HH

/**
 * @file
 * Joint TTM/CAS/cost chiplet-economics Pareto explorer.
 *
 * The paper's five case studies compare hand-picked designs one at a
 * time. The explorer instead sweeps a *design space* — partition
 * count x node assignment x redundancy level x production split — and
 * reports the 3-D Pareto frontier over
 *
 *   TTM   (weeks, minimize)    Eq. 1-7 via core/ttm_batch
 *   CAS   (normalized, maximize)  Eq. 8 via casOne/casBatch
 *   cost  ($, minimize)        redundancy-aware chiplet decomposition
 *                              (econ/cost_model evaluateChiplet)
 *
 * A candidate with index k decodes to a pure function of (spec, k):
 * the base architecture's transistor budget is split into `partitions`
 * identical chiplets on `node` (count_per_package = partitions, one
 * tapeout for the type), `spares` extra chiplets are bonded per Liu's
 * redundancy model (they are fabricated and bonded, so they lengthen
 * fab/packaging too — redundancy couples into all three objectives),
 * and a `split_fraction` < 1 second-sources the remainder of the
 * volume on the spec's secondary node with SplitPlanner semantics:
 *
 *   TTM  = max(TTM_primary(f n), TTM_secondary((1-f) n))
 *   cost = cost_primary(f n) + cost_secondary((1-f) n)
 *   CAS  = (1/CAS_primary + 1/CAS_secondary)^(-1)
 *          (slope sums of Eq. 8 add across the two pipelines)
 *
 * Candidates are independent, so the sweep runs through
 * support/threadpool bitwise-identically at any thread count, with
 * the full resilience stack: skip-and-record failure isolation,
 * cooperative cancel/deadline, deterministic retry, and a
 * 3-points-per-candidate checkpoint giving bitwise-identical
 * straight vs killed-and-resumed runs. docs/ECONOMICS.md walks
 * through a complete sweep.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cas.hh"
#include "core/design.hh"
#include "core/market.hh"
#include "core/ttm_batch.hh"
#include "core/ttm_model.hh"
#include "econ/cost_model.hh"
#include "support/outcome.hh"
#include "support/retry.hh"
#include "support/threadpool.hh"
#include "tech/technology_db.hh"

namespace ttmcas {

class CancellationToken;
class SweepCheckpoint;

/** The checkpoint kernel name of chiplet Pareto sweeps. */
inline constexpr const char* kChipletKernelName = "chiplet_pareto";

/** Upper bound on candidates per sweep (grid-explosion guard). */
inline constexpr std::size_t kMaxChipletCandidates = 4096;

/**
 * The swept design space. Every axis is an explicit list, so the
 * candidate grid is the cross product
 * partitions x nodes x redundancy x split_fractions, enumerated in a
 * canonical order (split fastest, partitions slowest — candidateAt).
 */
struct ChipletSweepSpec
{
    /** Chiplet counts the transistor budget is split into. */
    std::vector<int> partitions = {1, 2, 4};
    /** Candidate process-node assignments for the chiplet type. */
    std::vector<std::string> nodes;
    /** Liu spare-chiplet counts k (see ChipletCostParams). */
    std::vector<int> redundancy = {0, 1};
    /** Production fractions built on the assigned node, each in (0, 1]. */
    std::vector<double> split_fractions = {1.0};
    /** Second-source node for fractions < 1 ("" = single-source only). */
    std::string secondary_node;
    /**
     * Cost-model knobs shared by every candidate; spare_chiplets is
     * overwritten per candidate from the redundancy axis.
     */
    ChipletCostParams cost;

    /** Cross-product size of the grid. */
    std::size_t candidateCount() const;

    /** All-at-once validation (empty = valid). */
    std::vector<std::string> violations() const;

    /** Default sweep over @p processes (a design's nodes). */
    static ChipletSweepSpec
    defaultsFor(const std::vector<std::string>& processes);
};

/** One decoded grid point. */
struct ChipletCandidate
{
    int partitions = 1;
    std::string node;
    int spares = 0;
    double split_fraction = 1.0;

    bool operator==(const ChipletCandidate&) const = default;
};

/**
 * Candidate @p index of the grid — pure function of (spec, index),
 * so any thread and any evaluation order decode identically.
 * Precondition: index < spec.candidateCount().
 */
ChipletCandidate candidateAt(const ChipletSweepSpec& spec,
                             std::size_t index);

/** One evaluated candidate of the sweep. */
struct ChipletPoint
{
    std::size_t index = 0; ///< grid index (candidateAt order)
    ChipletCandidate candidate;
    double ttm_weeks = 0.0;
    double cas = 0.0;  ///< normalized (paper scale)
    double cost = 0.0; ///< total $, NRE + manufacturing

    bool operator==(const ChipletPoint&) const = default;
};

/** The full sweep output: every completed point plus its frontier. */
struct ChipletParetoResult
{
    std::size_t candidates_requested = 0;
    std::size_t candidates_completed = 0;
    /** Completed candidates in grid-index order. */
    std::vector<ChipletPoint> points;
    /**
     * Indices *into points* of the non-dominated set under
     * (minimize TTM, maximize CAS, minimize cost), in points order.
     */
    std::vector<std::size_t> frontier;

    bool operator==(const ChipletParetoResult&) const = default;
};

/** Knobs of one sweep (mirrors EnsembleOptions). */
struct ChipletExplorerOptions
{
    /**
     * Sweep identity seed. The sweep itself is deterministic (no
     * sampling); the seed only binds the checkpoint and the cache key
     * so resumed runs must match their parent.
     */
    std::uint64_t seed = 2023;
    /** Candidate-level parallelism; results are thread-count invariant. */
    ParallelConfig parallel;
    /** Per-candidate failure handling (Abort or SkipAndRecord). */
    FailurePolicy failure_policy;
    /** When non-null, receives the run's FailureReport. Unowned. */
    FailureReport* failure_report = nullptr;
    /** Cooperative stop (deadline / SIGINT). Unowned, may be null. */
    const CancellationToken* cancel = nullptr;
    /** Per-candidate retry schedule (support/retry.hh). */
    RetryPolicy retry;
    /** When non-null, receives the retry tally. Unowned. */
    RetryStats* retry_stats = nullptr;
    /**
     * Completed points of an interrupted run (3 per candidate: TTM,
     * CAS, cost), restored bit-exactly. Must match
     * (kChipletKernelName, seed, 3 * candidateCount()). Unowned.
     */
    const SweepCheckpoint* resume_from = nullptr;
    /** When non-null, completed points are recorded here. Unowned. */
    SweepCheckpoint* checkpoint = nullptr;
    /** Central-difference step of the CAS axis (Eq. 8). */
    double derivative_rel_step = 1e-3;
    /** CAS normalization divisor (paper scale). */
    double cas_normalization = kCasNormalization;
    /**
     * Engine of the TTM/CAS axes: compiled batch kernels (default,
     * with exact scalar fallback per candidate) or the scalar oracle.
     * Results are bitwise identical either way.
     */
    EvalPath eval_path = EvalPath::kBatch;
};

/** Sweeps the chiplet design space and prunes dominated points. */
class ChipletExplorer
{
  public:
    /**
     * @param db technology snapshot (copied)
     * @param model_options forwarded to the underlying TtmModel
     * @param cost_options forwarded to the underlying CostModel
     */
    explicit ChipletExplorer(TechnologyDb db,
                             TtmModel::Options model_options = {},
                             CostModel::Options cost_options = {});

    /**
     * Run the sweep. @p base supplies the transistor budget and design
     * time; its own die partitioning is ignored. Throws ModelError
     * when @p spec is invalid, a spec node is unknown to the
     * technology, or a resume checkpoint does not match; per-candidate
     * failures follow options.failure_policy.
     */
    ChipletParetoResult run(const ChipDesign& base, double n_chips,
                            const MarketConditions& market,
                            const ChipletSweepSpec& spec,
                            const ChipletExplorerOptions& options) const;

    /**
     * The synthesized candidate architecture: @p partitions identical
     * chiplets on @p node splitting @p base's transistor budget, one
     * die type (count_per_package = partitions). Spares are *not*
     * included here; run() adds them for fab evaluation and passes
     * them to the cost model as ChipletCostParams::spare_chiplets.
     */
    static ChipDesign partitionDesign(const ChipDesign& base,
                                      int partitions,
                                      const std::string& node);

  private:
    TechnologyDb _db;
    TtmModel::Options _model_options;
    CostModel::Options _cost_options;
};

} // namespace ttmcas

#endif // TTMCAS_OPT_CHIPLET_EXPLORER_HH
