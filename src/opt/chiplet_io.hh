#ifndef TTMCAS_OPT_CHIPLET_IO_HH
#define TTMCAS_OPT_CHIPLET_IO_HH

/**
 * @file
 * JSON wire format of chiplet-sweep configuration and results.
 *
 * The sweep spec crosses the same two trust boundaries as the
 * ensemble spec: `ttm_cli --chiplet-config <file>` reads it from
 * disk, and the `chiplet_pareto` request kind of ttm_serve receives
 * it inside a request line. Both parse through here under
 * JsonLimits::untrustedWire() semantics, and the parser NEVER throws
 * on malformed input: every structural problem (wrong type, unknown
 * key, non-integer partition count, truncated document) and every
 * semantic problem (ChipletSweepSpec::violations) is collected into
 * ChipletSpecParse::errors — the all-at-once violations idiom — so
 * one reply names every defect.
 *
 * Schema (docs/ECONOMICS.md has the annotated version):
 *
 *   {"partitions": [1, 2, 4],
 *    "nodes": ["7nm", "14nm"],
 *    "redundancy": [0, 1],
 *    "split_fractions": [1.0, 0.6],
 *    "secondary_node": "14nm",
 *    "cost": {"tier": "organic",
 *             "tier_override": {"cost_per_mm2": 0.005,
 *                               "fixed_cost": 2.0,
 *                               "bond_cost_per_chiplet": 0.25,
 *                               "bond_yield": 0.99,
 *                               "design_nre": 5.0e5},
 *             "kgd_test_cost_per_die": 0.5,
 *             "kgd_test_cost_per_mm2": 0.02,
 *             "field_failure_prob": 0.01,
 *             "ip_nre_per_type": 2.0e6,
 *             "redundancy_nre_per_spare": 5.0e4}}
 *
 * Every field is optional and keeps the ChipletSweepSpec member
 * default when absent, except "nodes": the spec requires at least one
 * node, so "{}" fails semantic validation with a named violation.
 * "cost" deliberately has no "spare_chiplets" key — the redundancy
 * axis supplies spares per candidate, so a spec that tries to pin
 * them in the cost block gets an unknown-field error instead of a
 * silently ignored knob.
 */

#include <string>
#include <vector>

#include "opt/chiplet_explorer.hh"
#include "support/json.hh"

namespace ttmcas {

/** Result of parsing a sweep spec: spec or all-at-once errors. */
struct ChipletSpecParse
{
    ChipletSweepSpec spec;
    /** Structural + semantic problems; empty means the parse is valid. */
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }
};

/** Parse a spec from an already-parsed JSON value. Never throws. */
ChipletSpecParse parseChipletSweepSpec(const JsonValue& value);

/**
 * Parse a spec from raw text under @p limits (use
 * JsonLimits::untrustedWire() for anything a user or client sent).
 * Never throws: JSON-level failures become errors too.
 */
ChipletSpecParse parseChipletSweepSpecText(const std::string& text,
                                           const JsonLimits& limits);

/**
 * Render @p result as a JSON object (deterministic field order and
 * number formatting, so identical results are byte-identical):
 * candidate counts, every completed point in grid-index order with
 * its decoded candidate, and the frontier as indices into "points".
 */
void writeChipletParetoResult(JsonWriter& json,
                              const ChipletParetoResult& result);

} // namespace ttmcas

#endif // TTMCAS_OPT_CHIPLET_IO_HH
