#ifndef TTMCAS_OPT_NODE_SELECTOR_HH
#define TTMCAS_OPT_NODE_SELECTOR_HH

/**
 * @file
 * Weighted node selection and interposer placement — the paper's
 * closing methodology ("minimizes time-to-market and chip creation
 * costs while maximizing agility") as reusable optimizers.
 *
 * NodeSelector scores every in-production node for a design with a
 * weighted geometric mean of normalized TTM, cost, and CAS, so the
 * three objectives trade off explicitly instead of being eyeballed
 * across three figures. InterposerPlanner generalizes Section 6.5's
 * what-if (moving the Zen 2 interposer from 65nm to 40nm) into a
 * sweep over candidate interposer nodes.
 */

#include <functional>
#include <string>
#include <vector>

#include "core/cas.hh"
#include "core/design.hh"
#include "econ/cost_model.hh"

namespace ttmcas {

/** One node's scored evaluation. */
struct NodeScore
{
    std::string node;
    Weeks ttm{0.0};
    Dollars cost{0.0};
    double cas = 0.0;
    /**
     * Weighted score in (0, 1]: the geometric mean of
     * (best_ttm/ttm)^w_ttm, (best_cost/cost)^w_cost, and
     * (cas/best_cas)^w_cas. 1.0 means best-in-class on every axis.
     */
    double score = 0.0;
};

/** Objective weights (normalized internally; all >= 0, sum > 0). */
struct ObjectiveWeights
{
    double ttm = 1.0;
    double cost = 1.0;
    double cas = 1.0;
};

/** Scores nodes for a re-targetable design. */
class NodeSelector
{
  public:
    NodeSelector(TtmModel ttm_model, CostModel cost_model);

    /**
     * Evaluate @p design re-targeted to every in-production node and
     * rank by the weighted score (best first).
     */
    std::vector<NodeScore>
    rank(const ChipDesign& design, double n_chips,
         const ObjectiveWeights& weights = {},
         const MarketConditions& market = {}) const;

  private:
    TtmModel _ttm_model;
    CasModel _cas_model;
    CostModel _cost_model;
};

/** One interposer-node candidate's evaluation (Section 6.5 sweep). */
struct InterposerChoice
{
    std::string interposer_node;
    Weeks ttm{0.0};
    Dollars cost{0.0};
    double cas = 0.0;
};

/**
 * Sweep interposer nodes for a design factory that takes the
 * interposer node name (e.g. `designs::zen2` with
 * Zen2Config::OriginalWithInterposer) and return the evaluations in
 * candidate order.
 */
std::vector<InterposerChoice>
sweepInterposerNodes(const TtmModel& ttm_model, const CostModel& costs,
                     const std::function<ChipDesign(const std::string&)>&
                         design_with_interposer,
                     double n_chips,
                     const std::vector<std::string>& candidates);

} // namespace ttmcas

#endif // TTMCAS_OPT_NODE_SELECTOR_HH
