#include "opt/pareto.hh"

namespace ttmcas {

bool
dominates(const std::vector<double>& a, const std::vector<double>& b,
          const std::vector<Objective>& directions)
{
    TTMCAS_REQUIRE(a.size() == b.size() && a.size() == directions.size(),
                   "objective arity mismatch");
    bool strictly_better = false;
    for (std::size_t k = 0; k < directions.size(); ++k) {
        const double va = directions[k] == Objective::Maximize ? a[k] : -a[k];
        const double vb = directions[k] == Objective::Maximize ? b[k] : -b[k];
        if (va < vb)
            return false;
        if (va > vb)
            strictly_better = true;
    }
    return strictly_better;
}

std::vector<std::size_t>
paretoFront(const std::vector<std::vector<double>>& scores,
            const std::vector<Objective>& directions)
{
    TTMCAS_REQUIRE(!directions.empty(), "need at least one objective");
    std::vector<std::size_t> front;
    for (std::size_t i = 0; i < scores.size(); ++i) {
        bool dominated = false;
        for (std::size_t j = 0; j < scores.size() && !dominated; ++j) {
            if (i != j && dominates(scores[j], scores[i], directions))
                dominated = true;
        }
        if (!dominated)
            front.push_back(i);
    }
    return front;
}

} // namespace ttmcas
