#include "opt/split_optimizer.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "stats/fault_injection.hh"
#include "support/cancel.hh"
#include "support/error.hh"
#include "support/mathutil.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace ttmcas {

namespace {

std::vector<double>
defaultFractions()
{
    std::vector<double> fractions;
    for (int percent = 1; percent <= 100; ++percent)
        fractions.push_back(percent / 100.0);
    return fractions;
}

} // namespace

SplitPlanner::SplitPlanner(TtmModel model, CostModel costs)
    : SplitPlanner(std::move(model), std::move(costs), Options{})
{}

SplitPlanner::SplitPlanner(TtmModel model, CostModel costs, Options options)
    : _model(std::move(model)), _costs(std::move(costs)),
      _options(std::move(options))
{
    TTMCAS_REQUIRE(_options.derivative_rel_step > 0.0,
                   "derivative step must be positive");
    TTMCAS_REQUIRE(_options.cas_normalization > 0.0,
                   "CAS normalization must be positive");
    TTMCAS_REQUIRE(_options.ttm_slack >= 0.0,
                   "TTM slack must be non-negative");
    if (_options.fractions.empty())
        _options.fractions = defaultFractions();
}

double
SplitPlanner::combinedTtmWeeks(const DesignFactory& factory, double n_chips,
                               const std::string& primary,
                               const std::string& secondary,
                               double primary_fraction,
                               const MarketConditions& market) const
{
    TTMCAS_REQUIRE(primary_fraction > 0.0 && primary_fraction <= 1.0,
                   "primary fraction must be in (0, 1]");
    const double n_primary = n_chips * primary_fraction;
    double weeks = _model.evaluate(factory(primary), n_primary, market)
                       .total()
                       .value();
    if (primary_fraction < 1.0) {
        TTMCAS_REQUIRE(!secondary.empty(),
                       "split plan needs a secondary node");
        const double n_secondary = n_chips * (1.0 - primary_fraction);
        weeks = std::max(
            weeks, _model.evaluate(factory(secondary), n_secondary, market)
                       .total()
                       .value());
    }
    return weeks;
}

Weeks
SplitPlanner::ttm(const DesignFactory& factory, double n_chips,
                  const std::string& primary, const std::string& secondary,
                  double primary_fraction,
                  const MarketConditions& market) const
{
    return Weeks(combinedTtmWeeks(factory, n_chips, primary, secondary,
                                  primary_fraction, market));
}

Dollars
SplitPlanner::cost(const DesignFactory& factory, double n_chips,
                   const std::string& primary, const std::string& secondary,
                   double primary_fraction) const
{
    TTMCAS_REQUIRE(primary_fraction > 0.0 && primary_fraction <= 1.0,
                   "primary fraction must be in (0, 1]");
    Dollars total =
        _costs.evaluate(factory(primary), n_chips * primary_fraction)
            .total();
    if (primary_fraction < 1.0) {
        total += _costs
                     .evaluate(factory(secondary),
                               n_chips * (1.0 - primary_fraction))
                     .total();
    }
    return total;
}

double
SplitPlanner::cas(const DesignFactory& factory, double n_chips,
                  const std::string& primary, const std::string& secondary,
                  double primary_fraction,
                  const MarketConditions& market) const
{
    std::vector<std::string> nodes{primary};
    if (primary_fraction < 1.0)
        nodes.push_back(secondary);

    double slope_sum = 0.0;
    for (const std::string& process : nodes) {
        const ProcessNode& node = _model.technology().node(process);
        const double max_rate = node.waferRate().value();
        TTMCAS_REQUIRE(max_rate > 0.0,
                       "node '" + process + "' has no production");
        const double current = market.effectiveWaferRate(node).value();

        const auto ttm_of_rate = [&](double rate) {
            MarketConditions perturbed = market;
            perturbed.setCapacityFactor(process, rate / max_rate);
            return combinedTtmWeeks(factory, n_chips, primary, secondary,
                                    primary_fraction, perturbed);
        };
        slope_sum += std::fabs(centralDifference(
            ttm_of_rate, current, _options.derivative_rel_step));
    }
    TTMCAS_REQUIRE(slope_sum > 0.0,
                   "combined TTM is insensitive to production rates");
    return 1.0 / slope_sum / _options.cas_normalization;
}

ProductionPlan
SplitPlanner::singleProcessPlan(const DesignFactory& factory, double n_chips,
                                const std::string& process,
                                const MarketConditions& market) const
{
    ProductionPlan plan;
    plan.primary = process;
    plan.primary_fraction = 1.0;
    plan.ttm = ttm(factory, n_chips, process, "", 1.0, market);
    plan.cost = cost(factory, n_chips, process, "", 1.0);
    plan.cas = cas(factory, n_chips, process, "", 1.0, market);
    return plan;
}

ProductionPlan
SplitPlanner::optimizeCas(const DesignFactory& factory, double n_chips,
                          const std::string& primary,
                          const std::string& secondary,
                          const MarketConditions& market) const
{
    TTMCAS_REQUIRE(primary != secondary,
                   "primary and secondary nodes must differ");

    const obs::ScopedSpan obs_span("opt", "SplitPlanner::optimizeCas");
    static const obs::Counter split_points("opt.split_points");

    const std::size_t fraction_count = _options.fractions.size();
    const FaultInjector* injector = _options.fault_injector;
    const bool resilient =
        _options.cancel != nullptr || _options.retry.enabled();
    const bool isolated = _options.failure_policy.skips() ||
                          _options.failure_report != nullptr ||
                          (injector != nullptr && injector->enabled()) ||
                          resilient;
    if (!isolated) {
        // Pass 1: TTM of every candidate split (evaluated in parallel,
        // one slot per fraction), and the best achievable.
        const std::vector<double> ttm_weeks = parallelMap<double>(
            _options.parallel, fraction_count, [&](std::size_t i) {
                split_points.increment();
                return combinedTtmWeeks(factory, n_chips, primary,
                                        secondary, _options.fractions[i],
                                        market);
            });
        double best_ttm = 0.0;
        for (std::size_t i = 0; i < fraction_count; ++i) {
            if (i == 0 || ttm_weeks[i] < best_ttm)
                best_ttm = ttm_weeks[i];
        }
        const double ttm_limit = best_ttm * (1.0 + _options.ttm_slack);

        // Pass 2: score the near-fastest fractions on CAS in parallel;
        // the first-strictly-better argmax scan stays serial so the
        // chosen plan is thread-count independent.
        const double nan = std::numeric_limits<double>::quiet_NaN();
        const std::vector<double> cas_scores = parallelMap<double>(
            _options.parallel, fraction_count, [&](std::size_t i) {
                split_points.increment();
                if (ttm_weeks[i] > ttm_limit)
                    return nan;
                return cas(factory, n_chips, primary, secondary,
                           _options.fractions[i], market);
            });
        ProductionPlan best;
        bool have_best = false;
        for (std::size_t i = 0; i < fraction_count; ++i) {
            if (ttm_weeks[i] > ttm_limit)
                continue;
            const double fraction = _options.fractions[i];
            const double score = cas_scores[i];
            if (!have_best || score > best.cas) {
                best.primary = primary;
                best.secondary = fraction < 1.0 ? secondary : "";
                best.primary_fraction = fraction;
                best.cas = score;
                have_best = true;
            }
        }
        TTMCAS_INVARIANT(have_best, "split sweep evaluated no fractions");
        best.ttm = ttm(factory, n_chips, best.primary,
                       best.singleProcess() ? "" : best.secondary,
                       best.primary_fraction, market);
        best.cost = cost(factory, n_chips, best.primary,
                         best.singleProcess() ? "" : best.secondary,
                         best.primary_fraction);
        return best;
    }

    // Isolated path. Pass 1 evaluates fraction i as point i (where the
    // injector arms); a fraction whose TTM failed — or was never
    // evaluated before a stop — is out of the race but does not abort
    // the sweep.
    const RetryPolicy* retry =
        _options.retry.enabled() ? &_options.retry : nullptr;
    std::vector<std::uint32_t> attempts(2 * fraction_count, 0);
    std::vector<Outcome<double>> ttm_outcomes(fraction_count);
    parallelFor(_options.parallel, fraction_count,
                [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                        ttm_outcomes[i] = guardedScalarPoint(
                            injector, DiagCode::NonFiniteTtm,
                            "SplitPlanner::optimizeCas", i,
                            [&] {
                                return combinedTtmWeeks(
                                    factory, n_chips, primary, secondary,
                                    _options.fractions[i], market);
                            },
                            retry, &attempts[i]);
                    }
                    split_points.add(end - begin);
                },
                _options.cancel);
    double best_ttm = 0.0;
    bool have_ttm = false;
    for (std::size_t i = 0; i < fraction_count; ++i) {
        if (!ttm_outcomes[i].ok())
            continue;
        if (!have_ttm || ttm_outcomes[i].value() < best_ttm)
            best_ttm = ttm_outcomes[i].value();
        have_ttm = true;
    }
    const double ttm_limit = best_ttm * (1.0 + _options.ttm_slack);

    // Pass 2 scores the surviving near-fastest fractions on CAS as
    // points [F, 2F). Fractions out of the race hold a clean NaN
    // sentinel slot (matching the fast path's over-limit marker) so
    // the report's point count stays 2F for any outcome.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    std::vector<Outcome<double>> cas_outcomes(fraction_count);
    parallelFor(_options.parallel, fraction_count,
                [&](std::size_t begin, std::size_t end) {
                    for (std::size_t i = begin; i < end; ++i) {
                        if (!ttm_outcomes[i].ok() ||
                            ttm_outcomes[i].value() > ttm_limit) {
                            cas_outcomes[i] = Outcome<double>::success(nan);
                            continue;
                        }
                        cas_outcomes[i] = guardedScalarPoint(
                            nullptr, DiagCode::NonFiniteCas,
                            "SplitPlanner::optimizeCas",
                            fraction_count + i,
                            [&] {
                                return cas(factory, n_chips, primary,
                                           secondary,
                                           _options.fractions[i], market);
                            },
                            retry, &attempts[fraction_count + i]);
                    }
                    split_points.add(end - begin);
                },
                _options.cancel);

    std::vector<Outcome<double>> all_outcomes = ttm_outcomes;
    all_outcomes.insert(all_outcomes.end(), cas_outcomes.begin(),
                        cas_outcomes.end());
    if (_options.cancel != nullptr && _options.cancel->stopRequested())
        markUnevaluated(all_outcomes, *_options.cancel,
                        "SplitPlanner::optimizeCas");
    if (retry != nullptr) {
        RetryStats stats;
        for (std::size_t p = 0; p < all_outcomes.size(); ++p) {
            if (attempts[p] > 1) {
                ++stats.retried_points;
                stats.extra_attempts += attempts[p] - 1;
                if (all_outcomes[p].ok())
                    ++stats.recovered_points;
            }
            if (!all_outcomes[p].ok() && attempts[p] == retry->max_attempts)
                ++stats.exhausted_points;
        }
        recordRetryMetrics(stats);
        if (_options.retry_stats != nullptr)
            *_options.retry_stats = stats;
    } else if (_options.retry_stats != nullptr) {
        *_options.retry_stats = RetryStats{};
    }
    enforcePolicy(all_outcomes, _options.failure_policy,
                  _options.failure_report, "SplitPlanner::optimizeCas");

    ProductionPlan best;
    bool have_best = false;
    for (std::size_t i = 0; i < fraction_count; ++i) {
        if (!ttm_outcomes[i].ok() || ttm_outcomes[i].value() > ttm_limit ||
            !cas_outcomes[i].ok() || std::isnan(cas_outcomes[i].value()))
            continue;
        const double fraction = _options.fractions[i];
        const double score = cas_outcomes[i].value();
        if (!have_best || score > best.cas) {
            best.primary = primary;
            best.secondary = fraction < 1.0 ? secondary : "";
            best.primary_fraction = fraction;
            best.cas = score;
            have_best = true;
        }
    }
    TTMCAS_REQUIRE(have_best,
                   "SplitPlanner::optimizeCas: no split fraction survived "
                   "failure isolation");
    best.ttm = ttm(factory, n_chips, best.primary,
                   best.singleProcess() ? "" : best.secondary,
                   best.primary_fraction, market);
    best.cost = cost(factory, n_chips, best.primary,
                     best.singleProcess() ? "" : best.secondary,
                     best.primary_fraction);
    return best;
}

} // namespace ttmcas
