#ifndef TTMCAS_STATS_SUMMARY_HH
#define TTMCAS_STATS_SUMMARY_HH

/**
 * @file
 * Summary statistics over Monte-Carlo samples.
 *
 * The paper reports the *average of 1024 samples* plus 95% confidence
 * intervals of the output variance under +/-10% and +/-25% input variance
 * (shown as error bars / shaded regions in Figs. 7, 9, 11, 12). Summary
 * captures all of those quantities from a sample vector.
 */

#include <cstddef>
#include <vector>

namespace ttmcas {

/** Two-sided interval [lo, hi]. */
struct Interval
{
    double lo = 0.0;
    double hi = 0.0;

    double width() const { return hi - lo; }
    bool contains(double x) const { return x >= lo && x <= hi; }
};

/** Sample moments and order statistics of a batch of model outputs. */
struct Summary
{
    std::size_t count = 0;
    double mean = 0.0;
    double variance = 0.0; ///< unbiased (n-1) sample variance
    double stddev = 0.0;
    double min = 0.0;
    double max = 0.0;

    /**
     * Central interval covering @p coverage of the *sample distribution*
     * (e.g. 0.95 -> the [2.5%, 97.5%] percentile band). This is the
     * "output variance 95% CI" plotted in the paper.
     */
    Interval percentileInterval(double coverage) const;

    /** p-th percentile (0 <= p <= 100) by linear interpolation. */
    double percentile(double p) const;

    /**
     * Confidence interval of the *mean* (normal approximation),
     * mean +/- z * stddev / sqrt(n).
     */
    Interval meanConfidence(double coverage = 0.95) const;

    /** Sorted copy of the underlying samples (kept for percentiles). */
    const std::vector<double>& sorted() const { return _sorted; }

    /** Build a summary from raw samples (must be non-empty). */
    static Summary of(std::vector<double> samples);

  private:
    std::vector<double> _sorted;
};

/** Online mean/variance accumulator (Welford). */
class RunningStats
{
  public:
    void add(double value);

    std::size_t count() const { return _count; }
    double mean() const;
    double variance() const; ///< unbiased; requires count >= 2
    double stddev() const;
    double min() const;
    double max() const;

  private:
    std::size_t _count = 0;
    double _mean = 0.0;
    double _m2 = 0.0;
    double _min = 0.0;
    double _max = 0.0;
};

} // namespace ttmcas

#endif // TTMCAS_STATS_SUMMARY_HH
