#ifndef TTMCAS_STATS_FAULT_INJECTION_HH
#define TTMCAS_STATS_FAULT_INJECTION_HH

/**
 * @file
 * Deterministic fault injection for the robustness test suite.
 *
 * A FaultInjector arms a deterministic, random-access subset of a
 * batch's point indices and makes each armed point fail: either by
 * corrupting a model input to NaN/Inf/out-of-domain, by substituting a
 * non-finite evaluation result, or by throwing a ModelError outright.
 * Because arming depends only on (seed, point index) — each point gets
 * its own xoshiro stream derived with the same splitmix64 expansion
 * Rng uses for seeding and stream splits — the injected-fault set is
 * identical for any thread count or evaluation order, and its size is
 * computable up front with armedCount(). The `ctest -L robustness`
 * suite uses that to assert every batch kernel survives injection
 * under FailurePolicy::skipAndRecord and reports *exactly* the
 * injected count.
 */

#include <cstddef>
#include <cstdint>

#include "stats/rng.hh"
#include "support/outcome.hh"
#include "support/retry.hh"

namespace ttmcas {

/** Deterministic per-point fault source. */
class FaultInjector
{
  public:
    /** How an armed point is made to fail. */
    enum class FaultKind : std::uint8_t
    {
        NanValue = 0,    ///< corrupt to quiet NaN
        InfValue = 1,    ///< corrupt to +infinity
        OutOfDomain = 2, ///< corrupt to a negative out-of-domain value
        Throw = 3,       ///< throw NumericError (a ModelError)
    };

    /** Arming configuration. */
    struct Options
    {
        /** Per-point fault probability in [0, 1]. */
        double probability = 0.0;
        /** Seed of the per-point arming streams. */
        std::uint64_t seed = 0xfa017ULL;
        /**
         * Fraction of armed points classified *transient* in [0, 1]
         * (0, the default, keeps every fault permanent — the pre-retry
         * behavior). Classification is a deterministic per-point draw,
         * so the transient subset is identical for any thread count.
         */
        double transient_fraction = 0.0;
        /**
         * Attempts a transient point fails before succeeding: with the
         * default 1 a transient fault fires on attempt 0 and recovers
         * on attempt 1. Permanent faults fire on every attempt.
         */
        std::size_t transient_attempts = 1;
    };

    /** A disarmed injector (probability 0). */
    FaultInjector() = default;

    /** An injector arming points per @p options (validates them). */
    explicit FaultInjector(Options options);

    /** The arming configuration this injector was built with. */
    const Options& options() const { return _options; }

    /** True when the injector can arm any point at all. */
    bool enabled() const { return _options.probability > 0.0; }

    /** True when @p point is armed (depends only on seed and index). */
    bool armedAt(std::size_t point) const;

    /**
     * True when @p point still faults on retry attempt @p attempt
     * (0-based): permanent faults fault on every attempt, transient
     * faults only while attempt < transient_attempts. Pure function
     * of (seed, point, attempt) — never of evaluation order.
     */
    bool armedAt(std::size_t point, std::uint32_t attempt) const;

    /**
     * True when armed @p point is classified transient (would recover
     * after transient_attempts retries). False for unarmed points.
     */
    bool transientAt(std::size_t point) const;

    /** Fault kind of an armed point (cycles through all kinds). */
    FaultKind kindAt(std::size_t point) const;

    /** Number of armed points in [0, n) — the expected failure count. */
    std::size_t armedCount(std::size_t n) const;

    /**
     * Number of points in [0, n) still faulting on retry attempt
     * @p attempt — the expected failure count of a kernel retrying
     * each point up to @p attempt + 1 times.
     */
    std::size_t armedCount(std::size_t n, std::uint32_t attempt) const;

    /**
     * Corrupt a clean model *input* at a point still armed on retry
     * attempt @p attempt: NaN, +Inf, a negative out-of-domain value,
     * or throws NumericError with code InjectedFault. Returns @p clean
     * unchanged when not armed (or recovered by the attempt).
     */
    double corruptInput(double clean, std::size_t point,
                        std::uint32_t attempt = 0) const;

    /**
     * Fabricate a failing evaluation *result* for an armed point: NaN
     * or +Inf (so the kernel's finiteOr boundary guard fires), or
     * throws NumericError with code InjectedFault. Must only be called
     * for armed points.
     */
    double faultValue(std::size_t point) const;

  private:
    Rng pointStream(std::size_t point) const;
    [[noreturn]] void throwInjected(std::size_t point) const;

    Options _options;
};

/**
 * Evaluate one scalar batch point through the full isolation layer:
 * injected faults fire first (when @p injector is non-null and armed),
 * then @p fn runs, then the result passes a finiteOr boundary guard
 * tagged @p nonfinite_code. Every failure mode lands in the returned
 * Outcome as a Diagnostic carrying @p point.
 *
 * With a non-null @p retry the point is re-evaluated up to
 * retry->max_attempts times with retry->backoff() between attempts:
 * the injector's transient faults recover once the attempt count
 * passes their schedule, permanent faults (and deterministic real
 * failures) exhaust every attempt and keep their final Diagnostic.
 * @p attempts_used, when non-null, receives the number of attempts
 * actually made (1 = no retry needed) — kernels collect these in
 * per-point slots and build RetryStats serially, so retry accounting
 * is thread-count invariant.
 */
template <typename Fn>
Outcome<double>
guardedScalarPoint(const FaultInjector* injector, DiagCode nonfinite_code,
                   const char* kernel, std::size_t point, Fn&& fn,
                   const RetryPolicy* retry = nullptr,
                   std::uint32_t* attempts_used = nullptr)
{
    const std::uint32_t max_attempts =
        (retry != nullptr && retry->max_attempts > 0) ? retry->max_attempts
                                                      : 1;
    Outcome<double> outcome;
    for (std::uint32_t attempt = 0; attempt < max_attempts; ++attempt) {
        // attempt > 0 already implies retry != nullptr (max_attempts is
        // 1 otherwise); the explicit check keeps that invariant visible
        // to the optimizer instead of relying on it proving the loop
        // bound.
        if (attempt > 0 && retry != nullptr)
            retry->backoff(attempt - 1, point);
        outcome = guardedPoint(point, [&]() -> double {
            const double value =
                (injector != nullptr && injector->armedAt(point, attempt))
                    ? injector->faultValue(point)
                    : fn();
            return finiteOr(value, nonfinite_code, kernel);
        });
        if (attempts_used != nullptr)
            *attempts_used = attempt + 1;
        if (outcome.ok())
            break;
    }
    return outcome;
}

} // namespace ttmcas

#endif // TTMCAS_STATS_FAULT_INJECTION_HH
