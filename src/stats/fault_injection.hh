#ifndef TTMCAS_STATS_FAULT_INJECTION_HH
#define TTMCAS_STATS_FAULT_INJECTION_HH

/**
 * @file
 * Deterministic fault injection for the robustness test suite.
 *
 * A FaultInjector arms a deterministic, random-access subset of a
 * batch's point indices and makes each armed point fail: either by
 * corrupting a model input to NaN/Inf/out-of-domain, by substituting a
 * non-finite evaluation result, or by throwing a ModelError outright.
 * Because arming depends only on (seed, point index) — each point gets
 * its own xoshiro stream derived with the same splitmix64 expansion
 * Rng uses for seeding and stream splits — the injected-fault set is
 * identical for any thread count or evaluation order, and its size is
 * computable up front with armedCount(). The `ctest -L robustness`
 * suite uses that to assert every batch kernel survives injection
 * under FailurePolicy::skipAndRecord and reports *exactly* the
 * injected count.
 */

#include <cstddef>
#include <cstdint>

#include "stats/rng.hh"
#include "support/outcome.hh"

namespace ttmcas {

/** Deterministic per-point fault source. */
class FaultInjector
{
  public:
    /** How an armed point is made to fail. */
    enum class FaultKind : std::uint8_t
    {
        NanValue = 0,    ///< corrupt to quiet NaN
        InfValue = 1,    ///< corrupt to +infinity
        OutOfDomain = 2, ///< corrupt to a negative out-of-domain value
        Throw = 3,       ///< throw NumericError (a ModelError)
    };

    /** Arming configuration. */
    struct Options
    {
        /** Per-point fault probability in [0, 1]. */
        double probability = 0.0;
        /** Seed of the per-point arming streams. */
        std::uint64_t seed = 0xfa017ULL;
    };

    /** A disarmed injector (probability 0). */
    FaultInjector() = default;

    /** An injector arming points per @p options (validates them). */
    explicit FaultInjector(Options options);

    /** The arming configuration this injector was built with. */
    const Options& options() const { return _options; }

    /** True when the injector can arm any point at all. */
    bool enabled() const { return _options.probability > 0.0; }

    /** True when @p point is armed (depends only on seed and index). */
    bool armedAt(std::size_t point) const;

    /** Fault kind of an armed point (cycles through all kinds). */
    FaultKind kindAt(std::size_t point) const;

    /** Number of armed points in [0, n) — the expected failure count. */
    std::size_t armedCount(std::size_t n) const;

    /**
     * Corrupt a clean model *input* at an armed point: NaN, +Inf, a
     * negative out-of-domain value, or throws NumericError with code
     * InjectedFault. Returns @p clean unchanged when not armed.
     */
    double corruptInput(double clean, std::size_t point) const;

    /**
     * Fabricate a failing evaluation *result* for an armed point: NaN
     * or +Inf (so the kernel's finiteOr boundary guard fires), or
     * throws NumericError with code InjectedFault. Must only be called
     * for armed points.
     */
    double faultValue(std::size_t point) const;

  private:
    Rng pointStream(std::size_t point) const;
    [[noreturn]] void throwInjected(std::size_t point) const;

    Options _options;
};

/**
 * Evaluate one scalar batch point through the full isolation layer:
 * injected faults fire first (when @p injector is non-null and armed),
 * then @p fn runs, then the result passes a finiteOr boundary guard
 * tagged @p nonfinite_code. Every failure mode lands in the returned
 * Outcome as a Diagnostic carrying @p point.
 */
template <typename Fn>
Outcome<double>
guardedScalarPoint(const FaultInjector* injector, DiagCode nonfinite_code,
                   const char* kernel, std::size_t point, Fn&& fn)
{
    return guardedPoint(point, [&]() -> double {
        const double value =
            (injector != nullptr && injector->armedAt(point))
                ? injector->faultValue(point)
                : fn();
        return finiteOr(value, nonfinite_code, kernel);
    });
}

} // namespace ttmcas

#endif // TTMCAS_STATS_FAULT_INJECTION_HH
