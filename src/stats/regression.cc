#include "stats/regression.hh"

#include <cmath>

#include "support/error.hh"

namespace ttmcas {

namespace {

/** Core OLS over pre-transformed coordinates; also reports R^2. */
LinearFit
leastSquares(const std::vector<double>& xs, const std::vector<double>& ys)
{
    const auto n = static_cast<double>(xs.size());
    double sum_x = 0.0, sum_y = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        sum_x += xs[i];
        sum_y += ys[i];
    }
    const double mean_x = sum_x / n;
    const double mean_y = sum_y / n;

    double sxx = 0.0, sxy = 0.0, syy = 0.0;
    for (std::size_t i = 0; i < xs.size(); ++i) {
        const double dx = xs[i] - mean_x;
        const double dy = ys[i] - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    TTMCAS_REQUIRE(sxx > 0.0, "regression x values must not all be equal");

    LinearFit fit;
    fit.slope = sxy / sxx;
    fit.intercept = mean_y - fit.slope * mean_x;
    // R^2 = 1 - SS_res / SS_tot; degenerate all-equal-y data fits exactly.
    if (syy == 0.0) {
        fit.r_squared = 1.0;
    } else {
        double ss_res = 0.0;
        for (std::size_t i = 0; i < xs.size(); ++i) {
            const double resid = ys[i] - fit(xs[i]);
            ss_res += resid * resid;
        }
        fit.r_squared = 1.0 - ss_res / syy;
    }
    return fit;
}

void
checkInput(const std::vector<double>& xs, const std::vector<double>& ys)
{
    TTMCAS_REQUIRE(xs.size() == ys.size(),
                   "regression needs equal-length xs and ys");
    TTMCAS_REQUIRE(xs.size() >= 2, "regression needs at least two points");
    for (std::size_t i = 0; i < xs.size(); ++i) {
        TTMCAS_REQUIRE(std::isfinite(xs[i]) && std::isfinite(ys[i]),
                       "regression points must be finite");
    }
}

} // namespace

double
ExponentialFit::operator()(double x) const
{
    return scale * std::exp(rate * x);
}

double
PowerFit::operator()(double x) const
{
    return scale * std::pow(x, exponent);
}

LinearFit
fitLinear(const std::vector<double>& xs, const std::vector<double>& ys)
{
    checkInput(xs, ys);
    return leastSquares(xs, ys);
}

ExponentialFit
fitExponential(const std::vector<double>& xs, const std::vector<double>& ys)
{
    checkInput(xs, ys);
    std::vector<double> log_ys;
    log_ys.reserve(ys.size());
    for (double y : ys) {
        TTMCAS_REQUIRE(y > 0.0, "exponential fit needs positive y values");
        log_ys.push_back(std::log(y));
    }
    const LinearFit linear = leastSquares(xs, log_ys);

    ExponentialFit fit;
    fit.scale = std::exp(linear.intercept);
    fit.rate = linear.slope;
    fit.r_squared = linear.r_squared;
    return fit;
}

PowerFit
fitPower(const std::vector<double>& xs, const std::vector<double>& ys)
{
    checkInput(xs, ys);
    std::vector<double> log_xs, log_ys;
    log_xs.reserve(xs.size());
    log_ys.reserve(ys.size());
    for (std::size_t i = 0; i < xs.size(); ++i) {
        TTMCAS_REQUIRE(xs[i] > 0.0 && ys[i] > 0.0,
                       "power fit needs positive x and y values");
        log_xs.push_back(std::log(xs[i]));
        log_ys.push_back(std::log(ys[i]));
    }
    const LinearFit linear = leastSquares(log_xs, log_ys);

    PowerFit fit;
    fit.scale = std::exp(linear.intercept);
    fit.exponent = linear.slope;
    fit.r_squared = linear.r_squared;
    return fit;
}

} // namespace ttmcas
