#include "stats/disruption.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "support/error.hh"

namespace ttmcas {

namespace {

/** Event safety cap per path; unreachable for validated alpha < 1. */
constexpr std::size_t kMaxEventsPerPath = 65536;

std::size_t
index(Regime regime)
{
    return static_cast<std::size_t>(regime);
}

/** One splitmix64 step (the Rng seeding/stream-splitting mixer). */
std::uint64_t
splitmix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/** Finite-and-in-range check that appends a violation message. */
void
checkRange(std::vector<std::string>& violations, double value,
           double lo, double hi, const std::string& name)
{
    if (!std::isfinite(value) || value < lo || value > hi)
        violations.push_back(name + " must be a finite number in [" +
                             std::to_string(lo) + ", " +
                             std::to_string(hi) + "]");
}

void
requireValid(const std::vector<std::string>& violations,
             const char* what)
{
    if (violations.empty())
        return;
    std::string message = std::string(what) + " invalid:";
    for (const std::string& violation : violations)
        message += " " + violation + ";";
    throw ModelError(message);
}

/**
 * Seeded Poisson deviate. Knuth multiplication for small means; a
 * clamped normal approximation above (exact distribution does not
 * matter there, determinism and boundedness do).
 */
std::uint64_t
samplePoisson(Rng& rng, double mean)
{
    if (!(mean > 0.0))
        return 0;
    if (mean < 64.0) {
        const double limit = std::exp(-mean);
        std::uint64_t count = 0;
        double product = rng.uniform();
        while (product > limit) {
            ++count;
            product *= rng.uniform();
        }
        return count;
    }
    const double draw =
        std::round(mean + std::sqrt(mean) * rng.normal());
    return draw <= 0.0 ? 0 : static_cast<std::uint64_t>(draw);
}

} // namespace

const char*
regimeName(Regime regime)
{
    switch (regime) {
    case Regime::Nominal: return "nominal";
    case Regime::Constrained: return "constrained";
    case Regime::Outage: return "outage";
    }
    return "unknown";
}

MarkovRegimeParams
MarkovRegimeParams::defaults()
{
    MarkovRegimeParams params;
    params.transition = {{{0.96, 0.03, 0.01},
                          {0.10, 0.85, 0.05},
                          {0.00, 0.25, 0.75}}};
    params.capacity = {1.0, 0.6, 0.0};
    params.recovery_ramp_weeks = 8.0;
    params.recovery_ramp_steps = 4;
    params.initial = Regime::Nominal;
    return params;
}

std::vector<std::string>
MarkovRegimeParams::violations() const
{
    std::vector<std::string> violations;
    for (std::size_t row = 0; row < kRegimeCount; ++row) {
        double sum = 0.0;
        bool row_ok = true;
        for (std::size_t col = 0; col < kRegimeCount; ++col) {
            const double p = transition[row][col];
            if (!std::isfinite(p) || p < 0.0 || p > 1.0) {
                violations.push_back(
                    "markov.transition[" + std::to_string(row) + "][" +
                    std::to_string(col) +
                    "] must be a probability in [0, 1]");
                row_ok = false;
            }
            sum += p;
        }
        if (row_ok && std::abs(sum - 1.0) > 1e-9)
            violations.push_back("markov.transition row " +
                                 std::to_string(row) +
                                 " must sum to 1");
    }
    for (std::size_t r = 0; r < kRegimeCount; ++r)
        checkRange(violations, capacity[r], 0.0, 16.0,
                   std::string("markov.capacity.") +
                       regimeName(static_cast<Regime>(r)));
    if (std::isfinite(capacity[index(Regime::Nominal)]) &&
        capacity[index(Regime::Nominal)] <= 0.0)
        violations.push_back("markov.capacity.nominal must be > 0");
    checkRange(violations, recovery_ramp_weeks, 0.0, 520.0,
               "markov.recovery_ramp_weeks");
    if (recovery_ramp_steps < 1 || recovery_ramp_steps > 64)
        violations.push_back(
            "markov.recovery_ramp_steps must be in [1, 64]");
    return violations;
}

std::array<double, kRegimeCount>
MarkovRegimeParams::stationary() const
{
    requireValid(violations(), "MarkovRegimeParams");
    std::array<double, kRegimeCount> pi{};
    pi.fill(1.0 / static_cast<double>(kRegimeCount));
    for (int iteration = 0; iteration < 4096; ++iteration) {
        std::array<double, kRegimeCount> next{};
        for (std::size_t row = 0; row < kRegimeCount; ++row)
            for (std::size_t col = 0; col < kRegimeCount; ++col)
                next[col] += pi[row] * transition[row][col];
        double delta = 0.0;
        for (std::size_t r = 0; r < kRegimeCount; ++r)
            delta += std::abs(next[r] - pi[r]);
        pi = next;
        if (delta < 1e-14)
            break;
    }
    double total = 0.0;
    for (double p : pi)
        total += p;
    for (double& p : pi)
        p /= total;
    return pi;
}

HawkesParams
HawkesParams::defaults()
{
    HawkesParams params;
    params.mu = 0.02;
    params.alpha = 0.5;
    params.beta = 0.7;
    params.shock_depth_min = 0.4;
    params.shock_depth_max = 0.8;
    params.shock_weeks = 2.0;
    return params;
}

std::vector<std::string>
HawkesParams::violations() const
{
    std::vector<std::string> violations;
    checkRange(violations, mu, 0.0, 8.0, "hawkes.mu");
    if (!std::isfinite(alpha) || alpha < 0.0 || alpha >= 1.0)
        violations.push_back(
            "hawkes.alpha (branching ratio) must be finite in [0, 1)");
    if (!std::isfinite(beta) || beta <= 0.0 || beta > 1000.0)
        violations.push_back("hawkes.beta must be finite in (0, 1000]");
    if (!std::isfinite(shock_depth_min) || shock_depth_min <= 0.0 ||
        shock_depth_min > 1.0)
        violations.push_back(
            "hawkes.shock_depth_min must be finite in (0, 1]");
    if (!std::isfinite(shock_depth_max) || shock_depth_max <= 0.0 ||
        shock_depth_max > 1.0)
        violations.push_back(
            "hawkes.shock_depth_max must be finite in (0, 1]");
    if (std::isfinite(shock_depth_min) && std::isfinite(shock_depth_max) &&
        shock_depth_min > shock_depth_max)
        violations.push_back(
            "hawkes.shock_depth_min must be <= hawkes.shock_depth_max");
    if (!std::isfinite(shock_weeks) || shock_weeks <= 0.0 ||
        shock_weeks > 520.0)
        violations.push_back(
            "hawkes.shock_weeks must be finite in (0, 520]");
    return violations;
}

std::vector<std::string>
DisruptionProcessParams::violations() const
{
    std::vector<std::string> all = markov.violations();
    const std::vector<std::string> hawkes_violations =
        hawkes.violations();
    all.insert(all.end(), hawkes_violations.begin(),
               hawkes_violations.end());
    return all;
}

double
DisruptionPath::meanCapacity() const
{
    if (horizon_weeks <= 0.0 || phases.empty())
        return 1.0;
    double accumulated = 0.0;
    for (std::size_t i = 0; i < phases.size(); ++i) {
        const double start = phases[i].start_week;
        if (start >= horizon_weeks)
            break;
        const double end = i + 1 < phases.size()
                               ? std::min(phases[i + 1].start_week,
                                          horizon_weeks)
                               : horizon_weeks;
        accumulated += phases[i].factor * (end - start);
    }
    return accumulated / horizon_weeks;
}

std::uint64_t
derivePathSeed(std::uint64_t seed, std::uint64_t path_index)
{
    // Decorrelate the seed first, then fold in the path index with the
    // Rng::split() stream constant; two splitmix64 rounds make nearby
    // (seed, index) pairs land on unrelated streams.
    std::uint64_t state = seed;
    const std::uint64_t mixed_seed = splitmix64(state);
    state = mixed_seed ^
            (path_index * 0x9e3779b97f4a7c15ULL + 0xd2b74407b1ce6e93ULL);
    return splitmix64(state);
}

namespace {

/** The regime chain post-processed into ramped capacity phases. */
std::vector<CapacityPhase>
rampedRegimePhases(const DisruptionPath& path,
                   const MarkovRegimeParams& markov)
{
    std::vector<CapacityPhase> phases;
    for (std::size_t i = 0; i < path.segments.size(); ++i) {
        const RegimeSegment& segment = path.segments[i];
        const double start = segment.start_week;
        const double end = i + 1 < path.segments.size()
                               ? path.segments[i + 1].start_week
                               : path.horizon_weeks;
        const double target = markov.capacity[index(segment.regime)];
        const bool after_outage =
            i > 0 && path.segments[i - 1].regime == Regime::Outage;
        const double floor = markov.capacity[index(Regime::Outage)];
        if (after_outage && target > floor &&
            markov.recovery_ramp_weeks > 0.0 &&
            markov.recovery_ramp_steps > 1) {
            const double ramp_len =
                std::min(markov.recovery_ramp_weeks, end - start);
            const int steps = markov.recovery_ramp_steps;
            for (int j = 0; j < steps; ++j) {
                CapacityPhase phase;
                phase.start_week =
                    start + ramp_len * static_cast<double>(j) /
                                static_cast<double>(steps);
                phase.factor =
                    floor + (target - floor) *
                                static_cast<double>(j + 1) /
                                static_cast<double>(steps);
                phases.push_back(phase);
            }
        } else {
            phases.push_back({start, target});
        }
    }
    return phases;
}

double
factorAtPhase(const std::vector<CapacityPhase>& phases, double t)
{
    double factor = phases.empty() ? 1.0 : phases.front().factor;
    for (const CapacityPhase& phase : phases) {
        if (phase.start_week > t)
            break;
        factor = phase.factor;
    }
    return factor;
}

/** Compose ramped regime phases with shock multipliers. */
void
composePhases(DisruptionPath& path, const DisruptionProcessParams& params)
{
    const std::vector<CapacityPhase> regime_phases =
        rampedRegimePhases(path, params.markov);

    std::vector<double> breakpoints;
    breakpoints.push_back(0.0);
    for (const CapacityPhase& phase : regime_phases)
        breakpoints.push_back(phase.start_week);
    for (const DisruptionEvent& event : path.events) {
        breakpoints.push_back(event.time_week);
        const double end = event.time_week + event.duration_weeks;
        if (end < path.horizon_weeks)
            breakpoints.push_back(end);
    }
    std::sort(breakpoints.begin(), breakpoints.end());
    breakpoints.erase(
        std::unique(breakpoints.begin(), breakpoints.end()),
        breakpoints.end());

    path.phases.clear();
    for (const double t : breakpoints) {
        if (t >= path.horizon_weeks)
            continue;
        double factor = factorAtPhase(regime_phases, t);
        for (const DisruptionEvent& event : path.events) {
            if (event.time_week <= t &&
                t < event.time_week + event.duration_weeks)
                factor *= event.depth;
        }
        if (factor < 0.0)
            factor = 0.0;
        if (!path.phases.empty() && path.phases.back().factor == factor)
            continue; // collapse equal-factor neighbours
        path.phases.push_back({t, factor});
    }
    // Beyond the modeled horizon capacity reverts to the nominal
    // factor, so capacity integration always terminates.
    path.phases.push_back({path.horizon_weeks,
                           params.markov.capacity[index(Regime::Nominal)]});
}

} // namespace

DisruptionPath
sampleDisruptionPath(const DisruptionProcessParams& params,
                     double horizon_weeks, double step_weeks,
                     std::uint64_t seed, std::uint64_t path_index)
{
    Rng rng(derivePathSeed(seed, path_index));
    return sampleDisruptionPath(params, horizon_weeks, step_weeks, rng);
}

DisruptionPath
sampleDisruptionPath(const DisruptionProcessParams& params,
                     double horizon_weeks, double step_weeks, Rng& rng)
{
    requireValid(params.violations(), "DisruptionProcessParams");
    if (!std::isfinite(horizon_weeks) || horizon_weeks <= 0.0)
        throw ModelError("disruption horizon_weeks must be finite > 0");
    if (!std::isfinite(step_weeks) || step_weeks <= 0.0 ||
        step_weeks > horizon_weeks)
        throw ModelError(
            "disruption step_weeks must be finite in (0, horizon]");

    DisruptionPath path;
    path.horizon_weeks = horizon_weeks;

    // 1. The regime chain, stepped every step_weeks. All randomness
    // is consumed in a fixed order from the single per-path stream.
    Regime state = params.markov.initial;
    path.segments.push_back({0.0, state});
    const std::size_t steps = static_cast<std::size_t>(
        std::ceil(horizon_weeks / step_weeks));
    for (std::size_t k = 1; k < steps; ++k) {
        const double u = rng.uniform();
        const auto& row = params.markov.transition[index(state)];
        double cumulative = 0.0;
        std::size_t next = kRegimeCount - 1;
        for (std::size_t j = 0; j < kRegimeCount; ++j) {
            cumulative += row[j];
            if (u < cumulative) {
                next = j;
                break;
            }
        }
        const Regime next_regime = static_cast<Regime>(next);
        if (next_regime != state) {
            path.segments.push_back(
                {static_cast<double>(k) * step_weeks, next_regime});
            state = next_regime;
        }
    }
    path.occupancy.fill(0.0);
    for (std::size_t i = 0; i < path.segments.size(); ++i) {
        const double start = path.segments[i].start_week;
        const double end = i + 1 < path.segments.size()
                               ? path.segments[i + 1].start_week
                               : horizon_weeks;
        path.occupancy[index(path.segments[i].regime)] +=
            (end - start) / horizon_weeks;
    }

    // 2. Hawkes shocks via the cluster representation: immigrant
    // arrivals first, then the cascade queue processed front-to-back
    // (FIFO), each event drawing depth, then children, then delays.
    const HawkesParams& hawkes = params.hawkes;
    if (hawkes.mu > 0.0) {
        const std::uint64_t immigrants =
            samplePoisson(rng, hawkes.mu * horizon_weeks);
        std::deque<double> pending;
        for (std::uint64_t i = 0; i < immigrants; ++i)
            pending.push_back(rng.uniform(0.0, horizon_weeks));
        while (!pending.empty()) {
            const double time = pending.front();
            pending.pop_front();
            DisruptionEvent event;
            event.time_week = time;
            event.depth = rng.uniform(hawkes.shock_depth_min,
                                      hawkes.shock_depth_max);
            event.duration_weeks = hawkes.shock_weeks;
            path.events.push_back(event);
            if (path.events.size() > kMaxEventsPerPath)
                throw ModelError(
                    "hawkes cascade exceeded the per-path event cap");
            const std::uint64_t children =
                samplePoisson(rng, hawkes.alpha);
            for (std::uint64_t c = 0; c < children; ++c) {
                const double delay =
                    -std::log1p(-rng.uniform()) / hawkes.beta;
                const double child_time = time + delay;
                if (child_time < horizon_weeks)
                    pending.push_back(child_time);
            }
        }
        std::stable_sort(path.events.begin(), path.events.end(),
                         [](const DisruptionEvent& a,
                            const DisruptionEvent& b) {
                             return a.time_week < b.time_week;
                         });
    }

    // 3. Lower (regime chain + ramps) x (shock multipliers) into one
    // piecewise-constant capacity factor.
    composePhases(path, params);
    return path;
}

double
hawkesIntensity(const HawkesParams& params,
                const std::vector<DisruptionEvent>& events, double t)
{
    double intensity = params.mu;
    for (const DisruptionEvent& event : events) {
        if (event.time_week < t)
            intensity += params.alpha * params.beta *
                         std::exp(-params.beta * (t - event.time_week));
    }
    return intensity;
}

} // namespace ttmcas
