#include "stats/lowdiscrepancy.hh"

#include "support/error.hh"

namespace ttmcas {

std::vector<std::uint32_t>
firstPrimes(std::size_t count)
{
    TTMCAS_REQUIRE(count >= 1, "need at least one prime");
    std::vector<std::uint32_t> primes;
    primes.reserve(count);
    std::uint32_t candidate = 2;
    while (primes.size() < count) {
        bool is_prime = true;
        for (std::uint32_t p : primes) {
            if (p * p > candidate)
                break;
            if (candidate % p == 0) {
                is_prime = false;
                break;
            }
        }
        if (is_prime)
            primes.push_back(candidate);
        ++candidate;
    }
    return primes;
}

HaltonSequence::HaltonSequence(std::size_t dimensions)
    : _bases(firstPrimes(dimensions))
{
    TTMCAS_REQUIRE(dimensions >= 1,
                   "Halton sequence needs at least one dimension");
}

double
HaltonSequence::radicalInverse(std::uint64_t index, std::uint32_t base)
{
    TTMCAS_REQUIRE(base >= 2, "radical inverse base must be >= 2");
    double result = 0.0;
    double digit_weight = 1.0 / base;
    while (index > 0) {
        result += static_cast<double>(index % base) * digit_weight;
        index /= base;
        digit_weight /= base;
    }
    return result;
}

std::vector<double>
HaltonSequence::next()
{
    std::vector<double> point;
    point.reserve(_bases.size());
    for (std::uint32_t base : _bases)
        point.push_back(radicalInverse(_index, base));
    ++_index;
    return point;
}

} // namespace ttmcas
