#ifndef TTMCAS_STATS_SOBOL_HH
#define TTMCAS_STATS_SOBOL_HH

/**
 * @file
 * Variance-based global sensitivity analysis (Sobol 2001).
 *
 * Paper Section 5 and Figure 8: the model's six hardest-to-estimate
 * inputs are varied +/-10% and the *total-effect index* S_T of each
 * input on time-to-market is reported per process node.
 *
 * Implementation: Saltelli's sampling scheme with Jansen's estimators.
 * Two base matrices A and B of N samples each are drawn in the unit
 * hypercube and pushed through the input distributions' quantile
 * functions; for each input i a hybrid matrix A_B^i (A with column i
 * replaced from B) is evaluated. Cost: N * (k + 2) model evaluations.
 *
 *   S_i  = [ (1/N) sum_j f(B)_j * (f(A_B^i)_j - f(A)_j) ] / Var(Y)
 *   S_Ti = [ (1/2N) sum_j (f(A)_j - f(A_B^i)_j)^2 ] / Var(Y)
 */

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "stats/distributions.hh"
#include "support/outcome.hh"
#include "support/retry.hh"
#include "support/threadpool.hh"

namespace ttmcas {

class FaultInjector;
class CancellationToken;
class SweepCheckpoint;

/** One uncertain model input: a label plus its sampling distribution. */
struct SensitivityInput
{
    std::string name;
    const Distribution* distribution = nullptr;
};

/** Configuration for a Sobol run. */
struct SobolOptions
{
    /** Base sample count N; total evaluations are N * (k + 2). */
    std::size_t base_samples = 1024;
    /** RNG seed; identical seeds give identical indices. */
    std::uint64_t seed = 0x5eed5eedULL;
    /**
     * Clip tiny negative index estimates (sampling noise) to zero.
     * True by default because the paper reports indices in [0, 1].
     */
    bool clip_negative = true;
    /**
     * Draw the Saltelli base matrices from a 2k-dimensional Halton
     * sequence instead of the RNG: markedly tighter index estimates
     * at the same N (the seed is then ignored).
     */
    bool use_low_discrepancy = false;
    /**
     * Parallelism of the model-evaluation loops. Sampling and the
     * Jansen-estimator reductions stay serial, so the indices are
     * bitwise-identical to the serial path for any thread count.
     * Serial by default because @p model is caller-supplied: opting
     * into threads > 1 promises the model is safe to call
     * concurrently.
     */
    ParallelConfig parallel = ParallelConfig::serial();
    /**
     * Per-evaluation failure handling: Abort (default) or
     * SkipAndRecord, which drops every base row touched by a failed
     * evaluation and computes the indices over the surviving rows.
     * Evaluation points are indexed f(A)_j = j, f(B)_j = N + j,
     * f(A_B^i)_j = (2 + i) * N + j.
     */
    FailurePolicy failure_policy;
    /** Optional deterministic fault injector; unowned, may be null. */
    const FaultInjector* fault_injector = nullptr;
    /** When non-null, receives the run's FailureReport. Unowned. */
    FailureReport* failure_report = nullptr;
    /**
     * Cooperative stop (deadline / SIGINT), checked at chunk
     * granularity; evaluations the stop prevented are recorded as
     * Cancelled/DeadlineExceeded failures and their base rows dropped
     * like any other failed row. Unowned, may be null.
     */
    const CancellationToken* cancel = nullptr;
    /** Per-evaluation retry schedule (support/retry.hh); off by default. */
    RetryPolicy retry;
    /** When non-null, receives the run's retry tally. Unowned. */
    RetryStats* retry_stats = nullptr;
    /**
     * Completed evaluations from a previous interrupted run, restored
     * bit-exactly by global point index (f(A)_j = j, f(B)_j = N + j,
     * f(A_B^i)_j = (2 + i) * N + j). Must match (kernel, seed,
     * (k + 2) * N points). Unowned, may be null.
     */
    const SweepCheckpoint* resume_from = nullptr;
    /** When non-null, completed evaluations are recorded here. Unowned. */
    SweepCheckpoint* checkpoint = nullptr;
};

/** Result of a Sobol sensitivity analysis. */
struct SobolResult
{
    std::vector<std::string> input_names;
    std::vector<double> first_order;  ///< S_i per input
    std::vector<double> total_effect; ///< S_Ti per input
    double output_mean = 0.0;
    double output_variance = 0.0;
    std::size_t evaluations = 0;

    /** Index of the input with the largest total effect. */
    std::size_t dominantInput() const;
};

/**
 * Row-level evaluations retained for resampling: f(A)_j, f(B)_j, and
 * f(A_B^i)_j for every input i and base row j.
 */
struct SobolRowData
{
    std::vector<double> f_a;
    std::vector<double> f_b;
    /** f_ab[i][j]: input i's hybrid matrix, row j. */
    std::vector<std::vector<double>> f_ab;
};

/** Per-input confidence intervals from a bootstrap over base rows. */
struct SobolConfidence
{
    std::vector<std::pair<double, double>> first_order;  ///< (lo, hi)
    std::vector<std::pair<double, double>> total_effect; ///< (lo, hi)
};

/**
 * Run a Sobol analysis of @p model over @p inputs.
 *
 * @param inputs named input distributions (all pointers non-null)
 * @param model deterministic function of one sample vector (size = #inputs)
 * @param options sampling configuration
 * @param rows when non-null, receives the row-level evaluations so
 *        sobolBootstrapCi can attach confidence intervals without
 *        re-running the model
 */
SobolResult
sobolAnalyze(const std::vector<SensitivityInput>& inputs,
             const std::function<double(const std::vector<double>&)>& model,
             const SobolOptions& options = {},
             SobolRowData* rows = nullptr);

/**
 * Percentile-bootstrap confidence intervals for the indices: base rows
 * are resampled with replacement and the Jansen estimators recomputed
 * per resample. No further model evaluations are needed.
 *
 * @param rows row data captured by sobolAnalyze
 * @param resamples bootstrap replicate count (>= 10)
 * @param coverage central coverage of the intervals, in (0, 1)
 * @param seed resampling RNG seed
 * @param clip_negative clip index replicates at zero, matching
 *        SobolOptions::clip_negative
 * @param parallel resample-loop parallelism; the pick indices are
 *        pre-drawn serially, so the intervals are bitwise-identical
 *        to the serial path for any thread count
 */
SobolConfidence
sobolBootstrapCi(const SobolRowData& rows, std::size_t resamples = 500,
                 double coverage = 0.95, std::uint64_t seed = 0xb007,
                 bool clip_negative = true,
                 const ParallelConfig& parallel = ParallelConfig::serial());

/** Full configuration for sobolBootstrapCi (one resample = one point). */
struct SobolBootstrapOptions
{
    /** Bootstrap replicate count (>= 10). */
    std::size_t resamples = 500;
    /** Central coverage of the intervals, in (0, 1). */
    double coverage = 0.95;
    /** Resampling RNG seed. */
    std::uint64_t seed = 0xb007;
    /** Clip index replicates at zero (see SobolOptions). */
    bool clip_negative = true;
    /** Resample-loop parallelism (picks are pre-drawn serially). */
    ParallelConfig parallel = ParallelConfig::serial();
    /**
     * Per-resample failure handling: Abort (default) or SkipAndRecord,
     * which drops failed replicates from the percentile intervals.
     */
    FailurePolicy failure_policy;
    /** Optional deterministic fault injector; unowned, may be null. */
    const FaultInjector* fault_injector = nullptr;
    /** When non-null, receives the run's FailureReport. Unowned. */
    FailureReport* failure_report = nullptr;
    /**
     * Cooperative stop checked at chunk granularity; replicates the
     * stop prevented are dropped from the percentile intervals (at
     * least two must survive). Unowned, may be null.
     */
    const CancellationToken* cancel = nullptr;
};

/** sobolBootstrapCi with the full option set (failure isolation). */
SobolConfidence sobolBootstrapCi(const SobolRowData& rows,
                                 const SobolBootstrapOptions& options);

} // namespace ttmcas

#endif // TTMCAS_STATS_SOBOL_HH
