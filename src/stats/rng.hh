#ifndef TTMCAS_STATS_RNG_HH
#define TTMCAS_STATS_RNG_HH

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The Monte-Carlo sensitivity machinery (paper Section 5) must be exactly
 * reproducible across platforms and standard-library versions, so we ship
 * our own generator instead of relying on std::mt19937 distributions
 * (whose std::uniform_* implementations are not portable).
 *
 * The generator is xoshiro256** by Blackman & Vigna: 256 bits of state,
 * period 2^256 - 1, excellent statistical quality, and trivially seedable
 * from a single 64-bit value via splitmix64.
 */

#include <array>
#include <cstdint>

namespace ttmcas {

/** xoshiro256** pseudo-random generator with splitmix64 seeding. */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Seed deterministically from a single 64-bit value. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit output. */
    std::uint64_t next();

    /** UniformRandomBitGenerator interface (for std::shuffle etc.). */
    std::uint64_t operator()() { return next(); }
    static constexpr std::uint64_t min() { return 0; }
    static constexpr std::uint64_t max() { return ~0ULL; }

    /** Uniform double in [0, 1) with 53 bits of precision. */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, bound) without modulo bias. */
    std::uint64_t uniformInt(std::uint64_t bound);

    /** Standard normal deviate (Marsaglia polar method). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /**
     * Split off an independent child generator.
     *
     * Parallel sweeps give each lane its own child so results do not
     * depend on evaluation order.
     */
    Rng split();

  private:
    std::array<std::uint64_t, 4> _state;
    bool _have_cached_normal = false;
    double _cached_normal = 0.0;
};

} // namespace ttmcas

#endif // TTMCAS_STATS_RNG_HH
