#include "stats/histogram.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "support/error.hh"
#include "support/strutil.hh"

namespace ttmcas {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : _lo(lo), _hi(hi), _counts(bins, 0)
{
    TTMCAS_REQUIRE(hi > lo, "histogram range must be non-empty");
    TTMCAS_REQUIRE(bins >= 1, "histogram needs at least one bin");
}

void
Histogram::add(double value)
{
    ++_total;
    if (value < _lo) {
        ++_underflow;
        return;
    }
    if (value >= _hi) {
        ++_overflow;
        return;
    }
    const double width = (_hi - _lo) / static_cast<double>(_counts.size());
    auto bin = static_cast<std::size_t>((value - _lo) / width);
    bin = std::min(bin, _counts.size() - 1); // guard FP edge at _hi
    ++_counts[bin];
}

void
Histogram::addAll(const std::vector<double>& values)
{
    for (double v : values)
        add(v);
}

std::size_t
Histogram::count(std::size_t bin) const
{
    TTMCAS_REQUIRE(bin < _counts.size(), "histogram bin out of range");
    return _counts[bin];
}

double
Histogram::binCenter(std::size_t bin) const
{
    TTMCAS_REQUIRE(bin < _counts.size(), "histogram bin out of range");
    const double width = (_hi - _lo) / static_cast<double>(_counts.size());
    return _lo + width * (static_cast<double>(bin) + 0.5);
}

double
Histogram::fraction(std::size_t bin) const
{
    if (_total == 0)
        return 0.0;
    return static_cast<double>(count(bin)) / static_cast<double>(_total);
}

std::string
Histogram::render(std::size_t width) const
{
    const std::size_t peak =
        *std::max_element(_counts.begin(), _counts.end());
    std::ostringstream os;
    for (std::size_t bin = 0; bin < _counts.size(); ++bin) {
        const std::size_t bar =
            peak == 0 ? 0 : _counts[bin] * width / peak;
        os << padLeft(formatFixed(binCenter(bin), 2), 10) << " |"
           << std::string(bar, '#') << " " << _counts[bin] << "\n";
    }
    if (_underflow != 0)
        os << "  underflow: " << _underflow << "\n";
    if (_overflow != 0)
        os << "  overflow:  " << _overflow << "\n";
    return os.str();
}

} // namespace ttmcas
