#include "stats/summary.hh"

#include <algorithm>
#include <cmath>

#include "stats/distributions.hh"
#include "support/error.hh"

namespace ttmcas {

Interval
Summary::percentileInterval(double coverage) const
{
    TTMCAS_REQUIRE(coverage > 0.0 && coverage < 1.0,
                   "coverage must be in (0, 1)");
    const double tail = 100.0 * (1.0 - coverage) / 2.0;
    return Interval{percentile(tail), percentile(100.0 - tail)};
}

double
Summary::percentile(double p) const
{
    TTMCAS_REQUIRE(p >= 0.0 && p <= 100.0, "percentile must be in [0, 100]");
    TTMCAS_REQUIRE(!_sorted.empty(), "percentile of empty summary");
    if (_sorted.size() == 1)
        return _sorted.front();

    const double rank = p / 100.0 * static_cast<double>(_sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = std::min(lo + 1, _sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return _sorted[lo] + frac * (_sorted[hi] - _sorted[lo]);
}

Interval
Summary::meanConfidence(double coverage) const
{
    TTMCAS_REQUIRE(coverage > 0.0 && coverage < 1.0,
                   "coverage must be in (0, 1)");
    TTMCAS_REQUIRE(count > 0, "meanConfidence of empty summary");
    const double z = inverseNormalCdf(0.5 + coverage / 2.0);
    const double half =
        z * stddev / std::sqrt(static_cast<double>(count));
    return Interval{mean - half, mean + half};
}

Summary
Summary::of(std::vector<double> samples)
{
    TTMCAS_REQUIRE(!samples.empty(), "Summary::of requires samples");

    RunningStats acc;
    for (double s : samples)
        acc.add(s);

    Summary summary;
    summary.count = acc.count();
    summary.mean = acc.mean();
    summary.variance = acc.count() >= 2 ? acc.variance() : 0.0;
    summary.stddev = std::sqrt(summary.variance);
    summary.min = acc.min();
    summary.max = acc.max();

    std::sort(samples.begin(), samples.end());
    summary._sorted = std::move(samples);
    return summary;
}

void
RunningStats::add(double value)
{
    if (_count == 0) {
        _min = value;
        _max = value;
    } else {
        _min = std::min(_min, value);
        _max = std::max(_max, value);
    }
    ++_count;
    const double delta = value - _mean;
    _mean += delta / static_cast<double>(_count);
    _m2 += delta * (value - _mean);
}

double
RunningStats::mean() const
{
    TTMCAS_REQUIRE(_count > 0, "mean of empty accumulator");
    return _mean;
}

double
RunningStats::variance() const
{
    TTMCAS_REQUIRE(_count >= 2, "variance requires at least two samples");
    return _m2 / static_cast<double>(_count - 1);
}

double
RunningStats::stddev() const
{
    return std::sqrt(variance());
}

double
RunningStats::min() const
{
    TTMCAS_REQUIRE(_count > 0, "min of empty accumulator");
    return _min;
}

double
RunningStats::max() const
{
    TTMCAS_REQUIRE(_count > 0, "max of empty accumulator");
    return _max;
}

} // namespace ttmcas
