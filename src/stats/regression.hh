#ifndef TTMCAS_STATS_REGRESSION_HH
#define TTMCAS_STATS_REGRESSION_HH

/**
 * @file
 * Least-squares curve fits used for the effort models.
 *
 * Paper Section 5: tapeout effort E_tapeout(p) and packaging effort
 * E_package(p) are fit with an *exponential* regression over process
 * nodes; testing effort E_testing(p) uses a *linear* regression. These
 * fits are re-derived at library-build time from anchor points (see
 * tech/default_dataset.cc) instead of being hard-coded, so users can
 * supply their own anchors.
 */

#include <vector>

namespace ttmcas {

/** y = intercept + slope * x. */
struct LinearFit
{
    double intercept = 0.0;
    double slope = 0.0;
    double r_squared = 0.0;

    double operator()(double x) const { return intercept + slope * x; }
};

/** y = scale * exp(rate * x); fit by log-linear least squares. */
struct ExponentialFit
{
    double scale = 0.0;
    double rate = 0.0;
    double r_squared = 0.0; ///< R^2 in log space

    double operator()(double x) const;
};

/** y = scale * x^exponent; fit by log-log least squares. */
struct PowerFit
{
    double scale = 0.0;
    double exponent = 0.0;
    double r_squared = 0.0; ///< R^2 in log-log space

    double operator()(double x) const;
};

/** Ordinary least squares through (xs[i], ys[i]); needs >= 2 points. */
LinearFit fitLinear(const std::vector<double>& xs,
                    const std::vector<double>& ys);

/**
 * Exponential fit through positive ys; needs >= 2 points.
 * Internally fits log(y) = log(scale) + rate * x.
 */
ExponentialFit fitExponential(const std::vector<double>& xs,
                              const std::vector<double>& ys);

/**
 * Power-law fit through positive xs and ys; needs >= 2 points.
 * Internally fits log(y) = log(scale) + exponent * log(x).
 */
PowerFit fitPower(const std::vector<double>& xs,
                  const std::vector<double>& ys);

} // namespace ttmcas

#endif // TTMCAS_STATS_REGRESSION_HH
