#include "stats/sobol.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "stats/fault_injection.hh"
#include "stats/lowdiscrepancy.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"
#include "support/cancel.hh"
#include "support/checkpoint.hh"
#include "support/error.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace ttmcas {

namespace {

/**
 * Chunked loop over [0, n) on an optional shared pool (inline when
 * @p pool is null). One pool serves every evaluation loop of an
 * analysis so worker threads are spawned once, not per loop.
 */
void
runChunked(ThreadPool* pool, std::size_t grain, std::size_t n,
           const std::function<void(std::size_t, std::size_t)>& body,
           const CancellationToken* cancel = nullptr)
{
    if (pool == nullptr) {
        if (cancel == nullptr) {
            body(0, n);
            return;
        }
        // Inline path matches the pooled chunk granularity so a
        // deadline stops a serial analysis at the same boundaries.
        const std::size_t step = std::max<std::size_t>(grain, 1);
        for (std::size_t begin = 0; begin < n; begin += step) {
            if (cancel->stopRequested())
                return;
            body(begin, std::min(n, begin + step));
        }
    } else {
        pool->parallelFor(n, grain, body, cancel);
    }
}

/** Pool sized per @p config, or null for the inline/serial path. */
std::unique_ptr<ThreadPool>
makePool(const ParallelConfig& config, std::size_t items)
{
    const std::size_t grain = std::max<std::size_t>(config.grain, 1);
    const std::size_t chunks = (items + grain - 1) / grain;
    const std::size_t threads =
        std::min(config.resolvedThreads(), chunks);
    if (threads <= 1)
        return nullptr;
    return std::make_unique<ThreadPool>(threads);
}

/**
 * Jansen estimators for one input over aligned row vectors: returns
 * (S_i, S_Ti). Serial, ascending-j accumulation — the fixed
 * floating-point association both sobolAnalyze paths share.
 */
std::pair<double, double>
jansenIndices(const std::vector<double>& f_a, const std::vector<double>& f_b,
              const std::vector<double>& f_abi, double variance,
              bool clip_negative)
{
    const std::size_t n = f_a.size();
    double first_acc = 0.0;
    double total_acc = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        first_acc += f_b[j] * (f_abi[j] - f_a[j]);
        const double delta = f_a[j] - f_abi[j];
        total_acc += delta * delta;
    }
    if (variance <= 0.0) {
        // A constant model has no variance to attribute.
        return {0.0, 0.0};
    }
    double s_i = first_acc / static_cast<double>(n) / variance;
    double s_ti = total_acc / (2.0 * static_cast<double>(n)) / variance;
    if (clip_negative) {
        s_i = std::max(s_i, 0.0);
        s_ti = std::max(s_ti, 0.0);
    }
    return {s_i, s_ti};
}

} // namespace

std::size_t
SobolResult::dominantInput() const
{
    TTMCAS_REQUIRE(!total_effect.empty(), "dominantInput of empty result");
    return static_cast<std::size_t>(
        std::max_element(total_effect.begin(), total_effect.end()) -
        total_effect.begin());
}

SobolResult
sobolAnalyze(const std::vector<SensitivityInput>& inputs,
             const std::function<double(const std::vector<double>&)>& model,
             const SobolOptions& options, SobolRowData* rows)
{
    const obs::ScopedSpan span("sobol", "sobolAnalyze");
    static const obs::Counter evaluations("sobol.evaluations");

    const std::size_t k = inputs.size();
    const std::size_t n = options.base_samples;
    TTMCAS_REQUIRE(k > 0, "sobolAnalyze needs at least one input");
    TTMCAS_REQUIRE(n >= 2, "sobolAnalyze needs at least two base samples");
    for (const auto& input : inputs) {
        TTMCAS_REQUIRE(input.distribution != nullptr,
                       "sensitivity input '" + input.name +
                           "' has no distribution");
    }

    // Draw the two base matrices in the unit hypercube, then transform
    // through each input's quantile function. The A and B coordinates
    // come from disjoint dimensions (columns i and k+i of one
    // 2k-dimensional stream) so they are independent.
    Rng rng(options.seed);
    HaltonSequence halton(2 * k);
    std::vector<std::vector<double>> mat_a(n, std::vector<double>(k));
    std::vector<std::vector<double>> mat_b(n, std::vector<double>(k));
    for (std::size_t j = 0; j < n; ++j) {
        if (options.use_low_discrepancy) {
            const std::vector<double> point = halton.next();
            for (std::size_t i = 0; i < k; ++i) {
                mat_a[j][i] =
                    inputs[i].distribution->quantile(point[i]);
                mat_b[j][i] =
                    inputs[i].distribution->quantile(point[k + i]);
            }
        } else {
            for (std::size_t i = 0; i < k; ++i) {
                mat_a[j][i] =
                    inputs[i].distribution->quantile(rng.uniform());
                mat_b[j][i] =
                    inputs[i].distribution->quantile(rng.uniform());
            }
        }
    }

    // Model evaluations fan out over the pool; every j writes its own
    // slot, and all reductions below run serially in j order, so the
    // indices are bitwise-identical for any thread count.
    const std::unique_ptr<ThreadPool> pool = makePool(options.parallel, n);
    const std::size_t grain = std::max<std::size_t>(options.parallel.grain, 1);

    SobolResult result;
    result.evaluations = (k + 2) * n;
    result.first_order.resize(k, 0.0);
    result.total_effect.resize(k, 0.0);
    result.input_names.reserve(k);
    for (const auto& input : inputs)
        result.input_names.push_back(input.name);

    const FaultInjector* injector = options.fault_injector;
    const bool resilient =
        options.cancel != nullptr || options.retry.enabled() ||
        options.resume_from != nullptr || options.checkpoint != nullptr;
    const bool isolated = options.failure_policy.skips() ||
                          options.failure_report != nullptr ||
                          (injector != nullptr && injector->enabled()) ||
                          resilient;
    if (isolated) {
        // Isolated path: every evaluation lands in an Outcome slot,
        // indexed f(A)_j = j, f(B)_j = n + j, f(A_B^i)_j = (2+i)*n + j.
        // A base row survives only when A, B, and all k hybrid
        // evaluations of it succeeded; the estimators then run over the
        // surviving rows in ascending j order.
        //
        // The same global point index keys the checkpoint, so a
        // resumed analysis restores exactly the evaluations the
        // interrupted one finished, bit-for-bit.
        const std::size_t total_points = (k + 2) * n;
        if (options.resume_from != nullptr)
            options.resume_from->requireMatches("sobolAnalyze",
                                                options.seed, total_points);
        if (options.checkpoint != nullptr)
            options.checkpoint->bind("sobolAnalyze", options.seed,
                                     total_points);
        const RetryPolicy* retry =
            options.retry.enabled() ? &options.retry : nullptr;
        std::vector<std::uint32_t> attempts(total_points, 0);
        const auto evalPoint = [&](std::size_t point,
                                   auto&& fn) -> Outcome<double> {
            Outcome<double> outcome;
            if (options.resume_from != nullptr &&
                options.resume_from->has(point)) {
                outcome = Outcome<double>::success(
                    options.resume_from->value(point));
            } else {
                outcome = guardedScalarPoint(
                    injector, DiagCode::NonFiniteOutput, "sobolAnalyze",
                    point, fn, retry, &attempts[point]);
            }
            if (options.checkpoint != nullptr && outcome.ok())
                options.checkpoint->record(point, outcome.value());
            return outcome;
        };

        std::vector<Outcome<double>> out_a(n), out_b(n);
        runChunked(pool.get(), grain, n,
                   [&](std::size_t begin, std::size_t end) {
                       for (std::size_t j = begin; j < end; ++j) {
                           out_a[j] = evalPoint(
                               j, [&] { return model(mat_a[j]); });
                           out_b[j] = evalPoint(
                               n + j, [&] { return model(mat_b[j]); });
                       }
                       evaluations.add(2 * (end - begin));
                   },
                   options.cancel);
        std::vector<std::vector<Outcome<double>>> out_ab(
            k, std::vector<Outcome<double>>(n));
        for (std::size_t i = 0; i < k; ++i) {
            runChunked(pool.get(), grain, n,
                       [&](std::size_t begin, std::size_t end) {
                           std::vector<double> point(k);
                           for (std::size_t j = begin; j < end; ++j) {
                               // A_B^i: row j of A, column i from B.
                               point = mat_a[j];
                               point[i] = mat_b[j][i];
                               out_ab[i][j] = evalPoint(
                                   (2 + i) * n + j,
                                   [&] { return model(point); });
                           }
                           evaluations.add(end - begin);
                       },
                       options.cancel);
        }

        std::vector<Outcome<double>> flat;
        flat.reserve(total_points);
        for (std::size_t j = 0; j < n; ++j)
            flat.push_back(out_a[j]);
        for (std::size_t j = 0; j < n; ++j)
            flat.push_back(out_b[j]);
        for (std::size_t i = 0; i < k; ++i) {
            for (std::size_t j = 0; j < n; ++j)
                flat.push_back(out_ab[i][j]);
        }
        if (options.cancel != nullptr && options.cancel->stopRequested())
            markUnevaluated(flat, *options.cancel, "sobolAnalyze");
        if (retry != nullptr) {
            RetryStats stats;
            for (std::size_t p = 0; p < flat.size(); ++p) {
                if (attempts[p] > 1) {
                    ++stats.retried_points;
                    stats.extra_attempts += attempts[p] - 1;
                    if (flat[p].ok())
                        ++stats.recovered_points;
                }
                if (!flat[p].ok() && attempts[p] == retry->max_attempts)
                    ++stats.exhausted_points;
            }
            recordRetryMetrics(stats);
            if (options.retry_stats != nullptr)
                *options.retry_stats = stats;
        } else if (options.retry_stats != nullptr) {
            *options.retry_stats = RetryStats{};
        }
        enforcePolicy(flat, options.failure_policy, options.failure_report,
                      "sobolAnalyze");

        std::vector<std::size_t> survivors;
        survivors.reserve(n);
        for (std::size_t j = 0; j < n; ++j) {
            bool row_ok = out_a[j].ok() && out_b[j].ok();
            for (std::size_t i = 0; row_ok && i < k; ++i)
                row_ok = out_ab[i][j].ok();
            if (row_ok)
                survivors.push_back(j);
        }
        TTMCAS_REQUIRE(survivors.size() >= 2,
                       "sobolAnalyze: fewer than two base rows survived "
                       "failure isolation");

        std::vector<double> f_a, f_b;
        f_a.reserve(survivors.size());
        f_b.reserve(survivors.size());
        for (std::size_t j : survivors) {
            f_a.push_back(out_a[j].value());
            f_b.push_back(out_b[j].value());
        }
        RunningStats pooled;
        for (double y : f_a)
            pooled.add(y);
        for (double y : f_b)
            pooled.add(y);
        const double variance = pooled.variance();
        result.output_mean = pooled.mean();
        result.output_variance = variance;

        if (rows != nullptr) {
            rows->f_a = f_a;
            rows->f_b = f_b;
            rows->f_ab.assign(k, std::vector<double>());
        }
        std::vector<double> f_abi;
        for (std::size_t i = 0; i < k; ++i) {
            f_abi.clear();
            f_abi.reserve(survivors.size());
            for (std::size_t j : survivors)
                f_abi.push_back(out_ab[i][j].value());
            if (rows != nullptr)
                rows->f_ab[i] = f_abi;
            const auto [s_i, s_ti] = jansenIndices(
                f_a, f_b, f_abi, variance, options.clip_negative);
            result.first_order[i] = s_i;
            result.total_effect[i] = s_ti;
        }
        return result;
    }

    std::vector<double> f_a(n), f_b(n);
    runChunked(pool.get(), grain, n,
               [&](std::size_t begin, std::size_t end) {
                   for (std::size_t j = begin; j < end; ++j) {
                       f_a[j] = model(mat_a[j]);
                       f_b[j] = model(mat_b[j]);
                   }
                   evaluations.add(2 * (end - begin));
               });

    // Output variance over the pooled A/B evaluations.
    RunningStats pooled;
    for (double y : f_a)
        pooled.add(y);
    for (double y : f_b)
        pooled.add(y);
    const double variance = pooled.variance();
    result.output_mean = pooled.mean();
    result.output_variance = variance;

    if (rows != nullptr) {
        rows->f_a = f_a;
        rows->f_b = f_b;
        rows->f_ab.assign(k, std::vector<double>());
    }

    std::vector<double> f_abi(n);
    for (std::size_t i = 0; i < k; ++i) {
        runChunked(pool.get(), grain, n,
                   [&](std::size_t begin, std::size_t end) {
                       std::vector<double> point(k);
                       for (std::size_t j = begin; j < end; ++j) {
                           // A_B^i: row j of A, column i from B.
                           point = mat_a[j];
                           point[i] = mat_b[j][i];
                           f_abi[j] = model(point);
                       }
                       evaluations.add(end - begin);
                   });
        if (rows != nullptr)
            rows->f_ab[i] = f_abi;
        const auto [s_i, s_ti] = jansenIndices(
            f_a, f_b, f_abi, variance, options.clip_negative);
        result.first_order[i] = s_i;
        result.total_effect[i] = s_ti;
    }
    return result;
}

SobolConfidence
sobolBootstrapCi(const SobolRowData& rows, std::size_t resamples,
                 double coverage, std::uint64_t seed, bool clip_negative,
                 const ParallelConfig& parallel)
{
    SobolBootstrapOptions options;
    options.resamples = resamples;
    options.coverage = coverage;
    options.seed = seed;
    options.clip_negative = clip_negative;
    options.parallel = parallel;
    return sobolBootstrapCi(rows, options);
}

SobolConfidence
sobolBootstrapCi(const SobolRowData& rows,
                 const SobolBootstrapOptions& options)
{
    const obs::ScopedSpan span("sobol", "sobolBootstrapCi");
    static const obs::Counter resample_count("sobol.bootstrap_resamples");

    const std::size_t n = rows.f_a.size();
    const std::size_t k = rows.f_ab.size();
    const std::size_t resamples = options.resamples;
    TTMCAS_REQUIRE(n >= 2, "bootstrap needs at least two base rows");
    TTMCAS_REQUIRE(rows.f_b.size() == n,
                   "row data arity mismatch (f_b)");
    for (const auto& column : rows.f_ab) {
        TTMCAS_REQUIRE(column.size() == n,
                       "row data arity mismatch (f_ab)");
    }
    TTMCAS_REQUIRE(k >= 1, "bootstrap needs at least one input");
    TTMCAS_REQUIRE(resamples >= 10, "need at least 10 resamples");
    TTMCAS_REQUIRE(options.coverage > 0.0 && options.coverage < 1.0,
                   "coverage must be in (0, 1)");

    // Pre-draw every resample's pick indices serially so the RNG
    // stream — and therefore each replicate — is independent of how
    // the resample loop is chunked across threads.
    Rng rng(options.seed);
    std::vector<std::size_t> picks(resamples * n);
    for (std::size_t j = 0; j < picks.size(); ++j)
        picks[j] = static_cast<std::size_t>(rng.uniformInt(n));

    // One bootstrap replicate: Jansen estimators over the resampled
    // rows. Writes S_i into first_out[i] and S_Ti into total_out[i].
    const auto computeReplicate = [&](std::size_t r, double* first_out,
                                      double* total_out) {
        const std::size_t* resample_picks = picks.data() + r * n;

        // Pooled variance over the resampled A/B evaluations.
        RunningStats pooled;
        for (std::size_t j = 0; j < n; ++j) {
            pooled.add(rows.f_a[resample_picks[j]]);
            pooled.add(rows.f_b[resample_picks[j]]);
        }
        const double variance = pooled.variance();

        for (std::size_t i = 0; i < k; ++i) {
            double first_acc = 0.0;
            double total_acc = 0.0;
            for (std::size_t p = 0; p < n; ++p) {
                const std::size_t j = resample_picks[p];
                const double f_abi = rows.f_ab[i][j];
                first_acc += rows.f_b[j] * (f_abi - rows.f_a[j]);
                const double delta = rows.f_a[j] - f_abi;
                total_acc += delta * delta;
            }
            double s_i = 0.0;
            double s_ti = 0.0;
            if (variance > 0.0) {
                s_i = first_acc / static_cast<double>(n) / variance;
                s_ti = total_acc / (2.0 * static_cast<double>(n)) /
                       variance;
            }
            if (options.clip_negative) {
                s_i = std::max(s_i, 0.0);
                s_ti = std::max(s_ti, 0.0);
            }
            first_out[i] = s_i;
            total_out[i] = s_ti;
        }
    };

    const auto buildConfidence =
        [&](const std::vector<std::vector<double>>& first_replicates,
            const std::vector<std::vector<double>>& total_replicates) {
            SobolConfidence confidence;
            for (std::size_t i = 0; i < k; ++i) {
                const Summary first = Summary::of(first_replicates[i]);
                const Summary total = Summary::of(total_replicates[i]);
                const Interval first_ci =
                    first.percentileInterval(options.coverage);
                const Interval total_ci =
                    total.percentileInterval(options.coverage);
                confidence.first_order.emplace_back(first_ci.lo,
                                                    first_ci.hi);
                confidence.total_effect.emplace_back(total_ci.lo,
                                                     total_ci.hi);
            }
            return confidence;
        };

    const FaultInjector* injector = options.fault_injector;
    const bool isolated = options.failure_policy.skips() ||
                          options.failure_report != nullptr ||
                          (injector != nullptr && injector->enabled()) ||
                          options.cancel != nullptr;
    if (!isolated) {
        std::vector<std::vector<double>> first_replicates(
            k, std::vector<double>(resamples));
        std::vector<std::vector<double>> total_replicates(
            k, std::vector<double>(resamples));
        parallelFor(options.parallel, resamples,
                    [&](std::size_t rb, std::size_t re) {
                        std::vector<double> first(k), total(k);
                        for (std::size_t r = rb; r < re; ++r) {
                            computeReplicate(r, first.data(), total.data());
                            for (std::size_t i = 0; i < k; ++i) {
                                first_replicates[i][r] = first[i];
                                total_replicates[i][r] = total[i];
                            }
                        }
                        resample_count.add(re - rb);
                    });
        return buildConfidence(first_replicates, total_replicates);
    }

    // Isolated path: one resample = one point; a replicate's 2k index
    // estimates travel in one Outcome slot and failed replicates are
    // dropped from the percentile intervals.
    std::vector<Outcome<std::vector<double>>> outcomes(resamples);
    parallelFor(options.parallel, resamples,
                [&](std::size_t rb, std::size_t re) {
                    for (std::size_t r = rb; r < re; ++r) {
                        outcomes[r] = guardedPoint(
                            r, [&]() -> std::vector<double> {
                                if (injector != nullptr &&
                                    injector->armedAt(r)) {
                                    finiteOr(injector->faultValue(r),
                                             DiagCode::NonFiniteOutput,
                                             "sobolBootstrapCi");
                                }
                                std::vector<double> values(2 * k);
                                computeReplicate(r, values.data(),
                                                 values.data() + k);
                                for (double value : values)
                                    finiteOr(value,
                                             DiagCode::NonFiniteOutput,
                                             "sobolBootstrapCi");
                                return values;
                            });
                    }
                    resample_count.add(re - rb);
                },
                options.cancel);
    if (options.cancel != nullptr && options.cancel->stopRequested())
        markUnevaluated(outcomes, *options.cancel, "sobolBootstrapCi");
    enforcePolicy(outcomes, options.failure_policy, options.failure_report,
                  "sobolBootstrapCi");

    std::vector<std::vector<double>> first_valid(k), total_valid(k);
    for (const Outcome<std::vector<double>>& outcome : outcomes) {
        if (!outcome.ok())
            continue;
        const std::vector<double>& values = outcome.value();
        for (std::size_t i = 0; i < k; ++i) {
            first_valid[i].push_back(values[i]);
            total_valid[i].push_back(values[k + i]);
        }
    }
    TTMCAS_REQUIRE(first_valid[0].size() >= 2,
                   "sobolBootstrapCi: fewer than two replicates survived "
                   "failure isolation");
    return buildConfidence(first_valid, total_valid);
}

} // namespace ttmcas

