#include "stats/sobol.hh"

#include <algorithm>
#include <cmath>
#include <memory>

#include "stats/lowdiscrepancy.hh"
#include "stats/rng.hh"
#include "stats/summary.hh"
#include "support/error.hh"

namespace ttmcas {

namespace {

/**
 * Chunked loop over [0, n) on an optional shared pool (inline when
 * @p pool is null). One pool serves every evaluation loop of an
 * analysis so worker threads are spawned once, not per loop.
 */
void
runChunked(ThreadPool* pool, std::size_t grain, std::size_t n,
           const std::function<void(std::size_t, std::size_t)>& body)
{
    if (pool == nullptr)
        body(0, n);
    else
        pool->parallelFor(n, grain, body);
}

/** Pool sized per @p config, or null for the inline/serial path. */
std::unique_ptr<ThreadPool>
makePool(const ParallelConfig& config, std::size_t items)
{
    const std::size_t grain = std::max<std::size_t>(config.grain, 1);
    const std::size_t chunks = (items + grain - 1) / grain;
    const std::size_t threads =
        std::min(config.resolvedThreads(), chunks);
    if (threads <= 1)
        return nullptr;
    return std::make_unique<ThreadPool>(threads);
}

} // namespace

std::size_t
SobolResult::dominantInput() const
{
    TTMCAS_REQUIRE(!total_effect.empty(), "dominantInput of empty result");
    return static_cast<std::size_t>(
        std::max_element(total_effect.begin(), total_effect.end()) -
        total_effect.begin());
}

SobolResult
sobolAnalyze(const std::vector<SensitivityInput>& inputs,
             const std::function<double(const std::vector<double>&)>& model,
             const SobolOptions& options, SobolRowData* rows)
{
    const std::size_t k = inputs.size();
    const std::size_t n = options.base_samples;
    TTMCAS_REQUIRE(k > 0, "sobolAnalyze needs at least one input");
    TTMCAS_REQUIRE(n >= 2, "sobolAnalyze needs at least two base samples");
    for (const auto& input : inputs) {
        TTMCAS_REQUIRE(input.distribution != nullptr,
                       "sensitivity input '" + input.name +
                           "' has no distribution");
    }

    // Draw the two base matrices in the unit hypercube, then transform
    // through each input's quantile function. The A and B coordinates
    // come from disjoint dimensions (columns i and k+i of one
    // 2k-dimensional stream) so they are independent.
    Rng rng(options.seed);
    HaltonSequence halton(2 * k);
    std::vector<std::vector<double>> mat_a(n, std::vector<double>(k));
    std::vector<std::vector<double>> mat_b(n, std::vector<double>(k));
    for (std::size_t j = 0; j < n; ++j) {
        if (options.use_low_discrepancy) {
            const std::vector<double> point = halton.next();
            for (std::size_t i = 0; i < k; ++i) {
                mat_a[j][i] =
                    inputs[i].distribution->quantile(point[i]);
                mat_b[j][i] =
                    inputs[i].distribution->quantile(point[k + i]);
            }
        } else {
            for (std::size_t i = 0; i < k; ++i) {
                mat_a[j][i] =
                    inputs[i].distribution->quantile(rng.uniform());
                mat_b[j][i] =
                    inputs[i].distribution->quantile(rng.uniform());
            }
        }
    }

    // Model evaluations fan out over the pool; every j writes its own
    // slot, and all reductions below run serially in j order, so the
    // indices are bitwise-identical for any thread count.
    const std::unique_ptr<ThreadPool> pool = makePool(options.parallel, n);
    const std::size_t grain = std::max<std::size_t>(options.parallel.grain, 1);

    std::vector<double> f_a(n), f_b(n);
    runChunked(pool.get(), grain, n,
               [&](std::size_t begin, std::size_t end) {
                   for (std::size_t j = begin; j < end; ++j) {
                       f_a[j] = model(mat_a[j]);
                       f_b[j] = model(mat_b[j]);
                   }
               });

    // Output variance over the pooled A/B evaluations.
    RunningStats pooled;
    for (double y : f_a)
        pooled.add(y);
    for (double y : f_b)
        pooled.add(y);
    const double variance = pooled.variance();

    SobolResult result;
    result.output_mean = pooled.mean();
    result.output_variance = variance;
    result.evaluations = 2 * n;
    result.first_order.resize(k, 0.0);
    result.total_effect.resize(k, 0.0);
    result.input_names.reserve(k);
    for (const auto& input : inputs)
        result.input_names.push_back(input.name);

    if (rows != nullptr) {
        rows->f_a = f_a;
        rows->f_b = f_b;
        rows->f_ab.assign(k, std::vector<double>());
    }

    std::vector<double> f_abi(n);
    for (std::size_t i = 0; i < k; ++i) {
        runChunked(pool.get(), grain, n,
                   [&](std::size_t begin, std::size_t end) {
                       std::vector<double> point(k);
                       for (std::size_t j = begin; j < end; ++j) {
                           // A_B^i: row j of A, column i from B.
                           point = mat_a[j];
                           point[i] = mat_b[j][i];
                           f_abi[j] = model(point);
                       }
                   });
        double first_acc = 0.0;
        double total_acc = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            first_acc += f_b[j] * (f_abi[j] - f_a[j]);
            const double delta = f_a[j] - f_abi[j];
            total_acc += delta * delta;
        }
        if (rows != nullptr)
            rows->f_ab[i] = f_abi;
        result.evaluations += n;

        if (variance <= 0.0) {
            // A constant model has no variance to attribute.
            result.first_order[i] = 0.0;
            result.total_effect[i] = 0.0;
            continue;
        }
        double s_i = first_acc / static_cast<double>(n) / variance;
        double s_ti =
            total_acc / (2.0 * static_cast<double>(n)) / variance;
        if (options.clip_negative) {
            s_i = std::max(s_i, 0.0);
            s_ti = std::max(s_ti, 0.0);
        }
        result.first_order[i] = s_i;
        result.total_effect[i] = s_ti;
    }
    return result;
}

SobolConfidence
sobolBootstrapCi(const SobolRowData& rows, std::size_t resamples,
                 double coverage, std::uint64_t seed, bool clip_negative,
                 const ParallelConfig& parallel)
{
    const std::size_t n = rows.f_a.size();
    const std::size_t k = rows.f_ab.size();
    TTMCAS_REQUIRE(n >= 2, "bootstrap needs at least two base rows");
    TTMCAS_REQUIRE(rows.f_b.size() == n,
                   "row data arity mismatch (f_b)");
    for (const auto& column : rows.f_ab) {
        TTMCAS_REQUIRE(column.size() == n,
                       "row data arity mismatch (f_ab)");
    }
    TTMCAS_REQUIRE(k >= 1, "bootstrap needs at least one input");
    TTMCAS_REQUIRE(resamples >= 10, "need at least 10 resamples");
    TTMCAS_REQUIRE(coverage > 0.0 && coverage < 1.0,
                   "coverage must be in (0, 1)");

    // Pre-draw every resample's pick indices serially so the RNG
    // stream — and therefore each replicate — is independent of how
    // the resample loop is chunked across threads.
    Rng rng(seed);
    std::vector<std::size_t> picks(resamples * n);
    for (std::size_t j = 0; j < picks.size(); ++j)
        picks[j] = static_cast<std::size_t>(rng.uniformInt(n));

    std::vector<std::vector<double>> first_replicates(
        k, std::vector<double>(resamples));
    std::vector<std::vector<double>> total_replicates(
        k, std::vector<double>(resamples));

    parallelFor(parallel, resamples, [&](std::size_t rb, std::size_t re) {
        for (std::size_t r = rb; r < re; ++r) {
            const std::size_t* resample_picks = picks.data() + r * n;

            // Pooled variance over the resampled A/B evaluations.
            RunningStats pooled;
            for (std::size_t j = 0; j < n; ++j) {
                pooled.add(rows.f_a[resample_picks[j]]);
                pooled.add(rows.f_b[resample_picks[j]]);
            }
            const double variance = pooled.variance();

            for (std::size_t i = 0; i < k; ++i) {
                double first_acc = 0.0;
                double total_acc = 0.0;
                for (std::size_t p = 0; p < n; ++p) {
                    const std::size_t j = resample_picks[p];
                    const double f_abi = rows.f_ab[i][j];
                    first_acc += rows.f_b[j] * (f_abi - rows.f_a[j]);
                    const double delta = rows.f_a[j] - f_abi;
                    total_acc += delta * delta;
                }
                double s_i = 0.0;
                double s_ti = 0.0;
                if (variance > 0.0) {
                    s_i = first_acc / static_cast<double>(n) / variance;
                    s_ti = total_acc / (2.0 * static_cast<double>(n)) /
                           variance;
                }
                if (clip_negative) {
                    s_i = std::max(s_i, 0.0);
                    s_ti = std::max(s_ti, 0.0);
                }
                first_replicates[i][r] = s_i;
                total_replicates[i][r] = s_ti;
            }
        }
    });

    SobolConfidence confidence;
    for (std::size_t i = 0; i < k; ++i) {
        const Summary first = Summary::of(first_replicates[i]);
        const Summary total = Summary::of(total_replicates[i]);
        const Interval first_ci = first.percentileInterval(coverage);
        const Interval total_ci = total.percentileInterval(coverage);
        confidence.first_order.emplace_back(first_ci.lo, first_ci.hi);
        confidence.total_effect.emplace_back(total_ci.lo, total_ci.hi);
    }
    return confidence;
}

} // namespace ttmcas

