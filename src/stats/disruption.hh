#ifndef TTMCAS_STATS_DISRUPTION_HH
#define TTMCAS_STATS_DISRUPTION_HH

/**
 * @file
 * Seeded stochastic disruption processes for supply-chain scenarios.
 *
 * The paper's scenarios (core/scenario.hh) are static shocks: one
 * capacity cut, one queue surge, frozen in time. The related work
 * models what disruptions actually look like — capacity drifting
 * between regimes over months (Kanungo et al., "Chip Architecture and
 * Uncertainties in Semiconductor Supply and Demand") and *clustered*
 * disruption arrivals where one incident raises the odds of the next
 * (Feng et al., "Modeling Supply Chain Interaction and Disruption").
 * This file provides both as seeded processes over one supply node:
 *
 *  - MarkovRegimeParams: a discrete-time Markov chain over three
 *    capacity regimes (nominal / constrained / outage), stepped every
 *    step_weeks, with a linear recovery ramp when a node climbs out
 *    of an outage (the Renesas-fire shape CapacityTimeline::ramp
 *    models statically).
 *  - HawkesParams: a self-exciting (Hawkes) point process of
 *    disruption shocks with conditional intensity
 *        lambda(t) = mu + sum_{t_i < t} alpha * beta * exp(-beta (t - t_i)),
 *    sampled by its cluster (branching) representation: Poisson(mu H)
 *    immigrant shocks, each shock spawning Poisson(alpha) children at
 *    Exp(beta) delays. The branching ratio alpha must be < 1 so
 *    cascades terminate. Each shock multiplies the node's capacity by
 *    a depth drawn uniformly from [shock_depth_min, shock_depth_max]
 *    for shock_weeks; overlapping shocks compound multiplicatively.
 *
 * Determinism contract (the property suite pins it): a sampled path
 * is a *pure function of (params, seed, path_index)*. Path seeds are
 * derived with derivePathSeed() — a splitmix64 mix of (seed,
 * path_index) — so any path of an ensemble can be drawn on any thread
 * in any order and come out bitwise identical. Within one path all
 * randomness comes from a single Rng consumed in a fixed documented
 * order (regime chain, then immigrants, then the cascade queue
 * front-to-back), never from a shared generator.
 *
 * docs/SCENARIOS.md documents the process definitions, the JSON
 * schema (core/ensemble_io.hh) and the seeding contract end to end.
 */

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "stats/rng.hh"

namespace ttmcas {

/** Capacity regime of one supply node. */
enum class Regime : std::uint8_t
{
    Nominal = 0,     ///< full contracted capacity
    Constrained = 1, ///< rationed capacity (drought, allocation)
    Outage = 2,      ///< line down (fire, quake, export stop)
};

/** Number of Regime values. */
inline constexpr std::size_t kRegimeCount = 3;

/** Stable display name ("nominal", "constrained", "outage"). */
const char* regimeName(Regime regime);

/** 3x3 row-stochastic per-step transition matrix. */
using RegimeMatrix =
    std::array<std::array<double, kRegimeCount>, kRegimeCount>;

/** Markov regime switching over one node's capacity. */
struct MarkovRegimeParams
{
    /**
     * Per-step transition probabilities; row = current regime,
     * column = next regime. Rows must each sum to 1 (validated).
     */
    RegimeMatrix transition{{{1.0, 0.0, 0.0},
                             {0.0, 1.0, 0.0},
                             {0.0, 0.0, 1.0}}};
    /** Capacity factor of each regime (nominal must be > 0). */
    std::array<double, kRegimeCount> capacity{1.0, 0.6, 0.0};
    /** Weeks to ramp back to the target factor after an outage. */
    double recovery_ramp_weeks = 8.0;
    /** Ramp discretization (equal sub-phases, like CapacityTimeline::ramp). */
    int recovery_ramp_steps = 4;
    /** Regime in effect at week 0. */
    Regime initial = Regime::Nominal;

    /**
     * A moderately disrupted node: sticky nominal regime, occasional
     * constraint episodes, rare outages with an 8-week ramp back.
     */
    static MarkovRegimeParams defaults();

    /** All-at-once validation (empty = valid). */
    std::vector<std::string> violations() const;

    /**
     * Stationary distribution of the chain (power iteration).
     * Requires a valid transition matrix.
     */
    std::array<double, kRegimeCount> stationary() const;
};

/** Self-exciting clustered disruption arrivals for one node. */
struct HawkesParams
{
    /** Baseline shock intensity in events/week (0 disables shocks). */
    double mu = 0.0;
    /** Branching ratio: mean children per shock; must be < 1. */
    double alpha = 0.5;
    /** Excitation decay rate in 1/weeks; must be > 0. */
    double beta = 0.7;
    /** Capacity multiplier while a shock is active, drawn uniformly
     * from [shock_depth_min, shock_depth_max] (in (0, 1]). */
    double shock_depth_min = 0.4;
    double shock_depth_max = 0.8;
    /** Duration of one shock in weeks. */
    double shock_weeks = 2.0;

    /** A mild clustered-shock process (one immigrant every ~50 weeks). */
    static HawkesParams defaults();

    /** All-at-once validation (empty = valid). */
    std::vector<std::string> violations() const;
};

/** The full disruption process of one supply node. */
struct DisruptionProcessParams
{
    MarkovRegimeParams markov;
    HawkesParams hawkes;

    /** All-at-once validation (markov + hawkes, prefixed). */
    std::vector<std::string> violations() const;
};

/** One regime segment of a sampled path (left-closed, like phases). */
struct RegimeSegment
{
    double start_week = 0.0;
    Regime regime = Regime::Nominal;

    bool operator==(const RegimeSegment&) const = default;
};

/** One sampled disruption shock. */
struct DisruptionEvent
{
    double time_week = 0.0; ///< arrival time in [0, horizon)
    double depth = 1.0;     ///< capacity multiplier while active
    double duration_weeks = 0.0;

    bool operator==(const DisruptionEvent&) const = default;
};

/** One piecewise-constant capacity phase of a composed path. */
struct CapacityPhase
{
    double start_week = 0.0;
    double factor = 1.0;

    bool operator==(const CapacityPhase&) const = default;
};

/** A sampled disruption path of one node over [0, horizon). */
struct DisruptionPath
{
    double horizon_weeks = 0.0;
    /** The raw regime chain (before ramps and shocks). */
    std::vector<RegimeSegment> segments;
    /** Sampled Hawkes shocks, sorted by arrival time. */
    std::vector<DisruptionEvent> events;
    /**
     * The composed piecewise-constant capacity factor: regime factor
     * (ramped after outages) times the product of active shock
     * depths. Always ends with a phase at horizon_weeks restoring the
     * nominal factor, so downstream capacity integration terminates.
     */
    std::vector<CapacityPhase> phases;
    /** Fraction of the horizon spent in each regime (sums to 1). */
    std::array<double, kRegimeCount> occupancy{1.0, 0.0, 0.0};

    /** Time-average of the composed factor over [0, horizon). */
    double meanCapacity() const;

    bool operator==(const DisruptionPath&) const = default;
};

/**
 * Per-path stream seed: a splitmix64 mix of (seed, path_index). Pure
 * and O(1), so path k of an ensemble draws the identical stream no
 * matter which thread evaluates it or in what order — the ensemble
 * analogue of the serial pre-loop Rng::split() idiom.
 */
std::uint64_t derivePathSeed(std::uint64_t seed,
                             std::uint64_t path_index);

/**
 * Sample one node's disruption path over [0, horizon_weeks), stepping
 * the regime chain every @p step_weeks. Pure function of
 * (params, seed, path_index); throws ModelError when @p params are
 * invalid or a cascade exceeds the event safety cap (impossible for
 * validated alpha < 1 at sane mu).
 */
DisruptionPath sampleDisruptionPath(const DisruptionProcessParams& params,
                                    double horizon_weeks,
                                    double step_weeks, std::uint64_t seed,
                                    std::uint64_t path_index);

/**
 * Same sampler drawing from @p rng directly (the ensemble runner
 * splits one per-path parent into per-node child streams).
 */
DisruptionPath sampleDisruptionPath(const DisruptionProcessParams& params,
                                    double horizon_weeks,
                                    double step_weeks, Rng& rng);

/**
 * Conditional intensity lambda(t) of @p params given sampled
 * @p events — mu plus the exponentially-decaying excitation of every
 * earlier event. Always >= mu >= 0 (the property suite pins it).
 */
double hawkesIntensity(const HawkesParams& params,
                       const std::vector<DisruptionEvent>& events,
                       double t);

} // namespace ttmcas

#endif // TTMCAS_STATS_DISRUPTION_HH
