#ifndef TTMCAS_STATS_HISTOGRAM_HH
#define TTMCAS_STATS_HISTOGRAM_HH

/**
 * @file
 * Fixed-bin histogram used by diagnostics and the wargame example to
 * visualize Monte-Carlo output distributions in the terminal.
 */

#include <cstddef>
#include <string>
#include <vector>

namespace ttmcas {

/** Equal-width histogram over [lo, hi) with overflow/underflow buckets. */
class Histogram
{
  public:
    /**
     * @param lo inclusive lower bound of the binned range
     * @param hi exclusive upper bound of the binned range (> lo)
     * @param bins number of equal-width bins (>= 1)
     */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one observation. */
    void add(double value);

    /** Record many observations. */
    void addAll(const std::vector<double>& values);

    std::size_t binCount() const { return _counts.size(); }
    std::size_t count(std::size_t bin) const;
    std::size_t underflow() const { return _underflow; }
    std::size_t overflow() const { return _overflow; }
    std::size_t total() const { return _total; }

    /** Center x-value of a bin. */
    double binCenter(std::size_t bin) const;

    /** Fraction of total observations in a bin (0 when empty). */
    double fraction(std::size_t bin) const;

    /**
     * Render an ASCII bar chart, one bin per line, bars scaled so the
     * fullest bin spans @p width characters.
     */
    std::string render(std::size_t width = 50) const;

  private:
    double _lo;
    double _hi;
    std::vector<std::size_t> _counts;
    std::size_t _underflow = 0;
    std::size_t _overflow = 0;
    std::size_t _total = 0;
};

} // namespace ttmcas

#endif // TTMCAS_STATS_HISTOGRAM_HH
