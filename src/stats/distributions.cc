#include "stats/distributions.hh"

#include <cmath>
#include <sstream>

#include "support/error.hh"
#include "support/strutil.hh"

namespace ttmcas {

PointDistribution::PointDistribution(double value) : _value(value)
{
    TTMCAS_REQUIRE(std::isfinite(value), "point mass must be finite");
}

double
PointDistribution::sample(Rng& rng) const
{
    (void)rng;
    return _value;
}

double
PointDistribution::quantile(double u) const
{
    TTMCAS_REQUIRE(u >= 0.0 && u < 1.0, "quantile argument outside [0,1)");
    return _value;
}

std::string
PointDistribution::describe() const
{
    return "Point(" + formatFixed(_value, 4) + ")";
}

UniformDistribution::UniformDistribution(double lo, double hi)
    : _lo(lo), _hi(hi)
{
    TTMCAS_REQUIRE(std::isfinite(lo) && std::isfinite(hi),
                   "uniform bounds must be finite");
    TTMCAS_REQUIRE(lo <= hi, "uniform bounds must satisfy lo <= hi");
}

double
UniformDistribution::sample(Rng& rng) const
{
    return rng.uniform(_lo, _hi);
}

double
UniformDistribution::quantile(double u) const
{
    TTMCAS_REQUIRE(u >= 0.0 && u < 1.0, "quantile argument outside [0,1)");
    return _lo + (_hi - _lo) * u;
}

std::string
UniformDistribution::describe() const
{
    return "Uniform[" + formatFixed(_lo, 4) + ", " + formatFixed(_hi, 4) +
           "]";
}

NormalDistribution::NormalDistribution(double mean, double stddev,
                                       bool truncate_at_zero)
    : _mean(mean), _stddev(stddev), _truncate_at_zero(truncate_at_zero)
{
    TTMCAS_REQUIRE(std::isfinite(mean) && std::isfinite(stddev),
                   "normal parameters must be finite");
    TTMCAS_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
}

double
NormalDistribution::sample(Rng& rng) const
{
    const double draw = rng.normal(_mean, _stddev);
    if (_truncate_at_zero && draw < 0.0)
        return 0.0;
    return draw;
}

double
NormalDistribution::quantile(double u) const
{
    TTMCAS_REQUIRE(u >= 0.0 && u < 1.0, "quantile argument outside [0,1)");
    // Guard the open endpoints; inverseNormalCdf diverges at 0 and 1.
    const double clipped = std::min(std::max(u, 1e-12), 1.0 - 1e-12);
    const double draw = _mean + _stddev * inverseNormalCdf(clipped);
    if (_truncate_at_zero && draw < 0.0)
        return 0.0;
    return draw;
}

std::string
NormalDistribution::describe() const
{
    std::ostringstream os;
    os << "Normal(" << formatFixed(_mean, 4) << ", "
       << formatFixed(_stddev, 4) << ")";
    if (_truncate_at_zero)
        os << "+";
    return os.str();
}

std::unique_ptr<Distribution>
relativeUniform(double estimate, double band)
{
    TTMCAS_REQUIRE(band >= 0.0 && band < 1.0,
                   "relative band must be in [0, 1)");
    const double lo = estimate * (1.0 - band);
    const double hi = estimate * (1.0 + band);
    return std::make_unique<UniformDistribution>(std::min(lo, hi),
                                                 std::max(lo, hi));
}

double
inverseNormalCdf(double p)
{
    TTMCAS_REQUIRE(p > 0.0 && p < 1.0,
                   "inverseNormalCdf argument must be in (0,1)");

    // Peter Acklam's rational approximation (relative error < 1.15e-9).
    static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                               -2.759285104469687e+02, 1.383577518672690e+02,
                               -3.066479806614716e+01, 2.506628277459239e+00};
    static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                               -1.556989798598866e+02, 6.680131188771972e+01,
                               -1.328068155288572e+01};
    static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                               -2.400758277161838e+00, -2.549732539343734e+00,
                               4.374664141464968e+00,  2.938163982698783e+00};
    static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                               2.445134137142996e+00, 3.754408661907416e+00};

    const double p_low = 0.02425;
    const double p_high = 1.0 - p_low;

    if (p < p_low) {
        const double q = std::sqrt(-2.0 * std::log(p));
        return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
                c[5]) /
               ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
    }
    if (p <= p_high) {
        const double q = p - 0.5;
        const double r = q * q;
        return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
                a[5]) *
               q /
               (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r +
                1.0);
    }
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

} // namespace ttmcas
