#ifndef TTMCAS_STATS_LOWDISCREPANCY_HH
#define TTMCAS_STATS_LOWDISCREPANCY_HH

/**
 * @file
 * Low-discrepancy (quasi-random) sequences.
 *
 * Variance-based sensitivity analysis converges as ~1/N with plain
 * Monte-Carlo sampling but ~1/N^(1-eps) with low-discrepancy points.
 * The Sobol machinery can optionally draw its Saltelli base matrices
 * from a Halton sequence instead of the RNG (see SobolOptions).
 *
 * Implementation: the classic Halton sequence (radical inverse in the
 * first d prime bases), with the index offset by 20 to skip the most
 * correlated initial points of the higher bases.
 */

#include <cstdint>
#include <vector>

namespace ttmcas {

/** d-dimensional Halton sequence generator. */
class HaltonSequence
{
  public:
    /** @param dimensions number of coordinates per point (>= 1). */
    explicit HaltonSequence(std::size_t dimensions);

    std::size_t dimensions() const { return _bases.size(); }

    /** Next point in [0, 1)^d. */
    std::vector<double> next();

    /** Skip ahead by @p count points. */
    void discard(std::size_t count) { _index += count; }

    /** Radical inverse of @p index in @p base (static helper). */
    static double radicalInverse(std::uint64_t index,
                                 std::uint32_t base);

  private:
    std::vector<std::uint32_t> _bases;
    std::uint64_t _index = 20; // skip the correlated warm-up points
};

/** The n-th prime (1-based: firstPrimes(3) = {2, 3, 5}). */
std::vector<std::uint32_t> firstPrimes(std::size_t count);

} // namespace ttmcas

#endif // TTMCAS_STATS_LOWDISCREPANCY_HH
