#include "stats/rng.hh"

#include <cmath>

#include "support/error.hh"

namespace ttmcas {

namespace {

/** splitmix64 step used for seed expansion (Vigna's reference recipe). */
std::uint64_t
splitmix64(std::uint64_t& state)
{
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& word : _state)
        word = splitmix64(sm);
    // All-zero state would lock xoshiro at zero forever; splitmix64 cannot
    // produce four zero outputs in a row, but guard against it anyway.
    if (_state[0] == 0 && _state[1] == 0 && _state[2] == 0 && _state[3] == 0)
        _state[0] = 1;
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(_state[1] * 5, 7) * 9;
    const std::uint64_t t = _state[1] << 17;

    _state[2] ^= _state[0];
    _state[3] ^= _state[1];
    _state[1] ^= _state[2];
    _state[0] ^= _state[3];
    _state[2] ^= t;
    _state[3] = rotl(_state[3], 45);

    return result;
}

double
Rng::uniform()
{
    // Top 53 bits give a uniform dyadic rational in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    TTMCAS_REQUIRE(lo <= hi, "uniform bounds must satisfy lo <= hi");
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t bound)
{
    TTMCAS_REQUIRE(bound > 0, "uniformInt bound must be positive");
    // Rejection sampling over the largest multiple of bound.
    const std::uint64_t threshold = (~bound + 1) % bound; // 2^64 mod bound
    for (;;) {
        const std::uint64_t raw = next();
        if (raw >= threshold)
            return raw % bound;
    }
}

double
Rng::normal()
{
    if (_have_cached_normal) {
        _have_cached_normal = false;
        return _cached_normal;
    }
    // Marsaglia polar method produces two deviates per acceptance.
    for (;;) {
        const double u = uniform(-1.0, 1.0);
        const double v = uniform(-1.0, 1.0);
        const double s = u * u + v * v;
        if (s > 0.0 && s < 1.0) {
            const double factor = std::sqrt(-2.0 * std::log(s) / s);
            _cached_normal = v * factor;
            _have_cached_normal = true;
            return u * factor;
        }
    }
}

double
Rng::normal(double mean, double stddev)
{
    TTMCAS_REQUIRE(stddev >= 0.0, "stddev must be non-negative");
    return mean + stddev * normal();
}

Rng
Rng::split()
{
    // Derive the child's seed from fresh parent output; the parent state
    // advances, so successive splits are independent streams.
    return Rng(next() ^ 0xd2b74407b1ce6e93ULL);
}

} // namespace ttmcas
