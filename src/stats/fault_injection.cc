#include "stats/fault_injection.hh"

#include <limits>
#include <string>

#include "support/error.hh"

namespace ttmcas {

FaultInjector::FaultInjector(Options options) : _options(options)
{
    TTMCAS_REQUIRE(_options.probability >= 0.0 &&
                       _options.probability <= 1.0,
                   "fault probability must be in [0, 1]");
    TTMCAS_REQUIRE(_options.transient_fraction >= 0.0 &&
                       _options.transient_fraction <= 1.0,
                   "transient fraction must be in [0, 1]");
    TTMCAS_REQUIRE(_options.transient_attempts >= 1,
                   "transient faults must fail at least one attempt");
}

Rng
FaultInjector::pointStream(std::size_t point) const
{
    // Random-access variant of Rng::split(): derive each point's seed
    // from (seed, index) with the golden-ratio increment splitmix64
    // uses, then let Rng's constructor expand it to xoshiro state.
    // Depends only on seed and point, never on evaluation order.
    return Rng(_options.seed ^
               (0x9e3779b97f4a7c15ULL *
                (static_cast<std::uint64_t>(point) + 1)));
}

bool
FaultInjector::armedAt(std::size_t point) const
{
    if (!enabled())
        return false;
    Rng stream = pointStream(point);
    return stream.uniform() < _options.probability;
}

bool
FaultInjector::transientAt(std::size_t point) const
{
    if (!armedAt(point) || _options.transient_fraction <= 0.0)
        return false;
    // Third draw of the point stream (after arming and kind), so the
    // arming set and fault kinds are unchanged from the pre-transient
    // injector for any seed — existing robustness tests stay valid.
    Rng stream = pointStream(point);
    stream.uniform();     // arming draw
    stream.uniformInt(4); // kind draw
    return stream.uniform() < _options.transient_fraction;
}

bool
FaultInjector::armedAt(std::size_t point, std::uint32_t attempt) const
{
    if (!armedAt(point))
        return false;
    if (!transientAt(point))
        return true; // permanent: faults on every attempt
    return attempt < _options.transient_attempts;
}

FaultInjector::FaultKind
FaultInjector::kindAt(std::size_t point) const
{
    Rng stream = pointStream(point);
    stream.uniform(); // arming draw
    return static_cast<FaultKind>(stream.uniformInt(4));
}

std::size_t
FaultInjector::armedCount(std::size_t n) const
{
    std::size_t count = 0;
    for (std::size_t point = 0; point < n; ++point) {
        if (armedAt(point))
            ++count;
    }
    return count;
}

std::size_t
FaultInjector::armedCount(std::size_t n, std::uint32_t attempt) const
{
    std::size_t count = 0;
    for (std::size_t point = 0; point < n; ++point) {
        if (armedAt(point, attempt))
            ++count;
    }
    return count;
}

void
FaultInjector::throwInjected(std::size_t point) const
{
    Diagnostic diagnostic;
    diagnostic.code = DiagCode::InjectedFault;
    diagnostic.message =
        "injected fault (seed " + std::to_string(_options.seed) + ")";
    diagnostic.point_index = point;
    throw NumericError(std::move(diagnostic));
}

double
FaultInjector::corruptInput(double clean, std::size_t point,
                            std::uint32_t attempt) const
{
    if (!armedAt(point, attempt))
        return clean;
    switch (kindAt(point)) {
      case FaultKind::NanValue:
        return std::numeric_limits<double>::quiet_NaN();
      case FaultKind::InfValue:
        return std::numeric_limits<double>::infinity();
      case FaultKind::OutOfDomain:
        // Negative and large: outside the domain of every model input
        // (factors, chip counts, rates are all required positive).
        return -std::abs(clean) - 1.0e9;
      case FaultKind::Throw:
        throwInjected(point);
    }
    TTMCAS_INVARIANT(false, "unhandled FaultKind");
}

double
FaultInjector::faultValue(std::size_t point) const
{
    TTMCAS_INVARIANT(armedAt(point),
                     "faultValue() called for an unarmed point");
    switch (kindAt(point)) {
      case FaultKind::NanValue:
      case FaultKind::OutOfDomain:
        return std::numeric_limits<double>::quiet_NaN();
      case FaultKind::InfValue:
        return std::numeric_limits<double>::infinity();
      case FaultKind::Throw:
        throwInjected(point);
    }
    TTMCAS_INVARIANT(false, "unhandled FaultKind");
}

} // namespace ttmcas
