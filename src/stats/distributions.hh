#ifndef TTMCAS_STATS_DISTRIBUTIONS_HH
#define TTMCAS_STATS_DISTRIBUTIONS_HH

/**
 * @file
 * Sampling distributions for input-uncertainty modeling.
 *
 * The paper varies six closely guarded inputs with a uniform +/-10% (and
 * +/-25%) error range around point estimates (Section 5). Distribution
 * objects package that convention so model adapters can be written once
 * and reused for any uncertainty band.
 */

#include <memory>
#include <string>

#include "stats/rng.hh"

namespace ttmcas {

/** Abstract sampling distribution over doubles. */
class Distribution
{
  public:
    virtual ~Distribution() = default;

    /** Draw one sample using @p rng. */
    virtual double sample(Rng& rng) const = 0;

    /** Expected value of the distribution. */
    virtual double mean() const = 0;

    /**
     * Map a uniform [0,1) variate to a sample (inverse CDF).
     *
     * The Saltelli sensitivity sampler works in the unit hypercube and
     * transforms through this; it must be deterministic.
     */
    virtual double quantile(double u) const = 0;

    /** Human-readable description for reports. */
    virtual std::string describe() const = 0;
};

/** Point mass: always returns the same value. */
class PointDistribution : public Distribution
{
  public:
    explicit PointDistribution(double value);

    double sample(Rng& rng) const override;
    double mean() const override { return _value; }
    double quantile(double u) const override;
    std::string describe() const override;

  private:
    double _value;
};

/** Uniform distribution over [lo, hi]. */
class UniformDistribution : public Distribution
{
  public:
    UniformDistribution(double lo, double hi);

    double sample(Rng& rng) const override;
    double mean() const override { return 0.5 * (_lo + _hi); }
    double quantile(double u) const override;
    std::string describe() const override;

    double lo() const { return _lo; }
    double hi() const { return _hi; }

  private:
    double _lo;
    double _hi;
};

/** Normal distribution, optionally truncated at zero for physical inputs. */
class NormalDistribution : public Distribution
{
  public:
    /**
     * @param mean distribution mean
     * @param stddev standard deviation (>= 0)
     * @param truncate_at_zero resample/clip negative draws to zero
     */
    NormalDistribution(double mean, double stddev,
                       bool truncate_at_zero = false);

    double sample(Rng& rng) const override;
    double mean() const override { return _mean; }
    double quantile(double u) const override;
    std::string describe() const override;

  private:
    double _mean;
    double _stddev;
    bool _truncate_at_zero;
};

/**
 * The paper's convention: uniform over [estimate*(1-band), estimate*(1+band)].
 *
 * @param estimate the point estimate
 * @param band relative half-width, e.g. 0.10 for +/-10%
 */
std::unique_ptr<Distribution> relativeUniform(double estimate, double band);

/** Inverse standard-normal CDF (Acklam's rational approximation). */
double inverseNormalCdf(double p);

} // namespace ttmcas

#endif // TTMCAS_STATS_DISTRIBUTIONS_HH
