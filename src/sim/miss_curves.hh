#ifndef TTMCAS_SIM_MISS_CURVES_HH
#define TTMCAS_SIM_MISS_CURVES_HH

/**
 * @file
 * Miss-rate-versus-capacity curve extraction.
 *
 * Runs a workload's instruction and data streams through the cache
 * simulator at every candidate capacity (the paper sweeps 1KB..1MB in
 * powers of two) and records the steady-state miss rate — the
 * substitute for the Cantin & Hill SPEC2000 tables the paper used.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "sim/cache.hh"
#include "sim/workloads.hh"

namespace ttmcas {

/** Miss rate as a function of capacity for one (workload, stream). */
struct MissCurve
{
    std::string workload;
    bool instruction_stream = false;
    std::vector<std::uint64_t> sizes_bytes;
    std::vector<double> miss_rates;

    /** Miss rate at @p size_bytes (must be one of the swept sizes). */
    double at(std::uint64_t size_bytes) const;
};

/** Sweep configuration. */
struct MissCurveOptions
{
    /** Capacities to sweep (default: 1KB..1MB, powers of two). */
    std::vector<std::uint64_t> sizes_bytes;
    /** Accesses used to warm the cache before measuring. */
    std::size_t warmup_accesses = 200'000;
    /** Accesses measured after warm-up. */
    std::size_t measured_accesses = 800'000;
    std::uint32_t line_bytes = 64;
    std::uint32_t associativity = 4;
    ReplacementPolicy policy = ReplacementPolicy::Lru;
    std::uint64_t seed = 0x5bec;

    /** The paper's 1KB..1MB power-of-two sweep. */
    static std::vector<std::uint64_t> paperSizes();
};

/** Extract one stream's miss curve. */
MissCurve measureMissCurve(const Workload& workload, bool instruction_stream,
                           const MissCurveOptions& options);

/** Suite-average miss curves (instruction, data) over @p suite. */
std::pair<MissCurve, MissCurve>
averageMissCurves(const std::vector<Workload>& suite,
                  const MissCurveOptions& options);

} // namespace ttmcas

#endif // TTMCAS_SIM_MISS_CURVES_HH
