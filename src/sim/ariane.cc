#include "sim/ariane.hh"

#include "support/error.hh"

namespace ttmcas {

double
ArianeChipSpec::cacheTransistorsPerCore() const
{
    const double bits =
        static_cast<double>(icache_bytes + dcache_bytes) * 8.0;
    return bits * transistors_per_cache_bit;
}

double
ArianeChipSpec::totalTransistors() const
{
    return cores * (core_logic_transistors + cacheTransistorsPerCore()) +
           uncore_transistors;
}

double
ArianeChipSpec::uniqueTransistors() const
{
    return core_logic_transistors +
           cacheTransistorsPerCore() * cache_unique_fraction +
           uncore_transistors;
}

ChipDesign
makeArianeChip(const ArianeChipSpec& spec, const std::string& process,
               Weeks design_time)
{
    TTMCAS_REQUIRE(spec.cores > 0, "Ariane chip needs at least one core");
    TTMCAS_REQUIRE(spec.icache_bytes > 0 && spec.dcache_bytes > 0,
                   "cache capacities must be positive");
    TTMCAS_REQUIRE(spec.cache_unique_fraction >= 0.0 &&
                       spec.cache_unique_fraction <= 1.0,
                   "cache unique fraction must be in [0, 1]");

    ChipDesign design;
    design.name = "ariane" + std::to_string(spec.cores) + "c@" + process;
    design.design_time = design_time;

    Die die;
    die.name = "ariane-soc";
    die.process = process;
    die.total_transistors = spec.totalTransistors();
    die.unique_transistors = spec.uniqueTransistors();
    die.count_per_package = 1.0;
    design.dies.push_back(std::move(die));

    design.validate();
    return design;
}

} // namespace ttmcas
