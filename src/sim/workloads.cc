#include "sim/workloads.hh"

#include "support/error.hh"

namespace ttmcas {

namespace {

constexpr std::uint64_t kKiB = 1024;
constexpr std::uint64_t kMiB = 1024 * 1024;

std::shared_ptr<TraceGenerator>
loop(std::uint64_t bytes)
{
    return std::make_shared<LoopTrace>(bytes, 8);
}

std::shared_ptr<TraceGenerator>
zipf(std::uint64_t footprint_bytes, double exponent)
{
    return std::make_shared<ZipfTrace>(footprint_bytes / 64, exponent, 64);
}

/** Instruction stream: basic blocks of ~12 RV64 instructions. */
std::shared_ptr<TraceGenerator>
code(std::uint64_t footprint_bytes, double exponent)
{
    return std::make_shared<RunTrace>(zipf(footprint_bytes, exponent), 12,
                                      4);
}

/** Data records: ~4 consecutive 8-byte words per touched address. */
std::shared_ptr<TraceGenerator>
records(std::uint64_t footprint_bytes, double exponent)
{
    return std::make_shared<RunTrace>(zipf(footprint_bytes, exponent), 4,
                                      8);
}

std::shared_ptr<TraceGenerator>
stream()
{
    return std::make_shared<SequentialTrace>(8, 256 * kMiB);
}

std::shared_ptr<TraceGenerator>
strided(std::uint64_t stride, std::uint64_t length)
{
    return std::make_shared<StridedTrace>(stride, length);
}

std::shared_ptr<TraceGenerator>
mix(std::vector<MixedTrace::Component> components)
{
    return std::make_shared<MixedTrace>(std::move(components));
}

Workload
make(std::string name, double mem_frac,
     std::shared_ptr<TraceGenerator> instructions,
     std::shared_ptr<TraceGenerator> data)
{
    Workload workload;
    workload.name = std::move(name);
    workload.memory_ref_fraction = mem_frac;
    workload.instruction_stream = std::move(instructions);
    workload.data_stream = std::move(data);
    return workload;
}

} // namespace

std::vector<Workload>
defaultWorkloadSuite()
{
    std::vector<Workload> suite;

    // Small kernel, hot data: everything fits early.
    suite.push_back(make("tightloop", 0.35, code(4 * kKiB, 1.3),
                         mix({{loop(12 * kKiB), 0.9}, {stream(), 0.1}})));

    // Pointer-chasing integer code: skewed data footprint, long tail.
    suite.push_back(make("pointer", 0.40, code(48 * kKiB, 1.25),
                         records(48 * kKiB, 1.05)));

    // Streaming FP kernel: data never re-used, code tiny.
    suite.push_back(make("stream", 0.45, code(2 * kKiB, 1.4),
                         mix({{stream(), 0.7}, {loop(24 * kKiB), 0.3}})));

    // Stencil sweep: strided reuse plus a medium hot region.
    suite.push_back(
        make("stencil", 0.42, code(8 * kKiB, 1.3),
             mix({{strided(4 * kKiB, 128 * kKiB), 0.3},
                  {loop(24 * kKiB), 0.7}})));

    // Large branchy code footprint (compiler/interpreter-like).
    suite.push_back(make("branchy", 0.30, code(192 * kKiB, 1.15),
                         records(96 * kKiB, 1.10)));

    // Database-scan-like: moderate code, big cold data tail.
    suite.push_back(make("dbscan", 0.38, code(64 * kKiB, 1.3),
                         mix({{records(96 * kKiB, 1.0), 0.85},
                              {stream(), 0.15}})));

    // Blocked matrix multiply: tiny code, blocked data reuse.
    suite.push_back(
        make("matmul", 0.45, code(2 * kKiB, 1.4),
             mix({{loop(48 * kKiB), 0.7},
                  {strided(512, 64 * kKiB), 0.3}})));

    // General integer mix.
    suite.push_back(
        make("mixedint", 0.33,
             mix({{code(24 * kKiB, 1.3), 0.7}, {code(4 * kKiB, 1.2), 0.3}}),
             mix({{records(32 * kKiB, 1.1), 0.9}, {stream(), 0.1}})));

    return suite;
}

const Workload&
findWorkload(const std::vector<Workload>& suite, const std::string& name)
{
    for (const auto& workload : suite) {
        if (workload.name == name)
            return workload;
    }
    throw ModelError("unknown workload '" + name + "'");
}

} // namespace ttmcas
