#include "sim/trace.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "support/error.hh"

namespace ttmcas {

std::vector<std::uint64_t>
TraceGenerator::generate(std::size_t count, Rng& rng)
{
    std::vector<std::uint64_t> addresses;
    addresses.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        addresses.push_back(next(rng));
    return addresses;
}

SequentialTrace::SequentialTrace(std::uint64_t element_bytes,
                                 std::uint64_t length_bytes)
    : _element_bytes(element_bytes), _length_bytes(length_bytes)
{
    TTMCAS_REQUIRE(element_bytes > 0, "element size must be positive");
}

std::uint64_t
SequentialTrace::next(Rng& rng)
{
    (void)rng;
    const std::uint64_t address = _position;
    _position += _element_bytes;
    if (_length_bytes != 0 && _position >= _length_bytes)
        _position = 0;
    return address;
}

StridedTrace::StridedTrace(std::uint64_t stride_bytes,
                           std::uint64_t length_bytes)
    : _stride_bytes(stride_bytes), _length_bytes(length_bytes)
{
    TTMCAS_REQUIRE(stride_bytes > 0, "stride must be positive");
    TTMCAS_REQUIRE(length_bytes >= stride_bytes,
                   "length must cover at least one stride");
}

std::uint64_t
StridedTrace::next(Rng& rng)
{
    (void)rng;
    const std::uint64_t address = _position;
    _position += _stride_bytes;
    if (_position >= _length_bytes)
        _position = 0;
    return address;
}

LoopTrace::LoopTrace(std::uint64_t working_set_bytes,
                     std::uint64_t element_bytes)
    : _working_set_bytes(working_set_bytes), _element_bytes(element_bytes)
{
    TTMCAS_REQUIRE(element_bytes > 0, "element size must be positive");
    TTMCAS_REQUIRE(working_set_bytes >= element_bytes,
                   "working set must cover at least one element");
}

std::uint64_t
LoopTrace::next(Rng& rng)
{
    (void)rng;
    const std::uint64_t address = _position;
    _position += _element_bytes;
    if (_position >= _working_set_bytes)
        _position = 0;
    return address;
}

ZipfTrace::ZipfTrace(std::size_t blocks, double exponent,
                     std::uint64_t block_bytes)
    : _blocks(blocks), _exponent(exponent), _block_bytes(block_bytes)
{
    TTMCAS_REQUIRE(blocks >= 1, "zipf footprint needs at least one block");
    TTMCAS_REQUIRE(exponent > 0.0, "zipf exponent must be positive");
    TTMCAS_REQUIRE(block_bytes > 0, "block size must be positive");

    // Cumulative popularity of ranks 1..N under p(r) ~ r^-s.
    _cdf.resize(blocks);
    double total = 0.0;
    for (std::size_t rank = 0; rank < blocks; ++rank) {
        total += std::pow(static_cast<double>(rank + 1), -exponent);
        _cdf[rank] = total;
    }
    for (double& value : _cdf)
        value /= total;

    // Scatter ranks over the footprint so popular blocks do not all map
    // to the same cache sets. Deterministic: a fixed-seed shuffle.
    _remap.resize(blocks);
    std::iota(_remap.begin(), _remap.end(), 0);
    Rng shuffle_rng(0xb10c5);
    for (std::size_t i = blocks; i > 1; --i) {
        std::swap(_remap[i - 1],
                  _remap[shuffle_rng.uniformInt(i)]);
    }
}

std::size_t
ZipfTrace::sampleRank(Rng& rng) const
{
    const double u = rng.uniform();
    const auto it = std::lower_bound(_cdf.begin(), _cdf.end(), u);
    return static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - _cdf.begin(),
                                 static_cast<std::ptrdiff_t>(_blocks) - 1));
}

std::uint64_t
ZipfTrace::next(Rng& rng)
{
    const std::size_t rank = sampleRank(rng);
    const std::uint64_t block = _remap[rank];
    const std::uint64_t offset = rng.uniformInt(_block_bytes);
    return block * _block_bytes + offset;
}

RunTrace::RunTrace(std::shared_ptr<TraceGenerator> base_picker,
                   std::size_t run_length, std::uint64_t word_bytes)
    : _base_picker(std::move(base_picker)), _run_length(run_length),
      _word_bytes(word_bytes)
{
    TTMCAS_REQUIRE(_base_picker != nullptr, "run trace needs a base picker");
    TTMCAS_REQUIRE(run_length >= 1, "run length must be >= 1");
    TTMCAS_REQUIRE(word_bytes > 0, "word size must be positive");
}

std::uint64_t
RunTrace::next(Rng& rng)
{
    if (_remaining == 0) {
        _current = _base_picker->next(rng);
        _remaining = _run_length;
    }
    const std::uint64_t address = _current;
    _current += _word_bytes;
    --_remaining;
    return address;
}

void
RunTrace::reset()
{
    _base_picker->reset();
    _current = 0;
    _remaining = 0;
}

MixedTrace::MixedTrace(std::vector<Component> components)
    : _components(std::move(components))
{
    TTMCAS_REQUIRE(!_components.empty(), "mixed trace needs components");
    double total = 0.0;
    for (const auto& component : _components) {
        TTMCAS_REQUIRE(component.generator != nullptr,
                       "mixed trace component needs a generator");
        TTMCAS_REQUIRE(component.weight > 0.0,
                       "mixed trace weights must be positive");
        total += component.weight;
    }
    double acc = 0.0;
    _cdf.reserve(_components.size());
    for (const auto& component : _components) {
        acc += component.weight / total;
        _cdf.push_back(acc);
    }
}

std::uint64_t
MixedTrace::next(Rng& rng)
{
    const double u = rng.uniform();
    std::size_t pick = 0;
    while (pick + 1 < _cdf.size() && _cdf[pick] < u)
        ++pick;
    // Give each component a disjoint 1 TiB region so streams cannot
    // alias each other in the cache.
    const std::uint64_t region = static_cast<std::uint64_t>(pick) << 40;
    return region + _components[pick].generator->next(rng);
}

void
MixedTrace::reset()
{
    for (auto& component : _components)
        component.generator->reset();
}

} // namespace ttmcas
