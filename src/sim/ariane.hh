#ifndef TTMCAS_SIM_ARIANE_HH
#define TTMCAS_SIM_ARIANE_HH

/**
 * @file
 * Transistor/area model of the 16-core Ariane chip of Section 6.1.
 *
 * Components:
 *  - core logic: Ariane RV64 in-order pipeline, ~2.5M transistors per
 *    core (Zaruba & Benini report ~75 kGE of logic plus FPU/MMU);
 *  - caches: 6T SRAM cells plus ~25% array overhead (decoders, sense
 *    amps, tags) = 7.5 transistors per bit = 61,440 per KiB;
 *  - uncore: interconnect, L2-less memory interface, peripherals
 *    (~20M transistors shared).
 *
 * Unique transistors (tapeout): one core's logic, the cache macro
 * *periphery* (10% of the array — compiled SRAM arrays come
 * pre-verified from the foundry), and the uncore. The remaining 15
 * cores are stamped copies (paper Section 3.2).
 */

#include <cstdint>

#include "core/design.hh"

namespace ttmcas {

/** Parameters of the Ariane multicore design generator. */
struct ArianeChipSpec
{
    std::uint32_t cores = 16;
    std::uint64_t icache_bytes = 16 * 1024; // paper default
    std::uint64_t dcache_bytes = 32 * 1024; // paper default
    double core_logic_transistors = 2.5e6;
    double transistors_per_cache_bit = 7.5;
    double uncore_transistors = 20e6;
    /** Fraction of cache transistors that are unique (periphery). */
    double cache_unique_fraction = 0.10;

    /** Cache transistors per core (both caches). */
    double cacheTransistorsPerCore() const;

    /** Total transistors for the whole chip. */
    double totalTransistors() const;

    /** Unique transistors (one core + cache periphery + uncore). */
    double uniqueTransistors() const;
};

/**
 * Build the multicore Ariane ChipDesign at @p process.
 * @param design_time per-design constant (default 2 weeks, matching
 *        the other re-targeting case studies)
 */
ChipDesign makeArianeChip(const ArianeChipSpec& spec,
                          const std::string& process,
                          Weeks design_time = Weeks(2.0));

} // namespace ttmcas

#endif // TTMCAS_SIM_ARIANE_HH
