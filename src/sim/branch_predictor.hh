#ifndef TTMCAS_SIM_BRANCH_PREDICTOR_HH
#define TTMCAS_SIM_BRANCH_PREDICTOR_HH

/**
 * @file
 * Branch-predictor simulation.
 *
 * The pipeline model takes a mispredict *rate* as a parameter; this
 * module derives that rate from an actual predictor running on a
 * synthetic branch workload, closing the same assumed-vs-measured gap
 * the pipeline simulator closes for base CPI.
 *
 *  - BimodalPredictor: the classic per-PC table of saturating 2-bit
 *    counters.
 *  - GsharePredictor: global history XOR PC indexing into the same
 *    counter table — captures correlated branches the bimodal table
 *    cannot.
 *  - SyntheticBranchWorkload: a population of static branches, some
 *    heavily biased (loop back-edges, error checks), some pattern-
 *    driven, some data-dependent coin flips — the textbook mix.
 */

#include <cstdint>
#include <vector>

#include "stats/rng.hh"

namespace ttmcas {

/** Saturating 2-bit counter table indexed by PC bits. */
class BimodalPredictor
{
  public:
    /** @param table_entries power-of-two counter count. */
    explicit BimodalPredictor(std::size_t table_entries = 1024);

    /** Predicted direction for @p pc. */
    bool predict(std::uint64_t pc) const;

    /** Train with the resolved direction. */
    void update(std::uint64_t pc, bool taken);

  private:
    std::size_t index(std::uint64_t pc) const;
    std::vector<std::uint8_t> _counters; // 0..3; >=2 predicts taken
};

/** Gshare: global-history XOR PC indexing into 2-bit counters. */
class GsharePredictor
{
  public:
    /**
     * @param table_entries power-of-two counter count
     * @param history_bits global history length (<= 16)
     */
    explicit GsharePredictor(std::size_t table_entries = 1024,
                             std::uint32_t history_bits = 8);

    bool predict(std::uint64_t pc) const;
    void update(std::uint64_t pc, bool taken);

  private:
    std::size_t index(std::uint64_t pc) const;
    std::vector<std::uint8_t> _counters;
    std::uint32_t _history_bits;
    std::uint32_t _history = 0;
};

/** One dynamic branch outcome. */
struct BranchOutcome
{
    std::uint64_t pc = 0;
    bool taken = false;
};

/**
 * Synthetic branch population: biased, patterned (loop with period
 * k), and random branches in configurable shares.
 */
class SyntheticBranchWorkload
{
  public:
    struct Mix
    {
        /** Strongly biased branches (~95% one direction). */
        double biased = 0.60;
        /** Loop-style T^(k-1) N patterns, k in 4..64. */
        double looping = 0.25;
        /** Data-dependent 50/50 branches. */
        double random = 0.15;
        /** Distinct static branches in the program. */
        std::size_t static_branches = 256;
    };

    SyntheticBranchWorkload(Mix mix, std::uint64_t seed);

    /** Next dynamic branch. */
    BranchOutcome next();

  private:
    struct StaticBranch
    {
        std::uint64_t pc = 0;
        int kind = 0;           // 0 biased, 1 looping, 2 random
        double taken_bias = 0.5;
        std::uint32_t period = 0;
        std::uint32_t position = 0;
    };

    std::vector<StaticBranch> _branches;
    Rng _rng;
};

/** Run @p branches through a predictor and return the mispredict rate. */
template <typename Predictor>
double
measureMispredictRate(Predictor& predictor,
                      SyntheticBranchWorkload& workload,
                      std::size_t branches)
{
    std::size_t mispredicts = 0;
    for (std::size_t i = 0; i < branches; ++i) {
        const BranchOutcome outcome = workload.next();
        if (predictor.predict(outcome.pc) != outcome.taken)
            ++mispredicts;
        predictor.update(outcome.pc, outcome.taken);
    }
    return static_cast<double>(mispredicts) /
           static_cast<double>(branches);
}

} // namespace ttmcas

#endif // TTMCAS_SIM_BRANCH_PREDICTOR_HH
