#include "sim/cache.hh"

#include <bit>

#include "support/error.hh"

namespace ttmcas {

std::string
replacementPolicyName(ReplacementPolicy policy)
{
    switch (policy) {
      case ReplacementPolicy::Lru:
        return "lru";
      case ReplacementPolicy::Fifo:
        return "fifo";
      case ReplacementPolicy::Random:
        return "random";
      case ReplacementPolicy::TreePlru:
        return "tree-plru";
    }
    TTMCAS_INVARIANT(false, "unhandled ReplacementPolicy");
}

std::uint64_t
CacheConfig::numSets() const
{
    return size_bytes / (static_cast<std::uint64_t>(line_bytes) *
                         associativity);
}

void
CacheConfig::validate() const
{
    TTMCAS_REQUIRE(line_bytes > 0 && std::has_single_bit(line_bytes),
                   "cache line size must be a power of two");
    TTMCAS_REQUIRE(associativity > 0, "associativity must be positive");
    TTMCAS_REQUIRE(size_bytes >=
                       static_cast<std::uint64_t>(line_bytes) *
                           associativity,
                   "cache must hold at least one set");
    TTMCAS_REQUIRE(size_bytes % (static_cast<std::uint64_t>(line_bytes) *
                                 associativity) ==
                       0,
                   "cache size must be a whole number of sets");
    TTMCAS_REQUIRE(std::has_single_bit(numSets()),
                   "number of sets must be a power of two");
    if (policy == ReplacementPolicy::TreePlru) {
        TTMCAS_REQUIRE(std::has_single_bit(associativity),
                       "tree-PLRU needs power-of-two associativity");
    }
}

Cache::Cache(CacheConfig config, std::uint64_t seed)
    : _config(config), _rng(seed)
{
    _config.validate();
    _ways.resize(_config.numSets() * _config.associativity);
    _plru.resize(_config.numSets(), 0);
}

std::uint64_t
Cache::setIndex(std::uint64_t address) const
{
    return (address / _config.line_bytes) % _config.numSets();
}

std::uint64_t
Cache::tagOf(std::uint64_t address) const
{
    return address / _config.line_bytes / _config.numSets();
}

std::uint32_t
Cache::victimWay(std::uint64_t set)
{
    const std::size_t base = set * _config.associativity;

    // Invalid ways first, in every policy.
    for (std::uint32_t way = 0; way < _config.associativity; ++way) {
        if (!_ways[base + way].valid)
            return way;
    }

    switch (_config.policy) {
      case ReplacementPolicy::Lru:
      case ReplacementPolicy::Fifo: {
        std::uint32_t victim = 0;
        for (std::uint32_t way = 1; way < _config.associativity; ++way) {
            if (_ways[base + way].order < _ways[base + victim].order)
                victim = way;
        }
        return victim;
      }
      case ReplacementPolicy::Random:
        return static_cast<std::uint32_t>(
            _rng.uniformInt(_config.associativity));
      case ReplacementPolicy::TreePlru: {
        // Walk the PLRU tree following the "less recently used" bits.
        std::uint32_t bits = _plru[set];
        std::uint32_t node = 1;
        std::uint32_t levels = std::countr_zero(_config.associativity);
        for (std::uint32_t level = 0; level < levels; ++level) {
            const std::uint32_t bit = (bits >> node) & 1U;
            node = node * 2 + bit;
        }
        return node - _config.associativity;
      }
    }
    TTMCAS_INVARIANT(false, "unhandled ReplacementPolicy");
}

void
Cache::touch(std::uint64_t set, std::uint32_t way, bool is_fill)
{
    const std::size_t base = set * _config.associativity;
    switch (_config.policy) {
      case ReplacementPolicy::Lru:
        _ways[base + way].order = ++_tick;
        break;
      case ReplacementPolicy::Fifo:
        if (is_fill)
            _ways[base + way].order = ++_tick;
        break;
      case ReplacementPolicy::Random:
        break;
      case ReplacementPolicy::TreePlru: {
        // Flip the bits along the path so they point away from this way.
        std::uint32_t node = way + _config.associativity;
        std::uint32_t bits = _plru[set];
        while (node > 1) {
            const std::uint32_t parent = node / 2;
            const std::uint32_t went_right = node & 1U;
            // Point the parent's bit at the *other* child.
            if (went_right)
                bits &= ~(1U << parent);
            else
                bits |= (1U << parent);
            node = parent;
        }
        _plru[set] = bits;
        break;
      }
    }
}

void
Cache::install(std::uint64_t address)
{
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    const std::size_t base = set * _config.associativity;
    for (std::uint32_t way = 0; way < _config.associativity; ++way) {
        if (_ways[base + way].valid && _ways[base + way].tag == tag)
            return; // already resident
    }
    const std::uint32_t victim = victimWay(set);
    Way& entry = _ways[base + victim];
    entry.tag = tag;
    entry.valid = true;
    touch(set, victim, /*is_fill=*/true);
}

bool
Cache::access(std::uint64_t address)
{
    ++_stats.accesses;
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    const std::size_t base = set * _config.associativity;

    for (std::uint32_t way = 0; way < _config.associativity; ++way) {
        Way& entry = _ways[base + way];
        if (entry.valid && entry.tag == tag) {
            ++_stats.hits;
            touch(set, way, /*is_fill=*/false);
            return true;
        }
    }

    install(address);
    if (_config.next_line_prefetch)
        install(address + _config.line_bytes);
    return false;
}

double
Cache::run(const std::vector<std::uint64_t>& addresses)
{
    for (std::uint64_t address : addresses)
        access(address);
    return _stats.missRate();
}

void
Cache::reset()
{
    for (auto& way : _ways)
        way = Way{};
    for (auto& bits : _plru)
        bits = 0;
    _stats = CacheStats{};
    _tick = 0;
}

bool
Cache::contains(std::uint64_t address) const
{
    const std::uint64_t set = setIndex(address);
    const std::uint64_t tag = tagOf(address);
    const std::size_t base = set * _config.associativity;
    for (std::uint32_t way = 0; way < _config.associativity; ++way) {
        const Way& entry = _ways[base + way];
        if (entry.valid && entry.tag == tag)
            return true;
    }
    return false;
}

} // namespace ttmcas
