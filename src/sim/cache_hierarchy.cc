#include "sim/cache_hierarchy.hh"

#include "stats/rng.hh"
#include "support/error.hh"

namespace ttmcas {

double
HierarchyStats::l1MissRate() const
{
    if (accesses == 0)
        return 0.0;
    return static_cast<double>(accesses - l1_hits) /
           static_cast<double>(accesses);
}

double
HierarchyStats::memoryRate() const
{
    if (accesses == 0)
        return 0.0;
    return static_cast<double>(memoryAccesses()) /
           static_cast<double>(accesses);
}

CacheHierarchy::CacheHierarchy(CacheConfig l1i, CacheConfig l1d,
                               CacheConfig l2, std::uint64_t seed)
    : _l1i(l1i, seed), _l1d(l1d, seed ^ 0x1), _l2(l2, seed ^ 0x2)
{
    TTMCAS_REQUIRE(l2.size_bytes >= l1i.size_bytes &&
                       l2.size_bytes >= l1d.size_bytes,
                   "L2 must be at least as large as each L1");
}

void
CacheHierarchy::access(Cache& l1, HierarchyStats& stats,
                       std::uint64_t address)
{
    ++stats.accesses;
    if (l1.access(address)) {
        ++stats.l1_hits;
        return;
    }
    if (_l2.access(address))
        ++stats.l2_hits;
}

void
CacheHierarchy::fetch(std::uint64_t address)
{
    access(_l1i, _istats, address);
}

void
CacheHierarchy::data(std::uint64_t address)
{
    access(_l1d, _dstats, address);
}

void
CacheHierarchy::reset()
{
    _l1i.reset();
    _l1d.reset();
    _l2.reset();
    _istats = HierarchyStats{};
    _dstats = HierarchyStats{};
}

std::pair<HierarchyStats, HierarchyStats>
CacheHierarchy::run(const Workload& workload, std::size_t accesses,
                    std::uint64_t seed)
{
    TTMCAS_REQUIRE(workload.instruction_stream != nullptr &&
                       workload.data_stream != nullptr,
                   "workload '" + workload.name + "' lacks streams");
    workload.instruction_stream->reset();
    workload.data_stream->reset();
    Rng rng(seed);
    for (std::size_t i = 0; i < accesses; ++i) {
        fetch(workload.instruction_stream->next(rng));
        if (rng.uniform() < workload.memory_ref_fraction)
            data(workload.data_stream->next(rng));
    }
    return {_istats, _dstats};
}

double
TwoLevelIpcModel::ipc(const HierarchyStats& instruction,
                      const HierarchyStats& data) const
{
    TTMCAS_REQUIRE(base_cpi > 0.0, "base CPI must be positive");
    TTMCAS_REQUIRE(instruction.accesses > 0,
                   "need instruction accesses to compute IPC");

    // Per-instruction penalties: instruction-side rates are already
    // per instruction; data-side rates are per data access and scale
    // by the reference fraction.
    const double i_l2 = (instruction.l1MissRate() -
                         instruction.memoryRate()) *
                        l2_hit_penalty;
    const double i_mem = instruction.memoryRate() * memory_penalty;
    const double d_l2 =
        memory_ref_fraction *
        (data.l1MissRate() - data.memoryRate()) * l2_hit_penalty;
    const double d_mem =
        memory_ref_fraction * data.memoryRate() * memory_penalty;

    return 1.0 / (base_cpi + i_l2 + i_mem + d_l2 + d_mem);
}

} // namespace ttmcas
