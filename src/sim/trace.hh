#ifndef TTMCAS_SIM_TRACE_HH
#define TTMCAS_SIM_TRACE_HH

/**
 * @file
 * Synthetic memory-address trace generators.
 *
 * The paper's cache-sizing case study (Section 6.1) uses SPEC CPU2000
 * cache-performance data [Cantin & Hill 2001], which is not
 * redistributable as traces. We substitute synthetic workloads whose
 * miss-rate-versus-capacity curves have the same structure as real SPEC
 * curves: monotonically falling with strong diminishing returns
 * (power-law-shaped), with distinct knees per workload. Generators are
 * deterministic given a seed.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "stats/rng.hh"

namespace ttmcas {

/** Abstract address-stream generator. */
class TraceGenerator
{
  public:
    virtual ~TraceGenerator() = default;

    /** Next byte address in the stream. */
    virtual std::uint64_t next(Rng& rng) = 0;

    /** Reset internal position state (not the RNG). */
    virtual void reset() = 0;

    /** Generator name for reports. */
    virtual std::string name() const = 0;

    /** Convenience: materialize @p count addresses. */
    std::vector<std::uint64_t> generate(std::size_t count, Rng& rng);
};

/** Pure streaming: consecutive addresses with a fixed element size. */
class SequentialTrace : public TraceGenerator
{
  public:
    /**
     * @param element_bytes address increment per access
     * @param length_bytes wrap around after this many bytes (0 = never)
     */
    explicit SequentialTrace(std::uint64_t element_bytes = 8,
                             std::uint64_t length_bytes = 0);

    std::uint64_t next(Rng& rng) override;
    void reset() override { _position = 0; }
    std::string name() const override { return "sequential"; }

  private:
    std::uint64_t _element_bytes;
    std::uint64_t _length_bytes;
    std::uint64_t _position = 0;
};

/** Fixed-stride accesses (column walks, strided BLAS). */
class StridedTrace : public TraceGenerator
{
  public:
    StridedTrace(std::uint64_t stride_bytes, std::uint64_t length_bytes);

    std::uint64_t next(Rng& rng) override;
    void reset() override { _position = 0; }
    std::string name() const override { return "strided"; }

  private:
    std::uint64_t _stride_bytes;
    std::uint64_t _length_bytes;
    std::uint64_t _position = 0;
};

/**
 * Loop over a working set: sequential sweep of @p working_set_bytes,
 * repeated. Hit rate snaps from ~0 to ~1 once the cache covers the
 * working set — the classic capacity knee.
 */
class LoopTrace : public TraceGenerator
{
  public:
    LoopTrace(std::uint64_t working_set_bytes,
              std::uint64_t element_bytes = 8);

    std::uint64_t next(Rng& rng) override;
    void reset() override { _position = 0; }
    std::string name() const override { return "loop"; }

  private:
    std::uint64_t _working_set_bytes;
    std::uint64_t _element_bytes;
    std::uint64_t _position = 0;
};

/**
 * Zipf-distributed block popularity over a large footprint: a few hot
 * blocks dominate, with a long cold tail. Produces smooth power-law
 * miss curves like pointer-rich SPEC integer codes.
 */
class ZipfTrace : public TraceGenerator
{
  public:
    /**
     * @param blocks number of distinct 64B blocks in the footprint
     * @param exponent Zipf skew (~0.8-1.2 typical)
     * @param block_bytes granularity of the popularity distribution
     */
    ZipfTrace(std::size_t blocks, double exponent,
              std::uint64_t block_bytes = 64);

    std::uint64_t next(Rng& rng) override;
    void reset() override {}
    std::string name() const override { return "zipf"; }

  private:
    std::size_t sampleRank(Rng& rng) const;

    std::size_t _blocks;
    double _exponent;
    std::uint64_t _block_bytes;
    std::vector<double> _cdf;          // cumulative popularity
    std::vector<std::uint64_t> _remap; // rank -> shuffled block id
};

/**
 * Spatial-locality wrapper: pick a base address from a child generator,
 * then emit @p run_length sequential words from it before picking
 * again. Models basic blocks in instruction streams and multi-word
 * record/stack accesses in data streams — without it, synthetic traces
 * lack the within-line reuse every real workload has.
 */
class RunTrace : public TraceGenerator
{
  public:
    RunTrace(std::shared_ptr<TraceGenerator> base_picker,
             std::size_t run_length, std::uint64_t word_bytes);

    std::uint64_t next(Rng& rng) override;
    void reset() override;
    std::string name() const override { return "run"; }

  private:
    std::shared_ptr<TraceGenerator> _base_picker;
    std::size_t _run_length;
    std::uint64_t _word_bytes;
    std::uint64_t _current = 0;
    std::size_t _remaining = 0;
};

/**
 * Weighted mixture of child generators (e.g. 60% zipf heap + 30%
 * sequential streaming + 10% strided), each in a disjoint address
 * region so streams do not alias.
 */
class MixedTrace : public TraceGenerator
{
  public:
    struct Component
    {
        std::shared_ptr<TraceGenerator> generator;
        double weight = 1.0;
    };

    explicit MixedTrace(std::vector<Component> components);

    std::uint64_t next(Rng& rng) override;
    void reset() override;
    std::string name() const override { return "mixed"; }

  private:
    std::vector<Component> _components;
    std::vector<double> _cdf;
};

} // namespace ttmcas

#endif // TTMCAS_SIM_TRACE_HH
