#ifndef TTMCAS_SIM_IPC_MODEL_HH
#define TTMCAS_SIM_IPC_MODEL_HH

/**
 * @file
 * In-order (Ariane-class) core IPC model.
 *
 * The paper's Fig. 4 plots IPC in the 0.12-0.26 range for a 16-core
 * Ariane across (I$, D$) capacities; that absolute level implies a
 * memory-stall-dominated CPI. We use the standard additive model
 *
 *   CPI = CPI_base + miss_I * penalty + f_mem * miss_D * penalty
 *   IPC = 1 / CPI
 *
 * with a single-level cache hierarchy (misses go to DRAM), which is
 * Ariane's configuration in the cited silicon [Zaruba & Benini 2019].
 * Defaults are calibrated so the suite-average miss curves land inside
 * the paper's IPC range at the swept cache sizes.
 */

#include <cstdint>

#include "sim/miss_curves.hh"

namespace ttmcas {

/** Additive-CPI in-order core model. */
struct IpcModel
{
    /** Pipeline CPI with perfect caches (hazards, branches, mul/div). */
    double base_cpi = 3.3;
    /** Data references per instruction (loads + stores). */
    double memory_ref_fraction = 0.30;
    /** Cycles lost per cache miss (DRAM round trip on a miss). */
    double miss_penalty_cycles = 60.0;

    /** IPC for given per-access miss rates. */
    double ipc(double instruction_miss_rate, double data_miss_rate) const;

    /**
     * IPC for an (I$, D$) capacity pair using measured miss curves;
     * the workload's own memory_ref_fraction overrides the default
     * when @p workload_mem_fraction >= 0.
     */
    double ipcAt(const MissCurve& instruction_curve,
                 const MissCurve& data_curve, std::uint64_t icache_bytes,
                 std::uint64_t dcache_bytes,
                 double workload_mem_fraction = -1.0) const;
};

} // namespace ttmcas

#endif // TTMCAS_SIM_IPC_MODEL_HH
