#include "sim/miss_curves.hh"

#include <algorithm>

#include "support/error.hh"

namespace ttmcas {

double
MissCurve::at(std::uint64_t size_bytes) const
{
    for (std::size_t i = 0; i < sizes_bytes.size(); ++i) {
        if (sizes_bytes[i] == size_bytes)
            return miss_rates[i];
    }
    throw ModelError("miss curve for '" + workload + "' has no " +
                     std::to_string(size_bytes) + "-byte point");
}

std::vector<std::uint64_t>
MissCurveOptions::paperSizes()
{
    std::vector<std::uint64_t> sizes;
    for (std::uint64_t size = 1024; size <= 1024 * 1024; size *= 2)
        sizes.push_back(size);
    return sizes;
}

MissCurve
measureMissCurve(const Workload& workload, bool instruction_stream,
                 const MissCurveOptions& options)
{
    TTMCAS_REQUIRE(options.measured_accesses > 0,
                   "need a positive measurement window");
    const std::vector<std::uint64_t> sizes =
        options.sizes_bytes.empty() ? MissCurveOptions::paperSizes()
                                    : options.sizes_bytes;

    MissCurve curve;
    curve.workload = workload.name;
    curve.instruction_stream = instruction_stream;
    curve.sizes_bytes = sizes;
    curve.miss_rates.reserve(sizes.size());

    const auto& generator_ptr = instruction_stream
                                    ? workload.instruction_stream
                                    : workload.data_stream;
    TTMCAS_REQUIRE(generator_ptr != nullptr,
                   "workload '" + workload.name + "' lacks a stream");

    for (std::uint64_t size : sizes) {
        CacheConfig config;
        config.size_bytes = size;
        config.line_bytes = options.line_bytes;
        config.associativity = options.associativity;
        config.policy = options.policy;
        Cache cache(config, options.seed);

        // Same address sequence at every size: reset position state and
        // reseed the RNG so curves differ only by capacity.
        generator_ptr->reset();
        Rng rng(options.seed);

        for (std::size_t i = 0; i < options.warmup_accesses; ++i)
            cache.access(generator_ptr->next(rng));
        const std::uint64_t warm_accesses = cache.stats().accesses;
        const std::uint64_t warm_hits = cache.stats().hits;

        for (std::size_t i = 0; i < options.measured_accesses; ++i)
            cache.access(generator_ptr->next(rng));

        const std::uint64_t accesses =
            cache.stats().accesses - warm_accesses;
        const std::uint64_t hits = cache.stats().hits - warm_hits;
        curve.miss_rates.push_back(
            static_cast<double>(accesses - hits) /
            static_cast<double>(accesses));
    }
    return curve;
}

std::pair<MissCurve, MissCurve>
averageMissCurves(const std::vector<Workload>& suite,
                  const MissCurveOptions& options)
{
    TTMCAS_REQUIRE(!suite.empty(), "workload suite must not be empty");
    const std::vector<std::uint64_t> sizes =
        options.sizes_bytes.empty() ? MissCurveOptions::paperSizes()
                                    : options.sizes_bytes;

    MissCurve instr;
    instr.workload = "suite-average";
    instr.instruction_stream = true;
    instr.sizes_bytes = sizes;
    instr.miss_rates.assign(sizes.size(), 0.0);
    MissCurve data = instr;
    data.instruction_stream = false;

    for (const auto& workload : suite) {
        const MissCurve wi = measureMissCurve(workload, true, options);
        const MissCurve wd = measureMissCurve(workload, false, options);
        for (std::size_t i = 0; i < sizes.size(); ++i) {
            instr.miss_rates[i] += wi.miss_rates[i];
            data.miss_rates[i] += wd.miss_rates[i];
        }
    }
    const auto n = static_cast<double>(suite.size());
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        instr.miss_rates[i] /= n;
        data.miss_rates[i] /= n;
    }
    return {instr, data};
}

} // namespace ttmcas
