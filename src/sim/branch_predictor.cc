#include "sim/branch_predictor.hh"

#include <bit>

#include "support/error.hh"

namespace ttmcas {

namespace {

void
bump(std::uint8_t& counter, bool taken)
{
    if (taken) {
        if (counter < 3)
            ++counter;
    } else {
        if (counter > 0)
            --counter;
    }
}

} // namespace

BimodalPredictor::BimodalPredictor(std::size_t table_entries)
    : _counters(table_entries, 1) // weakly not-taken
{
    TTMCAS_REQUIRE(table_entries >= 2 &&
                       std::has_single_bit(table_entries),
                   "predictor table size must be a power of two >= 2");
}

std::size_t
BimodalPredictor::index(std::uint64_t pc) const
{
    // Drop the (aligned) low bits before masking.
    return (pc >> 2) & (_counters.size() - 1);
}

bool
BimodalPredictor::predict(std::uint64_t pc) const
{
    return _counters[index(pc)] >= 2;
}

void
BimodalPredictor::update(std::uint64_t pc, bool taken)
{
    bump(_counters[index(pc)], taken);
}

GsharePredictor::GsharePredictor(std::size_t table_entries,
                                 std::uint32_t history_bits)
    : _counters(table_entries, 1), _history_bits(history_bits)
{
    TTMCAS_REQUIRE(table_entries >= 2 &&
                       std::has_single_bit(table_entries),
                   "predictor table size must be a power of two >= 2");
    TTMCAS_REQUIRE(history_bits >= 1 && history_bits <= 16,
                   "history length must be in [1, 16]");
}

std::size_t
GsharePredictor::index(std::uint64_t pc) const
{
    return ((pc >> 2) ^ _history) & (_counters.size() - 1);
}

bool
GsharePredictor::predict(std::uint64_t pc) const
{
    return _counters[index(pc)] >= 2;
}

void
GsharePredictor::update(std::uint64_t pc, bool taken)
{
    bump(_counters[index(pc)], taken);
    _history = ((_history << 1) | (taken ? 1U : 0U)) &
               ((1U << _history_bits) - 1U);
}

SyntheticBranchWorkload::SyntheticBranchWorkload(Mix mix,
                                                 std::uint64_t seed)
    : _rng(seed)
{
    TTMCAS_REQUIRE(mix.static_branches >= 1,
                   "need at least one static branch");
    const double total = mix.biased + mix.looping + mix.random;
    TTMCAS_REQUIRE(total > 0.0, "branch mix must not be empty");

    for (std::size_t b = 0; b < mix.static_branches; ++b) {
        StaticBranch branch;
        branch.pc = 0x1000 + 4 * static_cast<std::uint64_t>(b) * 16;
        const double u = _rng.uniform() * total;
        if (u < mix.biased) {
            branch.kind = 0;
            branch.taken_bias =
                _rng.uniform() < 0.5 ? 0.95 : 0.05;
        } else if (u < mix.biased + mix.looping) {
            branch.kind = 1;
            branch.period =
                4 + static_cast<std::uint32_t>(_rng.uniformInt(61));
            branch.position = static_cast<std::uint32_t>(
                _rng.uniformInt(branch.period));
        } else {
            branch.kind = 2;
            branch.taken_bias = 0.5;
        }
        _branches.push_back(branch);
    }
}

BranchOutcome
SyntheticBranchWorkload::next()
{
    StaticBranch& branch =
        _branches[_rng.uniformInt(_branches.size())];
    BranchOutcome outcome;
    outcome.pc = branch.pc;
    switch (branch.kind) {
      case 0: // biased
      case 2: // random
        outcome.taken = _rng.uniform() < branch.taken_bias;
        break;
      case 1: // loop back-edge: taken except once per period
        outcome.taken = branch.position + 1 != branch.period;
        branch.position = (branch.position + 1) % branch.period;
        break;
      default:
        TTMCAS_INVARIANT(false, "unhandled branch kind");
    }
    return outcome;
}

} // namespace ttmcas
