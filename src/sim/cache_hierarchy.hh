#ifndef TTMCAS_SIM_CACHE_HIERARCHY_HH
#define TTMCAS_SIM_CACHE_HIERARCHY_HH

/**
 * @file
 * Two-level cache hierarchy simulator.
 *
 * The Ariane silicon the paper cites has L1-only caches, but most
 * re-targets of the cache study want an L2: this hierarchy models
 * split L1 I/D caches in front of a shared, inclusive-of-nothing
 * (non-enforcing) unified L2. Each access classifies as L1 hit, L2
 * hit, or memory access; the extended IPC model prices the two miss
 * levels separately.
 */

#include <cstdint>

#include "sim/cache.hh"
#include "sim/workloads.hh"

namespace ttmcas {

/** Per-level hit/miss accounting for one access stream. */
struct HierarchyStats
{
    std::uint64_t accesses = 0;
    std::uint64_t l1_hits = 0;
    std::uint64_t l2_hits = 0;

    std::uint64_t memoryAccesses() const
    {
        return accesses - l1_hits - l2_hits;
    }
    /** Misses per access at L1. */
    double l1MissRate() const;
    /** Fraction of *all* accesses that go past L2 to memory. */
    double memoryRate() const;
};

/** Split L1 I/D + shared unified L2. */
class CacheHierarchy
{
  public:
    /**
     * @param l1i instruction L1 geometry
     * @param l1d data L1 geometry
     * @param l2 shared L2 geometry (capacity must be >= each L1's)
     */
    CacheHierarchy(CacheConfig l1i, CacheConfig l1d, CacheConfig l2,
                   std::uint64_t seed = 0x41e2);

    /** Simulate one instruction fetch. */
    void fetch(std::uint64_t address);

    /** Simulate one data access. */
    void data(std::uint64_t address);

    const HierarchyStats& instructionStats() const { return _istats; }
    const HierarchyStats& dataStats() const { return _dstats; }

    /** Reset all levels and counters. */
    void reset();

    /**
     * Run @p accesses of a workload (instruction + data streams
     * interleaved by its memory_ref_fraction) and return the stats.
     */
    std::pair<HierarchyStats, HierarchyStats>
    run(const Workload& workload, std::size_t accesses,
        std::uint64_t seed = 0x5eed);

  private:
    void access(Cache& l1, HierarchyStats& stats,
                std::uint64_t address);

    Cache _l1i;
    Cache _l1d;
    Cache _l2;
    HierarchyStats _istats;
    HierarchyStats _dstats;
};

/** IPC model pricing L1 misses (L2 latency) and L2 misses (memory). */
struct TwoLevelIpcModel
{
    double base_cpi = 3.3;
    double memory_ref_fraction = 0.30;
    /** Extra cycles for an L1 miss served by the L2. */
    double l2_hit_penalty = 12.0;
    /** Extra cycles for an access that goes to memory. */
    double memory_penalty = 80.0;

    /** IPC given the two streams' hierarchy statistics. */
    double ipc(const HierarchyStats& instruction,
               const HierarchyStats& data) const;
};

} // namespace ttmcas

#endif // TTMCAS_SIM_CACHE_HIERARCHY_HH
