#include "sim/pipeline.hh"

#include <algorithm>
#include <cmath>

#include "support/error.hh"

namespace ttmcas {

std::array<double, 7>
InstructionMix::cdf() const
{
    const double weights[7] = {alu, mul, div, load, store, branch, fpu};
    double total = 0.0;
    for (double w : weights) {
        TTMCAS_REQUIRE(w >= 0.0, "instruction mix weights must be >= 0");
        total += w;
    }
    TTMCAS_REQUIRE(total > 0.0, "instruction mix must not be empty");
    std::array<double, 7> cdf{};
    double acc = 0.0;
    for (int i = 0; i < 7; ++i) {
        acc += weights[i] / total;
        cdf[static_cast<std::size_t>(i)] = acc;
    }
    cdf[6] = 1.0;
    return cdf;
}

double
PipelineStats::cpi() const
{
    TTMCAS_REQUIRE(instructions > 0, "CPI of an empty run");
    return static_cast<double>(cycles) /
           static_cast<double>(instructions);
}

double
PipelineStats::baseCpi() const
{
    TTMCAS_REQUIRE(instructions > 0, "CPI of an empty run");
    const std::uint64_t stall_total = hazard_stall_cycles +
                                      branch_penalty_cycles +
                                      memory_stall_cycles;
    TTMCAS_INVARIANT(stall_total <= cycles,
                     "stall attribution exceeds total cycles");
    return static_cast<double>(cycles - stall_total) /
           static_cast<double>(instructions);
}

PipelineSimulator::PipelineSimulator(PipelineConfig config, Cache* icache,
                                     Cache* dcache)
    : _config(config), _icache(icache), _dcache(dcache)
{
    TTMCAS_REQUIRE(_config.mispredict_rate >= 0.0 &&
                       _config.mispredict_rate <= 1.0,
                   "mispredict rate must be in [0, 1]");
    TTMCAS_REQUIRE(_config.dependency_rate >= 0.0 &&
                       _config.dependency_rate <= 1.0,
                   "dependency rate must be in [0, 1]");
    TTMCAS_REQUIRE(_config.dependency_distance_p > 0.0 &&
                       _config.dependency_distance_p <= 1.0,
                   "dependency distance parameter must be in (0, 1]");
}

PipelineStats
PipelineSimulator::run(std::uint64_t instructions, std::uint64_t seed,
                       TraceGenerator* code, TraceGenerator* data)
{
    TTMCAS_REQUIRE(instructions > 0, "need at least one instruction");
    Rng rng(seed);
    const std::array<double, 7> cdf = _config.mix.cdf();

    // Fallback address streams.
    SequentialTrace default_code(4, 64 * 1024);
    ZipfTrace default_data(4096, 1.1, 64);
    TraceGenerator* code_stream = code != nullptr ? code : &default_code;
    TraceGenerator* data_stream = data != nullptr ? data : &default_data;

    // Ring of the most recent producers' completion times.
    constexpr std::size_t kWindow = 64;
    std::array<std::uint64_t, kWindow> completion{};
    std::uint64_t issued = 0; // count of issued instructions

    PipelineStats stats;
    stats.instructions = instructions;
    std::uint64_t last_issue = 0;   // cycle of the previous issue
    std::uint64_t last_completion = 0;

    const auto kind_latency = [&](InstrKind kind) -> std::uint32_t {
        switch (kind) {
          case InstrKind::Alu:
            return _config.alu_latency;
          case InstrKind::Mul:
            return _config.mul_latency;
          case InstrKind::Div:
            return _config.div_latency;
          case InstrKind::Load:
            return _config.load_hit_latency;
          case InstrKind::Store:
            return 1;
          case InstrKind::Branch:
            return 1;
          case InstrKind::Fpu:
            return _config.fpu_latency;
        }
        TTMCAS_INVARIANT(false, "unhandled InstrKind");
    };

    for (std::uint64_t i = 0; i < instructions; ++i) {
        // Pick the kind.
        const double u = rng.uniform();
        int kind_index = 0;
        while (kind_index < 6 &&
               cdf[static_cast<std::size_t>(kind_index)] < u)
            ++kind_index;
        const auto kind = static_cast<InstrKind>(kind_index);

        // Fetch: an I-cache miss delays this instruction's issue.
        std::uint64_t earliest = last_issue + 1;
        if (_icache != nullptr &&
            !_icache->access(code_stream->next(rng))) {
            earliest += _config.miss_penalty;
            stats.memory_stall_cycles += _config.miss_penalty;
        }

        // RAW hazards: up to two sources, each maybe depending on a
        // recent producer.
        std::uint64_t operand_ready = 0;
        for (int source = 0; source < 2; ++source) {
            if (rng.uniform() >= _config.dependency_rate)
                continue;
            // Geometric distance >= 1, capped by the window and by how
            // many instructions exist.
            std::uint64_t distance = 1;
            while (rng.uniform() > _config.dependency_distance_p &&
                   distance < kWindow)
                ++distance;
            if (distance > issued)
                continue; // depends on pre-loop state: always ready
            const std::size_t producer =
                static_cast<std::size_t>((issued - distance) % kWindow);
            operand_ready = std::max(operand_ready, completion[producer]);
        }
        std::uint64_t issue = std::max(earliest, operand_ready);
        if (operand_ready > earliest)
            stats.hazard_stall_cycles += operand_ready - earliest;

        // Execute.
        std::uint64_t done = issue + kind_latency(kind);
        if (kind == InstrKind::Load || kind == InstrKind::Store) {
            if (_dcache != nullptr &&
                !_dcache->access(data_stream->next(rng))) {
                if (kind == InstrKind::Load) {
                    // The consumer sees the full memory latency.
                    done += _config.miss_penalty;
                }
                // Stores retire through a buffer; their miss does not
                // stall issue, only occupies the port (ignored).
            }
        }

        // Branch resolution: a mispredict flushes the front end, so
        // the *next* instruction cannot issue until the penalty
        // passes — modeled by pushing the issue cursor forward.
        if (kind == InstrKind::Branch &&
            rng.uniform() < _config.mispredict_rate) {
            stats.branch_penalty_cycles += _config.mispredict_penalty;
            last_issue = issue + _config.mispredict_penalty;
        } else {
            last_issue = issue;
        }

        completion[static_cast<std::size_t>(issued % kWindow)] = done;
        ++issued;
        last_completion = std::max(last_completion, done);
    }

    stats.cycles = std::max(last_completion, last_issue);
    return stats;
}

IpcModel
derivedIpcModel(const PipelineConfig& config, std::uint64_t instructions,
                std::uint64_t seed)
{
    PipelineConfig perfect = config;
    PipelineSimulator simulator(perfect, nullptr, nullptr);
    const PipelineStats stats = simulator.run(instructions, seed);

    IpcModel model;
    model.base_cpi = stats.cpi();
    const auto cdf = config.mix.cdf();
    // loads + stores share of the mix (cdf is cumulative in enum order:
    // alu, mul, div, load, store, branch, fpu).
    model.memory_ref_fraction = cdf[4] - cdf[2];
    model.miss_penalty_cycles = config.miss_penalty;
    return model;
}

} // namespace ttmcas
