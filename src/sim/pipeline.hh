#ifndef TTMCAS_SIM_PIPELINE_HH
#define TTMCAS_SIM_PIPELINE_HH

/**
 * @file
 * In-order pipeline simulator.
 *
 * The cache study's IPC model assumes a base CPI for an Ariane-class
 * single-issue in-order core; this simulator *derives* it. A synthetic
 * instruction stream (configurable kind mix, register dependencies
 * with geometric reuse distance, branch mispredict probability) runs
 * through a scoreboard model of a classic five-stage pipeline:
 *
 *  - one instruction issues per cycle at most;
 *  - a RAW hazard stalls issue until every source's producer result is
 *    ready (per-kind execution latencies; loads take the cache's word);
 *  - mispredicted branches flush the front end for a fixed penalty;
 *  - loads/stores access a data cache; fetches access an instruction
 *    cache; misses add the configured memory latency.
 *
 * The result decomposes CPI into base/hazard/branch/memory components,
 * so `derivedIpcModel()` can hand the cache study a base CPI measured
 * under perfect caches instead of a guessed constant.
 */

#include <array>
#include <cstdint>

#include "sim/cache.hh"
#include "sim/ipc_model.hh"
#include "sim/trace.hh"
#include "stats/rng.hh"

namespace ttmcas {

/** Instruction classes the synthetic stream draws from. */
enum class InstrKind : std::uint8_t
{
    Alu,
    Mul,
    Div,
    Load,
    Store,
    Branch,
    Fpu,
};

/** Dynamic instruction mix (fractions; normalized internally). */
struct InstructionMix
{
    double alu = 0.42;
    double mul = 0.03;
    double div = 0.01;
    double load = 0.22;
    double store = 0.10;
    double branch = 0.17;
    double fpu = 0.05;

    /** Normalized cumulative distribution in enum order. */
    std::array<double, 7> cdf() const;
};

/** Microarchitectural parameters of the modeled core. */
struct PipelineConfig
{
    InstructionMix mix;
    /** Result latencies (cycles) per kind; loads add cache time. */
    std::uint32_t alu_latency = 1;
    std::uint32_t mul_latency = 3;
    std::uint32_t div_latency = 20;
    std::uint32_t load_hit_latency = 2;
    std::uint32_t fpu_latency = 4;
    /** Extra cycles when a memory access misses the L1. */
    std::uint32_t miss_penalty = 60;
    /** Branch mispredict probability and flush penalty. */
    double mispredict_rate = 0.10;
    std::uint32_t mispredict_penalty = 3;
    /** Probability a source register reads a recent producer. */
    double dependency_rate = 0.55;
    /** Geometric parameter of the producer distance (>= 1). */
    double dependency_distance_p = 0.45;
};

/** CPI decomposition from one simulation. */
struct PipelineStats
{
    std::uint64_t instructions = 0;
    std::uint64_t cycles = 0;
    std::uint64_t hazard_stall_cycles = 0;
    std::uint64_t branch_penalty_cycles = 0;
    std::uint64_t memory_stall_cycles = 0;

    double cpi() const;
    double ipc() const { return 1.0 / cpi(); }
    /** CPI with every stall source removed (the issue-bound floor). */
    double baseCpi() const;
};

/** The simulator. */
class PipelineSimulator
{
  public:
    /**
     * @param config core parameters
     * @param icache instruction cache (nullptr = perfect)
     * @param dcache data cache (nullptr = perfect)
     */
    PipelineSimulator(PipelineConfig config, Cache* icache = nullptr,
                     Cache* dcache = nullptr);

    /**
     * Simulate @p instructions of the synthetic stream.
     * @param seed stream seed (deterministic)
     * @param code instruction-address generator (nullptr = sequential)
     * @param data data-address generator (nullptr = zipf default)
     */
    PipelineStats run(std::uint64_t instructions, std::uint64_t seed,
                      TraceGenerator* code = nullptr,
                      TraceGenerator* data = nullptr);

  private:
    PipelineConfig _config;
    Cache* _icache;
    Cache* _dcache;
};

/**
 * Build an IpcModel whose base CPI is *measured*: the pipeline runs
 * with perfect caches and the resulting CPI becomes base_cpi; the
 * memory-reference fraction comes from the mix; the miss penalty is
 * taken from the config.
 */
IpcModel derivedIpcModel(const PipelineConfig& config,
                         std::uint64_t instructions = 200'000,
                         std::uint64_t seed = 0xc0de);

} // namespace ttmcas

#endif // TTMCAS_SIM_PIPELINE_HH
