#ifndef TTMCAS_SIM_CACHE_HH
#define TTMCAS_SIM_CACHE_HH

/**
 * @file
 * Set-associative cache simulator.
 *
 * A straightforward tag-array model: no data storage, no timing — it
 * answers hit/miss per access and accumulates statistics, which is all
 * the miss-curve extraction needs. Replacement policies: true LRU,
 * FIFO, random, and tree-PLRU (power-of-two associativity only).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "stats/rng.hh"

namespace ttmcas {

/** Replacement policy selector. */
enum class ReplacementPolicy
{
    Lru,
    Fifo,
    Random,
    TreePlru
};

/** Name for reports ("lru", "fifo", ...). */
std::string replacementPolicyName(ReplacementPolicy policy);

/** Static cache geometry. */
struct CacheConfig
{
    std::uint64_t size_bytes = 16 * 1024;
    std::uint32_t line_bytes = 64;
    std::uint32_t associativity = 4;
    ReplacementPolicy policy = ReplacementPolicy::Lru;
    /**
     * Next-line prefetch: on a demand miss, also install line+1
     * (tagged-prefetch-free simplification). Prefetch fills do not
     * count as accesses; a later demand hit on the prefetched line
     * counts as a hit.
     */
    bool next_line_prefetch = false;

    std::uint64_t numSets() const;

    /** Throws ModelError unless geometry is power-of-two consistent. */
    void validate() const;
};

/** Hit/miss counters. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;

    std::uint64_t misses() const { return accesses - hits; }
    double missRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses()) /
                         static_cast<double>(accesses);
    }
    double hitRate() const { return 1.0 - missRate(); }
};

/** The simulator. */
class Cache
{
  public:
    explicit Cache(CacheConfig config, std::uint64_t seed = 0xcac4e);

    const CacheConfig& config() const { return _config; }
    const CacheStats& stats() const { return _stats; }

    /**
     * Simulate one access.
     * @return true on hit
     */
    bool access(std::uint64_t address);

    /** Run a whole trace; returns the miss rate over it. */
    double run(const std::vector<std::uint64_t>& addresses);

    /** Invalidate all lines and zero statistics. */
    void reset();

    /** True when @p address is currently cached (no state change). */
    bool contains(std::uint64_t address) const;

  private:
    struct Way
    {
        std::uint64_t tag = 0;
        bool valid = false;
        std::uint64_t order = 0; ///< LRU timestamp / FIFO insert tick
    };

    std::uint64_t setIndex(std::uint64_t address) const;
    std::uint64_t tagOf(std::uint64_t address) const;
    std::uint32_t victimWay(std::uint64_t set);
    void touch(std::uint64_t set, std::uint32_t way, bool is_fill);
    /** Fill @p address's line without counting an access. */
    void install(std::uint64_t address);

    CacheConfig _config;
    CacheStats _stats;
    std::vector<Way> _ways;       // sets x associativity
    std::vector<std::uint32_t> _plru; // one tree per set (bit-packed)
    std::uint64_t _tick = 0;
    Rng _rng;
};

} // namespace ttmcas

#endif // TTMCAS_SIM_CACHE_HH
