#include "sim/ipc_model.hh"

#include "support/error.hh"

namespace ttmcas {

double
IpcModel::ipc(double instruction_miss_rate, double data_miss_rate) const
{
    TTMCAS_REQUIRE(instruction_miss_rate >= 0.0 &&
                       instruction_miss_rate <= 1.0,
                   "instruction miss rate must be in [0, 1]");
    TTMCAS_REQUIRE(data_miss_rate >= 0.0 && data_miss_rate <= 1.0,
                   "data miss rate must be in [0, 1]");
    TTMCAS_REQUIRE(base_cpi > 0.0, "base CPI must be positive");

    const double cpi = base_cpi +
                       instruction_miss_rate * miss_penalty_cycles +
                       memory_ref_fraction * data_miss_rate *
                           miss_penalty_cycles;
    return 1.0 / cpi;
}

double
IpcModel::ipcAt(const MissCurve& instruction_curve,
                const MissCurve& data_curve, std::uint64_t icache_bytes,
                std::uint64_t dcache_bytes,
                double workload_mem_fraction) const
{
    IpcModel effective = *this;
    if (workload_mem_fraction >= 0.0)
        effective.memory_ref_fraction = workload_mem_fraction;
    return effective.ipc(instruction_curve.at(icache_bytes),
                         data_curve.at(dcache_bytes));
}

} // namespace ttmcas
