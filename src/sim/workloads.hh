#ifndef TTMCAS_SIM_WORKLOADS_HH
#define TTMCAS_SIM_WORKLOADS_HH

/**
 * @file
 * The synthetic benchmark suite standing in for SPEC CPU2000.
 *
 * Each workload defines an instruction-fetch stream and a data stream
 * (built from the trace generators) plus the dynamic instruction mix
 * the IPC model needs. The suite spans the behaviors that drive real
 * cache studies: tight loops (small code, hot data), pointer-chasing
 * integer code (Zipf data), streaming floating-point kernels, and a
 * large-code branchy workload.
 */

#include <memory>
#include <string>
#include <vector>

#include "sim/trace.hh"

namespace ttmcas {

/** One synthetic benchmark. */
struct Workload
{
    std::string name;
    /** Fraction of instructions that reference data memory. */
    double memory_ref_fraction = 0.3;
    /** Builds a fresh instruction-address generator. */
    std::shared_ptr<TraceGenerator> instruction_stream;
    /** Builds a fresh data-address generator. */
    std::shared_ptr<TraceGenerator> data_stream;
};

/**
 * The default eight-workload suite (deterministic construction).
 * Names: tightloop, pointer, stream, stencil, branchy, dbscan,
 * matmul, mixedint.
 */
std::vector<Workload> defaultWorkloadSuite();

/** Look a workload up by name; throws ModelError when missing. */
const Workload& findWorkload(const std::vector<Workload>& suite,
                             const std::string& name);

} // namespace ttmcas

#endif // TTMCAS_SIM_WORKLOADS_HH
