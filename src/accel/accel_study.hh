#ifndef TTMCAS_ACCEL_ACCEL_STUDY_HH
#define TTMCAS_ACCEL_ACCEL_STUDY_HH

/**
 * @file
 * The cost-of-specialization study (Section 6.4, Table 3).
 *
 * For each accelerator (sorting/DFT x streaming/iterative) the study
 * reports: speed-up over the Ariane software baseline on 2048-element
 * blocks, total transistors, area relative to the Ariane core, and the
 * tapeout time/cost of adding the block at a given process node.
 *
 * Transistor counts have two sources: the paper's published synthesis
 * results (inputs, like the paper's own use of commercial EDA tools)
 * and this library's analytic estimates (for validation). Speed-ups
 * are *measured* from our cycle models and functional baselines.
 */

#include <string>
#include <vector>

#include "core/design.hh"
#include "econ/cost_model.hh"
#include "support/units.hh"
#include "tech/technology_db.hh"

namespace ttmcas {

/** One accelerator's study row. */
struct AcceleratorResult
{
    std::string name;                 ///< "Sorting Stream", ...
    double speedup = 0.0;             ///< measured: sw cycles / hw cycles
    double paper_speedup = 0.0;       ///< Table 3 reference value
    double transistors = 0.0;         ///< N_TT used for tapeout/cost
    double analytic_transistors = 0.0;///< our structural estimate
    double area_relative_to_core = 0.0;
    Weeks tapeout_time{0.0};
    Dollars tapeout_cost{0.0};
};

/** Study configuration. */
struct AccelStudyOptions
{
    std::size_t block_size = 2048; ///< paper's benchmark block
    std::string process = "5nm";   ///< Table 3's worst-case node
    double tapeout_engineers = 100.0;
    /**
     * Ariane core-logic reference for the relative-area column
     * (Table 3 normalizes against the core without its caches:
     * 45.62M / 18.18x = 2.51M).
     */
    double core_transistors = 2.51e6;
};

/**
 * Run the full Table 3 study against @p db.
 *
 * Rows in paper order: Sorting Stream, Sorting Iterative, DFT Stream,
 * DFT Iterative. Tapeout metrics treat all non-memory transistors as
 * unique (Section 6.4), approximated as the paper's synthesized N_TT.
 */
std::vector<AcceleratorResult>
runAccelStudy(const TechnologyDb& db, const AccelStudyOptions& options);

} // namespace ttmcas

#endif // TTMCAS_ACCEL_ACCEL_STUDY_HH
