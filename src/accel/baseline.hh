#ifndef TTMCAS_ACCEL_BASELINE_HH
#define TTMCAS_ACCEL_BASELINE_HH

/**
 * @file
 * Software baselines on the general-purpose (Ariane) core.
 *
 * The paper benchmarks the SPIRAL accelerators against Ariane running
 * 2048-element blocks of the same task. We model the software side by
 * *running* the algorithms (so results are functionally verifiable)
 * while counting their dominant operations, then pricing operations in
 * core cycles:
 *
 *  - sort: introsort-style quicksort; dominant op = compare-and-
 *    possibly-swap with its loads/branch, ~11 cycles each on an
 *    in-order RV64 with warm caches;
 *  - FFT: radix-2 butterflies; 4 FP multiplies + 6 FP adds + 4 memory
 *    ops with partial latency hiding, ~20 cycles each.
 */

#include <complex>
#include <cstdint>
#include <vector>

namespace ttmcas {

/** Cycle prices of the dominant software operations. */
struct ArianeCostModel
{
    double cycles_per_sort_compare = 11.0;
    double cycles_per_butterfly = 20.0;
};

/** Result of one software run: output plus modeled cycles. */
struct SoftwareSortRun
{
    std::vector<std::int32_t> sorted;
    std::uint64_t comparisons = 0;
    double cycles = 0.0;
};

struct SoftwareFftRun
{
    std::vector<std::complex<double>> spectrum;
    std::uint64_t butterflies = 0;
    double cycles = 0.0;
};

/** Sort @p values with an operation-counting quicksort. */
SoftwareSortRun arianeSort(std::vector<std::int32_t> values,
                           const ArianeCostModel& costs = {});

/** FFT of @p values with operation counting. */
SoftwareFftRun arianeFft(std::vector<std::complex<double>> values,
                         const ArianeCostModel& costs = {});

} // namespace ttmcas

#endif // TTMCAS_ACCEL_BASELINE_HH
