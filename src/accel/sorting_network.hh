#ifndef TTMCAS_ACCEL_SORTING_NETWORK_HH
#define TTMCAS_ACCEL_SORTING_NETWORK_HH

/**
 * @file
 * Bitonic sorting networks: functional model plus hardware cycle/area
 * models for the SPIRAL-style streaming and iterative sorters of the
 * paper's cost-of-specialization study (Section 6.4, Table 3).
 *
 * A bitonic network for n = 2^k elements has k(k+1)/2 compare-exchange
 * stages of n/2 comparators each. The *streaming* implementation
 * instantiates every stage with w lanes and is I/O-bound on a 64-bit
 * bus once w is large enough; the *iterative* implementation builds a
 * single k-stage merger block of width w and loops blocks through it
 * log2(n) times [Zuluaga et al. 2016].
 */

#include <cstdint>
#include <vector>

namespace ttmcas {

/** One compare-exchange wire pair within a stage. */
struct CompareExchange
{
    std::uint32_t low = 0;  ///< index keeping the smaller value
    std::uint32_t high = 0; ///< index keeping the larger value
};

/**
 * A Batcher odd-even merge network: same asymptotics as bitonic
 * (k(k+1)/2 stages) but ~2/3 the comparators, at the price of
 * irregular stage widths — the classic area/regularity trade-off
 * SPIRAL's generator exposes. Functional model for the ablation
 * comparison against the bitonic datapath.
 */
class OddEvenMergeNetwork
{
  public:
    /** @param size element count; must be a power of two >= 2. */
    explicit OddEvenMergeNetwork(std::size_t size);

    std::size_t size() const { return _size; }
    std::size_t stageCount() const { return _stages.size(); }

    /** Total compare-exchange units across all stages. */
    std::size_t comparatorCount() const;

    const std::vector<std::vector<CompareExchange>>& stages() const
    {
        return _stages;
    }

    /** Sort @p values in place by applying every stage. */
    void apply(std::vector<std::int32_t>& values) const;

  private:
    std::size_t _size;
    std::vector<std::vector<CompareExchange>> _stages;
};

/** A full bitonic network for a power-of-two input size. */
class BitonicNetwork
{
  public:
    /** @param size element count; must be a power of two >= 2. */
    explicit BitonicNetwork(std::size_t size);

    std::size_t size() const { return _size; }

    /** Number of compare-exchange stages: k(k+1)/2 for n = 2^k. */
    std::size_t stageCount() const { return _stages.size(); }

    /** Comparators in one stage (n/2). */
    std::size_t comparatorsPerStage() const { return _size / 2; }

    const std::vector<std::vector<CompareExchange>>& stages() const
    {
        return _stages;
    }

    /** Sort @p values in place by applying every stage. */
    void apply(std::vector<std::int32_t>& values) const;

  private:
    std::size_t _size;
    std::vector<std::vector<CompareExchange>> _stages;
};

/** Hardware timing/area model shared by both sorter styles. */
struct SorterHardwareModel
{
    /** Stream width: elements entering per cycle. */
    std::uint32_t width_lanes = 8;
    /** Element width in bits (paper: fixed-point sorting). */
    std::uint32_t element_bits = 32;
    /** Off-accelerator bus width in bits. */
    std::uint32_t bus_bits = 64;

    /** Cycles to move one n-element block in *and* out over the bus. */
    double ioCycles(std::size_t block_size) const;
};

/** Fully streaming sorter: all stages in silicon, pipelined. */
struct StreamingSorterModel : SorterHardwareModel
{
    /**
     * Single-block latency: every bitonic stage contains a block-
     * granular permutation, so a block spends n/w cycles per stage —
     * stages * n/w total — floored by the bus I/O time. (Back-to-back
     * blocks pipeline at one block per n/w cycles; the paper's Table 3
     * compares single 2048-element block tasks.)
     */
    double cyclesPerBlock(std::size_t block_size) const;

    /** Analytic transistor estimate (buffers dominate; see .cc). */
    double transistorEstimate(std::size_t block_size) const;
};

/** Iterative sorter: one physical stage reused for every pass. */
struct IterativeSorterModel : SorterHardwareModel
{
    IterativeSorterModel() { width_lanes = 2; }

    /**
     * Extra cycles per pass for the working-buffer swap and refill
     * between consecutive trips through the physical stage.
     */
    double turnaround_fraction = 0.25; ///< of n, per pass

    /** Cycles per block: stages passes of (n/w + turnaround) cycles. */
    double cyclesPerBlock(std::size_t block_size) const;

    /** Analytic transistor estimate. */
    double transistorEstimate(std::size_t block_size) const;
};

} // namespace ttmcas

#endif // TTMCAS_ACCEL_SORTING_NETWORK_HH
