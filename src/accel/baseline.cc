#include "accel/baseline.hh"

#include <algorithm>
#include <bit>

#include "accel/fft.hh"
#include "support/error.hh"

namespace ttmcas {

namespace {

/** Operation-counting quicksort with median-of-three pivots and an
 * insertion-sort base case (what a tuned libc-style sort does). */
class CountingSorter
{
  public:
    explicit CountingSorter(std::vector<std::int32_t>& values)
        : _values(values)
    {}

    std::uint64_t
    sort()
    {
        if (!_values.empty())
            quicksort(0, static_cast<std::ptrdiff_t>(_values.size()) - 1);
        return _comparisons;
    }

  private:
    static constexpr std::ptrdiff_t kInsertionThreshold = 16;

    bool
    less(std::int32_t a, std::int32_t b)
    {
        ++_comparisons;
        return a < b;
    }

    void
    insertionSort(std::ptrdiff_t lo, std::ptrdiff_t hi)
    {
        for (std::ptrdiff_t i = lo + 1; i <= hi; ++i) {
            const std::int32_t key = _values[i];
            std::ptrdiff_t j = i - 1;
            while (j >= lo && less(key, _values[j])) {
                _values[j + 1] = _values[j];
                --j;
            }
            _values[j + 1] = key;
        }
    }

    void
    quicksort(std::ptrdiff_t lo, std::ptrdiff_t hi)
    {
        while (hi - lo > kInsertionThreshold) {
            // Median-of-three pivot.
            const std::ptrdiff_t mid = lo + (hi - lo) / 2;
            if (less(_values[mid], _values[lo]))
                std::swap(_values[mid], _values[lo]);
            if (less(_values[hi], _values[lo]))
                std::swap(_values[hi], _values[lo]);
            if (less(_values[hi], _values[mid]))
                std::swap(_values[hi], _values[mid]);
            const std::int32_t pivot = _values[mid];

            std::ptrdiff_t i = lo;
            std::ptrdiff_t j = hi;
            while (i <= j) {
                while (less(_values[i], pivot))
                    ++i;
                while (less(pivot, _values[j]))
                    --j;
                if (i <= j) {
                    std::swap(_values[i], _values[j]);
                    ++i;
                    --j;
                }
            }
            // Recurse into the smaller side to bound the stack.
            if (j - lo < hi - i) {
                quicksort(lo, j);
                lo = i;
            } else {
                quicksort(i, hi);
                hi = j;
            }
        }
        insertionSort(lo, hi);
    }

    std::vector<std::int32_t>& _values;
    std::uint64_t _comparisons = 0;
};

} // namespace

SoftwareSortRun
arianeSort(std::vector<std::int32_t> values, const ArianeCostModel& costs)
{
    SoftwareSortRun run;
    CountingSorter sorter(values);
    run.comparisons = sorter.sort();
    run.cycles = static_cast<double>(run.comparisons) *
                 costs.cycles_per_sort_compare;
    run.sorted = std::move(values);
    return run;
}

SoftwareFftRun
arianeFft(std::vector<std::complex<double>> values,
          const ArianeCostModel& costs)
{
    TTMCAS_REQUIRE(values.size() >= 2 && std::has_single_bit(values.size()),
                   "software FFT needs a power-of-two block");
    SoftwareFftRun run;
    run.butterflies = fftButterflyCount(values.size());
    run.cycles = static_cast<double>(run.butterflies) *
                 costs.cycles_per_butterfly;
    fft(values);
    run.spectrum = std::move(values);
    return run;
}

} // namespace ttmcas
