#include "accel/sorting_network.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "support/error.hh"

namespace ttmcas {

namespace {

/** Transistors per 32-bit compare-exchange unit (comparator + muxes). */
constexpr double kTransistorsPerComparator = 1400.0;
/** SRAM cell transistors per buffered bit (6T + overhead). */
constexpr double kTransistorsPerBufferBit = 7.5;
/** Control/interconnect overhead multiplier on the datapath. */
constexpr double kControlOverhead = 1.5;

} // namespace

OddEvenMergeNetwork::OddEvenMergeNetwork(std::size_t size) : _size(size)
{
    TTMCAS_REQUIRE(size >= 2 && std::has_single_bit(size),
                   "odd-even merge network size must be a power of two "
                   ">= 2");

    // Batcher's construction: for each merge span p = 1, 2, 4, ...,
    // sub-steps k = p, p/2, ..., 1 (Knuth 5.3.4, exercise network).
    for (std::size_t p = 1; p < _size; p *= 2) {
        for (std::size_t k = p; k >= 1; k /= 2) {
            std::vector<CompareExchange> stage;
            for (std::size_t j = k % p; j + k < _size; j += 2 * k) {
                for (std::size_t i = 0;
                     i < std::min(k, _size - j - k); ++i) {
                    // Compare only within the same 2p-block.
                    if ((i + j) / (2 * p) == (i + j + k) / (2 * p)) {
                        CompareExchange wire;
                        wire.low = static_cast<std::uint32_t>(i + j);
                        wire.high =
                            static_cast<std::uint32_t>(i + j + k);
                        stage.push_back(wire);
                    }
                }
            }
            if (!stage.empty())
                _stages.push_back(std::move(stage));
            if (k == 1)
                break; // k /= 2 would wrap at zero
        }
    }
}

std::size_t
OddEvenMergeNetwork::comparatorCount() const
{
    std::size_t total = 0;
    for (const auto& stage : _stages)
        total += stage.size();
    return total;
}

void
OddEvenMergeNetwork::apply(std::vector<std::int32_t>& values) const
{
    TTMCAS_REQUIRE(values.size() == _size,
                   "input size does not match network size");
    for (const auto& stage : _stages) {
        for (const auto& wire : stage) {
            if (values[wire.low] > values[wire.high])
                std::swap(values[wire.low], values[wire.high]);
        }
    }
}

BitonicNetwork::BitonicNetwork(std::size_t size) : _size(size)
{
    TTMCAS_REQUIRE(size >= 2 && std::has_single_bit(size),
                   "bitonic network size must be a power of two >= 2");

    // Batcher's bitonic sort: for each merge span K, sub-spans J.
    for (std::size_t span = 2; span <= _size; span *= 2) {
        for (std::size_t sub = span / 2; sub >= 1; sub /= 2) {
            std::vector<CompareExchange> stage;
            stage.reserve(_size / 2);
            for (std::size_t i = 0; i < _size; ++i) {
                const std::size_t partner = i ^ sub;
                if (partner <= i)
                    continue;
                // Direction: ascending when bit `span` of i is clear.
                const bool ascending = (i & span) == 0;
                CompareExchange wire;
                wire.low = static_cast<std::uint32_t>(ascending ? i
                                                                : partner);
                wire.high = static_cast<std::uint32_t>(ascending ? partner
                                                                 : i);
                stage.push_back(wire);
            }
            _stages.push_back(std::move(stage));
        }
    }
}

void
BitonicNetwork::apply(std::vector<std::int32_t>& values) const
{
    TTMCAS_REQUIRE(values.size() == _size,
                   "input size does not match network size");
    for (const auto& stage : _stages) {
        for (const auto& wire : stage) {
            if (values[wire.low] > values[wire.high])
                std::swap(values[wire.low], values[wire.high]);
        }
    }
}

double
SorterHardwareModel::ioCycles(std::size_t block_size) const
{
    TTMCAS_REQUIRE(bus_bits > 0, "bus width must be positive");
    const double bits =
        static_cast<double>(block_size) * element_bits;
    // Block in + sorted block out.
    return 2.0 * bits / static_cast<double>(bus_bits);
}

double
StreamingSorterModel::cyclesPerBlock(std::size_t block_size) const
{
    TTMCAS_REQUIRE(width_lanes > 0, "stream width must be positive");
    const BitonicNetwork network(block_size);
    const double per_stage =
        static_cast<double>(block_size) / width_lanes;
    const double latency =
        static_cast<double>(network.stageCount()) * per_stage;
    return std::max(latency, ioCycles(block_size));
}

double
StreamingSorterModel::transistorEstimate(std::size_t block_size) const
{
    const BitonicNetwork network(block_size);
    const double stages = static_cast<double>(network.stageCount());
    // Each streamed stage holds a block-sized permutation buffer plus
    // w/2 physical comparators.
    const double buffers = stages * static_cast<double>(block_size) *
                           element_bits * kTransistorsPerBufferBit;
    const double comparators =
        stages * (width_lanes / 2.0) * kTransistorsPerComparator;
    return (buffers + comparators) * kControlOverhead;
}

double
IterativeSorterModel::cyclesPerBlock(std::size_t block_size) const
{
    TTMCAS_REQUIRE(width_lanes > 0, "stream width must be positive");
    const BitonicNetwork network(block_size);
    const double per_pass =
        static_cast<double>(block_size) / width_lanes +
        turnaround_fraction * static_cast<double>(block_size);
    return static_cast<double>(network.stageCount()) * per_pass;
}

double
IterativeSorterModel::transistorEstimate(std::size_t block_size) const
{
    // One physical stage (with its block permutation buffer) plus
    // double-buffered working memory and the stage's comparators.
    const double stage_buffer = static_cast<double>(block_size) *
                                element_bits * kTransistorsPerBufferBit;
    const double working = 2.0 * static_cast<double>(block_size) *
                           element_bits * kTransistorsPerBufferBit;
    const double comparators =
        (width_lanes / 2.0) * kTransistorsPerComparator;
    return (stage_buffer + working + comparators) * kControlOverhead;
}

} // namespace ttmcas
