#ifndef TTMCAS_ACCEL_FFT_HH
#define TTMCAS_ACCEL_FFT_HH

/**
 * @file
 * Radix-2 FFT: functional model plus hardware cycle/area models for
 * the SPIRAL-style streaming and iterative DFT accelerators of
 * Section 6.4 / Table 3.
 *
 * The functional transform is an in-place iterative radix-2 DIT FFT;
 * tests verify it against a naive O(n^2) DFT. The streaming hardware
 * (Pease dataflow, all log2(n) butterfly columns instantiated) is
 * I/O-bound on a 64-bit bus for complex data; the iterative hardware
 * reuses one butterfly column log2(n) times at width w.
 */

#include <complex>
#include <cstdint>
#include <vector>

namespace ttmcas {

/** In-place iterative radix-2 DIT FFT; size must be a power of two. */
void fft(std::vector<std::complex<double>>& values);

/** Inverse FFT (scaled by 1/n). */
void inverseFft(std::vector<std::complex<double>>& values);

/** Naive O(n^2) DFT used as the verification oracle. */
std::vector<std::complex<double>>
naiveDft(const std::vector<std::complex<double>>& values);

/** Butterfly count of a radix-2 FFT: (n/2) * log2(n). */
std::size_t fftButterflyCount(std::size_t size);

/** Shared hardware parameters for the DFT accelerators. */
struct FftHardwareModel
{
    /** Complex samples entering per cycle. */
    std::uint32_t width_lanes = 4;
    /** Bits per complex sample (2 x 32-bit fixed/float). */
    std::uint32_t sample_bits = 64;
    /** Off-accelerator bus width in bits. */
    std::uint32_t bus_bits = 64;

    /** Cycles to stream one block in and out. */
    double ioCycles(std::size_t block_size) const;
};

/** Fully streaming (Pease) FFT: all columns in silicon. */
struct StreamingFftModel : FftHardwareModel
{
    /** Single-block latency: log2(n) columns of n/w cycles each,
     *  floored by bus I/O. */
    double cyclesPerBlock(std::size_t block_size) const;

    /** Analytic transistor estimate (see .cc). */
    double transistorEstimate(std::size_t block_size) const;
};

/** Iterative FFT: one butterfly column reused log2(n) times. */
struct IterativeFftModel : FftHardwareModel
{
    IterativeFftModel() { width_lanes = 2; }

    /** log2(n) passes of n/w cycles each. */
    double cyclesPerBlock(std::size_t block_size) const;

    /** Analytic transistor estimate. */
    double transistorEstimate(std::size_t block_size) const;
};

} // namespace ttmcas

#endif // TTMCAS_ACCEL_FFT_HH
