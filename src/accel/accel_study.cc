#include "accel/accel_study.hh"

#include "accel/baseline.hh"
#include "accel/fft.hh"
#include "accel/sorting_network.hh"
#include "core/ttm_model.hh"
#include "stats/rng.hh"
#include "support/error.hh"

namespace ttmcas {

namespace {

// Paper Table 3: synthesized transistor counts and reported speed-ups.
struct PaperRow
{
    const char* name;
    double ntt;
    double speedup;
};

constexpr PaperRow kPaperRows[] = {
    {"Sorting Stream", 45.62e6, 16.71},
    {"Sorting Iterative", 18.90e6, 3.07},
    {"DFT Stream", 37.31e6, 56.36},
    {"DFT Iterative", 18.18e6, 20.81},
};

/** Random 2048-block inputs for the software baselines. */
std::vector<std::int32_t>
randomSortBlock(std::size_t size, Rng& rng)
{
    std::vector<std::int32_t> block;
    block.reserve(size);
    for (std::size_t i = 0; i < size; ++i)
        block.push_back(static_cast<std::int32_t>(rng.next() & 0x7fffffff));
    return block;
}

std::vector<std::complex<double>>
randomFftBlock(std::size_t size, Rng& rng)
{
    std::vector<std::complex<double>> block;
    block.reserve(size);
    for (std::size_t i = 0; i < size; ++i)
        block.emplace_back(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    return block;
}

} // namespace

std::vector<AcceleratorResult>
runAccelStudy(const TechnologyDb& db, const AccelStudyOptions& options)
{
    TTMCAS_REQUIRE(options.block_size >= 2, "block size too small");
    const ProcessNode& node = db.node(options.process);

    // Software baselines (averaged over a few random blocks).
    Rng rng(0xacce1);
    constexpr int kRuns = 5;
    double sort_sw_cycles = 0.0;
    double fft_sw_cycles = 0.0;
    for (int run = 0; run < kRuns; ++run) {
        sort_sw_cycles +=
            arianeSort(randomSortBlock(options.block_size, rng)).cycles;
        fft_sw_cycles +=
            arianeFft(randomFftBlock(options.block_size, rng)).cycles;
    }
    sort_sw_cycles /= kRuns;
    fft_sw_cycles /= kRuns;

    // Hardware cycle models.
    const StreamingSorterModel sort_stream;
    const IterativeSorterModel sort_iter;
    const StreamingFftModel fft_stream;
    const IterativeFftModel fft_iter;
    const double hw_cycles[] = {
        sort_stream.cyclesPerBlock(options.block_size),
        sort_iter.cyclesPerBlock(options.block_size),
        fft_stream.cyclesPerBlock(options.block_size),
        fft_iter.cyclesPerBlock(options.block_size),
    };
    const double sw_cycles[] = {sort_sw_cycles, sort_sw_cycles,
                                fft_sw_cycles, fft_sw_cycles};
    const double analytic[] = {
        sort_stream.transistorEstimate(options.block_size),
        sort_iter.transistorEstimate(options.block_size),
        fft_stream.transistorEstimate(options.block_size),
        fft_iter.transistorEstimate(options.block_size),
    };

    TtmModel::Options model_options;
    model_options.tapeout_engineers = options.tapeout_engineers;
    const TtmModel ttm(db, model_options);
    const CostModel costs(db);

    std::vector<AcceleratorResult> results;
    for (int i = 0; i < 4; ++i) {
        const PaperRow& row = kPaperRows[i];
        AcceleratorResult result;
        result.name = row.name;
        result.speedup = sw_cycles[i] / hw_cycles[i];
        result.paper_speedup = row.speedup;
        result.transistors = row.ntt;
        result.analytic_transistors = analytic[i];
        result.area_relative_to_core =
            row.ntt / options.core_transistors;

        // Section 6.4: all non-memory transistors are unique; the
        // synthesized N_TT is used as the tapeout size.
        ChipDesign block = makeMonolithicDesign(
            row.name, options.process, row.ntt, row.ntt);
        const TtmResult ttm_result = ttm.evaluate(block, 1.0);
        result.tapeout_time = ttm_result.tapeout_time;
        result.tapeout_cost = costs.tapeoutCost(block);
        (void)node;
        results.push_back(std::move(result));
    }
    return results;
}

} // namespace ttmcas
