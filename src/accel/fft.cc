#include "accel/fft.hh"

#include <bit>
#include <cmath>
#include <numbers>

#include "support/error.hh"

namespace ttmcas {

namespace {

/** Transistors per complex radix-2 butterfly (4 mult + 6 add, 32b). */
constexpr double kTransistorsPerButterfly = 45000.0;
/** SRAM cell transistors per buffered bit. */
constexpr double kTransistorsPerBufferBit = 7.5;
/** Twiddle ROM bits per butterfly column per sample. */
constexpr double kTwiddleBitsPerSample = 64.0;
/** Control/interconnect overhead multiplier. */
constexpr double kControlOverhead = 1.5;

void
bitReversePermute(std::vector<std::complex<double>>& values)
{
    const std::size_t n = values.size();
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i) {
        std::size_t bit = n >> 1;
        for (; j & bit; bit >>= 1)
            j ^= bit;
        j ^= bit;
        if (i < j)
            std::swap(values[i], values[j]);
    }
}

void
fftCore(std::vector<std::complex<double>>& values, bool inverse)
{
    const std::size_t n = values.size();
    TTMCAS_REQUIRE(n >= 1 && std::has_single_bit(n),
                   "FFT size must be a power of two");
    if (n == 1)
        return;

    bitReversePermute(values);
    for (std::size_t len = 2; len <= n; len *= 2) {
        const double angle = 2.0 * std::numbers::pi / len *
                             (inverse ? 1.0 : -1.0);
        const std::complex<double> wlen(std::cos(angle), std::sin(angle));
        for (std::size_t i = 0; i < n; i += len) {
            std::complex<double> w(1.0, 0.0);
            for (std::size_t j = 0; j < len / 2; ++j) {
                const std::complex<double> u = values[i + j];
                const std::complex<double> v =
                    values[i + j + len / 2] * w;
                values[i + j] = u + v;
                values[i + j + len / 2] = u - v;
                w *= wlen;
            }
        }
    }
    if (inverse) {
        for (auto& value : values)
            value /= static_cast<double>(n);
    }
}

} // namespace

void
fft(std::vector<std::complex<double>>& values)
{
    fftCore(values, /*inverse=*/false);
}

void
inverseFft(std::vector<std::complex<double>>& values)
{
    fftCore(values, /*inverse=*/true);
}

std::vector<std::complex<double>>
naiveDft(const std::vector<std::complex<double>>& values)
{
    const std::size_t n = values.size();
    TTMCAS_REQUIRE(n >= 1, "DFT needs at least one sample");
    std::vector<std::complex<double>> out(n);
    for (std::size_t k = 0; k < n; ++k) {
        std::complex<double> acc(0.0, 0.0);
        for (std::size_t t = 0; t < n; ++t) {
            const double angle = -2.0 * std::numbers::pi *
                                 static_cast<double>(k * t) /
                                 static_cast<double>(n);
            acc += values[t] *
                   std::complex<double>(std::cos(angle), std::sin(angle));
        }
        out[k] = acc;
    }
    return out;
}

std::size_t
fftButterflyCount(std::size_t size)
{
    TTMCAS_REQUIRE(size >= 2 && std::has_single_bit(size),
                   "FFT size must be a power of two >= 2");
    return size / 2 * static_cast<std::size_t>(std::log2(size));
}

double
FftHardwareModel::ioCycles(std::size_t block_size) const
{
    TTMCAS_REQUIRE(bus_bits > 0, "bus width must be positive");
    const double bits = static_cast<double>(block_size) * sample_bits;
    return 2.0 * bits / static_cast<double>(bus_bits);
}

double
StreamingFftModel::cyclesPerBlock(std::size_t block_size) const
{
    TTMCAS_REQUIRE(width_lanes > 0, "stream width must be positive");
    // A Pease column permutes across the whole block, so a single block
    // spends n/w cycles in each of the log2(n) columns.
    const double columns = std::log2(static_cast<double>(block_size));
    const double latency =
        columns * static_cast<double>(block_size) / width_lanes;
    return std::max(latency, ioCycles(block_size));
}

double
StreamingFftModel::transistorEstimate(std::size_t block_size) const
{
    const double columns = std::log2(static_cast<double>(block_size));
    const double butterflies =
        columns * (width_lanes / 2.0) * kTransistorsPerButterfly;
    // Each column needs a block permutation buffer plus twiddle ROM.
    const double buffers = columns * static_cast<double>(block_size) *
                           sample_bits * kTransistorsPerBufferBit;
    const double twiddles = columns * static_cast<double>(block_size) *
                            kTwiddleBitsPerSample;
    return (butterflies + buffers + twiddles) * kControlOverhead;
}

double
IterativeFftModel::cyclesPerBlock(std::size_t block_size) const
{
    TTMCAS_REQUIRE(width_lanes > 0, "stream width must be positive");
    const double passes = std::log2(static_cast<double>(block_size));
    return passes * static_cast<double>(block_size) / width_lanes;
}

double
IterativeFftModel::transistorEstimate(std::size_t block_size) const
{
    const double butterflies =
        (width_lanes / 2.0) * kTransistorsPerButterfly;
    // Double-buffered working memory plus one twiddle ROM.
    const double buffers = 2.0 * static_cast<double>(block_size) *
                           sample_bits * kTransistorsPerBufferBit;
    const double twiddles =
        static_cast<double>(block_size) * kTwiddleBitsPerSample;
    return (butterflies + buffers + twiddles) * kControlOverhead;
}

} // namespace ttmcas
