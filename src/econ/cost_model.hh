#ifndef TTMCAS_ECON_COST_MODEL_HH
#define TTMCAS_ECON_COST_MODEL_HH

/**
 * @file
 * Chip-creation cost model, adapted from Moonwalk [Khazraee et al.,
 * ASPLOS'17] the way the paper describes (Section 5): tapeout
 * engineering (NRE) costs plus manufacturing costs, augmented with
 * per-node mask-set prices and packaging costs.
 *
 * Structure:
 *
 *   NRE            = tapeout labor+EDA + fixed signoff NRE + mask sets
 *   tapeout labor  = sum_p NUT(d,p) * E_tapeout(p) * labor_rate * eda_mult
 *                    (the same Eq. 2 effort that drives T_tapeout,
 *                    priced at a loaded engineer rate and multiplied by
 *                    an EDA/license overhead factor)
 *   masks          = one full mask set per die *type*
 *
 *   manufacturing  = wafers + packaging + testing
 *   wafers         = ceil(N_W(d, n, p)) * wafer_cost(p) per die type
 *   packaging      = n * (base package cost
 *                         + sum_die count * area * per-mm^2 rate)
 *   testing        = per tested die: fixed handling cost
 *                    + transistor-count-proportional tester time
 *
 * The Table 3 anchor (sorting/DFT accelerators at 5nm) pins the default
 * labor rate x EDA multiplier: $6.8M/$4.6M tapeout costs for 45.6M/18.9M
 * unique transistors imply ~$0.082 per unique transistor over a ~$3.0M
 * fixed intercept.
 */

#include "core/design.hh"
#include "core/ttm_model.hh"
#include "support/units.hh"
#include "tech/technology_db.hh"

namespace ttmcas {

/** Itemized chip-creation cost for one (design, n) evaluation. */
struct CostBreakdown
{
    Dollars tapeout_labor{0.0}; ///< engineering + EDA, all nodes
    Dollars tapeout_fixed{0.0}; ///< signoff/shuttle fixed NRE, all nodes
    Dollars masks{0.0};         ///< one mask set per die type
    Dollars wafers{0.0};        ///< purchased wafers
    Dollars packaging{0.0};     ///< assembly of n final chips
    Dollars testing{0.0};       ///< die test before packaging

    /** Non-recurring engineering cost (paid once per design). */
    Dollars nre() const { return tapeout_labor + tapeout_fixed + masks; }

    /** Volume manufacturing cost (scales with n). */
    Dollars manufacturing() const
    {
        return wafers + packaging + testing;
    }

    Dollars total() const { return nre() + manufacturing(); }
};

/** Cost model over a technology snapshot. */
class CostModel
{
  public:
    struct Options
    {
        /** Fully loaded tapeout engineer cost, $/engineering-hour. */
        double labor_rate_per_hour = 150.0;
        /** EDA license/compute overhead multiplier on labor. */
        double eda_multiplier = 2.3;
        /** Fixed assembly cost per final chip, $. */
        double base_package_cost = 4.0;
        /** Assembly cost per packaged die mm^2, $. */
        double package_cost_per_mm2 = 0.01;
        /** Fixed handling cost per tested die, $. */
        double test_cost_per_die = 0.30;
        /** Tester-time cost per billion transistors per die, $. */
        double test_cost_per_btransistor = 1.0;
    };

    /** Build with default options (Table 3 calibration). */
    explicit CostModel(TechnologyDb db);
    CostModel(TechnologyDb db, Options options);

    const TechnologyDb& technology() const { return _model.technology(); }
    const Options& options() const { return _options; }

    /**
     * Full cost of creating @p n_chips of @p design. Market conditions
     * do not change costs in this model (a queue costs time, not money),
     * so none are taken.
     */
    CostBreakdown evaluate(const ChipDesign& design, double n_chips) const;

    /** Tapeout NRE only (Table 3's C_tapeout column): labor + fixed. */
    Dollars tapeoutCost(const ChipDesign& design) const;

    /** Average cost per final chip: total / n. */
    Dollars perChipCost(const ChipDesign& design, double n_chips) const;

  private:
    TtmModel _model; ///< reused for yield/area/wafer plumbing
    Options _options;
};

} // namespace ttmcas

#endif // TTMCAS_ECON_COST_MODEL_HH
