#ifndef TTMCAS_ECON_COST_MODEL_HH
#define TTMCAS_ECON_COST_MODEL_HH

/**
 * @file
 * Chip-creation cost model, adapted from Moonwalk [Khazraee et al.,
 * ASPLOS'17] the way the paper describes (Section 5): tapeout
 * engineering (NRE) costs plus manufacturing costs, augmented with
 * per-node mask-set prices and packaging costs.
 *
 * Structure:
 *
 *   NRE            = tapeout labor+EDA + fixed signoff NRE + mask sets
 *   tapeout labor  = sum_p NUT(d,p) * E_tapeout(p) * labor_rate * eda_mult
 *                    (the same Eq. 2 effort that drives T_tapeout,
 *                    priced at a loaded engineer rate and multiplied by
 *                    an EDA/license overhead factor)
 *   masks          = one full mask set per die *type*
 *
 *   manufacturing  = wafers + packaging + testing
 *   wafers         = ceil(N_W(d, n, p)) * wafer_cost(p) per die type
 *   packaging      = n * (base package cost
 *                         + sum_die count * area * per-mm^2 rate)
 *   testing        = per tested die: fixed handling cost
 *                    + transistor-count-proportional tester time
 *
 * The Table 3 anchor (sorting/DFT accelerators at 5nm) pins the default
 * labor rate x EDA multiplier: $6.8M/$4.6M tapeout costs for 45.6M/18.9M
 * unique transistors imply ~$0.082 per unique transistor over a ~$3.0M
 * fixed intercept.
 */

#include <optional>
#include <string>
#include <vector>

#include "core/design.hh"
#include "core/ttm_model.hh"
#include "support/units.hh"
#include "tech/technology_db.hh"

namespace ttmcas {

/**
 * Package integration technology of a multi-chiplet design
 * (Chiplet Actuary's three cost regimes).
 */
enum class PackagingTier
{
    kOrganicSubstrate, ///< standard laminate; cheap, lossy bonds
    kSiliconInterposer, ///< 2.5D TSV interposer; costly, reliable bonds
    kFanOut,            ///< RDL fan-out; the middle ground
};

/** Wire/display name: "organic", "interposer", "fanout". */
const char* packagingTierName(PackagingTier tier);

/** Inverse of packagingTierName; nullopt on unknown names. */
std::optional<PackagingTier> parsePackagingTier(const std::string& name);

/** Cost/yield constants of one packaging tier. */
struct PackagingTierParams
{
    /** Substrate/interposer cost per mm^2 of placed silicon, $. */
    double cost_per_mm2 = 0.0;
    /** Fixed cost per *started* package assembly, $. */
    double fixed_cost = 0.0;
    /** Per-chiplet attach (bonding) cost, $. */
    double bond_cost_per_chiplet = 0.0;
    /** Probability one chiplet placement bonds correctly. */
    double bond_yield = 1.0;
    /** One-time packaging design/validation NRE, $. */
    double design_nre = 0.0;

    /** All-at-once validation (empty = valid). */
    std::vector<std::string> violations() const;
};

/** Default constants per tier (docs/ECONOMICS.md tabulates them). */
PackagingTierParams defaultTierParams(PackagingTier tier);

/**
 * Knobs of the redundancy-aware multi-chiplet cost decomposition
 * (Chiplet Actuary RE/NRE/KGD structure + Liu-style spare chiplets).
 * All-at-once violations() validation; invalid params never evaluate.
 */
struct ChipletCostParams
{
    /** Package integration technology. */
    PackagingTier tier = PackagingTier::kOrganicSubstrate;
    /** Overrides the tier's default constants when set. */
    std::optional<PackagingTierParams> tier_override;
    /**
     * Liu-style redundancy: k spare chiplets bonded per die *type*.
     * Spares share the type's mask set (no new tapeout) but consume
     * area, known-good dies, and bonding sites; in exchange the
     * package tolerates up to k bond failures at assembly and up to k
     * chiplet failures in the field, per type.
     */
    int spare_chiplets = 0;
    /** Fixed known-good-die test cost per fabricated die, $. */
    double kgd_test_cost_per_die = 0.50;
    /** Area-proportional KGD test (probe) cost, $/mm^2. */
    double kgd_test_cost_per_mm2 = 0.02;
    /** Lifetime failure probability of one bonded chiplet. */
    double field_failure_prob = 0.01;
    /** Integration/IP NRE per chiplet type (interface, verification), $. */
    double ip_nre_per_type = 2.0e6;
    /** Extra packaging-design NRE per spare site per type, $. */
    double redundancy_nre_per_spare = 5.0e4;

    /** The tier constants evaluation will use. */
    PackagingTierParams resolvedTier() const;

    /** All-at-once validation (empty = valid). */
    std::vector<std::string> violations() const;
};

/**
 * Itemized redundancy-aware chiplet cost for @p packages good
 * packages (docs/ECONOMICS.md derives every term):
 *
 *   assembled      = n / Y_asm           packages started per n good
 *   Y_asm          = prod_j S_j,  S_j = P[<= k of m_j + k bonds fail]
 *   dies_j         = ceil(assembled * (m_j + k) / (G_j * y_j)) wafers
 *   KGD test_j     = assembled * (m_j + k) / y_j tested dies
 *   assembly       = assembled * (fixed + c_mm2 * A_pkg + c_bond * placed)
 *   field repair   = (1 - R) * (dies + kgd + assembly),
 *                    R = prod_j P[<= k of m_j + k chiplets fail in life]
 *   NRE            = masks (one set per type) + IP per type
 *                    + tier design NRE + redundancy NRE per spare site
 */
struct ChipletCostBreakdown
{
    // Recurring (scale with volume).
    Dollars dies{0.0};         ///< purchased wafers, all chiplet types
    Dollars kgd_test{0.0};     ///< known-good-die screening
    Dollars assembly{0.0};     ///< substrate/interposer + bonding
    Dollars field_repair{0.0}; ///< expected warranty replacements
    // One-time (amortize over volume).
    Dollars nre_masks{0.0};     ///< one mask set per chiplet type
    Dollars nre_ip{0.0};        ///< integration/IP per chiplet type
    Dollars nre_packaging{0.0}; ///< tier design + redundancy NRE
    // Diagnostics.
    double assembly_yield = 1.0; ///< Y_asm
    double field_survival = 1.0; ///< R
    double packages = 0.0;       ///< good packages the totals cover

    Dollars nre() const { return nre_masks + nre_ip + nre_packaging; }
    Dollars manufacturing() const
    {
        return dies + kgd_test + assembly + field_repair;
    }
    Dollars total() const { return nre() + manufacturing(); }
    /** Average all-in cost per good package: total / packages. */
    Dollars perPackage() const { return total() / packages; }
};

/** Itemized chip-creation cost for one (design, n) evaluation. */
struct CostBreakdown
{
    Dollars tapeout_labor{0.0}; ///< engineering + EDA, all nodes
    Dollars tapeout_fixed{0.0}; ///< signoff/shuttle fixed NRE, all nodes
    Dollars masks{0.0};         ///< one mask set per die type
    Dollars wafers{0.0};        ///< purchased wafers
    Dollars packaging{0.0};     ///< assembly of n final chips
    Dollars testing{0.0};       ///< die test before packaging

    /** Non-recurring engineering cost (paid once per design). */
    Dollars nre() const { return tapeout_labor + tapeout_fixed + masks; }

    /** Volume manufacturing cost (scales with n). */
    Dollars manufacturing() const
    {
        return wafers + packaging + testing;
    }

    Dollars total() const { return nre() + manufacturing(); }
};

/** Cost model over a technology snapshot. */
class CostModel
{
  public:
    struct Options
    {
        /** Fully loaded tapeout engineer cost, $/engineering-hour. */
        double labor_rate_per_hour = 150.0;
        /** EDA license/compute overhead multiplier on labor. */
        double eda_multiplier = 2.3;
        /** Fixed assembly cost per final chip, $. */
        double base_package_cost = 4.0;
        /** Assembly cost per packaged die mm^2, $. */
        double package_cost_per_mm2 = 0.01;
        /** Fixed handling cost per tested die, $. */
        double test_cost_per_die = 0.30;
        /** Tester-time cost per billion transistors per die, $. */
        double test_cost_per_btransistor = 1.0;
    };

    /** Build with default options (Table 3 calibration). */
    explicit CostModel(TechnologyDb db);
    CostModel(TechnologyDb db, Options options);

    const TechnologyDb& technology() const { return _model.technology(); }
    const Options& options() const { return _options; }

    /**
     * Full cost of creating @p n_chips of @p design. Market conditions
     * do not change costs in this model (a queue costs time, not money),
     * so none are taken.
     */
    CostBreakdown evaluate(const ChipDesign& design, double n_chips) const;

    /** Tapeout NRE only (Table 3's C_tapeout column): labor + fixed. */
    Dollars tapeoutCost(const ChipDesign& design) const;

    /**
     * Redundancy-aware multi-chiplet cost of @p n_chips good packages
     * of @p design under @p params (see ChipletCostBreakdown for the
     * decomposition). Every die of the design is treated as one
     * chiplet type with `count_per_package` placements plus
     * `params.spare_chiplets` spares. Throws ModelError when the
     * design is invalid against the technology, @p params has
     * violations, @p n_chips <= 0, or any die's count_per_package is
     * not a positive integer (the binomial redundancy model needs
     * whole placements).
     */
    ChipletCostBreakdown evaluateChiplet(const ChipDesign& design,
                                         double n_chips,
                                         const ChipletCostParams& params)
        const;

    /** Average cost per final chip: total / n. */
    Dollars perChipCost(const ChipDesign& design, double n_chips) const;

  private:
    TtmModel _model; ///< reused for yield/area/wafer plumbing
    Options _options;
};

} // namespace ttmcas

#endif // TTMCAS_ECON_COST_MODEL_HH
