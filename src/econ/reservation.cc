#include "econ/reservation.hh"

#include <algorithm>

#include "stats/summary.hh"
#include "support/error.hh"

namespace ttmcas {

void
ReservationTerms::validate() const
{
    TTMCAS_REQUIRE(reserved_price.value() >= 0.0,
                   "reserved price must be >= 0");
    TTMCAS_REQUIRE(spot_price.value() > 0.0,
                   "spot price must be positive");
}

double
ReservationTerms::criticalFractile() const
{
    validate();
    const double fractile =
        1.0 - reserved_price.value() / spot_price.value();
    return std::max(fractile, 0.0); // no discount -> book nothing
}

ReservationPlanner::ReservationPlanner(ReservationTerms terms)
    : _terms(terms)
{
    _terms.validate();
}

Dollars
ReservationPlanner::expectedCost(
    double reserved, const std::vector<double>& demand_samples) const
{
    TTMCAS_REQUIRE(reserved >= 0.0, "reservation must be >= 0");
    TTMCAS_REQUIRE(!demand_samples.empty(), "need demand samples");
    double total = 0.0;
    for (double demand : demand_samples) {
        TTMCAS_REQUIRE(demand >= 0.0, "demand samples must be >= 0");
        total += _terms.reserved_price.value() * reserved +
                 _terms.spot_price.value() *
                     std::max(0.0, demand - reserved);
    }
    return Dollars(total / static_cast<double>(demand_samples.size()));
}

ReservationPlan
ReservationPlanner::optimalReservation(
    const std::vector<double>& demand_samples) const
{
    TTMCAS_REQUIRE(!demand_samples.empty(), "need demand samples");
    const double fractile = _terms.criticalFractile();

    ReservationPlan plan;
    if (fractile <= 0.0) {
        plan.reserved_wafers = 0.0;
    } else {
        const Summary demand = Summary::of(demand_samples);
        plan.reserved_wafers = demand.percentile(100.0 * fractile);
    }
    plan.expected_cost =
        expectedCost(plan.reserved_wafers, demand_samples);

    std::size_t exceed = 0;
    for (double demand : demand_samples) {
        if (demand > plan.reserved_wafers)
            ++exceed;
    }
    plan.p_exceed = static_cast<double>(exceed) /
                    static_cast<double>(demand_samples.size());
    return plan;
}

} // namespace ttmcas
