#include "econ/cost_model.hh"

#include <cmath>
#include <string>

#include "support/error.hh"
#include "support/outcome.hh"

namespace ttmcas {

namespace {

/** Largest spare count the binomial redundancy model accepts. */
constexpr int kMaxSpareChiplets = 16;

/**
 * P[at most @p tolerated of @p placed independent events fire], each
 * with probability @p p_fail — the Liu redundancy tail shared by the
 * assembly-yield and field-survival terms. Exact small-integer
 * binomials (C(n,i) built by integer-ratio recurrence), so unit pins
 * can reproduce it by hand.
 */
double
binomialTailAtMost(int placed, int tolerated, double p_fail)
{
    const double p_ok = 1.0 - p_fail;
    double tail = 0.0;
    double comb = 1.0; // C(placed, 0)
    for (int i = 0; i <= tolerated; ++i) {
        if (i > 0)
            comb = comb * static_cast<double>(placed - i + 1) /
                   static_cast<double>(i);
        tail += comb * std::pow(p_fail, static_cast<double>(i)) *
                std::pow(p_ok, static_cast<double>(placed - i));
    }
    return tail;
}

void
requireFiniteNonNegative(std::vector<std::string>& problems, double value,
                         const char* name)
{
    if (!std::isfinite(value) || value < 0.0)
        problems.push_back(std::string(name) +
                           " must be finite and >= 0");
}

} // namespace

const char*
packagingTierName(PackagingTier tier)
{
    switch (tier) {
    case PackagingTier::kOrganicSubstrate:
        return "organic";
    case PackagingTier::kSiliconInterposer:
        return "interposer";
    case PackagingTier::kFanOut:
        return "fanout";
    }
    return "organic";
}

std::optional<PackagingTier>
parsePackagingTier(const std::string& name)
{
    if (name == "organic")
        return PackagingTier::kOrganicSubstrate;
    if (name == "interposer")
        return PackagingTier::kSiliconInterposer;
    if (name == "fanout")
        return PackagingTier::kFanOut;
    return std::nullopt;
}

PackagingTierParams
defaultTierParams(PackagingTier tier)
{
    PackagingTierParams params;
    switch (tier) {
    case PackagingTier::kOrganicSubstrate:
        params.cost_per_mm2 = 0.005;
        params.fixed_cost = 2.0;
        params.bond_cost_per_chiplet = 0.25;
        params.bond_yield = 0.990;
        params.design_nre = 0.5e6;
        break;
    case PackagingTier::kSiliconInterposer:
        params.cost_per_mm2 = 0.030;
        params.fixed_cost = 6.0;
        params.bond_cost_per_chiplet = 0.60;
        params.bond_yield = 0.998;
        params.design_nre = 2.0e6;
        break;
    case PackagingTier::kFanOut:
        params.cost_per_mm2 = 0.012;
        params.fixed_cost = 3.5;
        params.bond_cost_per_chiplet = 0.40;
        params.bond_yield = 0.995;
        params.design_nre = 1.0e6;
        break;
    }
    return params;
}

std::vector<std::string>
PackagingTierParams::violations() const
{
    std::vector<std::string> problems;
    requireFiniteNonNegative(problems, cost_per_mm2, "tier cost_per_mm2");
    requireFiniteNonNegative(problems, fixed_cost, "tier fixed_cost");
    requireFiniteNonNegative(problems, bond_cost_per_chiplet,
                             "tier bond_cost_per_chiplet");
    requireFiniteNonNegative(problems, design_nre, "tier design_nre");
    if (!std::isfinite(bond_yield) || bond_yield <= 0.0 ||
        bond_yield > 1.0)
        problems.push_back("tier bond_yield must be within (0, 1]");
    return problems;
}

PackagingTierParams
ChipletCostParams::resolvedTier() const
{
    return tier_override.has_value() ? *tier_override
                                     : defaultTierParams(tier);
}

std::vector<std::string>
ChipletCostParams::violations() const
{
    std::vector<std::string> problems;
    if (spare_chiplets < 0 || spare_chiplets > kMaxSpareChiplets)
        problems.push_back("spare_chiplets must be within [0, " +
                           std::to_string(kMaxSpareChiplets) + "]");
    requireFiniteNonNegative(problems, kgd_test_cost_per_die,
                             "kgd_test_cost_per_die");
    requireFiniteNonNegative(problems, kgd_test_cost_per_mm2,
                             "kgd_test_cost_per_mm2");
    if (!std::isfinite(field_failure_prob) || field_failure_prob < 0.0 ||
        field_failure_prob >= 1.0)
        problems.push_back("field_failure_prob must be within [0, 1)");
    requireFiniteNonNegative(problems, ip_nre_per_type, "ip_nre_per_type");
    requireFiniteNonNegative(problems, redundancy_nre_per_spare,
                             "redundancy_nre_per_spare");
    if (tier_override.has_value()) {
        std::vector<std::string> tier_problems =
            tier_override->violations();
        problems.insert(problems.end(), tier_problems.begin(),
                        tier_problems.end());
    }
    return problems;
}

CostModel::CostModel(TechnologyDb db)
    : CostModel(std::move(db), Options{})
{}

CostModel::CostModel(TechnologyDb db, Options options)
    : _model(std::move(db)), _options(options)
{
    TTMCAS_REQUIRE(_options.labor_rate_per_hour > 0.0,
                   "labor rate must be positive");
    TTMCAS_REQUIRE(_options.eda_multiplier > 0.0,
                   "EDA multiplier must be positive");
    TTMCAS_REQUIRE(_options.base_package_cost >= 0.0 &&
                       _options.package_cost_per_mm2 >= 0.0 &&
                       _options.test_cost_per_die >= 0.0 &&
                       _options.test_cost_per_btransistor >= 0.0,
                   "manufacturing cost rates must be >= 0");
}

Dollars
CostModel::tapeoutCost(const ChipDesign& design) const
{
    design.validateAgainst(_model.technology());
    double labor = 0.0;
    double fixed = 0.0;
    for (const std::string& process : design.processNodes()) {
        const ProcessNode& node = _model.technology().node(process);
        labor += design.uniqueTransistorsAt(process) *
                 node.tapeout_effort_hours_per_transistor *
                 _options.labor_rate_per_hour * _options.eda_multiplier;
        fixed += node.tapeout_fixed_cost.value();
    }
    return Dollars(labor + fixed);
}

CostBreakdown
CostModel::evaluate(const ChipDesign& design, double n_chips) const
{
    design.validateAgainst(_model.technology());
    TTMCAS_REQUIRE(n_chips > 0.0, "number of final chips must be positive");

    CostBreakdown costs;

    // --- NRE ------------------------------------------------------------
    for (const std::string& process : design.processNodes()) {
        const ProcessNode& node = _model.technology().node(process);
        costs.tapeout_labor += Dollars(
            design.uniqueTransistorsAt(process) *
            node.tapeout_effort_hours_per_transistor *
            _options.labor_rate_per_hour * _options.eda_multiplier);
        costs.tapeout_fixed += node.tapeout_fixed_cost;
    }
    for (const auto& die : design.dies)
        costs.masks += _model.technology().node(die.process).mask_set_cost;

    // --- Manufacturing ----------------------------------------------------
    double packaging = n_chips * _options.base_package_cost;
    for (const auto& die : design.dies) {
        const ProcessNode& node = _model.technology().node(die.process);
        const SquareMm area = die.areaAt(node);
        const double yield = _model.dieYield(die, node);

        // Wafers are bought whole.
        const double wafers = std::ceil(
            _model.options().wafer
                .wafersFor(n_chips * die.count_per_package, area, yield)
                .value());
        costs.wafers += node.wafer_cost * wafers;

        // Every fabricated die of this type is tested; only good ones
        // are packaged (paper Eq. 7 rationale).
        const double dies_tested =
            n_chips * die.count_per_package / yield;
        costs.testing += Dollars(
            dies_tested * (_options.test_cost_per_die +
                           die.total_transistors / 1e9 *
                               _options.test_cost_per_btransistor));

        packaging += n_chips * die.count_per_package * area.value() *
                     _options.package_cost_per_mm2;
    }
    costs.packaging = Dollars(packaging);

    // Boundary guard: valid inputs must never leak a NaN or infinite
    // cost out of the model.
    finiteOr(costs.total().value(), DiagCode::NonFiniteCost,
             "cost of design '" + design.name + "'");

    return costs;
}

Dollars
CostModel::perChipCost(const ChipDesign& design, double n_chips) const
{
    return evaluate(design, n_chips).total() / n_chips;
}

ChipletCostBreakdown
CostModel::evaluateChiplet(const ChipDesign& design, double n_chips,
                           const ChipletCostParams& params) const
{
    design.validateAgainst(_model.technology());
    TTMCAS_REQUIRE(n_chips > 0.0 && std::isfinite(n_chips),
                   "number of final packages must be positive");
    {
        const std::vector<std::string> problems = params.violations();
        std::string joined;
        for (const std::string& problem : problems) {
            if (!joined.empty())
                joined += "; ";
            joined += problem;
        }
        TTMCAS_REQUIRE(problems.empty(),
                       "invalid chiplet cost params: " + joined);
    }

    const PackagingTierParams tier = params.resolvedTier();
    const int spares = params.spare_chiplets;
    const double bond_fail = 1.0 - tier.bond_yield;

    ChipletCostBreakdown costs;
    costs.packages = n_chips;

    // Pass 1: per-type placement counts, the package silicon
    // footprint, and the two redundancy tails (assembly yield and
    // lifetime field survival are products over independent types).
    double package_area = 0.0;
    double placed_total = 0.0;
    for (const auto& die : design.dies) {
        const ProcessNode& node = _model.technology().node(die.process);
        const double count = die.count_per_package;
        TTMCAS_REQUIRE(count > 0.0 && count == std::floor(count) &&
                           count <= 1e6,
                       "die '" + die.name +
                           "': count_per_package must be a positive "
                           "integer for the chiplet redundancy model");
        const int placed = static_cast<int>(count) + spares;
        const SquareMm area = die.areaAt(node);
        package_area += static_cast<double>(placed) * area.value();
        placed_total += static_cast<double>(placed);
        costs.assembly_yield *=
            binomialTailAtMost(placed, spares, bond_fail);
        costs.field_survival *=
            binomialTailAtMost(placed, spares, params.field_failure_prob);
    }
    TTMCAS_REQUIRE(costs.assembly_yield > 0.0,
                   "assembly yield of design '" + design.name +
                       "' is zero under the packaging tier");

    // Packages started per good package out.
    const double assembled = n_chips / costs.assembly_yield;

    // Pass 2: recurring silicon (RE) — wafers bought whole as in
    // evaluate(), and every fabricated die pays the KGD screen; only
    // known-good dies are bonded.
    for (const auto& die : design.dies) {
        const ProcessNode& node = _model.technology().node(die.process);
        const SquareMm area = die.areaAt(node);
        const double yield = _model.dieYield(die, node);
        const double placed = die.count_per_package +
                              static_cast<double>(spares);
        const double dies_consumed = assembled * placed;

        const double wafers = std::ceil(
            _model.options().wafer.wafersFor(dies_consumed, area, yield)
                .value());
        costs.dies += node.wafer_cost * wafers;

        const double dies_tested = dies_consumed / yield;
        costs.kgd_test += Dollars(
            dies_tested * (params.kgd_test_cost_per_die +
                           area.value() * params.kgd_test_cost_per_mm2));
    }

    costs.assembly = Dollars(
        assembled * (tier.fixed_cost + tier.cost_per_mm2 * package_area +
                     tier.bond_cost_per_chiplet * placed_total));

    // Expected warranty replacements: a package that dies in the field
    // (exhausts its spares) is rebuilt at the recurring per-package
    // cost. Liu's trade: spares raise this survival term while adding
    // silicon/bonding cost above.
    const Dollars recurring =
        costs.dies + costs.kgd_test + costs.assembly;
    costs.field_repair = recurring * (1.0 - costs.field_survival);

    // One-time NRE. Spares share their type's mask set — redundancy
    // costs area and packaging-design effort, never a new tapeout.
    const double types = static_cast<double>(design.dies.size());
    for (const auto& die : design.dies)
        costs.nre_masks += _model.technology().node(die.process)
                               .mask_set_cost;
    costs.nre_ip = Dollars(params.ip_nre_per_type * types);
    costs.nre_packaging = Dollars(
        tier.design_nre + params.redundancy_nre_per_spare *
                              static_cast<double>(spares) * types);

    finiteOr(costs.total().value(), DiagCode::NonFiniteCost,
             "chiplet cost of design '" + design.name + "'");

    return costs;
}

} // namespace ttmcas
