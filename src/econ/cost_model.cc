#include "econ/cost_model.hh"

#include <cmath>

#include "support/error.hh"
#include "support/outcome.hh"

namespace ttmcas {

CostModel::CostModel(TechnologyDb db)
    : CostModel(std::move(db), Options{})
{}

CostModel::CostModel(TechnologyDb db, Options options)
    : _model(std::move(db)), _options(options)
{
    TTMCAS_REQUIRE(_options.labor_rate_per_hour > 0.0,
                   "labor rate must be positive");
    TTMCAS_REQUIRE(_options.eda_multiplier > 0.0,
                   "EDA multiplier must be positive");
    TTMCAS_REQUIRE(_options.base_package_cost >= 0.0 &&
                       _options.package_cost_per_mm2 >= 0.0 &&
                       _options.test_cost_per_die >= 0.0 &&
                       _options.test_cost_per_btransistor >= 0.0,
                   "manufacturing cost rates must be >= 0");
}

Dollars
CostModel::tapeoutCost(const ChipDesign& design) const
{
    design.validateAgainst(_model.technology());
    double labor = 0.0;
    double fixed = 0.0;
    for (const std::string& process : design.processNodes()) {
        const ProcessNode& node = _model.technology().node(process);
        labor += design.uniqueTransistorsAt(process) *
                 node.tapeout_effort_hours_per_transistor *
                 _options.labor_rate_per_hour * _options.eda_multiplier;
        fixed += node.tapeout_fixed_cost.value();
    }
    return Dollars(labor + fixed);
}

CostBreakdown
CostModel::evaluate(const ChipDesign& design, double n_chips) const
{
    design.validateAgainst(_model.technology());
    TTMCAS_REQUIRE(n_chips > 0.0, "number of final chips must be positive");

    CostBreakdown costs;

    // --- NRE ------------------------------------------------------------
    for (const std::string& process : design.processNodes()) {
        const ProcessNode& node = _model.technology().node(process);
        costs.tapeout_labor += Dollars(
            design.uniqueTransistorsAt(process) *
            node.tapeout_effort_hours_per_transistor *
            _options.labor_rate_per_hour * _options.eda_multiplier);
        costs.tapeout_fixed += node.tapeout_fixed_cost;
    }
    for (const auto& die : design.dies)
        costs.masks += _model.technology().node(die.process).mask_set_cost;

    // --- Manufacturing ----------------------------------------------------
    double packaging = n_chips * _options.base_package_cost;
    for (const auto& die : design.dies) {
        const ProcessNode& node = _model.technology().node(die.process);
        const SquareMm area = die.areaAt(node);
        const double yield = _model.dieYield(die, node);

        // Wafers are bought whole.
        const double wafers = std::ceil(
            _model.options().wafer
                .wafersFor(n_chips * die.count_per_package, area, yield)
                .value());
        costs.wafers += node.wafer_cost * wafers;

        // Every fabricated die of this type is tested; only good ones
        // are packaged (paper Eq. 7 rationale).
        const double dies_tested =
            n_chips * die.count_per_package / yield;
        costs.testing += Dollars(
            dies_tested * (_options.test_cost_per_die +
                           die.total_transistors / 1e9 *
                               _options.test_cost_per_btransistor));

        packaging += n_chips * die.count_per_package * area.value() *
                     _options.package_cost_per_mm2;
    }
    costs.packaging = Dollars(packaging);

    // Boundary guard: valid inputs must never leak a NaN or infinite
    // cost out of the model.
    finiteOr(costs.total().value(), DiagCode::NonFiniteCost,
             "cost of design '" + design.name + "'");

    return costs;
}

Dollars
CostModel::perChipCost(const ChipDesign& design, double n_chips) const
{
    return evaluate(design, n_chips).total() / n_chips;
}

} // namespace ttmcas
