#include "econ/revenue_model.hh"

#include <cmath>

#include "support/error.hh"

namespace ttmcas {

void
MarketWindow::validate() const
{
    TTMCAS_REQUIRE(peak_unit_price.value() > 0.0,
                   "peak unit price must be positive");
    TTMCAS_REQUIRE(window.value() > 0.0,
                   "market window must be positive");
    TTMCAS_REQUIRE(elasticity > 0.0, "elasticity must be positive");
}

Dollars
MarketWindow::unitPrice(Weeks ttm) const
{
    validate();
    TTMCAS_REQUIRE(ttm.value() >= 0.0, "TTM must be >= 0");
    const double remaining = 1.0 - ttm.value() / window.value();
    if (remaining <= 0.0)
        return Dollars(0.0);
    return peak_unit_price * std::pow(remaining, elasticity);
}

Dollars
MarketWindow::revenue(double n_chips, Weeks ttm) const
{
    TTMCAS_REQUIRE(n_chips >= 0.0, "chip count must be >= 0");
    return unitPrice(ttm) * n_chips;
}

double
ProfitResult::roi() const
{
    TTMCAS_REQUIRE(cost.value() > 0.0, "ROI of a zero-cost result");
    return profit().value() / cost.value();
}

ProfitModel::ProfitModel(TtmModel ttm_model, CostModel cost_model,
                         MarketWindow window)
    : _ttm_model(std::move(ttm_model)), _cost_model(std::move(cost_model)),
      _window(window)
{
    _window.validate();
}

ProfitResult
ProfitModel::evaluate(const ChipDesign& design, double n_chips,
                      const MarketConditions& market) const
{
    ProfitResult result;
    result.ttm = _ttm_model.evaluate(design, n_chips, market).total();
    result.revenue = _window.revenue(n_chips, result.ttm);
    result.cost = _cost_model.evaluate(design, n_chips).total();
    return result;
}

std::pair<std::string, ProfitResult>
ProfitModel::bestNode(const ChipDesign& design, double n_chips,
                      const MarketConditions& market) const
{
    std::pair<std::string, ProfitResult> best;
    bool have_best = false;
    for (const std::string& node :
         _ttm_model.technology().availableNames()) {
        if (market.capacityFactor(node) <= 0.0)
            continue;
        const ChipDesign candidate = retargetDesign(design, node);
        const ProfitResult result =
            evaluate(candidate, n_chips, market);
        if (!have_best ||
            result.profit().value() > best.second.profit().value()) {
            best = {node, result};
            have_best = true;
        }
    }
    TTMCAS_REQUIRE(have_best,
                   "no node is in production under these conditions");
    return best;
}

} // namespace ttmcas
