#ifndef TTMCAS_ECON_RESERVATION_HH
#define TTMCAS_ECON_RESERVATION_HH

/**
 * @file
 * Take-or-pay wafer capacity reservations.
 *
 * Section 2.2: "chip designers need to plan far in advance to secure
 * foundry capacity ... or face long lead times". Foundries sell that
 * security as take-or-pay agreements: the customer pre-books q wafers
 * at a discounted price, pays for them whether used or not, and buys
 * any excess demand at the (higher, availability-permitting) spot
 * price. With uncertain wafer demand D this is the classic newsvendor
 * problem:
 *
 *   cost(q, D) = reserved$ · q + spot$ · max(0, D − q)
 *
 *   overage  Co = reserved$          (a booked wafer nobody used)
 *   underage Cu = spot$ − reserved$  (a wafer bought at spot instead)
 *   q* = F_D^{-1}( Cu / (Cu + Co) ) = F_D^{-1}(1 − reserved$/spot$)
 *
 * Demand samples come from wherever the caller likes — the natural
 * source is the uncertainty module's scaled-design wafer demand.
 */

#include <vector>

#include "support/units.hh"

namespace ttmcas {

/** Commercial terms of the reservation. */
struct ReservationTerms
{
    /** Price per pre-booked wafer (paid unconditionally). */
    Dollars reserved_price{0.0};
    /** Price per wafer bought beyond the reservation. */
    Dollars spot_price{0.0};

    void validate() const;

    /** The newsvendor critical fractile 1 - reserved/spot, in [0, 1]. */
    double criticalFractile() const;
};

/** Outcome of a reservation decision against a demand distribution. */
struct ReservationPlan
{
    double reserved_wafers = 0.0;
    Dollars expected_cost{0.0};
    /** Probability demand exceeds the reservation (spot exposure). */
    double p_exceed = 0.0;
};

/** Newsvendor analysis over empirical demand samples. */
class ReservationPlanner
{
  public:
    explicit ReservationPlanner(ReservationTerms terms);

    const ReservationTerms& terms() const { return _terms; }

    /** Expected cost of booking @p reserved wafers (sample average). */
    Dollars expectedCost(double reserved,
                         const std::vector<double>& demand_samples) const;

    /**
     * The optimal booking: the demand distribution's quantile at the
     * critical fractile, with expected cost and exceedance probability
     * evaluated on the samples. Booking 0 is optimal when the
     * reservation offers no discount.
     */
    ReservationPlan
    optimalReservation(const std::vector<double>& demand_samples) const;

  private:
    ReservationTerms _terms;
};

} // namespace ttmcas

#endif // TTMCAS_ECON_RESERVATION_HH
