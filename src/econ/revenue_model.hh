#ifndef TTMCAS_ECON_REVENUE_MODEL_HH
#define TTMCAS_ECON_REVENUE_MODEL_HH

/**
 * @file
 * Market-window revenue: the reason time-to-market matters.
 *
 * Section 2.2 closes with the motivation this module quantifies: "in
 * order for chip designers to profit, products must meet
 * time-to-market requirements to maximize revenue" [Philips 2001]. The
 * standard market-window model prices a unit at its peak when the
 * product ships instantly and decays the price to zero as
 * time-to-market approaches the end of the competitive window:
 *
 *   unit_price(TTM) = peak * max(0, 1 - TTM / window)^elasticity
 *
 * elasticity = 1 is the classic linear window; > 1 models markets
 * that punish lateness early (consumer electronics), < 1 markets that
 * stay lucrative until the cliff (contracted automotive parts).
 *
 * Combined with CostModel this turns the paper's IPC/TTM frontier
 * into a profit frontier.
 */

#include "core/ttm_model.hh"
#include "econ/cost_model.hh"
#include "support/units.hh"

namespace ttmcas {

/** Time-decaying unit-price model. */
struct MarketWindow
{
    /** Unit price when shipping at TTM = 0. */
    Dollars peak_unit_price{0.0};
    /** Weeks until the market no longer pays anything. */
    Weeks window{104.0};
    /** Shape of the decay (see file comment). */
    double elasticity = 1.0;

    /** Unit price when shipping after @p ttm. */
    Dollars unitPrice(Weeks ttm) const;

    /** Revenue for @p n_chips shipped after @p ttm. */
    Dollars revenue(double n_chips, Weeks ttm) const;

    /** Throw ModelError unless parameters are sensible. */
    void validate() const;
};

/** One profit evaluation. */
struct ProfitResult
{
    Weeks ttm{0.0};
    Dollars revenue{0.0};
    Dollars cost{0.0};
    Dollars profit() const { return revenue - cost; }
    /** Profit / cost (return on investment). */
    double roi() const;
};

/** Profit = window revenue - chip creation cost, end to end. */
class ProfitModel
{
  public:
    ProfitModel(TtmModel ttm_model, CostModel cost_model,
                MarketWindow window);

    const MarketWindow& window() const { return _window; }

    /** Evaluate one design at one volume under given conditions. */
    ProfitResult evaluate(const ChipDesign& design, double n_chips,
                          const MarketConditions& market = {}) const;

    /**
     * Among the in-production nodes, the re-target of @p design with
     * the highest profit (the revenue-aware version of the paper's
     * fastest-node question). Returns (node name, result).
     */
    std::pair<std::string, ProfitResult>
    bestNode(const ChipDesign& design, double n_chips,
             const MarketConditions& market = {}) const;

  private:
    TtmModel _ttm_model;
    CostModel _cost_model;
    MarketWindow _window;
};

} // namespace ttmcas

#endif // TTMCAS_ECON_REVENUE_MODEL_HH
