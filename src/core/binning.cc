#include "core/binning.hh"

#include <algorithm>

#include "support/error.hh"

namespace ttmcas {

BinningModel::BinningModel(std::vector<SpeedBin> bins)
    : _bins(std::move(bins))
{
    TTMCAS_REQUIRE(!_bins.empty(), "binning model needs at least one bin");
    double total = 0.0;
    for (const auto& bin : _bins) {
        TTMCAS_REQUIRE(!bin.name.empty(), "bin needs a name");
        TTMCAS_REQUIRE(bin.fraction > 0.0 && bin.fraction <= 1.0,
                       "bin '" + bin.name +
                           "': fraction must be in (0, 1]");
        TTMCAS_REQUIRE(bin.unit_price.value() >= 0.0,
                       "bin '" + bin.name + "': price must be >= 0");
        for (const auto& other : _bins) {
            TTMCAS_REQUIRE(&other == &bin || other.name != bin.name,
                           "duplicate bin name '" + bin.name + "'");
        }
        total += bin.fraction;
    }
    TTMCAS_REQUIRE(total <= 1.0 + 1e-12,
                   "bin fractions must sum to at most 1");
}

double
BinningModel::sellableFraction() const
{
    double total = 0.0;
    for (const auto& bin : _bins) {
        if (bin.unit_price.value() > 0.0)
            total += bin.fraction;
    }
    return total;
}

const SpeedBin&
BinningModel::bin(const std::string& name) const
{
    auto it = std::find_if(_bins.begin(), _bins.end(),
                           [&](const SpeedBin& candidate) {
                               return candidate.name == name;
                           });
    TTMCAS_REQUIRE(it != _bins.end(), "unknown bin '" + name + "'");
    return *it;
}

double
BinningModel::goodDiesForDemand(
    const std::map<std::string, double>& demand) const
{
    TTMCAS_REQUIRE(!demand.empty(), "bin demand must not be empty");
    double dies = 0.0;
    for (const auto& [name, units] : demand) {
        TTMCAS_REQUIRE(units >= 0.0,
                       "demand for bin '" + name + "' must be >= 0");
        dies = std::max(dies, units / bin(name).fraction);
    }
    return dies;
}

double
BinningModel::demandMultiplier(const std::string& bin_name) const
{
    return 1.0 / bin(bin_name).fraction;
}

Dollars
BinningModel::revenuePerGoodDie() const
{
    Dollars revenue{0.0};
    for (const auto& bin : _bins)
        revenue += bin.unit_price * bin.fraction;
    return revenue;
}

BinningModel
typicalThreeBinSplit(Dollars top_price)
{
    TTMCAS_REQUIRE(top_price.value() > 0.0,
                   "top-bin price must be positive");
    return BinningModel({
        {"top", 0.25, top_price},
        {"mid", 0.55, top_price * 0.75},
        {"low", 0.15, top_price * 0.55},
    });
}

} // namespace ttmcas
