#include "core/ttm_batch.hh"

#include <chrono>
#include <cmath>
#include <numbers>

#include "core/yield.hh"
#include "support/metrics.hh"
#include "support/units.hh"

// This translation unit is compiled with -ffp-contract=off (see
// src/core/CMakeLists.txt): the scalar model TUs never emit fused
// multiply-adds, so the kernels must not either or the bitwise
// identity bar breaks on FMA-capable targets.

namespace ttmcas {

namespace {

constexpr double kTestingEffortScale = 1e15;  // as in ttm_model.cc
constexpr double kPackagingEffortScale = 1e9; // as in ttm_model.cc

/** Shared handle to the same counter TtmModel::evaluate bumps. */
const obs::Counter&
evaluationsCounter()
{
    static const obs::Counter counter("ttm.evaluations");
    return counter;
}

/** Batch sizes the kernels are called with (power-of-4-ish ladder). */
const obs::Histogram&
batchSizeHistogram()
{
    static const obs::Histogram histogram(
        "ttm.batch.size",
        {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0});
    return histogram;
}

/** Per-sample kernel cost in nanoseconds (ttmBatch calls only). */
const obs::Histogram&
nsPerSampleHistogram()
{
    static const obs::Histogram histogram(
        "ttm.batch.ns_per_sample",
        {25.0, 50.0, 100.0, 250.0, 500.0, 1000.0, 2500.0, 5000.0,
         10000.0, 25000.0, 100000.0});
    return histogram;
}

/** Factor column indices, matching uncertainty.hh's UncertainInput. */
enum : std::size_t
{
    kNtt = 0,   // total transistors
    kNut = 1,   // unique transistors
    kD0 = 2,    // defect density
    kMuW = 3,   // wafer rate
    kLfab = 4,  // foundry latency
    kLosat = 5, // OSAT latency
};

} // namespace

/**
 * Reusable SoA evaluation scratch. One instance lives per thread (see
 * workspace() below), so after the first call at a given batch size
 * the kernels allocate nothing.
 */
struct CompiledDesign::Workspace
{
    // Per-die scratch, reused across dies (length n).
    std::vector<double> t;    ///< scaled total transistors
    std::vector<double> u;    ///< scaled+clamped unique transistors
    std::vector<double> area; ///< effective die area, mm^2
    std::vector<double> yld;  ///< die yield
    // Per-process accumulators (length P*n, process-major).
    std::vector<double> sum_u;  ///< unique transistors per process
    std::vector<double> wafers; ///< wafer demand per process
    // Per-sample phase results (length n).
    std::vector<double> tapeout; ///< tapeout calendar weeks
    std::vector<double> lat;     ///< packaging latency weeks
    std::vector<double> test;    ///< testing weeks
    std::vector<double> assy;    ///< assembly weeks
    std::vector<double> pack;    ///< total packaging weeks
    std::vector<double> worst;   ///< running max fab time (fabPhase)
    std::vector<unsigned char> ok;
    // casOne scratch: per-process capacity factors (length P).
    std::vector<double> caps;
    // casBatch scratch (length n each).
    std::vector<double> cap_plus;  ///< per-lane perturbed-up factor
    std::vector<double> cap_minus; ///< per-lane perturbed-down factor
    std::vector<double> hstep;     ///< per-lane central-difference step
    std::vector<double> slope;     ///< per-lane running |dTTM/dmuW| sum
    std::vector<double> ttm_a;     ///< perturbed-up totals
    std::vector<double> ttm_b;     ///< perturbed-down totals
    std::vector<unsigned char> ok2;

    void
    resize(std::size_t n, std::size_t processes)
    {
        t.resize(n);
        u.resize(n);
        area.resize(n);
        yld.resize(n);
        sum_u.assign(processes * n, 0.0);
        wafers.assign(processes * n, 0.0);
        tapeout.assign(n, 0.0);
        lat.assign(n, 0.0);
        test.assign(n, 0.0);
        assy.assign(n, 0.0);
        pack.resize(n);
        worst.resize(n);
        ok.resize(n);
        caps.resize(processes);
        cap_plus.resize(n);
        cap_minus.resize(n);
        hstep.resize(n);
        slope.resize(n);
        ttm_a.resize(n);
        ttm_b.resize(n);
        ok2.resize(n);
    }
};

CompiledDesign::Workspace&
CompiledDesign::workspace()
{
    thread_local Workspace ws;
    return ws;
}

std::optional<CompiledDesign>
CompiledDesign::tryCompile(const ChipDesign& design, const TechnologyDb& db,
                           const TtmModel::Options& model_options,
                           const MarketConditions& market, double n_chips)
{
    // Static preconditions. Anything the scalar path rejects (or could
    // reject) independently of the per-sample factors must hold here;
    // otherwise the caller keeps the scalar path, which raises the
    // exact legacy diagnostics.
    if (db.empty() || model_options.yield == nullptr)
        return std::nullopt;
    if (!(model_options.tapeout_engineers > 0.0))
        return std::nullopt;
    if (!(n_chips > 0.0) || !std::isfinite(n_chips))
        return std::nullopt;
    if (!design.violationsAgainst(db).empty())
        return std::nullopt;

    // The inlined Eq. 6 assumes the negative-binomial model. A design
    // whose every die pins its yield never consults the model; any
    // other yield model forces the scalar path.
    const auto* nb = dynamic_cast<const NegativeBinomialYield*>(
        model_options.yield.get());
    bool needs_yield_model = false;
    for (const auto& die : design.dies) {
        if (!die.yield_override.has_value())
            needs_yield_model = true;
    }
    if (needs_yield_model && nb == nullptr)
        return std::nullopt;

    CompiledDesign compiled;
    compiled._n_chips = n_chips;
    compiled._design_time = design.design_time.value();
    compiled._engineer_hours_per_week =
        model_options.tapeout_engineers * units::hours_per_work_week;
    if (nb != nullptr) {
        compiled._nb_alpha = nb->alpha();
        compiled._nb_neg_alpha = -compiled._nb_alpha;
    }

    // Wafer geometry constants. Each is a value grossDiesPerWafer also
    // derives as a single expression from the same inputs, so baking
    // them preserves bitwise identity.
    const WaferGeometry& wafer = model_options.wafer;
    compiled._scribe_mm = wafer.options().scribe_mm;
    compiled._reticle_limit_mm2 = wafer.options().reticle_limit_mm2;
    const double usable_diameter =
        wafer.diameterMm() - 2.0 * wafer.options().edge_exclusion_mm;
    const double usable_radius = usable_diameter / 2.0;
    compiled._usable_area =
        std::numbers::pi * usable_radius * usable_radius;
    compiled._pi_usable_diameter = std::numbers::pi * usable_diameter;

    for (const std::string& process : design.processNodes()) {
        const ProcessNode& node = db.node(process);
        CompiledNode cn;
        cn.name = process;
        cn.tapeout_effort = node.tapeout_effort_hours_per_transistor;
        cn.testing_effort = node.testing_effort_weeks_per_e15;
        cn.packaging_effort = node.packaging_effort_weeks_per_e9_mm2;
        cn.d0 = node.defect_density_per_mm2;
        cn.kwpm = node.wafer_rate_kwpm;
        cn.lfab = node.foundry_latency.value();
        cn.losat = node.osat_latency.value();
        cn.capacity_factor = market.capacityFactor(process);
        const double queue_weeks = market.queueWeeks(process).value();
        // A negatively-signed or non-finite backlog would make the
        // baked queue-wafer reconstruction diverge from
        // MarketConditions::queueWafers in ±0.0 / NaN corner cases.
        if (!std::isfinite(queue_weeks) || std::signbit(queue_weeks))
            return std::nullopt;
        cn.queue_weeks = queue_weeks;
        // Probe for an additive wafer backlog: with the rate zeroed,
        // queueWafers returns exactly the additive term (or ±0.0).
        ProcessNode probe = node;
        probe.wafer_rate_kwpm = 0.0;
        const double extra = market.queueWafers(probe).value();
        if (extra != 0.0) {
            cn.has_queue_extra = true;
            cn.queue_extra_wafers = extra;
        }
        compiled._nodes.push_back(std::move(cn));
    }

    for (const auto& die : design.dies) {
        const ProcessNode& node = db.node(die.process);
        CompiledDie cd;
        cd.total_transistors = die.total_transistors;
        cd.unique_transistors = die.unique_transistors;
        cd.dies_needed = n_chips * die.count_per_package;
        cd.min_area = die.min_area.value();
        if (die.area_override.has_value()) {
            cd.has_area_override = true;
            cd.area_override = die.area_override->value();
        }
        if (die.yield_override.has_value()) {
            cd.has_yield_override = true;
            cd.yield_override = *die.yield_override;
        }
        cd.density_denom = node.density_mtr_per_mm2 * 1e6;
        cd.node = static_cast<std::uint32_t>(
            compiled.processIndex(die.process));
        compiled._dies.push_back(cd);
    }

    // scaledTechnology() scales and re-validates every node in the db,
    // not only the ones this design uses, so overflow anywhere in the
    // db must push a sample to the scalar path. Overflow is monotone
    // in magnitude and every base is finite and >= 0, so checking the
    // per-field maxima covers all nodes.
    for (const ProcessNode& node : db.nodes()) {
        compiled._max_db_d0 =
            std::max(compiled._max_db_d0, node.defect_density_per_mm2);
        compiled._max_db_kwpm =
            std::max(compiled._max_db_kwpm, node.wafer_rate_kwpm);
        compiled._max_db_lfab =
            std::max(compiled._max_db_lfab, node.foundry_latency.value());
        compiled._max_db_losat =
            std::max(compiled._max_db_losat, node.osat_latency.value());
    }

    return compiled;
}

int
CompiledDesign::processIndex(const std::string& process) const
{
    for (std::size_t p = 0; p < _nodes.size(); ++p) {
        if (_nodes[p].name == process)
            return static_cast<int>(p);
    }
    return -1;
}

void
CompiledDesign::diePhase(const std::array<const double*, 6>& factors,
                         std::size_t n, Workspace& ws) const
{
    const double* f_ntt = factors[kNtt];
    const double* f_nut = factors[kNut];
    const double* f_d0 = factors[kD0];
    const double* f_mu = factors[kMuW];
    const double* f_lfab = factors[kLfab];
    const double* f_losat = factors[kLosat];

    ws.resize(n, _nodes.size());

    // Factor predicates: scaleDesign requires positive transistor
    // factors, scaledTechnology requires non-negative node factors and
    // re-validates every scaled node (finiteness via the db maxima).
    for (std::size_t i = 0; i < n; ++i) {
        const bool ok =
            f_ntt[i] > 0.0 && f_nut[i] > 0.0 && f_d0[i] >= 0.0 &&
            f_mu[i] >= 0.0 && f_lfab[i] >= 0.0 && f_losat[i] >= 0.0 &&
            std::isfinite(_max_db_d0 * f_d0[i]) &&
            std::isfinite(_max_db_kwpm * f_mu[i]) &&
            std::isfinite(_max_db_lfab * f_lfab[i]) &&
            std::isfinite(_max_db_losat * f_losat[i]);
        ws.ok[i] = ok ? 1 : 0;
    }

    for (const CompiledDie& die : _dies) {
        const CompiledNode& node = _nodes[die.node];
        double* sum_u = ws.sum_u.data() + die.node * n;
        double* wafers = ws.wafers.data() + die.node * n;

        // Scaled transistor counts; unique clamps to total exactly as
        // scaleDesign does. Non-finite or underflowed-to-zero counts
        // are die validation failures on the scalar path.
        for (std::size_t i = 0; i < n; ++i) {
            const double t = die.total_transistors * f_ntt[i];
            double u = die.unique_transistors * f_nut[i];
            if (u > t)
                u = t;
            ws.t[i] = t;
            ws.u[i] = u;
        }
        for (std::size_t i = 0; i < n; ++i) {
            ws.ok[i] &= static_cast<unsigned char>(
                std::isfinite(ws.t[i]) && ws.t[i] > 0.0 &&
                std::isfinite(ws.u[i]));
        }

        // Effective area: pinned (scaled by the N_TT factor) or
        // density-derived, then the min-area clamp of Die::areaAt.
        if (die.has_area_override) {
            for (std::size_t i = 0; i < n; ++i) {
                const double pinned = die.area_override * f_ntt[i];
                ws.ok[i] &= static_cast<unsigned char>(
                    std::isfinite(pinned) && pinned > 0.0);
                ws.area[i] = pinned < die.min_area ? die.min_area : pinned;
            }
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                const double derived = ws.t[i] / die.density_denom;
                ws.area[i] =
                    derived < die.min_area ? die.min_area : derived;
            }
        }
        for (std::size_t i = 0; i < n; ++i)
            ws.ok[i] &= static_cast<unsigned char>(ws.area[i] > 0.0);

        for (std::size_t i = 0; i < n; ++i)
            sum_u[i] += ws.u[i];

        // Eq. 6 negative-binomial yield (or the pinned override).
        if (die.has_yield_override) {
            for (std::size_t i = 0; i < n; ++i)
                ws.yld[i] = die.yield_override;
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                const double defects = ws.area[i] * (node.d0 * f_d0[i]);
                const double y = std::pow(1.0 + defects / _nb_alpha,
                                          _nb_neg_alpha);
                ws.yld[i] = y;
                ws.ok[i] &=
                    static_cast<unsigned char>(std::isfinite(y));
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            ws.ok[i] &= static_cast<unsigned char>(ws.yld[i] > 0.0 &&
                                                   ws.yld[i] <= 1.0);
        }

        // Gross dies per wafer (partial-edge correction) and the wafer
        // demand for this die. A die that does not fit (zero good dies
        // per wafer) is a scalar-path throw, so the lane dies instead.
        for (std::size_t i = 0; i < n; ++i) {
            const double a = ws.area[i];
            double gross;
            if (_reticle_limit_mm2 > 0.0 && a > _reticle_limit_mm2) {
                gross = 0.0;
            } else {
                const double side = std::sqrt(a);
                const double effective_side = side + _scribe_mm;
                const double packed = effective_side * effective_side;
                const double raw =
                    _usable_area / packed -
                    _pi_usable_diameter / std::sqrt(2.0 * packed);
                gross = raw <= 0.0 ? 0.0 : std::floor(raw);
            }
            const double per_wafer = gross * ws.yld[i];
            ws.ok[i] &= static_cast<unsigned char>(per_wafer > 0.0);
            wafers[i] += die.dies_needed / per_wafer;
        }

        // Packaging phase contributions (Eq. 7), accumulated per die
        // in die order exactly as the scalar loop does.
        for (std::size_t i = 0; i < n; ++i) {
            const double losat = node.losat * f_losat[i];
            ws.lat[i] = ws.lat[i] < losat ? losat : ws.lat[i];
        }
        for (std::size_t i = 0; i < n; ++i) {
            const double dies_tested = die.dies_needed / ws.yld[i];
            ws.test[i] += ((dies_tested * ws.t[i]) * node.testing_effort) /
                          kTestingEffortScale;
        }
        for (std::size_t i = 0; i < n; ++i) {
            ws.assy[i] +=
                ((die.dies_needed * ws.area[i]) * node.packaging_effort) /
                kPackagingEffortScale;
        }
    }

    // Tapeout phase (Eq. 2): per-process unique-transistor sums times
    // the node effort, converted to calendar weeks.
    for (std::size_t p = 0; p < _nodes.size(); ++p) {
        const double effort = _nodes[p].tapeout_effort;
        const double* sum_u = ws.sum_u.data() + p * n;
        for (std::size_t i = 0; i < n; ++i)
            ws.tapeout[i] += sum_u[i] * effort;
    }
    for (std::size_t i = 0; i < n; ++i)
        ws.tapeout[i] = ws.tapeout[i] / _engineer_hours_per_week;

    for (std::size_t i = 0; i < n; ++i)
        ws.pack[i] = (ws.lat[i] + ws.test[i]) + ws.assy[i];
}

void
CompiledDesign::fabPhase(const std::array<const double*, 6>& factors,
                         std::size_t n, Workspace& ws,
                         const double* capacity_factors, double* out,
                         unsigned char* ok) const
{
    const double* f_mu = factors[kMuW];
    const double* f_lfab = factors[kLfab];

    for (std::size_t i = 0; i < n; ++i)
        ok[i] = ws.ok[i];

    // Eq. 3/4/5 per node: effective rate, queue drain, production
    // time; the fab phase is the max over nodes with the scalar
    // first-wins tie-breaking (p == 0 seeds, strictly-greater wins).
    double* worst = ws.worst.data();
    for (std::size_t p = 0; p < _nodes.size(); ++p) {
        const CompiledNode& node = _nodes[p];
        const double cap = capacity_factors != nullptr
                               ? capacity_factors[p]
                               : node.capacity_factor;
        const double* wafers = ws.wafers.data() + p * n;
        for (std::size_t i = 0; i < n; ++i) {
            const double max_rate =
                ((node.kwpm * f_mu[i]) * 1000.0) / units::weeks_per_month;
            const double rate = max_rate * cap;
            ok[i] &= static_cast<unsigned char>(rate > 0.0);
            double queue_wafers = node.queue_weeks * max_rate;
            if (node.has_queue_extra)
                queue_wafers += node.queue_extra_wafers;
            const double queue_time = queue_wafers / rate;
            const double production_time =
                (wafers[i] / rate) + node.lfab * f_lfab[i];
            const double fab = queue_time + production_time;
            if (p == 0)
                worst[i] = fab;
            else
                worst[i] = fab > worst[i] ? fab : worst[i];
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        const double total =
            ((_design_time + ws.tapeout[i]) + worst[i]) + ws.pack[i];
        ok[i] &= static_cast<unsigned char>(std::isfinite(total));
        out[i] = total;
    }
}

void
CompiledDesign::fabPhaseVarying(const std::array<const double*, 6>& factors,
                                std::size_t n, Workspace& ws,
                                std::size_t varying_process,
                                const double* varying_caps, double* out,
                                unsigned char* ok) const
{
    const double* f_mu = factors[kMuW];
    const double* f_lfab = factors[kLfab];

    for (std::size_t i = 0; i < n; ++i)
        ok[i] = ws.ok[i];

    // Identical to fabPhase except that one node's capacity factor is
    // a per-lane column; the per-lane op chain is unchanged (the
    // factor's *origin* cannot affect bit patterns).
    double* worst = ws.worst.data();
    for (std::size_t p = 0; p < _nodes.size(); ++p) {
        const CompiledNode& node = _nodes[p];
        const bool varying = p == varying_process;
        const double cap_fixed = ws.caps[p];
        const double* wafers = ws.wafers.data() + p * n;
        for (std::size_t i = 0; i < n; ++i) {
            const double cap = varying ? varying_caps[i] : cap_fixed;
            const double max_rate =
                ((node.kwpm * f_mu[i]) * 1000.0) / units::weeks_per_month;
            const double rate = max_rate * cap;
            ok[i] &= static_cast<unsigned char>(rate > 0.0);
            double queue_wafers = node.queue_weeks * max_rate;
            if (node.has_queue_extra)
                queue_wafers += node.queue_extra_wafers;
            const double queue_time = queue_wafers / rate;
            const double production_time =
                (wafers[i] / rate) + node.lfab * f_lfab[i];
            const double fab = queue_time + production_time;
            if (p == 0)
                worst[i] = fab;
            else
                worst[i] = fab > worst[i] ? fab : worst[i];
        }
    }

    for (std::size_t i = 0; i < n; ++i) {
        const double total =
            ((_design_time + ws.tapeout[i]) + worst[i]) + ws.pack[i];
        ok[i] &= static_cast<unsigned char>(std::isfinite(total));
        out[i] = total;
    }
}

void
CompiledDesign::ttmBatch(const std::array<const double*, 6>& factors,
                         std::size_t n, double* out,
                         unsigned char* ok) const
{
    if (n == 0)
        return;
    const bool timed = obs::metricsEnabled();
    const auto start = timed ? std::chrono::steady_clock::now()
                             : std::chrono::steady_clock::time_point{};

    Workspace& ws = workspace();
    diePhase(factors, n, ws);
    fabPhase(factors, n, ws, nullptr, out, ok);

    std::uint64_t n_ok = 0;
    for (std::size_t i = 0; i < n; ++i)
        n_ok += ok[i];
    evaluationsCounter().add(n_ok);

    if (timed) {
        const auto elapsed = std::chrono::steady_clock::now() - start;
        const double ns =
            static_cast<double>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    elapsed)
                    .count()) /
            static_cast<double>(n);
        batchSizeHistogram().record(static_cast<double>(n));
        nsPerSampleHistogram().record(ns);
    }
}

bool
CompiledDesign::ttmOne(const Factors& factors, double* out) const
{
    const std::array<const double*, 6> columns{
        &factors[0], &factors[1], &factors[2],
        &factors[3], &factors[4], &factors[5]};
    unsigned char ok = 0;
    ttmBatch(columns, 1, out, &ok);
    return ok != 0;
}

bool
CompiledDesign::ttmOneAt(const Factors& factors,
                         const double* capacity_factors, double* out) const
{
    const std::array<const double*, 6> columns{
        &factors[0], &factors[1], &factors[2],
        &factors[3], &factors[4], &factors[5]};
    Workspace& ws = workspace();
    diePhase(columns, 1, ws);
    unsigned char ok = 0;
    fabPhase(columns, 1, ws, capacity_factors, out, &ok);
    if (ok != 0)
        evaluationsCounter().increment();
    return ok != 0;
}

bool
CompiledDesign::casOne(const Factors& factors, double derivative_rel_step,
                       double normalization,
                       const double* capacity_factors, double* out) const
{
    const std::array<const double*, 6> columns{
        &factors[0], &factors[1], &factors[2],
        &factors[3], &factors[4], &factors[5]};
    Workspace& ws = workspace();
    diePhase(columns, 1, ws);
    if (ws.ok[0] == 0)
        return false;

    // The die phase does not depend on capacity factors, so only the
    // fab phase re-runs per perturbation — each perturbed total is
    // still bitwise equal to a full scalar evaluate.
    const std::size_t processes = _nodes.size();
    for (std::size_t p = 0; p < processes; ++p) {
        ws.caps[p] = capacity_factors != nullptr
                         ? capacity_factors[p]
                         : _nodes[p].capacity_factor;
    }

    const double f_mu = factors[kMuW];
    double slope_sum = 0.0;
    std::uint64_t evaluations = 0;
    for (std::size_t p = 0; p < processes; ++p) {
        // dTtmDMu preconditions: a perturbable max rate and a positive
        // current effective rate.
        const double max_rate =
            ((_nodes[p].kwpm * f_mu) * 1000.0) / units::weeks_per_month;
        if (!(max_rate > 0.0))
            return false;
        const double current_rate = max_rate * ws.caps[p];
        if (!(current_rate > 0.0))
            return false;

        // centralDifference step and the two perturbed evaluations,
        // expressed as capacity factors exactly as CasModel does.
        const double h =
            std::max(std::fabs(current_rate), 1.0) * derivative_rel_step;
        const double factor_plus = (current_rate + h) / max_rate;
        const double factor_minus = (current_rate - h) / max_rate;
        // setCapacityFactor rejects negative (or NaN) factors.
        if (!(factor_plus >= 0.0) || !(factor_minus >= 0.0))
            return false;

        const double saved = ws.caps[p];
        double ttm_plus = 0.0;
        double ttm_minus = 0.0;
        unsigned char ok = 0;
        ws.caps[p] = factor_plus;
        fabPhase(columns, 1, ws, ws.caps.data(), &ttm_plus, &ok);
        if (ok == 0)
            return false;
        ++evaluations;
        ws.caps[p] = factor_minus;
        fabPhase(columns, 1, ws, ws.caps.data(), &ttm_minus, &ok);
        if (ok == 0)
            return false;
        ++evaluations;
        ws.caps[p] = saved;

        const double derivative = (ttm_plus - ttm_minus) / (2.0 * h);
        slope_sum += std::fabs(derivative);
    }

    if (!std::isfinite(slope_sum) || !(slope_sum > 0.0))
        return false;
    *out = (1.0 / slope_sum) / normalization;
    evaluationsCounter().add(evaluations);
    return true;
}

void
CompiledDesign::casBatch(const std::array<const double*, 6>& factors,
                         std::size_t n, double derivative_rel_step,
                         double normalization,
                         const double* capacity_factors, double* out,
                         unsigned char* ok) const
{
    if (n == 0)
        return;
    Workspace& ws = workspace();
    diePhase(factors, n, ws);

    const std::size_t processes = _nodes.size();
    for (std::size_t p = 0; p < processes; ++p) {
        ws.caps[p] = capacity_factors != nullptr
                         ? capacity_factors[p]
                         : _nodes[p].capacity_factor;
    }

    const double* f_mu = factors[kMuW];
    for (std::size_t i = 0; i < n; ++i)
        ws.slope[i] = 0.0;

    for (std::size_t p = 0; p < processes; ++p) {
        const CompiledNode& node = _nodes[p];
        const double cap = ws.caps[p];

        // Per-lane step and perturbed factors, with casOne's exact
        // predicates: a perturbable max rate, a positive current rate,
        // and non-negative perturbed capacity factors. A lane that
        // fails any of them is cleared; its column values are garbage
        // the varying fab phase tolerates (it re-checks rate > 0).
        for (std::size_t i = 0; i < n; ++i) {
            const double max_rate =
                ((node.kwpm * f_mu[i]) * 1000.0) / units::weeks_per_month;
            const double current_rate = max_rate * cap;
            const double h = std::max(std::fabs(current_rate), 1.0) *
                             derivative_rel_step;
            const double factor_plus = (current_rate + h) / max_rate;
            const double factor_minus = (current_rate - h) / max_rate;
            ws.hstep[i] = h;
            ws.cap_plus[i] = factor_plus;
            ws.cap_minus[i] = factor_minus;
            ws.ok[i] &= static_cast<unsigned char>(
                max_rate > 0.0 && current_rate > 0.0 &&
                factor_plus >= 0.0 && factor_minus >= 0.0);
        }

        fabPhaseVarying(factors, n, ws, p, ws.cap_plus.data(),
                        ws.ttm_a.data(), ws.ok2.data());
        for (std::size_t i = 0; i < n; ++i)
            ws.ok[i] &= ws.ok2[i];
        fabPhaseVarying(factors, n, ws, p, ws.cap_minus.data(),
                        ws.ttm_b.data(), ws.ok2.data());
        for (std::size_t i = 0; i < n; ++i)
            ws.ok[i] &= ws.ok2[i];

        for (std::size_t i = 0; i < n; ++i) {
            const double derivative =
                (ws.ttm_a[i] - ws.ttm_b[i]) / (2.0 * ws.hstep[i]);
            ws.slope[i] += std::fabs(derivative);
        }
    }

    std::uint64_t evaluations = 0;
    for (std::size_t i = 0; i < n; ++i) {
        const double slope_sum = ws.slope[i];
        unsigned char lane = ws.ok[i];
        lane &= static_cast<unsigned char>(std::isfinite(slope_sum) &&
                                           slope_sum > 0.0);
        out[i] = (1.0 / slope_sum) / normalization;
        ok[i] = lane;
        if (lane != 0)
            evaluations += 2 * static_cast<std::uint64_t>(processes);
    }
    evaluationsCounter().add(evaluations);
}

void
CompiledDesign::waferDemandBatch(int process_index,
                                 const double* ntt_factors,
                                 const double* d0_factors, std::size_t n,
                                 double* out, unsigned char* ok) const
{
    if (n == 0)
        return;
    Workspace& ws = workspace();
    ws.resize(n, _nodes.size());

    // sampleWaferDemand's scalar chain: scaleDesign(ntt, 1.0) then
    // scaledTechnology(d0, 1, 1, 1); only those two predicates (plus
    // db-wide D0 finiteness) gate a lane up front.
    for (std::size_t i = 0; i < n; ++i) {
        const bool lane_ok = ntt_factors[i] > 0.0 &&
                             d0_factors[i] >= 0.0 &&
                             std::isfinite(_max_db_d0 * d0_factors[i]);
        ws.ok[i] = lane_ok ? 1 : 0;
        out[i] = 0.0;
    }

    for (const CompiledDie& die : _dies) {
        if (process_index < 0 ||
            die.node != static_cast<std::uint32_t>(process_index))
            continue;
        const CompiledNode& node = _nodes[die.node];

        // waferDemand performs no design validation: areaAt and the
        // wafer/yield REQUIREs are the only per-sample throws.
        if (die.has_area_override) {
            for (std::size_t i = 0; i < n; ++i) {
                const double pinned = die.area_override * ntt_factors[i];
                ws.area[i] = pinned < die.min_area ? die.min_area : pinned;
            }
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                const double t = die.total_transistors * ntt_factors[i];
                const double derived = t / die.density_denom;
                ws.area[i] =
                    derived < die.min_area ? die.min_area : derived;
            }
        }
        for (std::size_t i = 0; i < n; ++i)
            ws.ok[i] &= static_cast<unsigned char>(ws.area[i] > 0.0);

        if (die.has_yield_override) {
            for (std::size_t i = 0; i < n; ++i)
                ws.yld[i] = die.yield_override;
        } else {
            for (std::size_t i = 0; i < n; ++i) {
                const double defects =
                    ws.area[i] * (node.d0 * d0_factors[i]);
                const double y = std::pow(1.0 + defects / _nb_alpha,
                                          _nb_neg_alpha);
                ws.yld[i] = y;
                ws.ok[i] &=
                    static_cast<unsigned char>(std::isfinite(y));
            }
        }
        for (std::size_t i = 0; i < n; ++i) {
            ws.ok[i] &= static_cast<unsigned char>(ws.yld[i] > 0.0 &&
                                                   ws.yld[i] <= 1.0);
        }

        for (std::size_t i = 0; i < n; ++i) {
            const double a = ws.area[i];
            double gross;
            if (_reticle_limit_mm2 > 0.0 && a > _reticle_limit_mm2) {
                gross = 0.0;
            } else {
                const double side = std::sqrt(a);
                const double effective_side = side + _scribe_mm;
                const double packed = effective_side * effective_side;
                const double raw =
                    _usable_area / packed -
                    _pi_usable_diameter / std::sqrt(2.0 * packed);
                gross = raw <= 0.0 ? 0.0 : std::floor(raw);
            }
            const double per_wafer = gross * ws.yld[i];
            ws.ok[i] &= static_cast<unsigned char>(per_wafer > 0.0);
            out[i] += die.dies_needed / per_wafer;
        }
    }

    for (std::size_t i = 0; i < n; ++i)
        ok[i] = ws.ok[i];
}

bool
CompiledDesign::waferDemandOne(int process_index, double ntt_factor,
                               double d0_factor, double* out) const
{
    unsigned char ok = 0;
    waferDemandBatch(process_index, &ntt_factor, &d0_factor, 1, out, &ok);
    return ok != 0;
}

} // namespace ttmcas
