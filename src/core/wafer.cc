#include "core/wafer.hh"

#include <cmath>
#include <numbers>

#include "support/error.hh"

namespace ttmcas {

WaferGeometry::WaferGeometry(double diameter_mm)
    : WaferGeometry(diameter_mm, Options{})
{}

WaferGeometry::WaferGeometry(double diameter_mm, Options options)
    : _diameter_mm(diameter_mm), _options(options)
{
    TTMCAS_REQUIRE(diameter_mm > 0.0, "wafer diameter must be positive");
    TTMCAS_REQUIRE(_options.scribe_mm >= 0.0,
                   "scribe width must be >= 0");
    TTMCAS_REQUIRE(_options.edge_exclusion_mm >= 0.0 &&
                       2.0 * _options.edge_exclusion_mm < diameter_mm,
                   "edge exclusion must be >= 0 and leave usable wafer");
}

SquareMm
WaferGeometry::waferArea() const
{
    const double radius = _diameter_mm / 2.0;
    return SquareMm(std::numbers::pi * radius * radius);
}

std::uint64_t
WaferGeometry::grossDiesPerWafer(SquareMm die_area) const
{
    TTMCAS_REQUIRE(die_area.value() > 0.0, "die area must be positive");
    if (_options.reticle_limit_mm2 > 0.0 &&
        die_area.value() > _options.reticle_limit_mm2) {
        return 0; // cannot be exposed in a single reticle field
    }

    // Square-die model: the scribe lane pads each edge before packing.
    const double side = std::sqrt(die_area.value());
    const double effective_side = side + _options.scribe_mm;
    const double area = effective_side * effective_side;

    // Edge exclusion shrinks the usable disc.
    const double usable_diameter =
        _diameter_mm - 2.0 * _options.edge_exclusion_mm;
    const double usable_radius = usable_diameter / 2.0;
    const double usable_area =
        std::numbers::pi * usable_radius * usable_radius;

    const double raw = usable_area / area -
                       std::numbers::pi * usable_diameter /
                           std::sqrt(2.0 * area);
    if (raw <= 0.0)
        return 0;
    return static_cast<std::uint64_t>(std::floor(raw));
}

double
WaferGeometry::goodDiesPerWafer(SquareMm die_area, double die_yield) const
{
    TTMCAS_REQUIRE(die_yield > 0.0 && die_yield <= 1.0,
                   "die yield must be in (0, 1]");
    return static_cast<double>(grossDiesPerWafer(die_area)) * die_yield;
}

Wafers
WaferGeometry::wafersFor(double good_dies, SquareMm die_area,
                         double die_yield) const
{
    TTMCAS_REQUIRE(good_dies >= 0.0, "good die demand must be >= 0");
    const double per_wafer = goodDiesPerWafer(die_area, die_yield);
    TTMCAS_REQUIRE(per_wafer > 0.0,
                   "die of " + std::to_string(die_area.value()) +
                       " mm^2 does not fit on a " +
                       std::to_string(_diameter_mm) + " mm wafer");
    return Wafers(good_dies / per_wafer);
}

} // namespace ttmcas
