#ifndef TTMCAS_CORE_WAFER_HH
#define TTMCAS_CORE_WAFER_HH

/**
 * @file
 * Wafer geometry: dies per wafer and wafer demand.
 *
 * Paper Section 5: "The number of wafers is found from the final number
 * of chips multiplied by the die area divided by the wafer area. Our
 * model also accounts for partial edge dies. All results are calculated
 * using 300mm diameter equivalent wafers."
 *
 * Gross dies per wafer uses the standard partial-edge correction
 *
 *     DPW(A) = pi * (D/2)^2 / A  -  pi * D / sqrt(2 * A)
 *
 * which subtracts the ring of dies lost on the wafer edge.
 */

#include <cstdint>

#include "support/units.hh"

namespace ttmcas {

/** A circular wafer of a given diameter. */
class WaferGeometry
{
  public:
    /** Optional second-order geometry refinements. */
    struct Options
    {
        /**
         * Scribe-lane width in mm added to each die dimension before
         * packing (dies are modeled as squares of the effective area).
         * 0 reproduces the paper's plain formula.
         */
        double scribe_mm = 0.0;
        /**
         * Edge-exclusion ring in mm: the outer annulus no die may
         * touch (handling/clamping zone). 0 disables it.
         */
        double edge_exclusion_mm = 0.0;
        /**
         * Single-exposure reticle field limit in mm^2; dies larger
         * than this cannot be manufactured at all (~858 mm^2 for
         * standard EUV/DUV fields). <= 0 disables the check.
         */
        double reticle_limit_mm2 = 0.0;
    };

    /** @param diameter_mm physical wafer diameter (default 300mm). */
    explicit WaferGeometry(double diameter_mm = 300.0);

    WaferGeometry(double diameter_mm, Options options);

    double diameterMm() const { return _diameter_mm; }
    const Options& options() const { return _options; }

    /** Total wafer surface area. */
    SquareMm waferArea() const;

    /**
     * Whole candidate dies per wafer after the partial-edge correction
     * (paper Section 5). Returns 0 when the die cannot fit at all.
     */
    std::uint64_t grossDiesPerWafer(SquareMm die_area) const;

    /**
     * Expected *good* dies per wafer: gross dies x die yield.
     * @param die_yield fraction in (0, 1]
     */
    double goodDiesPerWafer(SquareMm die_area, double die_yield) const;

    /**
     * Wafers required to obtain @p good_dies functional dies in
     * expectation. Fractional: the TTM model treats wafer demand as a
     * continuous quantity so CAS derivatives stay smooth; the cost
     * model rounds up when buying wafers.
     *
     * Throws ModelError when the die does not fit on the wafer or the
     * yield is zero.
     */
    Wafers wafersFor(double good_dies, SquareMm die_area,
                     double die_yield) const;

  private:
    double _diameter_mm;
    Options _options;
};

} // namespace ttmcas

#endif // TTMCAS_CORE_WAFER_HH
