#ifndef TTMCAS_CORE_CAS_HH
#define TTMCAS_CORE_CAS_HH

/**
 * @file
 * The Chip Agility Score (paper Section 4, Eq. 8):
 *
 *   CAS = ( sum_{p in d} | dTTM(c, d, n, p) / dmuW(p) | )^(-1)
 *
 * The derivative of time-to-market with respect to each used node's
 * wafer production rate is evaluated numerically (central difference on
 * the effective rate), the magnitudes are summed over every process
 * node the design uses, and the inverse is taken so a *higher* CAS
 * means a more agile (less production-bottlenecked) architecture.
 *
 * Raw CAS carries units of wafers/week^2. The paper plots "normalized
 * wafers/week^2"; we divide by a single fixed constant
 * (kCasNormalization) chosen once so the A11-at-7nm/10M-chips full-
 * capacity score lands on the paper's ~175 axis value. Because the
 * constant is global, every relative comparison is unaffected.
 */

#include <vector>

#include "core/market.hh"
#include "core/ttm_batch.hh"
#include "core/ttm_model.hh"

namespace ttmcas {

/** Normalization divisor applied to raw CAS for paper-scale plots. */
inline constexpr double kCasNormalization = 2600.0;

/** One point of a production-capacity sweep (Figs. 3, 9, 12, 13c). */
struct CasPoint
{
    double capacity_fraction = 1.0; ///< % of max production rate / 100
    Weeks ttm{0.0};
    double cas = 0.0;               ///< normalized CAS
};

/** Evaluates Eq. 8 on top of a TtmModel. */
class CasModel
{
  public:
    struct Options
    {
        /** Relative step of the central finite difference. */
        double derivative_rel_step = 1e-3;
        /** Divisor applied to raw CAS (see kCasNormalization). */
        double normalization = kCasNormalization;
        /**
         * Engine for capacitySweep: the compiled batch kernels
         * (default) or the legacy scalar oracle. Results are bitwise
         * identical either way (ctest -L kernel enforces it); kScalar
         * exists for oracle comparison and debugging.
         */
        EvalPath eval_path = EvalPath::kBatch;
    };

    /** Build with default options (1e-3 step, paper normalization). */
    explicit CasModel(TtmModel model);

    CasModel(TtmModel model, Options options);

    const TtmModel& ttmModel() const { return _model; }

    /**
     * dTTM/dmuW for one node of the design, in weeks per (wafer/week),
     * evaluated at the market's current effective rate. Negative in
     * normal conditions (more capacity, less time).
     */
    double dTtmDMu(const ChipDesign& design, double n_chips,
                   const MarketConditions& market,
                   const std::string& process) const;

    /** Raw Eq. 8 score in wafers/week^2. */
    double rawCas(const ChipDesign& design, double n_chips,
                  const MarketConditions& market = {}) const;

    /** Normalized score (raw / normalization), the plotted quantity. */
    double cas(const ChipDesign& design, double n_chips,
               const MarketConditions& market = {}) const;

    /**
     * Sweep global production capacity over @p fractions (applied to
     * *all* nodes the design uses, like the paper's x-axes) and report
     * TTM and CAS at each point. @p base supplies queue conditions.
     */
    std::vector<CasPoint>
    capacitySweep(const ChipDesign& design, double n_chips,
                  const std::vector<double>& fractions,
                  const MarketConditions& base = {}) const;

  private:
    TtmModel _model;
    Options _options;
};

} // namespace ttmcas

#endif // TTMCAS_CORE_CAS_HH
