#include "core/design_io.hh"

#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <vector>

#include "support/error.hh"
#include "support/strutil.hh"

namespace ttmcas {

namespace {

const std::vector<std::string>&
dieColumns()
{
    static const std::vector<std::string> columns{
        "die",
        "process",
        "total_transistors",
        "unique_transistors",
        "count_per_package",
        "area_mm2",
        "min_area_mm2",
        "yield_override",
    };
    return columns;
}

std::vector<std::string>
splitLine(const std::string& line)
{
    std::vector<std::string> cells;
    std::string cell;
    std::istringstream stream(line);
    while (std::getline(stream, cell, ','))
        cells.push_back(cell);
    if (!line.empty() && line.back() == ',')
        cells.push_back("");
    return cells;
}

std::string
trim(const std::string& text)
{
    const auto first = text.find_first_not_of(" \t\r");
    if (first == std::string::npos)
        return "";
    const auto last = text.find_last_not_of(" \t\r");
    return text.substr(first, last - first + 1);
}

double
parseNumber(const std::string& cell, std::size_t line_number,
            const std::string& column)
{
    try {
        std::size_t consumed = 0;
        const double value = std::stod(cell, &consumed);
        TTMCAS_REQUIRE(consumed == cell.size(),
                       "line " + std::to_string(line_number) +
                           ": trailing characters in '" + column + "'");
        return value;
    } catch (const std::invalid_argument&) {
        throw ModelError("line " + std::to_string(line_number) +
                         ": cannot parse '" + cell + "' in column '" +
                         column + "'");
    } catch (const std::out_of_range&) {
        throw ModelError("line " + std::to_string(line_number) +
                         ": value out of range in column '" + column +
                         "'");
    }
}

} // namespace

std::string
designToCsv(const ChipDesign& design)
{
    design.validate();
    std::ostringstream os;
    os.precision(17);
    os << "# ttmcas design\n";
    os << "# name: " << design.name << "\n";
    os << "# design_weeks: " << design.design_time.value() << "\n";
    for (std::size_t c = 0; c < dieColumns().size(); ++c) {
        if (c != 0)
            os << ",";
        os << dieColumns()[c];
    }
    os << "\n";
    for (const Die& die : design.dies) {
        os << die.name << "," << die.process << ","
           << die.total_transistors << "," << die.unique_transistors
           << "," << die.count_per_package << ",";
        if (die.area_override.has_value())
            os << die.area_override->value();
        os << ",";
        if (die.min_area.value() > 0.0)
            os << die.min_area.value();
        os << ",";
        if (die.yield_override.has_value())
            os << *die.yield_override;
        os << "\n";
    }
    return os.str();
}

ChipDesign
designFromCsv(const std::string& csv_text)
{
    std::istringstream stream(csv_text);
    std::string line;
    std::size_t line_number = 0;

    ChipDesign design;
    design.name = "unnamed";

    // Pragmas and header.
    std::map<std::string, std::size_t> column_index;
    while (std::getline(stream, line)) {
        ++line_number;
        const std::string trimmed = trim(line);
        if (trimmed.empty())
            continue;
        if (trimmed[0] == '#') {
            const std::string body = trim(trimmed.substr(1));
            if (startsWith(body, "name:"))
                design.name = trim(body.substr(5));
            else if (startsWith(body, "design_weeks:"))
                design.design_time = Weeks(parseNumber(
                    trim(body.substr(13)), line_number, "design_weeks"));
            continue;
        }
        const auto headers = splitLine(trimmed);
        for (std::size_t i = 0; i < headers.size(); ++i)
            column_index[trim(headers[i])] = i;
        break;
    }
    for (const std::string& required : dieColumns()) {
        TTMCAS_REQUIRE(column_index.count(required) == 1,
                       "design CSV is missing column '" + required +
                           "'");
    }

    // Die rows.
    while (std::getline(stream, line)) {
        ++line_number;
        const std::string trimmed = trim(line);
        if (trimmed.empty() || trimmed[0] == '#')
            continue;
        const auto cells = splitLine(trimmed);
        TTMCAS_REQUIRE(cells.size() >= column_index.size(),
                       "line " + std::to_string(line_number) +
                           ": too few cells");
        const auto cell = [&](const std::string& column) {
            return trim(cells[column_index.at(column)]);
        };
        const auto number = [&](const std::string& column) {
            return parseNumber(cell(column), line_number, column);
        };

        Die die;
        die.name = cell("die");
        die.process = cell("process");
        die.total_transistors = number("total_transistors");
        die.unique_transistors = number("unique_transistors");
        die.count_per_package = number("count_per_package");
        if (!cell("area_mm2").empty())
            die.area_override = SquareMm(number("area_mm2"));
        if (!cell("min_area_mm2").empty())
            die.min_area = SquareMm(number("min_area_mm2"));
        if (!cell("yield_override").empty())
            die.yield_override = number("yield_override");
        design.dies.push_back(std::move(die));
    }
    design.validate();
    return design;
}

void
saveDesignCsv(const ChipDesign& design, const std::string& path)
{
    const std::filesystem::path fs_path(path);
    if (fs_path.has_parent_path())
        std::filesystem::create_directories(fs_path.parent_path());
    std::ofstream out(fs_path);
    TTMCAS_REQUIRE(out.good(), "cannot open '" + path + "' for writing");
    out << designToCsv(design);
    TTMCAS_REQUIRE(out.good(), "failed writing '" + path + "'");
}

ChipDesign
loadDesignCsv(const std::string& path)
{
    std::ifstream in(path);
    TTMCAS_REQUIRE(in.good(), "cannot open '" + path + "' for reading");
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return designFromCsv(buffer.str());
}

} // namespace ttmcas
