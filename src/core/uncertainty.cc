#include "core/uncertainty.hh"

#include <memory>
#include <optional>
#include <utility>

#include "stats/distributions.hh"
#include "stats/fault_injection.hh"
#include "stats/rng.hh"
#include "support/cancel.hh"
#include "support/checkpoint.hh"
#include "support/error.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace ttmcas {

std::string
uncertainInputName(UncertainInput input)
{
    switch (input) {
      case UncertainInput::TotalTransistors:
        return "NTT";
      case UncertainInput::UniqueTransistors:
        return "NUT";
      case UncertainInput::DefectDensity:
        return "D0";
      case UncertainInput::WaferRate:
        return "muW";
      case UncertainInput::FoundryLatency:
        return "Lfab";
      case UncertainInput::OsatLatency:
        return "LOSAT";
    }
    TTMCAS_INVARIANT(false, "unhandled UncertainInput");
}

InputFactors
nominalFactors()
{
    InputFactors factors;
    factors.fill(1.0);
    return factors;
}

UncertaintyAnalysis::UncertaintyAnalysis(TechnologyDb db,
                                         TtmModel::Options model_options)
    : _db(std::move(db)), _model_options(std::move(model_options))
{
    TTMCAS_REQUIRE(!_db.empty(),
                   "UncertaintyAnalysis needs a non-empty technology db");
}

ChipDesign
UncertaintyAnalysis::scaleDesign(const ChipDesign& design, double ntt_factor,
                                 double nut_factor)
{
    TTMCAS_REQUIRE(ntt_factor > 0.0 && nut_factor > 0.0,
                   "design scale factors must be positive");
    ChipDesign scaled = design;
    for (auto& die : scaled.dies) {
        die.total_transistors *= ntt_factor;
        die.unique_transistors *= nut_factor;
        // A die's floorplan grows with its transistor count, so a pinned
        // area scales with N_TT just like a density-derived one.
        if (die.area_override.has_value())
            die.area_override = *die.area_override * ntt_factor;
        // Unique can exceed total after asymmetric scaling; clamp to keep
        // the design valid (N_UT <= N_TT by definition).
        if (die.unique_transistors > die.total_transistors)
            die.unique_transistors = die.total_transistors;
    }
    return scaled;
}

TechnologyDb
UncertaintyAnalysis::scaledTechnology(double d0_factor, double mu_factor,
                                      double lfab_factor,
                                      double losat_factor) const
{
    TTMCAS_REQUIRE(d0_factor >= 0.0 && mu_factor >= 0.0 &&
                       lfab_factor >= 0.0 && losat_factor >= 0.0,
                   "technology scale factors must be >= 0");
    TechnologyDb scaled;
    for (ProcessNode node : _db.nodes()) {
        node.defect_density_per_mm2 *= d0_factor;
        node.wafer_rate_kwpm *= mu_factor;
        node.foundry_latency *= lfab_factor;
        node.osat_latency *= losat_factor;
        scaled.add(std::move(node));
    }
    return scaled;
}

Weeks
UncertaintyAnalysis::ttmWithFactors(const ChipDesign& design, double n_chips,
                                    const MarketConditions& market,
                                    const InputFactors& factors) const
{
    using I = UncertainInput;
    const ChipDesign scaled_design =
        scaleDesign(design, factors[static_cast<std::size_t>(I::TotalTransistors)],
                    factors[static_cast<std::size_t>(I::UniqueTransistors)]);
    const TechnologyDb scaled_db = scaledTechnology(
        factors[static_cast<std::size_t>(I::DefectDensity)],
        factors[static_cast<std::size_t>(I::WaferRate)],
        factors[static_cast<std::size_t>(I::FoundryLatency)],
        factors[static_cast<std::size_t>(I::OsatLatency)]);
    const TtmModel model(scaled_db, _model_options);
    return model.evaluate(scaled_design, n_chips, market).total();
}

double
UncertaintyAnalysis::casWithFactors(const ChipDesign& design, double n_chips,
                                    const MarketConditions& market,
                                    const InputFactors& factors) const
{
    using I = UncertainInput;
    const ChipDesign scaled_design =
        scaleDesign(design, factors[static_cast<std::size_t>(I::TotalTransistors)],
                    factors[static_cast<std::size_t>(I::UniqueTransistors)]);
    const TechnologyDb scaled_db = scaledTechnology(
        factors[static_cast<std::size_t>(I::DefectDensity)],
        factors[static_cast<std::size_t>(I::WaferRate)],
        factors[static_cast<std::size_t>(I::FoundryLatency)],
        factors[static_cast<std::size_t>(I::OsatLatency)]);
    const CasModel cas_model(TtmModel(scaled_db, _model_options));
    return cas_model.cas(scaled_design, n_chips, market);
}

namespace {

/** Draw one factor vector: each entry uniform in [1-band, 1+band]. */
InputFactors
drawFactors(Rng& rng, double band)
{
    InputFactors factors;
    for (auto& factor : factors)
        factor = rng.uniform(1.0 - band, 1.0 + band);
    return factors;
}

/**
 * Shared Monte-Carlo driver behind sampleTtm/sampleCas/
 * sampleWaferDemand: validates the options, splits one independent
 * RNG stream per sample off the seed, and evaluates
 * @p sample(stream_i) for every i — in parallel when configured.
 *
 * Splitting per *sample* (not per thread or per chunk) is what makes
 * the result bitwise-identical for a given seed no matter the thread
 * count or grain: sample i always sees stream i, and each evaluation
 * writes only its own output slot.
 *
 * When @p batched is true, the fast (non-isolated) path hands whole
 * chunks to @p chunk(streams, begin, end, out) so a compiled batch
 * kernel can evaluate them SoA-style; @p sample remains the per-point
 * evaluator the isolated path (skip/inject/cancel/retry/checkpoint)
 * routes through guardedScalarPoint, preserving those contracts
 * unchanged. Both callables must produce bitwise-identical values.
 */
template <typename SampleFn, typename ChunkFn>
std::vector<double>
drawSamples(const UncertaintyAnalysis::Options& options, const char* kernel,
            SampleFn&& sample, ChunkFn&& chunk, bool batched)
{
    TTMCAS_REQUIRE(options.samples > 0, "sample count must be positive");
    TTMCAS_REQUIRE(options.band >= 0.0 && options.band < 1.0,
                   "uncertainty band must be in [0, 1)");
    // Observability: one span per invocation, one count per drawn
    // sample. The counter is bumped per chunk inside the loop bodies,
    // so the merged total is n for any thread count or grain.
    const obs::ScopedSpan span("mc", kernel);
    static const obs::Counter samples_drawn("mc.samples");
    Rng parent(options.seed);
    std::vector<Rng> streams;
    streams.reserve(options.samples);
    for (std::size_t i = 0; i < options.samples; ++i)
        streams.push_back(parent.split());

    // Fast path: no isolation requested. Kept separate so the default
    // Abort-with-no-injection configuration runs the exact legacy code.
    const FaultInjector* injector = options.fault_injector;
    const bool resilient =
        options.cancel != nullptr || options.retry.enabled() ||
        options.resume_from != nullptr || options.checkpoint != nullptr;
    const bool isolated = options.failure_policy.skips() ||
                          options.failure_report != nullptr ||
                          (injector != nullptr && injector->enabled()) ||
                          resilient;
    if (!isolated) {
        std::vector<double> samples(options.samples);
        parallelFor(options.parallel, options.samples,
                    [&](std::size_t begin, std::size_t end) {
                        if (batched)
                            chunk(streams, begin, end, samples);
                        else
                            for (std::size_t i = begin; i < end; ++i)
                                samples[i] = sample(streams[i]);
                        samples_drawn.add(end - begin);
                    });
        return samples;
    }

    // Isolated path: every sample lands in its own Outcome slot; the
    // serial enforcePolicy pass then builds the (thread-count-
    // independent) report and applies the policy. Failed samples are
    // dropped, preserving index order of the survivors.
    //
    // Resume/checkpoint keep the counters and values bitwise equal to
    // an uninterrupted run: restored points are counted as drawn (the
    // chunk add below) and re-recorded into the new checkpoint, and
    // their values are bit-exact IEEE-754 patterns.
    if (options.resume_from != nullptr)
        options.resume_from->requireMatches(kernel, options.seed,
                                            options.samples);
    if (options.checkpoint != nullptr)
        options.checkpoint->bind(kernel, options.seed, options.samples);
    const RetryPolicy* retry =
        options.retry.enabled() ? &options.retry : nullptr;
    std::vector<std::uint32_t> attempts(options.samples, 0);
    std::vector<Outcome<double>> outcomes(options.samples);
    parallelFor(
        options.parallel, options.samples,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                if (options.resume_from != nullptr &&
                    options.resume_from->has(i)) {
                    outcomes[i] = Outcome<double>::success(
                        options.resume_from->value(i));
                } else {
                    outcomes[i] = guardedScalarPoint(
                        injector, DiagCode::NonFiniteOutput, kernel, i,
                        [&] { return sample(streams[i]); }, retry,
                        &attempts[i]);
                }
                if (options.checkpoint != nullptr && outcomes[i].ok())
                    options.checkpoint->record(i, outcomes[i].value());
            }
            samples_drawn.add(end - begin);
        },
        options.cancel);
    if (options.cancel != nullptr && options.cancel->stopRequested())
        markUnevaluated(outcomes, *options.cancel, kernel);
    if (retry != nullptr) {
        RetryStats stats;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (attempts[i] > 1) {
                ++stats.retried_points;
                stats.extra_attempts += attempts[i] - 1;
                if (outcomes[i].ok())
                    ++stats.recovered_points;
            }
            if (!outcomes[i].ok() && attempts[i] == retry->max_attempts)
                ++stats.exhausted_points;
        }
        recordRetryMetrics(stats);
        if (options.retry_stats != nullptr)
            *options.retry_stats = stats;
    } else if (options.retry_stats != nullptr) {
        *options.retry_stats = RetryStats{};
    }
    enforcePolicy(outcomes, options.failure_policy, options.failure_report,
                  kernel);
    std::vector<double> samples;
    samples.reserve(options.samples);
    for (const Outcome<double>& outcome : outcomes) {
        if (outcome.ok())
            samples.push_back(outcome.value());
    }
    return samples;
}

/** Chunk-callable placeholder for kernels without a batch path. */
struct NoChunk
{
    void
    operator()(std::vector<Rng>&, std::size_t, std::size_t,
               std::vector<double>&) const
    {}
};

/** Point-at-a-time drawSamples (no batch kernel available). */
template <typename SampleFn>
std::vector<double>
drawSamples(const UncertaintyAnalysis::Options& options, const char* kernel,
            SampleFn&& sample)
{
    return drawSamples(options, kernel, std::forward<SampleFn>(sample),
                       NoChunk{}, false);
}

} // namespace

std::vector<double>
UncertaintyAnalysis::sampleTtm(const ChipDesign& design, double n_chips,
                               const MarketConditions& market,
                               const Options& options) const
{
    std::optional<CompiledDesign> compiled;
    if (options.eval_path == EvalPath::kBatch)
        compiled = CompiledDesign::tryCompile(design, _db, _model_options,
                                              market, n_chips);
    if (!compiled.has_value()) {
        return drawSamples(options, "sampleTtm", [&](Rng& rng) {
            const InputFactors factors = drawFactors(rng, options.band);
            return ttmWithFactors(design, n_chips, market, factors).value();
        });
    }

    // Fast path: per-point via the compiled kernel (isolated path),
    // whole chunks through the SoA kernel otherwise. A lane the kernel
    // flags re-runs the exact scalar chain, which either produces the
    // identical value or throws the identical scalar diagnostic.
    const CompiledDesign& fast = *compiled;
    const auto sample = [&](Rng& rng) {
        const InputFactors factors = drawFactors(rng, options.band);
        double value = 0.0;
        if (fast.ttmOne(factors, &value))
            return value;
        return ttmWithFactors(design, n_chips, market, factors).value();
    };
    const auto chunk = [&](std::vector<Rng>& streams, std::size_t begin,
                           std::size_t end, std::vector<double>& out) {
        thread_local std::array<std::vector<double>, 6> columns;
        thread_local std::vector<double> values;
        thread_local std::vector<unsigned char> lane_ok;
        const std::size_t n = end - begin;
        for (auto& column : columns)
            column.resize(n);
        values.resize(n);
        lane_ok.resize(n);
        for (std::size_t i = begin; i < end; ++i) {
            const InputFactors factors =
                drawFactors(streams[i], options.band);
            for (std::size_t k = 0; k < kUncertainInputCount; ++k)
                columns[k][i - begin] = factors[k];
        }
        const std::array<const double*, 6> pointers{
            columns[0].data(), columns[1].data(), columns[2].data(),
            columns[3].data(), columns[4].data(), columns[5].data()};
        fast.ttmBatch(pointers, n, values.data(), lane_ok.data());
        // Ascending fallback scan: the first flagged lane throws
        // exactly what a serial scalar loop would have thrown first.
        for (std::size_t j = 0; j < n; ++j) {
            if (lane_ok[j]) {
                out[begin + j] = values[j];
            } else {
                InputFactors factors;
                for (std::size_t k = 0; k < kUncertainInputCount; ++k)
                    factors[k] = columns[k][j];
                out[begin + j] =
                    ttmWithFactors(design, n_chips, market, factors)
                        .value();
            }
        }
    };
    return drawSamples(options, "sampleTtm", sample, chunk, true);
}

std::vector<double>
UncertaintyAnalysis::sampleCas(const ChipDesign& design, double n_chips,
                               const MarketConditions& market,
                               const Options& options) const
{
    std::optional<CompiledDesign> compiled;
    if (options.eval_path == EvalPath::kBatch)
        compiled = CompiledDesign::tryCompile(design, _db, _model_options,
                                              market, n_chips);
    if (!compiled.has_value()) {
        return drawSamples(options, "sampleCas", [&](Rng& rng) {
            const InputFactors factors = drawFactors(rng, options.band);
            return casWithFactors(design, n_chips, market, factors);
        });
    }

    // CAS is derivative-shaped (2 x P perturbed evaluations per
    // sample), so the win comes from the compiled per-sample kernel:
    // the die phase runs once and only the fab phase re-runs per
    // perturbation. casWithFactors uses CasModel's default options.
    const CasModel::Options cas_options;
    const CompiledDesign& fast = *compiled;
    return drawSamples(options, "sampleCas", [&](Rng& rng) {
        const InputFactors factors = drawFactors(rng, options.band);
        double value = 0.0;
        if (fast.casOne(factors, cas_options.derivative_rel_step,
                        cas_options.normalization, nullptr, &value))
            return value;
        return casWithFactors(design, n_chips, market, factors);
    });
}

std::vector<double>
UncertaintyAnalysis::sampleWaferDemand(const ChipDesign& design,
                                       double n_chips,
                                       const std::string& process,
                                       const Options& options) const
{
    const auto scalar_sample = [&](Rng& rng) {
        const double ntt_factor =
            rng.uniform(1.0 - options.band, 1.0 + options.band);
        const double d0_factor =
            rng.uniform(1.0 - options.band, 1.0 + options.band);
        const ChipDesign scaled_design =
            scaleDesign(design, ntt_factor, 1.0);
        const TtmModel model(
            scaledTechnology(d0_factor, 1.0, 1.0, 1.0),
            _model_options);
        return model.waferDemand(scaled_design, n_chips, process).value();
    };

    std::optional<CompiledDesign> compiled;
    // An unknown process throws per sample on the scalar path; keep
    // that path so the diagnostic stays identical.
    if (options.eval_path == EvalPath::kBatch && _db.has(process))
        compiled = CompiledDesign::tryCompile(design, _db, _model_options,
                                              MarketConditions{}, n_chips);
    if (!compiled.has_value())
        return drawSamples(options, "sampleWaferDemand", scalar_sample);

    const CompiledDesign& fast = *compiled;
    const int process_index = fast.processIndex(process);
    const auto sample = [&](Rng& rng) {
        const double ntt_factor =
            rng.uniform(1.0 - options.band, 1.0 + options.band);
        const double d0_factor =
            rng.uniform(1.0 - options.band, 1.0 + options.band);
        double value = 0.0;
        if (fast.waferDemandOne(process_index, ntt_factor, d0_factor,
                                &value))
            return value;
        const ChipDesign scaled_design =
            scaleDesign(design, ntt_factor, 1.0);
        const TtmModel model(
            scaledTechnology(d0_factor, 1.0, 1.0, 1.0),
            _model_options);
        return model.waferDemand(scaled_design, n_chips, process).value();
    };
    const auto chunk = [&](std::vector<Rng>& streams, std::size_t begin,
                           std::size_t end, std::vector<double>& out) {
        thread_local std::vector<double> ntt_column;
        thread_local std::vector<double> d0_column;
        thread_local std::vector<double> values;
        thread_local std::vector<unsigned char> lane_ok;
        const std::size_t n = end - begin;
        ntt_column.resize(n);
        d0_column.resize(n);
        values.resize(n);
        lane_ok.resize(n);
        for (std::size_t i = begin; i < end; ++i) {
            // Same draw order as the scalar sample: N_TT then D0.
            ntt_column[i - begin] =
                streams[i].uniform(1.0 - options.band, 1.0 + options.band);
            d0_column[i - begin] =
                streams[i].uniform(1.0 - options.band, 1.0 + options.band);
        }
        fast.waferDemandBatch(process_index, ntt_column.data(),
                              d0_column.data(), n, values.data(),
                              lane_ok.data());
        for (std::size_t j = 0; j < n; ++j) {
            if (lane_ok[j]) {
                out[begin + j] = values[j];
            } else {
                const ChipDesign scaled_design =
                    scaleDesign(design, ntt_column[j], 1.0);
                const TtmModel model(
                    scaledTechnology(d0_column[j], 1.0, 1.0, 1.0),
                    _model_options);
                out[begin + j] =
                    model.waferDemand(scaled_design, n_chips, process)
                        .value();
            }
        }
    };
    return drawSamples(options, "sampleWaferDemand", sample, chunk, true);
}

Summary
UncertaintyAnalysis::ttmSummary(const ChipDesign& design, double n_chips,
                                const MarketConditions& market,
                                const Options& options) const
{
    return Summary::of(sampleTtm(design, n_chips, market, options));
}

Summary
UncertaintyAnalysis::casSummary(const ChipDesign& design, double n_chips,
                                const MarketConditions& market,
                                const Options& options) const
{
    return Summary::of(sampleCas(design, n_chips, market, options));
}

SobolResult
UncertaintyAnalysis::ttmSensitivity(const ChipDesign& design, double n_chips,
                                    const MarketConditions& market,
                                    const Options& options) const
{
    std::vector<std::unique_ptr<Distribution>> owned;
    std::vector<SensitivityInput> inputs;
    for (std::size_t i = 0; i < kUncertainInputCount; ++i) {
        owned.push_back(relativeUniform(1.0, options.band));
        inputs.push_back(SensitivityInput{
            uncertainInputName(static_cast<UncertainInput>(i)),
            owned.back().get()});
    }

    // Sobol evaluates the model one point at a time (the pick-and-
    // freeze matrices are built upstream), so the win here is the
    // compiled per-point kernel with scalar fallback per flagged lane.
    std::optional<CompiledDesign> compiled;
    if (options.eval_path == EvalPath::kBatch)
        compiled = CompiledDesign::tryCompile(design, _db, _model_options,
                                              market, n_chips);
    const auto model = [&](const std::vector<double>& point) {
        TTMCAS_INVARIANT(point.size() == kUncertainInputCount,
                         "sensitivity point has wrong arity");
        InputFactors factors;
        for (std::size_t i = 0; i < kUncertainInputCount; ++i)
            factors[i] = point[i];
        if (compiled.has_value()) {
            double value = 0.0;
            if (compiled->ttmOne(factors, &value))
                return value;
        }
        return ttmWithFactors(design, n_chips, market, factors).value();
    };

    SobolOptions sobol_options;
    sobol_options.base_samples = options.samples;
    sobol_options.seed = options.seed;
    // ttmWithFactors builds every model object locally, so the lambda
    // satisfies sobolAnalyze's thread-safety contract.
    sobol_options.parallel = options.parallel;
    sobol_options.failure_policy = options.failure_policy;
    sobol_options.fault_injector = options.fault_injector;
    sobol_options.failure_report = options.failure_report;
    sobol_options.cancel = options.cancel;
    sobol_options.retry = options.retry;
    sobol_options.retry_stats = options.retry_stats;
    sobol_options.resume_from = options.resume_from;
    sobol_options.checkpoint = options.checkpoint;
    return sobolAnalyze(inputs, model, sobol_options);
}

} // namespace ttmcas
