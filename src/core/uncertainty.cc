#include "core/uncertainty.hh"

#include <memory>

#include "stats/distributions.hh"
#include "stats/fault_injection.hh"
#include "stats/rng.hh"
#include "support/cancel.hh"
#include "support/checkpoint.hh"
#include "support/error.hh"
#include "support/metrics.hh"
#include "support/trace.hh"

namespace ttmcas {

std::string
uncertainInputName(UncertainInput input)
{
    switch (input) {
      case UncertainInput::TotalTransistors:
        return "NTT";
      case UncertainInput::UniqueTransistors:
        return "NUT";
      case UncertainInput::DefectDensity:
        return "D0";
      case UncertainInput::WaferRate:
        return "muW";
      case UncertainInput::FoundryLatency:
        return "Lfab";
      case UncertainInput::OsatLatency:
        return "LOSAT";
    }
    TTMCAS_INVARIANT(false, "unhandled UncertainInput");
}

InputFactors
nominalFactors()
{
    InputFactors factors;
    factors.fill(1.0);
    return factors;
}

UncertaintyAnalysis::UncertaintyAnalysis(TechnologyDb db,
                                         TtmModel::Options model_options)
    : _db(std::move(db)), _model_options(std::move(model_options))
{
    TTMCAS_REQUIRE(!_db.empty(),
                   "UncertaintyAnalysis needs a non-empty technology db");
}

ChipDesign
UncertaintyAnalysis::scaleDesign(const ChipDesign& design, double ntt_factor,
                                 double nut_factor)
{
    TTMCAS_REQUIRE(ntt_factor > 0.0 && nut_factor > 0.0,
                   "design scale factors must be positive");
    ChipDesign scaled = design;
    for (auto& die : scaled.dies) {
        die.total_transistors *= ntt_factor;
        die.unique_transistors *= nut_factor;
        // A die's floorplan grows with its transistor count, so a pinned
        // area scales with N_TT just like a density-derived one.
        if (die.area_override.has_value())
            die.area_override = *die.area_override * ntt_factor;
        // Unique can exceed total after asymmetric scaling; clamp to keep
        // the design valid (N_UT <= N_TT by definition).
        if (die.unique_transistors > die.total_transistors)
            die.unique_transistors = die.total_transistors;
    }
    return scaled;
}

TechnologyDb
UncertaintyAnalysis::scaledTechnology(double d0_factor, double mu_factor,
                                      double lfab_factor,
                                      double losat_factor) const
{
    TTMCAS_REQUIRE(d0_factor >= 0.0 && mu_factor >= 0.0 &&
                       lfab_factor >= 0.0 && losat_factor >= 0.0,
                   "technology scale factors must be >= 0");
    TechnologyDb scaled;
    for (ProcessNode node : _db.nodes()) {
        node.defect_density_per_mm2 *= d0_factor;
        node.wafer_rate_kwpm *= mu_factor;
        node.foundry_latency *= lfab_factor;
        node.osat_latency *= losat_factor;
        scaled.add(std::move(node));
    }
    return scaled;
}

Weeks
UncertaintyAnalysis::ttmWithFactors(const ChipDesign& design, double n_chips,
                                    const MarketConditions& market,
                                    const InputFactors& factors) const
{
    using I = UncertainInput;
    const ChipDesign scaled_design =
        scaleDesign(design, factors[static_cast<std::size_t>(I::TotalTransistors)],
                    factors[static_cast<std::size_t>(I::UniqueTransistors)]);
    const TechnologyDb scaled_db = scaledTechnology(
        factors[static_cast<std::size_t>(I::DefectDensity)],
        factors[static_cast<std::size_t>(I::WaferRate)],
        factors[static_cast<std::size_t>(I::FoundryLatency)],
        factors[static_cast<std::size_t>(I::OsatLatency)]);
    const TtmModel model(scaled_db, _model_options);
    return model.evaluate(scaled_design, n_chips, market).total();
}

double
UncertaintyAnalysis::casWithFactors(const ChipDesign& design, double n_chips,
                                    const MarketConditions& market,
                                    const InputFactors& factors) const
{
    using I = UncertainInput;
    const ChipDesign scaled_design =
        scaleDesign(design, factors[static_cast<std::size_t>(I::TotalTransistors)],
                    factors[static_cast<std::size_t>(I::UniqueTransistors)]);
    const TechnologyDb scaled_db = scaledTechnology(
        factors[static_cast<std::size_t>(I::DefectDensity)],
        factors[static_cast<std::size_t>(I::WaferRate)],
        factors[static_cast<std::size_t>(I::FoundryLatency)],
        factors[static_cast<std::size_t>(I::OsatLatency)]);
    const CasModel cas_model(TtmModel(scaled_db, _model_options));
    return cas_model.cas(scaled_design, n_chips, market);
}

namespace {

/** Draw one factor vector: each entry uniform in [1-band, 1+band]. */
InputFactors
drawFactors(Rng& rng, double band)
{
    InputFactors factors;
    for (auto& factor : factors)
        factor = rng.uniform(1.0 - band, 1.0 + band);
    return factors;
}

/**
 * Shared Monte-Carlo driver behind sampleTtm/sampleCas/
 * sampleWaferDemand: validates the options, splits one independent
 * RNG stream per sample off the seed, and evaluates
 * @p sample(stream_i) for every i — in parallel when configured.
 *
 * Splitting per *sample* (not per thread or per chunk) is what makes
 * the result bitwise-identical for a given seed no matter the thread
 * count or grain: sample i always sees stream i, and each evaluation
 * writes only its own output slot.
 */
template <typename SampleFn>
std::vector<double>
drawSamples(const UncertaintyAnalysis::Options& options, const char* kernel,
            SampleFn&& sample)
{
    TTMCAS_REQUIRE(options.samples > 0, "sample count must be positive");
    TTMCAS_REQUIRE(options.band >= 0.0 && options.band < 1.0,
                   "uncertainty band must be in [0, 1)");
    // Observability: one span per invocation, one count per drawn
    // sample. The counter is bumped per chunk inside the loop bodies,
    // so the merged total is n for any thread count or grain.
    const obs::ScopedSpan span("mc", kernel);
    static const obs::Counter samples_drawn("mc.samples");
    Rng parent(options.seed);
    std::vector<Rng> streams;
    streams.reserve(options.samples);
    for (std::size_t i = 0; i < options.samples; ++i)
        streams.push_back(parent.split());

    // Fast path: no isolation requested. Kept separate so the default
    // Abort-with-no-injection configuration runs the exact legacy code.
    const FaultInjector* injector = options.fault_injector;
    const bool resilient =
        options.cancel != nullptr || options.retry.enabled() ||
        options.resume_from != nullptr || options.checkpoint != nullptr;
    const bool isolated = options.failure_policy.skips() ||
                          options.failure_report != nullptr ||
                          (injector != nullptr && injector->enabled()) ||
                          resilient;
    if (!isolated) {
        std::vector<double> samples(options.samples);
        parallelFor(options.parallel, options.samples,
                    [&](std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i)
                            samples[i] = sample(streams[i]);
                        samples_drawn.add(end - begin);
                    });
        return samples;
    }

    // Isolated path: every sample lands in its own Outcome slot; the
    // serial enforcePolicy pass then builds the (thread-count-
    // independent) report and applies the policy. Failed samples are
    // dropped, preserving index order of the survivors.
    //
    // Resume/checkpoint keep the counters and values bitwise equal to
    // an uninterrupted run: restored points are counted as drawn (the
    // chunk add below) and re-recorded into the new checkpoint, and
    // their values are bit-exact IEEE-754 patterns.
    if (options.resume_from != nullptr)
        options.resume_from->requireMatches(kernel, options.seed,
                                            options.samples);
    if (options.checkpoint != nullptr)
        options.checkpoint->bind(kernel, options.seed, options.samples);
    const RetryPolicy* retry =
        options.retry.enabled() ? &options.retry : nullptr;
    std::vector<std::uint32_t> attempts(options.samples, 0);
    std::vector<Outcome<double>> outcomes(options.samples);
    parallelFor(
        options.parallel, options.samples,
        [&](std::size_t begin, std::size_t end) {
            for (std::size_t i = begin; i < end; ++i) {
                if (options.resume_from != nullptr &&
                    options.resume_from->has(i)) {
                    outcomes[i] = Outcome<double>::success(
                        options.resume_from->value(i));
                } else {
                    outcomes[i] = guardedScalarPoint(
                        injector, DiagCode::NonFiniteOutput, kernel, i,
                        [&] { return sample(streams[i]); }, retry,
                        &attempts[i]);
                }
                if (options.checkpoint != nullptr && outcomes[i].ok())
                    options.checkpoint->record(i, outcomes[i].value());
            }
            samples_drawn.add(end - begin);
        },
        options.cancel);
    if (options.cancel != nullptr && options.cancel->stopRequested())
        markUnevaluated(outcomes, *options.cancel, kernel);
    if (retry != nullptr) {
        RetryStats stats;
        for (std::size_t i = 0; i < outcomes.size(); ++i) {
            if (attempts[i] > 1) {
                ++stats.retried_points;
                stats.extra_attempts += attempts[i] - 1;
                if (outcomes[i].ok())
                    ++stats.recovered_points;
            }
            if (!outcomes[i].ok() && attempts[i] == retry->max_attempts)
                ++stats.exhausted_points;
        }
        recordRetryMetrics(stats);
        if (options.retry_stats != nullptr)
            *options.retry_stats = stats;
    } else if (options.retry_stats != nullptr) {
        *options.retry_stats = RetryStats{};
    }
    enforcePolicy(outcomes, options.failure_policy, options.failure_report,
                  kernel);
    std::vector<double> samples;
    samples.reserve(options.samples);
    for (const Outcome<double>& outcome : outcomes) {
        if (outcome.ok())
            samples.push_back(outcome.value());
    }
    return samples;
}

} // namespace

std::vector<double>
UncertaintyAnalysis::sampleTtm(const ChipDesign& design, double n_chips,
                               const MarketConditions& market,
                               const Options& options) const
{
    return drawSamples(options, "sampleTtm", [&](Rng& rng) {
        const InputFactors factors = drawFactors(rng, options.band);
        return ttmWithFactors(design, n_chips, market, factors).value();
    });
}

std::vector<double>
UncertaintyAnalysis::sampleCas(const ChipDesign& design, double n_chips,
                               const MarketConditions& market,
                               const Options& options) const
{
    return drawSamples(options, "sampleCas", [&](Rng& rng) {
        const InputFactors factors = drawFactors(rng, options.band);
        return casWithFactors(design, n_chips, market, factors);
    });
}

std::vector<double>
UncertaintyAnalysis::sampleWaferDemand(const ChipDesign& design,
                                       double n_chips,
                                       const std::string& process,
                                       const Options& options) const
{
    return drawSamples(options, "sampleWaferDemand", [&](Rng& rng) {
        const double ntt_factor =
            rng.uniform(1.0 - options.band, 1.0 + options.band);
        const double d0_factor =
            rng.uniform(1.0 - options.band, 1.0 + options.band);
        const ChipDesign scaled_design =
            scaleDesign(design, ntt_factor, 1.0);
        const TtmModel model(
            scaledTechnology(d0_factor, 1.0, 1.0, 1.0),
            _model_options);
        return model.waferDemand(scaled_design, n_chips, process).value();
    });
}

Summary
UncertaintyAnalysis::ttmSummary(const ChipDesign& design, double n_chips,
                                const MarketConditions& market,
                                const Options& options) const
{
    return Summary::of(sampleTtm(design, n_chips, market, options));
}

Summary
UncertaintyAnalysis::casSummary(const ChipDesign& design, double n_chips,
                                const MarketConditions& market,
                                const Options& options) const
{
    return Summary::of(sampleCas(design, n_chips, market, options));
}

SobolResult
UncertaintyAnalysis::ttmSensitivity(const ChipDesign& design, double n_chips,
                                    const MarketConditions& market,
                                    const Options& options) const
{
    std::vector<std::unique_ptr<Distribution>> owned;
    std::vector<SensitivityInput> inputs;
    for (std::size_t i = 0; i < kUncertainInputCount; ++i) {
        owned.push_back(relativeUniform(1.0, options.band));
        inputs.push_back(SensitivityInput{
            uncertainInputName(static_cast<UncertainInput>(i)),
            owned.back().get()});
    }

    const auto model = [&](const std::vector<double>& point) {
        TTMCAS_INVARIANT(point.size() == kUncertainInputCount,
                         "sensitivity point has wrong arity");
        InputFactors factors;
        for (std::size_t i = 0; i < kUncertainInputCount; ++i)
            factors[i] = point[i];
        return ttmWithFactors(design, n_chips, market, factors).value();
    };

    SobolOptions sobol_options;
    sobol_options.base_samples = options.samples;
    sobol_options.seed = options.seed;
    // ttmWithFactors builds every model object locally, so the lambda
    // satisfies sobolAnalyze's thread-safety contract.
    sobol_options.parallel = options.parallel;
    sobol_options.failure_policy = options.failure_policy;
    sobol_options.fault_injector = options.fault_injector;
    sobol_options.failure_report = options.failure_report;
    sobol_options.cancel = options.cancel;
    sobol_options.retry = options.retry;
    sobol_options.retry_stats = options.retry_stats;
    sobol_options.resume_from = options.resume_from;
    sobol_options.checkpoint = options.checkpoint;
    return sobolAnalyze(inputs, model, sobol_options);
}

} // namespace ttmcas
