#include "core/ttm_model.hh"

#include <algorithm>

#include "support/error.hh"
#include "support/metrics.hh"
#include "support/outcome.hh"

namespace ttmcas {

namespace {

/** Scale factors that keep the stored effort magnitudes readable. */
constexpr double kTestingEffortScale = 1e15;   // transistor-chips
constexpr double kPackagingEffortScale = 1e9;  // chip-die-mm^2

/** Shared bucket bounds for the per-stage wall-clock histograms. */
std::vector<double>
stageBounds()
{
    return {0.5,    1.0,    2.0,     5.0,     10.0,     50.0,
            100.0,  500.0,  1000.0,  10000.0, 100000.0, 1000000.0};
}

} // namespace

const NodeFabDetail&
TtmResult::nodeDetail(const std::string& process) const
{
    auto it = std::find_if(node_details.begin(), node_details.end(),
                           [&](const NodeFabDetail& detail) {
                               return detail.process == process;
                           });
    TTMCAS_REQUIRE(it != node_details.end(),
                   "no fabrication detail for node '" + process + "'");
    return *it;
}

TtmModel::TtmModel(TechnologyDb db) : TtmModel(std::move(db), Options{}) {}

TtmModel::TtmModel(TechnologyDb db, Options options)
    : _db(std::move(db)), _options(std::move(options))
{
    TTMCAS_REQUIRE(!_db.empty(), "TtmModel needs a non-empty technology db");
    TTMCAS_REQUIRE(_options.tapeout_engineers > 0.0,
                   "tapeout team size must be positive");
    TTMCAS_REQUIRE(_options.yield != nullptr, "TtmModel needs a yield model");
}

double
TtmModel::dieYield(const Die& die, const ProcessNode& node) const
{
    if (die.yield_override.has_value())
        return *die.yield_override;
    return _options.yield->dieYield(die.areaAt(node),
                                    node.defect_density_per_mm2);
}

Wafers
TtmModel::waferDemand(const ChipDesign& design, double n_chips,
                      const std::string& process) const
{
    TTMCAS_REQUIRE(n_chips > 0.0, "number of final chips must be positive");
    const ProcessNode& node = _db.node(process);
    Wafers total{0.0};
    for (const auto& die : design.dies) {
        if (die.process != process)
            continue;
        const SquareMm area = die.areaAt(node);
        const double yield = dieYield(die, node);
        total += _options.wafer.wafersFor(n_chips * die.count_per_package,
                                          area, yield);
    }
    return total;
}

TtmResult
TtmModel::evaluate(const ChipDesign& design, double n_chips,
                   const MarketConditions& market) const
{
    design.validateAgainst(_db);
    TTMCAS_REQUIRE(n_chips > 0.0, "number of final chips must be positive");

    // Hoist the string-keyed node lookups out of the per-phase loops:
    // evaluate() is the Monte-Carlo/sweep hot path, and each map probe
    // costs a hash of the process-name string. One pointer per die and
    // per process, resolved once, serves all four phases below.
    const std::vector<std::string>& process_names = design.processNodes();
    std::vector<const ProcessNode*> die_nodes;
    die_nodes.reserve(design.dies.size());
    for (const auto& die : design.dies)
        die_nodes.push_back(&_db.node(die.process));
    std::vector<const ProcessNode*> process_nodes;
    process_nodes.reserve(process_names.size());
    for (const std::string& process : process_names)
        process_nodes.push_back(&_db.node(process));

    // Stage wall-clock accounting (docs/OBSERVABILITY.md): one
    // histogram per model phase, all no-ops while metrics are off.
    static const obs::Counter evaluations("ttm.evaluations");
    static const obs::Histogram design_us("ttm.stage.design_us",
                                          stageBounds());
    static const obs::Histogram tapeout_us("ttm.stage.tapeout_us",
                                           stageBounds());
    static const obs::Histogram fab_us("ttm.stage.fab_us", stageBounds());
    static const obs::Histogram package_us("ttm.stage.package_us",
                                           stageBounds());
    evaluations.increment();

    TtmResult result;
    {
        // --- Design phase (Eq. 1 input): fixed schedule term --------
        const obs::ScopedTimer timer(design_us);
        result.design_time = design.design_time;
    }

    {
        // --- Tapeout phase (Eq. 2) ----------------------------------
        const obs::ScopedTimer timer(tapeout_us);
        double effort_hours = 0.0;
        for (std::size_t p = 0; p < process_names.size(); ++p) {
            const ProcessNode& node = *process_nodes[p];
            effort_hours += design.uniqueTransistorsAt(process_names[p]) *
                            node.tapeout_effort_hours_per_transistor;
        }
        result.tapeout_effort = EngineeringHours(effort_hours);
        result.tapeout_time = units::calendarTime(
            result.tapeout_effort, _options.tapeout_engineers);
    }

    {
        // Fab stage: per-die demand plus the queue+production phase.
        const obs::ScopedTimer timer(fab_us);

        // --- Per-die fabrication demand (Eq. 5/6 inputs) ------------
        for (std::size_t d = 0; d < design.dies.size(); ++d) {
            const auto& die = design.dies[d];
            const ProcessNode& node = *die_nodes[d];
            DieDetail detail;
            detail.die_name = die.name;
            detail.process = die.process;
            detail.area = die.areaAt(node);
            detail.yield = dieYield(die, node);
            detail.gross_dies_per_wafer =
                _options.wafer.grossDiesPerWafer(detail.area);
            detail.good_dies_per_wafer =
                _options.wafer.goodDiesPerWafer(detail.area, detail.yield);
            detail.dies_needed = n_chips * die.count_per_package;
            detail.wafers = _options.wafer.wafersFor(
                detail.dies_needed, detail.area, detail.yield);
            result.die_details.push_back(std::move(detail));
        }

        // --- Fabrication phase (Eq. 3/4/5): max over nodes ----------
        Weeks worst_fab{0.0};
        for (std::size_t p = 0; p < process_names.size(); ++p) {
            const std::string& process = process_names[p];
            const ProcessNode& node = *process_nodes[p];
            const WafersPerWeek rate = market.effectiveWaferRate(node);
            TTMCAS_REQUIRE(rate.value() > 0.0,
                           "design '" + design.name + "': node '" +
                               process +
                               "' has no production capacity under the "
                               "given market conditions");

            NodeFabDetail detail;
            detail.process = process;
            detail.effective_rate = rate;
            for (const auto& die_detail : result.die_details) {
                if (die_detail.process == process)
                    detail.wafers += die_detail.wafers;
            }
            detail.queue_time =
                units::productionTime(market.queueWafers(node), rate);
            detail.production_time =
                units::productionTime(detail.wafers, rate) +
                node.foundry_latency;

            const Weeks fab = detail.fabTime();
            if (result.node_details.empty() || fab > worst_fab) {
                worst_fab = fab;
                result.fab_bottleneck = process;
            }
            result.node_details.push_back(std::move(detail));
        }
        result.fab_time = worst_fab;
    }

    {
        // --- Packaging phase (Eq. 7): test + assembly per die type --
        const obs::ScopedTimer timer(package_us);
        Weeks latency{0.0};
        double testing_weeks = 0.0;
        double assembly_weeks = 0.0;
        for (std::size_t d = 0; d < design.dies.size(); ++d) {
            const auto& die = design.dies[d];
            const ProcessNode& node = *die_nodes[d];
            latency = std::max(latency, node.osat_latency);

            // The fab stage already computed this die's yield and area;
            // reusing the stored values skips a pow() per die and is
            // bitwise-identical (same doubles, same expression chain).
            const double yield = result.die_details[d].yield;
            const double dies_tested =
                n_chips * die.count_per_package / yield;
            testing_weeks += dies_tested * die.total_transistors *
                             node.testing_effort_weeks_per_e15 /
                             kTestingEffortScale;

            const SquareMm area = result.die_details[d].area;
            assembly_weeks += n_chips * die.count_per_package *
                              area.value() *
                              node.packaging_effort_weeks_per_e9_mm2 /
                              kPackagingEffortScale;
        }
        result.packaging_latency = latency;
        result.testing_time = Weeks(testing_weeks);
        result.assembly_time = Weeks(assembly_weeks);
        result.packaging_time =
            result.packaging_latency + result.testing_time +
            result.assembly_time;
    }

    // Boundary guard: a finite, valid input set must never leak a NaN
    // or infinite schedule out of the model.
    finiteOr(result.total().value(), DiagCode::NonFiniteTtm,
             "TTM of design '" + design.name + "'");

    return result;
}

} // namespace ttmcas
