#ifndef TTMCAS_CORE_DESIGN_IO_HH
#define TTMCAS_CORE_DESIGN_IO_HH

/**
 * @file
 * CSV serialization of chip designs.
 *
 * Companion to tech/dataset_io: a ChipDesign (any number of die types,
 * chiplets, interposers) round-trips through a small CSV so the CLI
 * and scripts can evaluate real multi-die architectures without
 * writing C++.
 *
 * Format: pragma comments for the design-level fields, then a header
 * row and one row per die type. Empty cells mean "unset".
 *
 *   # ttmcas design
 *   # name: zen2-original
 *   # design_weeks: 0
 *   die,process,total_transistors,unique_transistors,count_per_package,area_mm2,min_area_mm2,yield_override
 *   compute,7nm,3.8e9,475e6,2,74,,
 *   io,12nm,2.1e9,523e6,1,125,,
 */

#include <string>

#include "core/design.hh"

namespace ttmcas {

/** Serialize @p design to CSV text. */
std::string designToCsv(const ChipDesign& design);

/** Parse CSV text into a validated design. */
ChipDesign designFromCsv(const std::string& csv_text);

/** Write @p design to a file (parent directories created). */
void saveDesignCsv(const ChipDesign& design, const std::string& path);

/** Load a design from a CSV file. */
ChipDesign loadDesignCsv(const std::string& path);

} // namespace ttmcas

#endif // TTMCAS_CORE_DESIGN_IO_HH
