#ifndef TTMCAS_CORE_BINNING_HH
#define TTMCAS_CORE_BINNING_HH

/**
 * @file
 * Performance binning of good dies.
 *
 * Section 2.1: "customers may choose to separate chips by their
 * performance characteristics or defects, commonly known as
 * 'binning'". Binning changes wafer demand: if only the top speed
 * grade counts toward the order, the fraction of *good* dies that
 * reach that grade divides into the effective good-die rate, exactly
 * like yield does in Eq. 5/7.
 *
 * A BinningModel is a set of named bins with fractions of the good-die
 * population (anything not covered is scrap/downbin-unsold). Given a
 * per-bin demand, the fabricated-die requirement is set by the bin
 * whose demand-to-fraction ratio is largest — dies fill every bin
 * proportionally, so the tightest bin gates the whole order.
 */

#include <map>
#include <string>
#include <vector>

#include "support/units.hh"

namespace ttmcas {

/** One speed/power grade. */
struct SpeedBin
{
    std::string name;
    /** Fraction of good dies landing in this bin, in (0, 1]. */
    double fraction = 0.0;
    /** Selling price of a unit binned here (0 = not sold). */
    Dollars unit_price{0.0};
};

/** A partition (or sub-partition) of the good-die population. */
class BinningModel
{
  public:
    /** @param bins named bins; fractions must sum to <= 1. */
    explicit BinningModel(std::vector<SpeedBin> bins);

    const std::vector<SpeedBin>& bins() const { return _bins; }

    /** Fraction of good dies that land in any sellable bin. */
    double sellableFraction() const;

    /** Look a bin up by name; throws ModelError when missing. */
    const SpeedBin& bin(const std::string& name) const;

    /**
     * Good dies that must be fabricated so that every bin's demand is
     * met simultaneously (bins fill proportionally; the tightest
     * demand/fraction ratio gates the order).
     *
     * @param demand units wanted per bin name (subset of the bins)
     */
    double goodDiesForDemand(
        const std::map<std::string, double>& demand) const;

    /**
     * Demand multiplier when only @p bin_name counts toward the order:
     * 1 / fraction(bin). Multiplies into the n/Y term of Eq. 5/7.
     */
    double demandMultiplier(const std::string& bin_name) const;

    /** Average revenue per good die across all bins. */
    Dollars revenuePerGoodDie() const;

  private:
    std::vector<SpeedBin> _bins;
};

/**
 * A typical three-grade split: 25% top bin, 55% mid bin, 15% low bin,
 * 5% of good dies failing speed/power screens entirely. Prices scale
 * from @p top_price by 0.75x and 0.55x.
 */
BinningModel typicalThreeBinSplit(Dollars top_price);

} // namespace ttmcas

#endif // TTMCAS_CORE_BINNING_HH
