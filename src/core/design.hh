#ifndef TTMCAS_CORE_DESIGN_HH
#define TTMCAS_CORE_DESIGN_HH

/**
 * @file
 * Architectural description of a chip design.
 *
 * A ChipDesign is a set of die *types*. Each die type names the process
 * node it is fabricated on, its total and unique/unverified transistor
 * counts (paper Table 1: N_TT and N_UT), how many copies of it are
 * packaged into one final chip, and optionally a pinned die area (used
 * when the paper supplies areas directly, e.g. Table 4's Zen 2 dies;
 * otherwise area follows from the node's transistor density).
 *
 * This representation covers every configuration the paper evaluates:
 * monolithic chips (one die type, count 1), homogeneous chiplets, mixed-
 * process chiplets (Zen 2: 7nm compute x2 + 12nm I/O), and interposer
 * designs (the interposer is simply another die type, typically on a
 * legacy node with near-perfect yield).
 */

#include <optional>
#include <string>
#include <vector>

#include "support/units.hh"
#include "tech/technology_db.hh"

namespace ttmcas {

/** One die type within a chip design. */
struct Die
{
    /** Label for reports, e.g. "compute" or "io". */
    std::string name;

    /** Process node this die is fabricated on (must exist in the db). */
    std::string process;

    /** N_TT: total transistors on one copy of this die. */
    double total_transistors = 0.0;

    /**
     * N_UT: unique/unverified transistors that must complete the
     * tapeout phase for this die type (paper Section 3.2). Pre-verified
     * IP and repeated blocks are excluded by the caller.
     */
    double unique_transistors = 0.0;

    /** Copies of this die packaged into each final chip. */
    double count_per_package = 1.0;

    /**
     * Pinned die area. When absent, area = N_TT / density(node).
     * When present, overrides the density-derived area (used when a
     * real floorplan area is known).
     */
    std::optional<SquareMm> area_override;

    /**
     * Minimum manufacturable die area (pad ring / handling limit). The
     * paper's Raven study sets this to 1 mm^2 (Section 7). Applied
     * after the density-derived or pinned area.
     */
    SquareMm min_area{0.0};

    /**
     * Optional yield override in (0, 1]. Used for passive interposers,
     * which the paper models with an optimistic fixed 99.99% yield
     * instead of the area-driven Eq. 6.
     */
    std::optional<double> yield_override;

    /** Die area at @p node (override or density-derived). */
    SquareMm areaAt(const ProcessNode& node) const;

    /** Throw ModelError unless the die is well-formed. */
    void validate() const;

    /**
     * Every validation problem with this die, in field order; empty
     * when the die is well-formed. Unlike validate(), which throws on
     * the first violation, this reports all of them at once.
     */
    std::vector<std::string> violations() const;
};

/** A chip design: die types plus design-phase constants. */
struct ChipDesign
{
    std::string name;
    std::vector<Die> dies;

    /**
     * T_design+implementation: the paper models this phase as a
     * per-design constant (Section 3.1).
     */
    Weeks design_time{0.0};

    /** Total dies per final package (sum of per-die counts). */
    double diesPerPackage() const;

    /** Total transistors per final chip (sum over packaged dies). */
    double totalTransistorsPerChip() const;

    /** Distinct process nodes used, in first-appearance order. */
    std::vector<std::string> processNodes() const;

    /**
     * Sum of unique transistors taped out at @p process —
     * N_UT(d, p) of paper Eq. 2. Each die *type* counts once
     * regardless of how many copies are packaged.
     */
    double uniqueTransistorsAt(const std::string& process) const;

    /** Throw ModelError unless the design is well-formed. */
    void validate() const;

    /**
     * Check the design against a technology database: all processes
     * exist and every die fits on a 300mm wafer at its node.
     */
    void validateAgainst(const TechnologyDb& db) const;

    /**
     * Every validation problem with the design (including each die's);
     * empty when the design is well-formed. The all-at-once companion
     * to validate().
     */
    std::vector<std::string> violations() const;

    /**
     * Every validation problem against a technology database: the
     * design's own violations() plus unknown-process and degenerate-
     * area problems. The all-at-once companion to validateAgainst().
     */
    std::vector<std::string> violationsAgainst(const TechnologyDb& db) const;
};

/** Convenience builder: a single-die chip at one node. */
ChipDesign
makeMonolithicDesign(const std::string& name, const std::string& process,
                     double total_transistors, double unique_transistors,
                     Weeks design_time = Weeks(0.0));

/**
 * Re-target a design to a different process node (the paper's
 * "re-release at an older node" studies): all dies move to
 * @p process and density-derived areas re-scale automatically.
 * Pinned areas are cleared so the new node's density applies.
 */
ChipDesign retargetDesign(const ChipDesign& design,
                          const std::string& process);

} // namespace ttmcas

#endif // TTMCAS_CORE_DESIGN_HH
