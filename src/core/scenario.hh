#ifndef TTMCAS_CORE_SCENARIO_HH
#define TTMCAS_CORE_SCENARIO_HH

/**
 * @file
 * Named supply-chain disruption scenarios.
 *
 * Section 2.3 of the paper catalogs the disruption classes the chip
 * supply chain has actually experienced: fab shutdowns (Texas snow
 * storms, the Renesas fire), demand surges that inflate queues
 * (2020-2022 shortage), drought-driven capacity rationing, and export
 * controls that remove nodes from the market entirely. A Scenario is a
 * reusable bundle of such edits applied on top of a baseline
 * MarketConditions, used by the wargame example and the scenario tests.
 */

#include <string>
#include <vector>

#include "core/market.hh"
#include "support/units.hh"

namespace ttmcas {

/** One edit to a single node's market state. */
struct Disruption
{
    std::string process;
    /** Multiplied into the node's existing capacity factor. */
    double capacity_scale = 1.0;
    /** Added to the node's existing queue backlog. */
    Weeks added_queue{0.0};
    std::string description;
};

/** A named collection of disruptions. */
class Scenario
{
  public:
    Scenario(std::string name, std::vector<Disruption> disruptions);

    const std::string& name() const { return _name; }
    const std::vector<Disruption>& disruptions() const
    {
        return _disruptions;
    }

    /** Apply every disruption on top of @p base. */
    MarketConditions apply(const MarketConditions& base = {}) const;

    /** Compose: this scenario followed by @p other. */
    Scenario then(const Scenario& other) const;

    /**
     * Every validation problem a Scenario(name, disruptions)
     * construction would reject, reported all at once instead of
     * first-throw; empty when the inputs are valid.
     */
    static std::vector<std::string> violations(
        const std::string& name, const std::vector<Disruption>& disruptions);

  private:
    std::string _name;
    std::vector<Disruption> _disruptions;
};

namespace scenarios {

/** Total outage of one node (fire/flood): capacity to zero. */
Scenario fabOutage(const std::string& process);

/** Partial capacity loss at one node (e.g. drought rationing). */
Scenario capacityCut(const std::string& process, double remaining_fraction);

/** Demand surge: add the same queue backlog to every listed node. */
Scenario demandSurge(const std::vector<std::string>& processes,
                     Weeks backlog);

/**
 * Export controls on advanced nodes: every node at or below
 * @p threshold_nm loses all capacity.
 */
Scenario exportControls(const TechnologyDb& db, double threshold_nm);

} // namespace scenarios
} // namespace ttmcas

#endif // TTMCAS_CORE_SCENARIO_HH
